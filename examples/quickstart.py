#!/usr/bin/env python
"""Quickstart: decide one value with Multicoordinated Paxos.

Deploys 1 proposer, 3 coordinators, 3 acceptors and 2 learners on the
discrete-event simulator, starts a *multicoordinated* round (any majority
of the coordinators may drive phase 2), proposes a command and prints what
was learned and how long it took in communication steps.

Run:  python examples/quickstart.py
"""

from repro import Simulation, build_consensus
from repro.cstruct import Command


def main() -> None:
    sim = Simulation(seed=1)
    cluster = build_consensus(
        sim, n_proposers=1, n_coordinators=3, n_acceptors=3, n_learners=2
    )

    # Rounds are records ⟨MCount:mCount, Id, RType⟩; RType 2 maps to a
    # multicoordinated round whose coordinator quorums are the majorities
    # of {coord0, coord1, coord2}.
    rnd = cluster.config.schedule.make_round(coord=0, count=1, rtype=2)
    cluster.start_round(rnd)
    print(f"started round {rnd} with coordinator quorums "
          f"{[set(q) for q in cluster.config.schedule.coord_quorums(rnd)]}")

    cmd = Command(cid="req-1", op="put", key="greeting", arg="hello world")
    cluster.propose(cmd, delay=5.0)

    decided = cluster.run_until_decided(timeout=100)
    assert decided, "consensus should terminate in a failure-free run"

    print(f"decision       : {cluster.decision()}")
    print(f"learners agree : {len(set(map(str, cluster.decided_values()))) == 1}")
    print(f"latency        : {sim.metrics.latency_of(cmd)} communication steps")
    print(f"messages sent  : {sim.metrics.total_messages}")

    # The same deployment keeps working if one coordinator fails: the
    # remaining majority {coord1, coord2} is still a coordinator quorum.
    cluster.coordinators[0].crash()
    cmd2 = Command(cid="req-2", op="put", key="greeting", arg="still here")
    cluster.propose(cmd2, delay=1.0)
    sim.run(until=sim.clock + 20)
    print(f"after a coordinator crash the decision is still: {cluster.decision()}")


if __name__ == "__main__":
    main()
