#!/usr/bin/env python
"""Availability under a coordinator crash (Sections 1 and 4.1).

Streams commands through two deployments of the same generalized engine --
one using a single-coordinated round (Classic Paxos style), one using a
multicoordinated round -- and crashes coordinator 0 mid-run.  The
single-coordinated deployment stalls until the failure detector elects a
new leader and its round's phase 1 completes; the multicoordinated one
keeps learning through the surviving coordinator quorum.

Run:  python examples/availability_failover.py
"""

from repro import LivenessConfig, Simulation, build_generalized
from repro.cstruct import Command, CommandHistory
from repro.smr.machine import kv_conflict


def run(rtype: int, label: str) -> None:
    sim = Simulation(seed=5)
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_coordinators=3,
        n_acceptors=3,
        liveness=LivenessConfig(),
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype))

    period = 4.0
    commands = [Command(f"c{i}", "put", f"key{i}", i) for i in range(40)]
    for index, command in enumerate(commands):
        cluster.propose(command, delay=10.0 + index * period)

    crash_at = 60.0
    sim.schedule(crash_at, lambda: cluster.coordinators[0].crash())

    assert cluster.run_until_learned(commands, timeout=5000)

    times = sorted(sim.metrics.learn_time(c) for c in commands)
    gaps = [b - a for a, b in zip(times, times[1:])]
    print(f"{label:>20}: max learning gap = {max(gaps):5.1f} "
          f"(baseline period {period}), interruption = {max(gaps) - period:5.1f}")


def main() -> None:
    print("crashing coordinator 0 at t=60 while 40 commands stream in...\n")
    run(rtype=1, label="single-coordinated")
    run(rtype=2, label="multicoordinated")
    print("\nThe multicoordinated round shows no interruption: the quorum")
    print("{coord1, coord2} keeps forwarding commands (Section 4.1).")


if __name__ == "__main__":
    main()
