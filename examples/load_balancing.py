#!/usr/bin/env python
"""Load balancing across coordinator and acceptor quorums (Section 4.1).

In Classic Paxos every command passes through the leader.  With
multicoordinated rounds a proposer picks one coordinator quorum and one
acceptor quorum per command (piggybacking the acceptor quorum on the
propose message), so no single process handles every command: with
majorities, each coordinator sees at most 1/2 + 1/nc of the commands.

The script measures per-coordinator load end-to-end on the generalized
engine, and per-acceptor load with the per-command assignment model (fast
quorums force every acceptor above 3/4; classic-sized quorums stay near
1/2).

Run:  python examples/load_balancing.py
"""

import random

from repro import Simulation, build_generalized
from repro.bench.workload import Workload, WorkloadConfig
from repro.core.quorums import QuorumSystem
from repro.cstruct import CommandHistory
from repro.smr.machine import kv_conflict


def coordinator_loads() -> None:
    sim = Simulation(seed=3)
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_coordinators=3,
        n_acceptors=5,
    )
    cluster.set_load_balancing(True)
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype=2))
    workload = Workload.generate(WorkloadConfig(n_commands=60, seed=3))
    workload.schedule_on(cluster)
    assert cluster.run_until_learned(workload.commands, timeout=5000)

    n = len(workload.commands)
    print("per-coordinator load (fraction of commands forwarded), measured:")
    for coordinator in cluster.coordinators:
        load = sim.metrics.commands_handled[coordinator.pid] / n
        bar = "#" * int(load * 40)
        print(f"  {coordinator.pid}: {load:5.2f} {bar}")
    bound = 0.5 + 1 / len(cluster.coordinators)
    print(f"  paper bound per coordinator: 1/2 + 1/nc = {bound:.2f}\n")


def acceptor_loads(n_commands: int = 20_000) -> None:
    rng = random.Random(42)
    n = 5
    quorums = QuorumSystem(range(n))
    print(f"per-acceptor load under random quorum selection ({n} acceptors):")
    for label, size, bound in [
        ("classic/multicoord", quorums.classic_quorum_size, 0.5 + 1 / n),
        ("fast", quorums.fast_quorum_size, 0.75),
    ]:
        counts = [0] * n
        for _ in range(n_commands):
            for acceptor in rng.sample(range(n), size):
                counts[acceptor] += 1
        worst = max(counts) / n_commands
        relation = "<=" if label.startswith("classic") else ">"
        print(f"  {label:<18} quorums (size {size}): max load {worst:.3f} "
              f"({relation} bound {bound:.2f})")


def main() -> None:
    coordinator_loads()
    acceptor_loads()
    print("\nfast rounds balance worse: every acceptor must be in most fast")
    print("quorums, processing over 3/4 of all commands (Section 4.1).")


if __name__ == "__main__":
    main()
