#!/usr/bin/env python
"""Fast-round collisions and the three recovery strategies (Sections 2.2, 4.2).

Two proposers concurrently propose conflicting values into a fast round
over a jittery network.  Acceptors may accept different values, no fast
quorum agrees, and the round collides.  The script compares the decision
latency of the three recovery strategies:

* restart       -- run round i+1 from scratch           (~4 extra steps)
* coordinated   -- reread 2b messages as 1b for i+1     (~2 extra steps)
* uncoordinated -- acceptors pick and accept directly   (~1 extra step)

and contrasts the wasted disk writes with a multicoordinated round, where
collisions are detected *before* anything is accepted.

Run:  python examples/collision_recovery.py
"""

from repro import NetworkConfig, Simulation, build_consensus, build_fast_paxos
from repro.cstruct import Command

A = Command("a", "put", "x", 1)
B = Command("b", "put", "x", 2)


def fast_run(seed: int, strategy: str):
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=0.9))
    cluster = build_fast_paxos(
        sim,
        n_acceptors=4,
        n_proposers=2,
        fast_rounds=(lambda r: True) if strategy == "uncoordinated" else (lambda r: r == 1),
        uncoordinated=strategy == "uncoordinated",
        recovery={"restart": "restart", "coordinated": "coordinated",
                  "uncoordinated": "none"}[strategy],
    )
    cluster.start_round(1)
    cluster.propose(A, delay=6.0, proposer=0)
    cluster.propose(B, delay=6.0, proposer=1)
    decided = cluster.run_until_decided(timeout=500)
    collided = (
        sum(c.collisions_recovered for c in cluster.coordinators) > 0
        or sum(a.wasted_disk_writes for a in cluster.acceptors) > 0
    )
    if not (decided and collided):
        return None
    decision = cluster.decision()
    wasted = sum(
        sum(1 for _, val in acc.accept_log if val != decision)
        for acc in cluster.acceptors
    )
    return sim.metrics.latency_of(decision), wasted


def multicoord_run(seed: int):
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=0.9))
    cluster = build_consensus(sim, n_proposers=2, n_coordinators=3, n_acceptors=3)
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype=2))
    cluster.propose(A, delay=6.0, proposer=0)
    cluster.propose(B, delay=6.0, proposer=1)
    cluster.run_until_decided(timeout=500)
    if not sum(a.collisions_detected for a in cluster.acceptors):
        return None
    decision = cluster.decision()
    wasted = sum(
        sum(1 for _, val in acc.accept_log if val != decision)
        for acc in cluster.acceptors
    )
    return sim.metrics.latency_of(decision), wasted


def main() -> None:
    print("two conflicting proposals race into a fast round (40 seeds each):\n")
    for strategy in ("restart", "coordinated", "uncoordinated"):
        samples = [fast_run(seed, strategy) for seed in range(40)]
        samples = [s for s in samples if s is not None]
        latency = sum(lat for lat, _ in samples) / len(samples)
        wasted = sum(w for _, w in samples) / len(samples)
        print(f"  fast + {strategy:<13}: {len(samples):2d} collided runs, "
              f"mean decision latency {latency:5.2f}, wasted disk writes {wasted:4.2f}")

    samples = [multicoord_run(seed) for seed in range(40)]
    samples = [s for s in samples if s is not None]
    latency = sum(lat for lat, _ in samples) / len(samples)
    wasted = sum(w for _, w in samples) / len(samples)
    print(f"  multicoordinated     : {len(samples):2d} collided runs, "
          f"mean decision latency {latency:5.2f}, wasted disk writes {wasted:4.2f}")
    print("\nuncoordinated < coordinated < restart in latency (1 < 2 < 4 extra")
    print("steps), and only fast rounds pay for collisions with disk writes.")


if __name__ == "__main__":
    main()
