#!/usr/bin/env python
"""A real multicoordinated Paxos cluster: OS subprocesses over UDP/TCP.

Launches the ISSUE's reference deployment on localhost -- 3 acceptors,
2 coordinators and 2 learners, each as its **own OS process** (``python
-m repro.net.node``), every protocol message crossing a real UDP socket
(TCP for oversized frames).  The driver (this process) hosts the two
proposers and a :class:`PipelinedClient`, exactly as it would on the
simulator -- the role classes and the client are byte-for-byte the same
code; only the Runtime behind them changed.

The run asserts the two properties CI's ``net-smoke`` job gates on:

* **100% delivery** -- every submitted command is acked by *every*
  learner (observed via the learners' ``IAck`` broadcasts to the
  driver-hosted proposers);
* **identical learner orders** -- a ``CtlOrders`` audit fetches each
  learner's delivered sequence over the wire; they must be equal and
  contain every command.

and prints wall-clock throughput and latency percentiles.

Run:  python examples/cluster_launcher.py [--commands N] [--loss P]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cstruct.commands import Command  # noqa: E402
from repro.net.cluster import (  # noqa: E402
    DRIVER_NODE,
    NetCluster,
    node_plan,
    wall_clock_liveness,
    wall_clock_retransmit,
)
from repro.net.node import ControlClient, config_from_spec, control_pid  # noqa: E402
from repro.net.transport import AddressBook, NetRuntime  # noqa: E402
from repro.smr.client import PipelinedClient  # noqa: E402

SHAPE = {
    "n_proposers": 2,
    "n_coordinators": 2,
    "n_acceptors": 3,
    "n_learners": 2,
    "f": 1,
}


def reserve_ports(count: int) -> list[int]:
    """Find *count* localhost ports free for both UDP and TCP.

    Binds both sockets per port before releasing any, so the ports are
    distinct; the (tiny) window between release and the subprocess
    re-binding is the usual localhost-launcher race.
    """
    holds, ports = [], []
    while len(ports) < count:
        udp = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        udp.bind(("127.0.0.1", 0))
        port = udp.getsockname()[1]
        tcp = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            tcp.bind(("127.0.0.1", port))
        except OSError:
            udp.close()
            continue
        holds += [udp, tcp]
        ports.append(port)
    for sock in holds:
        sock.close()
    return ports


def percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


async def run(args: argparse.Namespace) -> int:
    spec_base = {
        "shape": SHAPE,
        "retransmit": vars(wall_clock_retransmit()),
        "liveness": vars(wall_clock_liveness()),
        "loss_rate": args.loss,
        "lifetime": args.timeout + 30.0,
    }
    config = config_from_spec(spec_base)
    placement = node_plan(config)
    nodes = sorted({*placement.values(), DRIVER_NODE})
    remote_nodes = [node for node in nodes if node != DRIVER_NODE]
    for node in nodes:
        placement[control_pid(node)] = node

    book = AddressBook(placement=placement)
    for node, port in zip(remote_nodes, reserve_ports(len(remote_nodes))):
        book.nodes[node] = ("127.0.0.1", port)
    book.nodes[DRIVER_NODE] = ("127.0.0.1", 0)

    driver = NetRuntime(DRIVER_NODE, book, seed=99, loss_rate=args.loss)
    await driver.start()  # resolves the driver's ephemeral port in `book`

    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    children: list[subprocess.Popen] = []
    control: ControlClient | None = None
    try:
        for index, node in enumerate(remote_nodes):
            spec = {
                **spec_base,
                "node": node,
                "seed": index + 1,
                "driver": DRIVER_NODE,
                **book.to_json(),
            }
            children.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro.net.node", json.dumps(spec)],
                    env=env,
                )
            )

        cluster = NetCluster(driver, config)
        control = ControlClient(control_pid(DRIVER_NODE), driver, set(remote_nodes))
        if not await driver.wait_until(control.all_ready, timeout=20.0):
            missing = control.expected - control.hellos
            print(f"FAIL: nodes never reported ready: {sorted(missing)}")
            return 1
        print(f"{len(remote_nodes)} nodes up "
              f"({', '.join(remote_nodes)}); starting round")
        control.start_cluster(coord=0)

        client = PipelinedClient("launcher", cluster, window=8)
        cluster.attach_client(client)
        cmds = [
            Command(f"net-{i}", "put", f"key{i % 8}", i)
            for i in range(args.commands)
        ]
        started = driver.clock
        client.submit(cmds)

        def finished() -> bool:
            return client.all_completed() and cluster.all_acked(cmds)

        if not await driver.wait_until(finished, timeout=args.timeout):
            done = len(client.completed)
            fully = sum(cluster.all_acked([c]) for c in cmds)
            print(f"FAIL: {done}/{len(cmds)} completed, "
                  f"{fully}/{len(cmds)} acked by all learners")
            return 1
        elapsed = driver.clock - started

        # Order audit over the wire: every learner, identical sequences.
        learner_nodes = [book.node_of(pid) for pid in config.topology.learners]
        control.audit_orders(learner_nodes)
        got_all = await driver.wait_until(
            lambda: len(control.learner_orders()) == len(config.topology.learners),
            timeout=10.0,
        )
        if not got_all:
            print("FAIL: order audit incomplete")
            return 1
        orders = control.learner_orders()
        distinct = {order for order in orders.values()}
        if len(distinct) != 1 or set(next(iter(distinct))) != set(cmds):
            print(f"FAIL: learner orders diverge or are incomplete: "
                  f"{ {pid: len(o) for pid, o in orders.items()} }")
            return 1

        latencies = sorted(
            lat for lat in (client.latency(c) for c in cmds) if lat is not None
        )
        print(f"OK: {len(cmds)} commands, 100% delivered, "
              f"{len(orders)} learners with identical orders")
        print(f"  wall time    {elapsed:8.2f} s")
        print(f"  throughput   {len(cmds) / elapsed:8.1f} cmds/s")
        print(f"  messages     {driver.metrics.total_messages:8d} sent by driver "
              f"({driver.frames_udp} udp / {driver.frames_tcp} tcp frames)")
        print(f"  latency p50  {1e3 * percentile(latencies, 0.50):8.1f} ms")
        print(f"  latency p99  {1e3 * percentile(latencies, 0.99):8.1f} ms")
        return 0
    finally:
        if control is not None:
            control.shutdown_cluster(remote_nodes)
            await asyncio.sleep(0.3)  # let the shutdowns drain
        await driver.stop()
        deadline = time.monotonic() + 10.0
        for child in children:
            try:
                child.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                child.kill()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--commands", type=int, default=60)
    parser.add_argument("--loss", type=float, default=0.0,
                        help="injected per-hop drop probability")
    parser.add_argument("--timeout", type=float, default=45.0)
    args = parser.parse_args()
    return asyncio.run(run(args))


if __name__ == "__main__":
    sys.exit(main())
