#!/usr/bin/env python
"""Multicoordinated MultiPaxos: replication without a leader bottleneck.

The application-oriented reading of the paper (abstract, Section 4.1): a
replicated service runs one consensus instance per command.  Here each
command travels through a *randomly chosen* coordinator quorum and acceptor
quorum, so no process handles every command -- yet all replicas apply the
same total order, and crashing a coordinator mid-run changes nothing.

A second run turns on the batching + pipelining layer: commands ride in
batches of up to 6 through a pipeline of 3 in-flight instances, cutting the
per-command message cost several-fold at comparable latency.

A third run drops 30% of all messages: the reliability layer (proposer
retransmission, coordinator gossip, learner catch-up) still delivers every
command in the same total order at both replicas.

A fourth run turns on checkpointing: replicas snapshot every 12 delivered
instances and the cluster garbage-collects acceptor votes, coordinator
decision maps and learner logs below the collective frontier -- retained
state tracks the checkpoint window, not the history -- and a replica
restarted after the cluster truncated past its checkpoint converges by
snapshot install.

Run:  python examples/multipaxos_instances.py
"""

from repro import LivenessConfig, Simulation
from repro.cstruct import Command
from repro.sim.network import NetworkConfig
from repro.smr.instances import (
    BatchingConfig,
    CheckpointConfig,
    RetransmitConfig,
    build_smr,
)
from repro.smr.machine import KVStore
from repro.smr.replica import OrderedReplica


def main() -> None:
    sim = Simulation(seed=12)
    cluster = build_smr(
        sim,
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=5,
        n_learners=2,
        liveness=LivenessConfig(),
    )
    cluster.set_load_balancing(True)
    cluster.start_round(cluster.config.schedule.make_round(coord=0, count=1, rtype=2))

    replicas = [OrderedReplica(learner, KVStore()) for learner in cluster.learners]

    commands = [Command(f"op{i}", "inc", f"counter{i % 4}") for i in range(24)]
    for index, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 3 * index)

    # Crash a coordinator mid-run; the multicoordinated round absorbs it.
    sim.schedule(30.0, lambda: cluster.coordinators[2].crash())

    assert cluster.run_until_delivered(commands, timeout=10_000)

    print("per-process load (fraction of commands handled):")
    for coordinator in cluster.coordinators:
        load = sim.metrics.commands_handled[coordinator.pid] / len(commands)
        state = "CRASHED" if not coordinator.alive else "up"
        print(f"  {coordinator.pid} [{state:>7}]: {load:5.2f} {'#' * int(load * 40)}")
    for acceptor in cluster.acceptors:
        load = acceptor.commands_accepted / len(commands)
        print(f"  {acceptor.pid}  [     up]: {load:5.2f} {'#' * int(load * 40)}")

    print("\nreplica agreement:")
    orders = [[c.cid for c in replica.executed] for replica in replicas]
    assert orders[0] == orders[1]
    print(f"  identical total order at both replicas ({len(orders[0])} commands)")
    print(f"  final counters: {dict(replicas[0].machine.snapshot())}")
    latencies = [sim.metrics.latency_of(c) for c in commands]
    print(f"  mean commit latency: {sum(latencies) / len(latencies):.2f} steps")

    # Heavy traffic: the same 48 commands arriving in bursts of 6, decided
    # by the plain engine and by the batching + pipelining layer.
    def heavy_traffic(batching):
        sim_ht = Simulation(seed=12)
        cluster_ht = build_smr(
            sim_ht, n_proposers=2, n_coordinators=3, n_acceptors=3,
            liveness=LivenessConfig(), batching=batching,
        )
        cluster_ht.start_round(
            cluster_ht.config.schedule.make_round(coord=0, count=1, rtype=2)
        )
        replica = OrderedReplica(cluster_ht.learners[0], KVStore())
        burst = [Command(f"ht{i}", "inc", f"counter{i % 4}") for i in range(48)]
        for index, command in enumerate(burst):
            cluster_ht.propose(command, delay=5.0 + 2.0 * (index // 6))
        assert cluster_ht.run_until_delivered(burst, timeout=10_000)
        mean = sum(sim_ht.metrics.latency_of(c) for c in burst) / len(burst)
        return sim_ht.metrics.total_messages, mean, replica.machine.snapshot()

    plain_msgs, plain_lat, plain_state = heavy_traffic(None)
    batched_msgs, batched_lat, batched_state = heavy_traffic(
        BatchingConfig(max_batch=6, flush_interval=2.0, pipeline_depth=3)
    )
    assert batched_state == plain_state

    print("\nheavy traffic, 48 commands in bursts of 6:")
    print(f"  unbatched: {plain_msgs} messages, mean latency {plain_lat:.2f}")
    print(f"  batched:   {batched_msgs} messages, mean latency {batched_lat:.2f}")
    print(
        f"  batching + pipelining cut messages {plain_msgs / batched_msgs:.1f}x,"
        " identical final state"
    )

    # Message loss: 30% of all messages vanish.  Retransmission + gossip +
    # learner catch-up make the engine converge anyway.
    sim_loss = Simulation(seed=12, network=NetworkConfig(drop_rate=0.3))
    cluster_loss = build_smr(
        sim_loss, n_proposers=2, n_coordinators=3, n_acceptors=3, n_learners=2,
        liveness=LivenessConfig(),
        batching=BatchingConfig(max_batch=6, flush_interval=2.0, pipeline_depth=3),
        retransmit=RetransmitConfig(),
    )
    cluster_loss.start_round(
        cluster_loss.config.schedule.make_round(coord=0, count=1, rtype=2)
    )
    replicas_loss = [
        OrderedReplica(learner, KVStore()) for learner in cluster_loss.learners
    ]
    lossy = [Command(f"ls{i}", "inc", f"counter{i % 4}") for i in range(24)]
    for index, command in enumerate(lossy):
        cluster_loss.propose(command, delay=5.0 + 2.0 * (index // 6))
    assert cluster_loss.run_until_delivered(lossy, timeout=20_000)
    assert replicas_loss[0].order_signature() == replicas_loss[1].order_signature()
    stats = cluster_loss.retransmission_stats()
    print("\nlossy network (30% of messages dropped):")
    print(
        f"  all {len(lossy)} commands delivered, identical order at both replicas"
    )
    print(
        f"  {sim_loss.metrics.messages_dropped} drops healed by"
        f" {stats['retransmissions']} retransmissions,"
        f" {stats['catchup_requests']} learner catch-ups,"
        f" {stats['gossip_rounds']} gossip rounds"
    )

    # -- run 4: checkpointing bounds memory; laggards install snapshots ----
    sim_ckpt = Simulation(seed=21, max_events=4_000_000)
    cluster_ckpt = build_smr(
        sim_ckpt,
        n_proposers=2,
        n_learners=3,
        liveness=LivenessConfig(),
        batching=BatchingConfig(max_batch=4, flush_interval=1.5, pipeline_depth=4),
        retransmit=RetransmitConfig(),
        checkpoint=CheckpointConfig(interval=12, gc_quorum=2),
    )
    cluster_ckpt.start_round(
        cluster_ckpt.config.schedule.make_round(coord=0, count=1, rtype=2)
    )
    replicas_ckpt = [
        OrderedReplica(learner, KVStore()) for learner in cluster_ckpt.learners
    ]
    first = [Command(f"cp{i}", "put", f"key{i}", i) for i in range(60)]
    for index, command in enumerate(first):
        cluster_ckpt.propose(command, delay=5.0 + 0.5 * index)
    assert cluster_ckpt.run_until_delivered(first, timeout=20_000)
    laggard = cluster_ckpt.learners[2]
    laggard.crash()
    second = [Command(f"cq{i}", "put", f"key{i}", -i) for i in range(60)]
    for index, command in enumerate(second):
        cluster_ckpt.propose(command, delay=1.0 + 0.5 * index)
    live = cluster_ckpt.learners[:2]
    assert sim_ckpt.run_until(
        lambda: all(l.has_delivered(c) for l in live for c in second),
        timeout=sim_ckpt.clock + 20_000,
    )
    laggard.recover()
    assert sim_ckpt.run_until(
        lambda: all(laggard.has_delivered(c) for c in first + second),
        timeout=sim_ckpt.clock + 20_000,
    )
    ckpt_stats = cluster_ckpt.checkpoint_stats()
    retained = cluster_ckpt.retained_state()
    assert len({r.order_signature() for r in replicas_ckpt}) == 1
    print("\ncheckpointing (snapshot every 12 instances, GC quorum 2/3):")
    print(
        f"  {ckpt_stats['snapshots']} checkpoints taken; acceptor logs"
        f" truncated to floor {ckpt_stats['acceptor_floor']}"
        f" ({retained['acceptor journal']} journal entries retained of"
        f" {len(first) + len(second)} commands)"
    )
    print(
        f"  restarted laggard converged via {laggard.snapshot_installs}"
        " snapshot install(s); all three replica orders identical"
    )


if __name__ == "__main__":
    main()
