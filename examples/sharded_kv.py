#!/usr/bin/env python
"""A sharded key-value store: N engine groups behind a key-hashed router.

One consensus group totally orders every command through one coordinator
pipeline, so aggregate throughput is flat no matter how many machines
you add.  The ``repro.shard`` layer splits the keyspace over N
*independent* groups (each a full multicoordinated MultiPaxos engine,
role classes unchanged) and routes commands by key hash -- throughput
scales with the group count because the groups share nothing.

Commands touching keys of two or more groups cannot ride one group's
log.  The router proposes them to a generalized *merge group* and
plants a barrier placeholder in every owning group: replicas stall
their local stream at the barrier until the merge group has decided
the command's cross-shard order, then splice it in.  Per-key order
agrees at every replica of every group -- the demo checks it.

Run:  python examples/sharded_kv.py
"""

from repro import Simulation
from repro.shard import ShardedDeployment
from repro.smr.client import PipelinedClient


def group_keys(shard_map, gid, count):
    """The first *count* ``item<i>`` keys hashing to group *gid*."""
    keys, i = [], 0
    while len(keys) < count:
        key = f"item{i}"
        if shard_map.group_of_key(key) == gid:
            keys.append(key)
        i += 1
    return keys


def main() -> None:
    sim = Simulation(seed=23)
    deployment = ShardedDeployment.build(sim, n_groups=3).start()
    sim.run(until=5.0)

    # One pipelined client per group, on keys that group owns.
    clients = []
    commands = []
    for gid in range(3):
        keys = group_keys(deployment.shard_map, gid, 2)
        client = PipelinedClient(f"client{gid}", deployment.router, window=4)
        client.watch_replica(deployment.replicas[gid][0])
        cmds = [
            client.make_command("put", keys[i % 2], i) for i in range(10)
        ]
        client.submit(cmds)
        clients.append(client)
        commands.extend(cmds)

    # Two cross-shard commands: each touches keys of two groups, so the
    # merge group decides their order and both groups splice it.
    cross = PipelinedClient("cross", deployment.router, window=2)
    for gid in range(3):
        cross.watch_replica(deployment.replicas[gid][0])
    k0 = group_keys(deployment.shard_map, 0, 1)[0]
    k1 = group_keys(deployment.shard_map, 1, 1)[0]
    k2 = group_keys(deployment.shard_map, 2, 1)[0]
    xcmds = [
        cross.make_command("put", f"{k0}|{k1}", "swap-a"),
        cross.make_command("put", f"{k1}|{k2}", "swap-b"),
    ]
    cross.submit(xcmds)
    commands.extend(xcmds)

    assert deployment.run_until_executed(commands), "run must complete"

    print("router:", deployment.router.stats())
    print("commands per group:", dict(sim.metrics.commands_by_group))
    for gid in range(3):
        orders = {r.order_signature() for r in deployment.replicas[gid]}
        assert len(orders) == 1, "replicas of one group must agree exactly"
        print(f"  group {gid} executed {len(orders.pop())} commands")

    divergent = deployment.divergent_keys()
    assert divergent == [], f"per-key orders must agree: {divergent}"
    print("\nper-key order agrees at every replica of every group")
    print(f"cross-shard order on {k1}: {deployment.key_order(k1)}")
    barriers = sum(r.barriers_crossed for rs in deployment.replicas for r in rs)
    print(f"barriers crossed across all replicas: {barriers}")


if __name__ == "__main__":
    main()
