#!/usr/bin/env python
"""A replicated key-value store over Generic Broadcast (Section 3.3).

The paper's motivating application: commands on different keys commute and
may be learned in different orders at different replicas, yet all replicas
converge because conflicting commands (same key, at least one write) are
delivered in the same relative order everywhere.

The script broadcasts a mixed workload from two clients through a
Multicoordinated Generalized Paxos instance, applies it on three replicas
and shows that (a) every replica reaches the same state, (b) commuting
commands really were allowed to interleave differently.

Run:  python examples/replicated_kv.py
"""

from repro import Simulation, NetworkConfig
from repro.core.broadcast import GenericBroadcast
from repro.cstruct import Command
from repro.smr.client import Client
from repro.smr.machine import KVStore, kv_conflict
from repro.smr.replica import BroadcastReplica


def main() -> None:
    sim = Simulation(seed=11, network=NetworkConfig(jitter=0.8))
    service = GenericBroadcast.deploy(
        sim,
        conflict=kv_conflict(),
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=3,
        n_learners=3,
    )
    service.start_round(service.cluster.config.schedule.make_round(0, 1, rtype=2))

    replicas = [
        BroadcastReplica(learner, KVStore()) for learner in service.cluster.learners
    ]

    alice = Client("alice", service.cluster)
    bob = Client("bob", service.cluster)
    for client, replica in [(alice, replicas[0]), (bob, replicas[1])]:
        client.watch_replica(replica)

    commands = [
        alice.issue(Command("a1", "put", "apples", 3), delay=5.0),
        bob.issue(Command("b1", "put", "bananas", 7), delay=5.0),  # commutes with a1
        alice.issue(Command("a2", "inc", "apples", 2), delay=9.0),
        bob.issue(Command("b2", "inc", "bananas", 1), delay=9.0),
        alice.issue(Command("a3", "get", "apples"), delay=13.0),
        bob.issue(Command("b3", "get", "apples"), delay=13.0),  # two reads commute
    ]
    assert service.cluster.run_until_learned(commands, timeout=2000)

    print("replica states:")
    for index, replica in enumerate(replicas):
        print(f"  replica {index}: {dict(replica.machine.snapshot())}")
    states = {replica.machine.snapshot() for replica in replicas}
    assert len(states) == 1, "replicas must converge"

    print("\nexecution orders (commuting commands may interleave differently):")
    for index, replica in enumerate(replicas):
        print(f"  replica {index}: {[c.cid for c in replica.executed]}")

    conflicting = [c for c in commands if c.key == "apples" and c.op != "get"]
    orders = [
        [c.cid for c in replica.executed if c in conflicting] for replica in replicas
    ]
    assert all(order == orders[0] for order in orders)
    print(f"\nconflicting commands ordered identically everywhere: {orders[0]}")

    latencies = {c.cid: alice.latency(c) or bob.latency(c) for c in commands}
    print(f"client-observed latencies (steps): {latencies}")


if __name__ == "__main__":
    main()
