#!/usr/bin/env python
"""A replicated key-value store over Generic Broadcast (Section 3.3).

The paper's motivating application: commands on different keys commute and
may be learned in different orders at different replicas, yet all replicas
converge because conflicting commands (same key, at least one write) are
delivered in the same relative order everywhere.

The script broadcasts a mixed workload from two clients through a
Multicoordinated Generalized Paxos instance, applies it on three replicas
and shows that (a) every replica reaches the same state, (b) commuting
commands really were allowed to interleave differently.

Run:  python examples/replicated_kv.py
"""

from repro import Simulation, NetworkConfig
from repro.core.broadcast import GenericBroadcast
from repro.cstruct import Command
from repro.smr.client import Client
from repro.smr.machine import KVStore, kv_conflict
from repro.smr.replica import BroadcastReplica


def main() -> None:
    sim = Simulation(seed=11, network=NetworkConfig(jitter=0.8))
    service = GenericBroadcast.deploy(
        sim,
        conflict=kv_conflict(),
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=3,
        n_learners=3,
    )
    service.start_round(service.cluster.config.schedule.make_round(0, 1, rtype=2))

    replicas = [
        BroadcastReplica(learner, KVStore()) for learner in service.cluster.learners
    ]

    alice = Client("alice", service.cluster)
    bob = Client("bob", service.cluster)
    for client, replica in [(alice, replicas[0]), (bob, replicas[1])]:
        client.watch_replica(replica)

    commands = [
        alice.issue(Command("a1", "put", "apples", 3), delay=5.0),
        bob.issue(Command("b1", "put", "bananas", 7), delay=5.0),  # commutes with a1
        alice.issue(Command("a2", "inc", "apples", 2), delay=9.0),
        bob.issue(Command("b2", "inc", "bananas", 1), delay=9.0),
        alice.issue(Command("a3", "get", "apples"), delay=13.0),
        bob.issue(Command("b3", "get", "apples"), delay=13.0),  # two reads commute
    ]
    assert service.cluster.run_until_learned(commands, timeout=2000)

    print("replica states:")
    for index, replica in enumerate(replicas):
        print(f"  replica {index}: {dict(replica.machine.snapshot())}")
    states = {replica.machine.snapshot() for replica in replicas}
    assert len(states) == 1, "replicas must converge"

    print("\nexecution orders (commuting commands may interleave differently):")
    for index, replica in enumerate(replicas):
        print(f"  replica {index}: {[c.cid for c in replica.executed]}")

    conflicting = [c for c in commands if c.key == "apples" and c.op != "get"]
    orders = [
        [c.cid for c in replica.executed if c in conflicting] for replica in replicas
    ]
    assert all(order == orders[0] for order in orders)
    print(f"\nconflicting commands ordered identically everywhere: {orders[0]}")

    latencies = {c.cid: alice.latency(c) or bob.latency(c) for c in commands}
    print(f"client-observed latencies (steps): {latencies}")


def production_parity_demo() -> None:
    """The production layers: batching + retransmission + checkpointing.

    A 150-command closed-loop run through the generalized engine with all
    three parity layers on: command groups ride one phase "2a" per batch,
    the run stays live at 15% message loss, and stable-prefix
    checkpointing keeps every role's retained history at the checkpoint
    window instead of the full run.
    """
    from repro.bench.workload import Workload, WorkloadConfig
    from repro.core.checkpoint import CheckpointConfig, RetransmitConfig
    from repro.core.generalized import GenBatchingConfig, build_generalized
    from repro.cstruct.history import CommandHistory
    from repro.smr.client import PipelinedClient

    sim = Simulation(seed=17, network=NetworkConfig(drop_rate=0.15))
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_learners=3,
        batching=GenBatchingConfig(max_batch=8, flush_interval=1.0),
        retransmit=RetransmitConfig(),
        checkpoint=CheckpointConfig(interval=25, gc_quorum=2),
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype=2))
    replicas = [BroadcastReplica(l, KVStore()) for l in cluster.learners]
    client = PipelinedClient("loadgen", cluster, window=12)
    client.watch_learner(cluster.learners[0])
    workload = Workload.generate(
        WorkloadConfig(n_commands=150, conflict_rate=0.3, read_fraction=0.2, seed=17)
    )
    sim.run(until=5.0)
    client.submit(workload.commands)
    assert sim.run_until(
        lambda: cluster.everyone_learned(workload.commands), timeout=200_000
    ), "lossy batched run must converge"

    print("\n-- production parity demo (batch 8, drop 15%, checkpoint 25) --")
    print(f"messages/command: {sim.metrics.total_messages / 150:.1f}")
    print(f"reliability: {cluster.retransmission_stats()}")
    print(f"checkpoints: {cluster.checkpoint_stats()}")
    print(f"peak retained history now: {cluster.retained_history()}")
    states = {replica.machine.snapshot() for replica in replicas}
    assert len(states) == 1, "replicas must converge"
    retained = cluster.retained_history()
    assert retained["acceptor vval"] < 150, "history must be truncated"
    print("all replicas converged with window-bounded retained history")


if __name__ == "__main__":
    main()
    production_parity_demo()
