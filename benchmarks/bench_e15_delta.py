"""E15 -- delta wire protocol: O(delta) hot paths, digest catch-up, sessions.

The cumulative generalized engine re-ships its full c-struct on every
accept, re-announce and catch-up answer, so per-command wire bytes and
idle chatter grow linearly with history length.  With a ``DeltaConfig``
senders ship only unsent suffixes stamped by (size, digest) of what was
already sent, stamped polls are answered by an O(1) ``VoteStamp``, and a
``SessionConfig`` replaces the learners' unbounded seen-sets with
sliding per-client windows.  Claims pinned here (CI guards, quick mode
``E15_QUICK=1``):

1. **Idle-tick bytes O(1)**: the delta cluster's idle catch-up bytes per
   tick are flat in history length (cumulative: linear growth).
2. **Per-command 2a/2b payload O(delta)**: flat in history length
   (cumulative: linear), with **>= 2x fewer simulation events per
   command at history length 400**.
3. **Bounded dedup**: with sessions, learner retained dedup cells stay
   flat across a 3x-longer run (seen-set: linear).
4. **Real sockets**: the identical roles on per-role loopback
   ``NetRuntime`` nodes complete with agreeing learners and put a
   fraction of the cumulative bytes on the wire.

Every test also dumps its rows into ``BENCH_e15.json`` (cwd) for
offline before/after comparison.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import run_experiment
from repro.bench.experiments import (
    experiment_e15,
    experiment_e15_net,
    experiment_e15_sessions,
)

QUICK = os.environ.get("E15_QUICK", "") not in ("", "0")

BENCH_JSON = "BENCH_e15.json"


def _dump(section: str, rows: list[dict]) -> None:
    data: dict = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as fh:
            data = json.load(fh)
    data[section] = [
        {
            key: value if isinstance(value, (int, float, bool, str)) else str(value)
            for key, value in row.items()
        }
        for row in rows
    ]
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2)


def _wire_sweep():
    if QUICK:
        return experiment_e15(n_grid=(100, 400))
    return experiment_e15()


def test_e15_wire_scaling(benchmark):
    rows = run_experiment(
        benchmark,
        _wire_sweep,
        "E15a: bytes-on-wire and events/cmd vs history length",
    )
    _dump("wire_scaling", rows)
    assert all(r["completed"] and r["orders agree"] for r in rows)

    cumulative = [r for r in rows if r["mode"].startswith("cumulative")]
    delta = [r for r in rows if r["mode"].startswith("delta")]
    small, large = cumulative[0], cumulative[-1]
    growth = large["commands"] / small["commands"]

    # Cumulative: O(history) -- idle-tick bytes and per-command payload
    # grow with history length (at least half the command-count ratio).
    assert large["idle B / tick"] >= (growth / 2) * small["idle B / tick"]
    assert large["2a/2b B / cmd"] >= (growth / 2) * small["2a/2b B / cmd"]

    # Delta: O(1) idle ticks and O(delta) payloads -- flat across the
    # grid (measured byte-identical; 1.25x allows schedule jitter).
    for metric in ("idle B / tick", "2a/2b B / cmd"):
        values = [r[metric] for r in delta]
        assert max(values) <= 1.25 * min(values), (
            f"delta {metric} not flat in history length: {values}"
        )
    assert delta[-1]["idle B / tick"] < 1_000  # absolute: stamps, not votes

    # The mechanism fired, and never needed mismatch repair on a clean run.
    for row in delta:
        assert row["delta 2b"] > 0 and row["stamps"] > 0
        assert row["resyncs"] == 0

    # >= 2x fewer events per command at the longest history (the hot
    # paths do O(delta) work and idle polls are suppressed).
    assert large["events / cmd"] >= 2.0 * delta[-1]["events / cmd"], (
        f"delta events/cmd {delta[-1]['events / cmd']} not 2x better than "
        f"cumulative {large['events / cmd']} at history {large['commands']}"
    )


def test_e15_sessions_bounded_dedup(benchmark):
    rows = run_experiment(
        benchmark,
        experiment_e15_sessions,
        "E15b: learner dedup memory, seen-set vs session windows",
    )
    _dump("sessions", rows)
    assert all(r["completed"] and r["orders agree"] for r in rows)

    seen_set = [r for r in rows if r["mode"].startswith("seen-set")]
    sessions = [r for r in rows if r["mode"].startswith("sessions")]

    # The legacy seen-set retains one cell per distinct command ever
    # delivered: 3x the run, 3x the cells.
    assert seen_set[-1]["retained dedup"] >= 2.5 * seen_set[0]["retained dedup"]
    # Session windows: flat across the 3x-longer run, and far below the
    # command count (floors + interval endpoints per active client).
    assert sessions[-1]["retained dedup"] <= sessions[0]["retained dedup"] + 4
    assert sessions[-1]["retained dedup"] < sessions[-1]["commands"] // 4
    # Bonus of the compact membership claim: idle checkpoint chatter
    # (ICheckpoint.members) stays flat instead of growing with history.
    assert sessions[-1]["idle B / tick"] <= 1.25 * sessions[0]["idle B / tick"]


def test_e15_net_loopback(benchmark):
    rows = run_experiment(
        benchmark,
        experiment_e15_net,
        "E15c: delta protocol on real loopback sockets",
    )
    _dump("net", rows)
    assert all(r["completed"] and r["orders agree"] for r in rows)
    cumulative = next(r for r in rows if r["mode"] == "cumulative")
    delta = next(r for r in rows if r["mode"] == "delta")
    # Wall-clock socket runs jitter; the margins are deliberately loose
    # (measured ~5x total wire and ~30x idle on an idle machine).
    assert delta["wire KB"] < cumulative["wire KB"] / 2
    assert delta["idle B / s"] < cumulative["idle B / s"] / 4
