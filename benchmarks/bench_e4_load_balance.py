"""E4 -- load balance (Section 4.1).

Paper claims: in Classic Paxos every command passes through the leader
(load 1.0).  With multicoordinated rounds and random quorum selection each
coordinator handles at most 1/2 + 1/nc of the commands and each acceptor
at most 1/2 + 1/n.  Fast rounds balance worse: every acceptor must process
more than 3/4 of the commands.
"""

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e4


def test_e4_load_balance(benchmark):
    rows = run_experiment(benchmark, experiment_e4, "E4: per-process load fractions")
    classic = next(r for r in rows if r["mode"] == "classic (leader)")
    assert classic["max load"] == 1.0
    for row in rows:
        if row["mode"] == "multicoordinated":
            assert row["max load"] <= row["paper bound"] + 0.05, row
    fast = next(r for r in rows if r["mode"] == "fast")
    assert fast["max load"] >= fast["paper bound"]  # bound is a lower bound
    multi_acc = next(
        r for r in rows if r["mode"] == "multicoordinated" and r["process"] == "acceptor"
    )
    assert multi_acc["max load"] < fast["max load"]
