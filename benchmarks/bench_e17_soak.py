"""E17 -- randomized fault soak: nemesis episodes + trace-checked runs.

A :class:`repro.sim.nemesis.Nemesis` composes adversarial faults over
the simulated network -- asymmetric and symmetric partitions, targeted
leader / learner-quorum isolation, flapping links, per-link latency
skew, staggered crash storms -- from seeded ``mixed_soak`` schedules,
against all three deployment shapes (instances engine, generalized
engine, 2-group sharded cluster).  Every run records an append-only
event trace and is audited offline by :mod:`repro.core.checker`.

Claims pinned here (CI guards, quick mode ``E17_QUICK=1``):

1. **Liveness after heal**: once the nemesis heals, every submitted
   command completes (client-visible), on every engine, every seed.
2. **Zero checker violations**: per-key total order across replicas and
   groups, prefix-compatibility across crash/recovery and checkpoint
   adoptions, result agreement + witness replay, real-time order.
3. **Bounded memory**: on the checkpointing engines the peak retained
   per-process state tracks the checkpoint window, not the run length.
4. **Scale**: the full mode drives >= 1000 fault episodes in total.

Every test dumps its rows into ``BENCH_e17.json`` (cwd) for offline
before/after comparison.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e17

QUICK = os.environ.get("E17_QUICK", "") not in ("", "0")

BENCH_JSON = "BENCH_e17.json"

#: Full mode: 6 runs x 60 episodes x 3 engines = 1080 episodes.
RUNS_PER_ENGINE = 2 if QUICK else 6
EPISODES_PER_RUN = 8 if QUICK else 60
N_CMDS = 48 if QUICK else 120

#: Retained-state ceiling on the checkpointing engines: the checkpoint
#: window (interval 32) plus in-flight slack, far below the 120-command
#: run length an unbounded engine would retain.
MAX_RETAINED = 96


def _dump(section: str, rows: list[dict]) -> None:
    data: dict = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as fh:
            data = json.load(fh)
    data[section] = [
        {
            key: value if isinstance(value, (int, float, bool, str)) else str(value)
            for key, value in row.items()
        }
        for row in rows
    ]
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2)


def _soak():
    return experiment_e17(
        runs_per_engine=RUNS_PER_ENGINE,
        episodes_per_run=EPISODES_PER_RUN,
        n_cmds=N_CMDS,
    )


def test_e17_randomized_soak(benchmark):
    rows = run_experiment(
        benchmark, _soak, "E17: randomized nemesis soak, trace-checked"
    )
    _dump("soak", rows)

    assert {r["engine"] for r in rows} == {"instances", "generalized", "sharded"}
    total_episodes = sum(r["episodes"] for r in rows)
    if not QUICK:
        assert total_episodes >= 1000, f"only {total_episodes} episodes"

    for row in rows:
        # Liveness: the cluster serves every command once the nemesis
        # heals (within the post-heal budget).
        assert row["completed after heal"], f"wedged after heal: {row}"
        # Safety: the offline checker found no violation in the trace.
        assert row["violations"] == 0, f"checker violations: {row}"
        # The nemesis actually did something in every run.
        assert row["nemesis lines"] >= row["episodes"], f"idle nemesis: {row}"

    # Bounded memory on the checkpointing engines.
    for row in rows:
        if row["engine"] in ("instances", "generalized"):
            assert row["peak retained"] <= MAX_RETAINED, (
                f"retained state {row['peak retained']} exceeds the "
                f"checkpoint-window bound {MAX_RETAINED}: {row}"
            )

    # Zero per-key divergence on the sharded rows (same invariant E16
    # guards, now under composed faults).
    for row in rows:
        if row["engine"] == "sharded":
            assert row["divergent keys"] == 0, f"divergence: {row}"
