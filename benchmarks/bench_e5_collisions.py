"""E5 -- collisions vs conflict rate, and wasted disk writes (Sections 2.2, 4.2).

Paper claims: collisions only involve *conflicting* commands proposed
concurrently.  Fast-round collisions are inherently more expensive: the
colliding values were already accepted (written to stable storage) and are
then discarded, while multicoordinated collisions are detected at the
acceptors before acceptance and waste (almost) no disk write.
"""

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e5, experiment_e5_waste


def test_e5_conflict_sweep(benchmark):
    rows = run_experiment(
        benchmark, experiment_e5, "E5: conflict-rate sweep (burst arrivals, jitter)"
    )
    assert all(row["unlearned"] == 0 for row in rows)
    fast = {row["conflict rate"]: row for row in rows if row["mode"] == "fast"}
    multi = {
        row["conflict rate"]: row for row in rows if row["mode"] == "multicoordinated"
    }
    # At zero conflict nothing collides and fast is faster.
    assert fast[0.0]["extra rounds"] == 0
    assert fast[0.0]["mean latency (steps)"] < multi[0.0]["mean latency (steps)"]
    # At full conflict, fast rounds pay for recovery.
    assert fast[1.0]["extra rounds"] >= 1
    assert fast[1.0]["mean latency (steps)"] > fast[0.0]["mean latency (steps)"] + 1
    # Multicoordinated rounds detect collisions but keep latency stable.
    assert multi[1.0]["collisions"] >= 1
    assert multi[1.0]["mean latency (steps)"] < multi[0.0]["mean latency (steps)"] + 1


def test_e5_wasted_disk_writes(benchmark):
    rows = run_experiment(
        benchmark, experiment_e5_waste, "E5b: wasted disk writes per collision"
    )
    fast = next(r for r in rows if r["mode"] == "fast")
    multi = next(r for r in rows if r["mode"] == "multicoordinated")
    assert fast["collided runs"] > 0 and multi["collided runs"] > 0
    assert fast["wasted disk writes / collision"] >= 1.0
    assert multi["wasted disk writes / collision"] < 0.5
