"""Ablations over the design choices DESIGN.md calls out.

A1 -- coordinator redundancy: how many coordinator crashes a
      multicoordinated round absorbs for nc = 3, 5 (the paper's claim that
      any minority of coordinators may fail, Section 4.1);
A2 -- recovery round type: retrying a collided multicoordinated round with
      another multicoordinated round risks colliding again; Section 4.2
      recommends single-coordinated successors, which our schedules default
      to;
A3 -- learner quorum enumeration: the learner may enumerate all acceptor
      quorums or use the largest-votes heuristic; both learn everything,
      enumeration may merely learn *earlier*;
A4 -- message complexity: per-command messages as the acceptor count grows,
      for single- vs multicoordinated rounds (the redundancy cost behind
      E1's message column).
"""

from repro.bench.tables import format_table
from repro.core.generalized import build_generalized
from repro.core.multicoordinated import build_consensus
from repro.core.rounds import RoundSchedule
from repro.cstruct.commands import Command
from repro.cstruct.history import CommandHistory
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.machine import kv_conflict


def _ablation_a1() -> list[dict]:
    rows = []
    for n_coordinators in (3, 5):
        for crashes in range(n_coordinators):
            sim = Simulation(seed=1)
            cluster = build_consensus(
                sim, n_coordinators=n_coordinators, n_acceptors=3
            )
            rnd = cluster.config.schedule.make_round(0, 1, 2)
            cluster.start_round(rnd)
            sim.run(until=10)
            for i in range(crashes):
                cluster.coordinators[i].crash()
            cluster.propose(Command("a", "put", "x", 1), delay=1.0)
            decided = cluster.run_until_decided(timeout=100)
            rows.append(
                {
                    "nc": n_coordinators,
                    "coordinator crashes": crashes,
                    "decides": decided,
                    "paper": crashes <= (n_coordinators - 1) // 2,
                }
            )
    return rows


def test_a1_coordinator_redundancy(benchmark):
    rows = benchmark.pedantic(_ablation_a1, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="A1: multicoordinated rounds vs coordinator crashes"))
    for row in rows:
        assert row["decides"] == row["paper"], row


def _ablation_a2() -> list[dict]:
    """Collided multicoordinated rounds: single vs multi recovery rounds."""
    rows = []
    for recovery_rtype, label in ((1, "single-coordinated"), (2, "multicoordinated")):
        decided = 0
        rounds_used = 0
        trials = 20
        for seed in range(trials):
            sim = Simulation(seed=seed, network=NetworkConfig(jitter=0.9))
            schedule = RoundSchedule(range(3), recovery_rtype=recovery_rtype)
            cluster = build_consensus(
                sim, n_proposers=2, n_coordinators=3, n_acceptors=3, schedule=schedule
            )
            cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
            cluster.propose(Command("a", "put", "x", 1), delay=6.0, proposer=0)
            cluster.propose(Command("b", "put", "x", 2), delay=6.0, proposer=1)
            decided += cluster.run_until_decided(timeout=400)
            rounds_used += max(
                (acc.vrnd.count for acc in cluster.acceptors), default=0
            )
        rows.append(
            {
                "recovery rtype": label,
                "decided": f"{decided}/{trials}",
                "mean final round count": rounds_used / trials,
            }
        )
    return rows


def test_a2_recovery_round_type(benchmark):
    rows = benchmark.pedantic(_ablation_a2, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="A2: recovery round type after a collision"))
    single = next(r for r in rows if r["recovery rtype"] == "single-coordinated")
    assert single["decided"] == "20/20"


def _ablation_a3() -> list[dict]:
    rows = []
    for limit, label in ((64, "exhaustive enumeration"), (0, "largest-votes heuristic")):
        sim = Simulation(seed=2, network=NetworkConfig(jitter=0.8))
        cluster = build_generalized(
            sim,
            bottom=CommandHistory.bottom(kv_conflict()),
            n_coordinators=3,
            n_acceptors=5,
        )
        cluster.config.learner_enumeration_limit = limit
        cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
        cmds = [Command(f"c{i}", "put", f"k{i}", i) for i in range(12)]
        for i, command in enumerate(cmds):
            cluster.propose(command, delay=5.0 + 3 * i)
        learned_all = cluster.run_until_learned(cmds, timeout=2000)
        latencies = [sim.metrics.latency_of(c) for c in cmds]
        rows.append(
            {
                "learner strategy": label,
                "all learned": learned_all,
                "mean latency": sum(latencies) / len(latencies),
            }
        )
    return rows


def test_a3_learner_enumeration(benchmark):
    rows = benchmark.pedantic(_ablation_a3, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="A3: learner quorum enumeration vs heuristic"))
    assert all(row["all learned"] for row in rows)
    exhaustive = rows[0]["mean latency"]
    heuristic = rows[1]["mean latency"]
    assert exhaustive <= heuristic + 0.5  # enumeration never slower (modulo noise)


def _ablation_a4() -> list[dict]:
    rows = []
    for n_acceptors in (3, 5, 7):
        for rtype, label in ((1, "single-coordinated"), (2, "multicoordinated")):
            sim = Simulation(seed=1)
            cluster = build_consensus(
                sim, n_coordinators=3, n_acceptors=n_acceptors
            )
            cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype))
            sim.run(until=15)
            before = sim.metrics.total_messages
            cmd = Command("a", "put", "x", 1)
            cluster.propose(cmd, delay=1.0)
            cluster.run_until_decided(timeout=100)
            rows.append(
                {
                    "n acceptors": n_acceptors,
                    "round kind": label,
                    "messages / command": sim.metrics.total_messages - before,
                }
            )
    return rows


def test_a4_message_complexity(benchmark):
    rows = benchmark.pedantic(_ablation_a4, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="A4: per-command message complexity"))
    for n in (3, 5, 7):
        single = next(
            r["messages / command"]
            for r in rows
            if r["n acceptors"] == n and r["round kind"] == "single-coordinated"
        )
        multi = next(
            r["messages / command"]
            for r in rows
            if r["n acceptors"] == n and r["round kind"] == "multicoordinated"
        )
        assert multi > single  # redundancy costs messages...
        assert multi < 4 * single  # ...but within a small constant factor
