"""E8 -- round-type crossover (Section 4.5).

Paper claims: in "clustered" settings (spontaneous message order, i.e. no
jitter) fast rounds win even under conflicts; in conflict-prone settings
with message inversions, classic rounds win and fast rounds pay recovery
penalties.  Multicoordinated rounds hold classic latency everywhere while
additionally tolerating coordinator crashes (E3).
"""

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e8


def test_e8_crossover(benchmark):
    rows = run_experiment(benchmark, experiment_e8, "E8: jitter x conflict sweep")
    table = {
        (row["round kind"], row["jitter"], row["conflict rate"]): row for row in rows
    }
    assert all(row["unlearned"] == 0 for row in rows)
    # Clustered system: fast wins regardless of conflicts.
    assert table[("fast", 0.0, 0.0)]["mean latency (steps)"] == 2.0
    assert table[("fast", 0.0, 1.0)]["mean latency (steps)"] == 2.0
    # Conflict-prone system: fast degrades past the classic rounds.
    fast_bad = table[("fast", 1.5, 1.0)]["mean latency (steps)"]
    multi_bad = table[("multicoordinated", 1.5, 1.0)]["mean latency (steps)"]
    single_bad = table[("single-coordinated", 1.5, 1.0)]["mean latency (steps)"]
    assert fast_bad > multi_bad
    assert fast_bad > single_bad
    # Multicoordinated rounds keep ~3-step latency across the grid.
    for jitter in (0.0, 1.5):
        for rate in (0.0, 1.0):
            latency = table[("multicoordinated", jitter, rate)]["mean latency (steps)"]
            assert latency <= 3.4
