"""E7 -- collision recovery cost (Sections 2.2, 4.2).

Paper claims: after a fast-round collision, restarting the next round from
scratch costs four extra communication steps; coordinated recovery (2b
messages reread as 1b messages) costs two; uncoordinated recovery
(acceptors pick and accept directly) costs one.
"""

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e7


def test_e7_recovery_cost(benchmark):
    rows = run_experiment(
        benchmark, experiment_e7, "E7: collided-run decision latency per strategy"
    )
    by_strategy = {row["strategy"]: row for row in rows}
    assert all(row["collided runs"] > 0 for row in rows)
    restart = by_strategy["restart"]["mean latency (collided)"]
    coordinated = by_strategy["coordinated"]["mean latency (collided)"]
    uncoordinated = by_strategy["uncoordinated"]["mean latency (collided)"]
    # The ordering (and roughly the spacing) of the paper's step counts.
    assert uncoordinated < coordinated < restart
    assert restart - coordinated > 1.0  # ~2 extra steps
    assert coordinated - uncoordinated > 0.5  # ~1 extra step
