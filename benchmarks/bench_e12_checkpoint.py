"""E12 -- checkpointing & log truncation: bounded retained state.

The paper's protocols assume replicas keep the full decided history; so
did the engine until the checkpointing subsystem.  This benchmark
regenerates the bounded-memory claim on a multi-thousand-command run:

* with a ``CheckpointConfig`` the peak retained per-process journal/vote
  state tracks the checkpoint *window* (interval + in-flight slack) and
  stays flat in the total run length, while the unbounded engine's peak
  is O(total instances);
* a learner crashed mid-run and restarted after the cluster truncated
  past its durable checkpoint still converges -- through chunked snapshot
  install plus suffix replay -- to the identical replica order.

``E12_QUICK=1`` (the CI job) runs a 2000-command sweep with a single
checkpoint interval; the full run sweeps two intervals at 2400 commands.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e12

QUICK = os.environ.get("E12_QUICK", "") not in ("", "0")


def _sweep():
    if QUICK:
        return experiment_e12(n_commands=2000, intervals=(50,))
    return experiment_e12()


def test_e12_checkpoint_sweep(benchmark):
    rows = run_experiment(
        benchmark,
        _sweep,
        "E12: retained state vs checkpoint interval (bounded-memory claim)",
    )
    baseline = next(r for r in rows if r["engine"].startswith("unbounded"))
    checkpointed = [r for r in rows if not r["engine"].startswith("unbounded")]
    restarted = next(r for r in rows if "laggard restart" in r["engine"])

    # Everything delivers and every replica applies the same total order --
    # including the laggard that had to install a snapshot.
    assert all(r["delivered"] for r in rows)
    assert all(r["orders agree"] for r in rows)
    assert restarted["installs"] >= 1

    # The unbounded engine retains the whole history (one journal entry
    # per decided instance, ~commands / max_batch of them).
    assert baseline["peak acceptor journal"] >= baseline["commands"] / 8 - 16
    # The checkpointed engines retain O(window): the peak never exceeds
    # the checkpoint interval plus a small in-flight/advertisement slack,
    # independent of the total command count.
    for row in checkpointed:
        assert row["peak acceptor journal"] < baseline["peak acceptor journal"] / 2
        assert row["snapshots"] >= 1
        assert row["final floor"] > 0
    tightest = min(checkpointed, key=lambda r: r["peak acceptor journal"])
    # interval 50 window: peak must stay within ~window + pipeline slack.
    assert tightest["peak acceptor journal"] <= 50 + 32
