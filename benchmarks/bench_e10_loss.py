"""E10 -- liveness under message loss (the paper's fair-lossy link model).

The paper's protocols assume fair-lossy links *plus retransmission*
(Section 2.1.1): every message is re-sent until acknowledged.  The seed
engine had no retransmission path, so an ``IPropose`` dropped on every
link stranded its command forever and a learner missing an ``I2b`` quorum
for instance *k* stalled every instance above *k*.

This benchmark regenerates the claim for the reliability layer: on a
48-command bursty workload with ``drop_rate`` up to 0.5, the engine with
proposer retransmission + coordinator gossip + learner catch-up delivers
100% of commands with all replicas applying the same total order, while
the seed engine strands most of the workload.  The messages-per-command
column quantifies the retransmission overhead against the loss-free
baseline.
"""

from __future__ import annotations

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e10


def test_e10_loss_sweep(benchmark):
    rows = run_experiment(
        benchmark,
        experiment_e10,
        "E10: delivery under message loss (drop-rate sweep)",
    )
    reliable = [r for r in rows if r["engine"] != "seed (no retransmit)"]
    seed_lossy = [
        r
        for r in rows
        if r["engine"] == "seed (no retransmit)" and r["drop rate"] >= 0.3
    ]
    # The reliability layer delivers everything at every drop rate, and
    # every replica applies the same total order.
    assert all(r["delivered %"] == 100.0 for r in reliable)
    assert all(r["orders agree"] for r in reliable)
    # The seed engine demonstrably strands commands under the same loss.
    assert all(r["delivered %"] < 100.0 for r in seed_lossy)
    # Retransmission overhead stays bounded: even at drop 0.5 the reliable
    # engine spends under 8x the loss-free baseline's messages per command
    # (the stranded seed engine burns more than that spinning on recovery
    # rounds without ever delivering).
    baseline = next(
        r for r in reliable if r["engine"] == "reliable" and r["drop rate"] == 0.0
    )
    for row in reliable:
        if row["engine"] == "reliable":
            assert row["msgs / cmd"] <= 8 * baseline["msgs / cmd"]
    # No retransmissions are spent when nothing is lost.
    assert baseline["retransmissions"] == 0
