"""E6 -- disk writes (Sections 4.1, 4.4).

Paper claims: coordinators never write to stable storage (crashed
coordinators simply come back as fresh ones); acceptors write once per
acceptance; with the MCount/mCount scheme of Section 4.4 acceptors write
the round watermark once at startup plus once per recovery, instead of on
every phase-1b/round change.
"""

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e6


def test_e6_disk_writes(benchmark):
    rows = run_experiment(benchmark, experiment_e6, "E6: disk writes per configuration")
    reduced = next(r for r in rows if r["config"] == "§4.4 reduced")
    naive = next(r for r in rows if r["config"] == "naive rnd-on-disk")
    recovery = next(r for r in rows if "recovery" in r["config"])
    # Coordinators never touch stable storage.
    assert all(row["coordinator writes"] == 0 for row in rows)
    # §4.4 reduces round-number writes to the startup writes only.
    assert reduced["rnd/mcount writes"] <= 2 * 3  # at most startup + round change
    assert naive["rnd/mcount writes"] > 3 * reduced["rnd/mcount writes"]
    # Recovery costs exactly one extra mcount write.
    assert recovery["rnd/mcount writes"] == reduced["rnd/mcount writes"] + 1
    # Roughly one vote write per command per acceptor in steady state.
    assert 0.5 <= reduced["vote writes / cmd / acceptor"] <= 1.5
    assert all(row["unlearned"] == 0 for row in rows)
