"""E3 -- availability under a coordinator crash (Sections 1, 4.1).

Paper claims: if the single leader of a classic round fails, commands stop
being learned until the failure is suspected, a new leader elected and a
new round's phase 1 completed.  A multicoordinated round keeps a live
coordinator quorum and suffers *no* interruption; fast rounds bypass
coordinators entirely.
"""

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e3


def test_e3_availability(benchmark):
    rows = run_experiment(
        benchmark, experiment_e3, "E3: learning gap around a coordinator crash"
    )
    by_kind = {row["round kind"]: row for row in rows}
    single_gap = by_kind["single-coordinated"]["interruption"]
    multi_gap = by_kind["multicoordinated"]["interruption"]
    fast_gap = by_kind["fast"]["interruption"]
    # Single-coordinated rounds stall for roughly the failure-detector
    # timeout plus a round change; the decentralized rounds do not stall.
    assert single_gap > 5 * max(multi_gap, 1e-9)
    assert multi_gap <= 1.0
    assert fast_gap <= 1.0
    assert all(row["unlearned"] == 0 for row in rows)
