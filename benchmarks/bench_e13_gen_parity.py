"""E13 -- generalized-engine parity: c-struct batching + bounded history.

Two claims of the production parity layer are pinned here:

1. **Batching throughput** (CI guard): with a ``GenBatchingConfig`` whole
   command groups ride one phase "2a" (one ``CommandHistory.extend`` per
   batch instead of one message and one lattice extension per command), so
   at moderate conflict density the batched engine must complete a
   closed-loop workload at **>= 2x** the unbatched commands-per-wall-second
   rate -- and with well under half the messages and simulation events per
   command.
2. **Bounded retained history** (CI guard): with stable-prefix
   checkpointing the peak retained history-lattice state (acceptor
   ``vval``, learner ``learned``, coordinator ``cval``, acceptor delta
   journal) tracks the checkpoint *window* and stays flat as the run
   length grows, while the unbounded engine's peak is O(total commands);
   a learner restarted after the cluster truncated past its checkpoint
   converges through chunked snapshot install to a compatible replica
   (same conflicting-command order, same machine state).

``E13_QUICK=1`` (the CI job) runs a reduced grid; the full run sweeps two
conflict densities and three run lengths.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e13, experiment_e13_memory

QUICK = os.environ.get("E13_QUICK", "") not in ("", "0")


def _throughput_sweep():
    if QUICK:
        return experiment_e13(n_commands=160, conflict_rates=(0.3,))
    return experiment_e13()


def _memory_sweep():
    if QUICK:
        return experiment_e13_memory(n_grid=(300, 600))
    return experiment_e13_memory()


def test_e13_batching_throughput(benchmark):
    rows = run_experiment(
        benchmark,
        _throughput_sweep,
        "E13a: generalized batching sweep (batch size x conflict density)",
    )
    assert all(r["completed"] for r in rows)
    assert all(r["orders agree"] and r["states agree"] for r in rows)
    for rate in {r["conflict rate"] for r in rows}:
        of_rate = [r for r in rows if r["conflict rate"] == rate]
        unbatched = next(r for r in of_rate if r["engine"] == "unbatched")
        batched = next(r for r in of_rate if r["engine"] == "batch 8")
        # The acceptance bar: >= 2x end-to-end throughput at every
        # measured conflict density (measured ~4-5x), plus the mechanism
        # that delivers it -- under half the per-command message count.
        assert batched["cmds / wall s"] >= 2.0 * unbatched["cmds / wall s"], (
            f"conflict {rate}: batched {batched['cmds / wall s']:.0f} < "
            f"2x unbatched {unbatched['cmds / wall s']:.0f} cmds/s"
        )
        assert batched["msgs / cmd"] < unbatched["msgs / cmd"] / 2
        assert batched["events"] < unbatched["events"] / 2


def test_e13_checkpoint_bounded_history(benchmark):
    rows = run_experiment(
        benchmark,
        _memory_sweep,
        "E13b: retained history vs run length (bounded-memory claim)",
    )
    assert all(r["completed"] for r in rows)
    assert all(r["orders agree"] and r["states agree"] for r in rows)

    unbounded = [r for r in rows if r["engine"].startswith("unbounded")]
    bounded = [r for r in rows if r["engine"].startswith("checkpoint") and "laggard" not in r["engine"]]
    restarted = next(r for r in rows if "laggard" in r["engine"])

    # Unbounded: peak retained history is the whole run (every role holds
    # the full command history at the end).
    for row in unbounded:
        assert row["peak retained history"] >= row["commands"] - 1
    # Checkpointed: the peak tracks the window (interval + in-flight
    # slack), *independent of run length* -- flat across the grid.
    for row in bounded:
        assert row["snapshots"] >= 1
        assert row["final floor"] > 0
        assert row["peak retained history"] <= 50 + 64
        assert row["peak acceptor journal"] <= 50 + 64
    spread = {r["peak retained history"] for r in bounded}
    assert max(spread) - min(spread) <= 32, (
        f"checkpointed peak should be flat in run length, got {sorted(spread)}"
    )

    # The laggard restarted below the truncation floor converged through
    # at least one chunked snapshot install.
    assert restarted["installs"] >= 1
