"""E1 -- learning latency in communication steps (Sections 1, 2, 3.1).

Paper claims: Classic Paxos and both classic round kinds of
Multicoordinated Paxos learn in 3 communication steps (with phase 1
amortized); fast rounds learn in 2.  Multicoordination adds *no* latency
over the single-coordinated baseline.
"""

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e1


def test_e1_latency(benchmark):
    rows = run_experiment(benchmark, experiment_e1, "E1: propose-to-learn latency")
    by_protocol = {row["protocol"]: row for row in rows}
    for row in rows:
        assert row["steps"] == row["paper"], row
    multi = by_protocol["MC Paxos, multicoordinated round"]["steps"]
    single = by_protocol["MC Paxos, single-coordinated round"]["steps"]
    fast = by_protocol["Fast Paxos (baseline)"]["steps"]
    assert multi == single == 3
    assert fast == 2
