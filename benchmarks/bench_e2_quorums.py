"""E2 -- quorum-size requirements (Section 2.2, abstract).

Paper claims: Assumptions 1-2 require n > 2F and n > 2E + F.  With
majority classic quorums, fast quorums need ⌈3n/4⌉ acceptors (the TR
prints the conservative ⌈(3n+1)/4⌉); quorums that are both fast and
classic need ⌈(2n+1)/3⌉.  Multicoordinated rounds keep *classic* quorums:
tolerating any minority of failures requires only a majority to
synchronize, versus over 3/4 for fast rounds.
"""

import math

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e2


def test_e2_quorum_sizes(benchmark):
    rows = run_experiment(benchmark, experiment_e2, "E2: quorum sizes vs n")
    for row in rows:
        n = row["n"]
        # Classic/multicoordinated quorums are bare majorities.
        assert row["classic/multicoord quorum"] == n // 2 + 1
        # Fast quorums match the tight ceil(3n/4) bound.
        assert row["fast quorum"] == row["ceil(3n/4)"] == math.ceil(3 * n / 4)
        # n > 2E + F holds.
        assert n > 2 * row["E (fast failures)"] + row["F (classic failures)"]
        # Fast rounds tolerate fewer failures than classic rounds (n >= 4).
        if n >= 4:
            assert row["E (fast failures)"] < row["F (classic failures)"] or n < 5
