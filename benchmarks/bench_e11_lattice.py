"""E11 -- lattice-operation scaling of the generalized engine.

Three claims are pinned here:

1. **End-to-end scaling** (CI guard): on the generalized and
   multicoordinated engines, 4x more commands must cost well under 12x the
   wall time at low conflict density (the pre-digraph implementation's
   O(n²)-per-event lattice ops scale far worse).  ``E11_QUICK=1`` runs a
   reduced grid for CI.
2. **End-to-end speedup vs the pre-PR implementation**: the incremental
   constraint-digraph ``CommandHistory`` must beat the pre-digraph
   pairwise-scan implementation (kept verbatim below as
   ``LegacyCommandHistory``) by >= 5x on a 200-command moderate-conflict
   workload, same engine, same protocol.
3. **Asymptotics**: between already-built histories the digraph ops make
   *zero* conflict-relation calls on shared commands (the legacy ops make
   O(n²) of them), measured with a counting conflict relation.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from benchmarks.conftest import run_experiment
from repro.bench.experiments import _e11_run, experiment_e11
from repro.cstruct.base import CStruct, IncompatibleError
from repro.cstruct.commands import Command, ConflictRelation, KeyConflict
from repro.cstruct.history import CommandHistory

QUICK = bool(os.environ.get("E11_QUICK"))


# ---------------------------------------------------------------------------
# The pre-PR implementation, kept verbatim as the perf baseline
# ---------------------------------------------------------------------------


def _sort_key(cmd: Command) -> tuple:
    return (cmd.cid, cmd.op, cmd.key, repr(cmd.arg))


def _legacy_canonical(seq, conflict) -> tuple[Command, ...]:
    remaining = list(dict.fromkeys(seq))
    placed: list[Command] = []
    while remaining:
        best_index = -1
        best_key: tuple | None = None
        for index, cmd in enumerate(remaining):
            blocked = any(conflict(prev, cmd) for prev in remaining[:index])
            if blocked:
                continue
            key = _sort_key(cmd)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        placed.append(remaining.pop(best_index))
    return tuple(placed)


def _legacy_topological_order(edges) -> list[Command] | None:
    indegree = {node: 0 for node in edges}
    for successors in edges.values():
        for succ in successors:
            indegree[succ] += 1
    available = sorted(
        (node for node, deg in indegree.items() if deg == 0), key=_sort_key
    )
    order: list[Command] = []
    while available:
        node = available.pop(0)
        order.append(node)
        inserted = False
        for succ in sorted(edges[node], key=_sort_key):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                available.append(succ)
                inserted = True
        if inserted:
            available.sort(key=_sort_key)
    if len(order) != len(edges):
        return None
    return order


@dataclass(frozen=True)
class LegacyCommandHistory(CStruct):
    """The seed/PR-2 ``CommandHistory``: O(n²) pairwise conflict scans."""

    cmds: tuple[Command, ...]
    conflict: ConflictRelation
    _set: frozenset = field(init=False, repr=False, compare=False, default=frozenset())

    def __post_init__(self) -> None:
        canonical = _legacy_canonical(self.cmds, self.conflict)
        object.__setattr__(self, "cmds", canonical)
        object.__setattr__(self, "_set", frozenset(canonical))

    @classmethod
    def _trusted(cls, cmds, conflict) -> "LegacyCommandHistory":
        obj = object.__new__(cls)
        object.__setattr__(obj, "cmds", cmds)
        object.__setattr__(obj, "conflict", conflict)
        object.__setattr__(obj, "_set", frozenset(cmds))
        return obj

    @classmethod
    def bottom(cls, conflict) -> "LegacyCommandHistory":
        return cls((), conflict)

    def append(self, cmd: Command) -> "LegacyCommandHistory":
        if cmd in self._set:
            return self
        last_conflict = -1
        for index, existing in enumerate(self.cmds):
            if self.conflict(existing, cmd):
                last_conflict = index
        position = len(self.cmds)
        key = _sort_key(cmd)
        for index in range(last_conflict + 1, len(self.cmds)):
            if key < _sort_key(self.cmds[index]):
                position = index
                break
        new_cmds = self.cmds[:position] + (cmd,) + self.cmds[position:]
        return LegacyCommandHistory._trusted(new_cmds, self.conflict)

    def leq(self, other: CStruct) -> bool:
        if not isinstance(other, LegacyCommandHistory):
            return NotImplemented
        if not self._set <= other._set:
            return False
        position = {cmd: index for index, cmd in enumerate(other.cmds)}
        for i, a in enumerate(self.cmds):
            for b in self.cmds[i + 1 :]:
                if self.conflict(a, b) and position[a] > position[b]:
                    return False
        for extra in other.cmds:
            if extra in self._set:
                continue
            for mine in self.cmds:
                if self.conflict(extra, mine) and position[extra] < position[mine]:
                    return False
        return True

    def glb(self, other: "LegacyCommandHistory") -> "LegacyCommandHistory":
        other_position = {cmd: index for index, cmd in enumerate(other.cmds)}
        kept: list[Command] = []
        kept_set: set[Command] = set()
        dropped: list[Command] = []
        for cmd in self.cmds:
            if cmd not in other._set:
                dropped.append(cmd)
                continue
            if any(self.conflict(cmd, d) for d in dropped):
                dropped.append(cmd)
                continue
            predecessors = (
                d for d in other.cmds[: other_position[cmd]] if self.conflict(d, cmd)
            )
            if any(d not in kept_set for d in predecessors):
                dropped.append(cmd)
                continue
            kept.append(cmd)
            kept_set.add(cmd)
        return LegacyCommandHistory._trusted(tuple(kept), self.conflict)

    def _constraint_edges(self, other):
        union = list(dict.fromkeys(self.cmds + other.cmds))
        pos_self = {cmd: index for index, cmd in enumerate(self.cmds)}
        pos_other = {cmd: index for index, cmd in enumerate(other.cmds)}
        edges: dict[Command, set[Command]] = {cmd: set() for cmd in union}

        def required_order(u, v, pos):
            u_in, v_in = u in pos, v in pos
            if u_in and v_in:
                return -1 if pos[u] < pos[v] else 1
            if u_in:
                return -1
            if v_in:
                return 1
            return 0

        for i, u in enumerate(union):
            for v in union[i + 1 :]:
                if not self.conflict(u, v):
                    continue
                order_a = required_order(u, v, pos_self)
                order_b = required_order(u, v, pos_other)
                if order_a and order_b and order_a != order_b:
                    return None
                order = order_a or order_b
                if order == -1:
                    edges[u].add(v)
                else:
                    edges[v].add(u)
        return edges

    def is_compatible(self, other: CStruct) -> bool:
        if not isinstance(other, LegacyCommandHistory):
            return False
        edges = self._constraint_edges(other)
        if edges is None:
            return False
        return _legacy_topological_order(edges) is not None

    def lub(self, other: "LegacyCommandHistory") -> "LegacyCommandHistory":
        edges = self._constraint_edges(other)
        order = _legacy_topological_order(edges) if edges is not None else None
        if order is None:
            raise IncompatibleError("incompatible legacy histories")
        return LegacyCommandHistory._trusted(tuple(order), self.conflict)

    def contains(self, cmd: Command) -> bool:
        return cmd in self._set

    def command_set(self) -> frozenset:
        return self._set

    def linear_extension(self) -> tuple[Command, ...]:
        return self.cmds

    def delta_after(self, prefix) -> tuple[Command, ...]:
        return tuple(cmd for cmd in self.cmds if cmd not in prefix._set)

    def __len__(self) -> int:
        return len(self.cmds)


# ---------------------------------------------------------------------------
# 1. End-to-end scaling sweep (the CI guard)
# ---------------------------------------------------------------------------


def test_e11_lattice_scaling(benchmark):
    if QUICK:
        n_grid, rates = (40, 160), (0.1,)
    else:
        n_grid, rates = (50, 100, 200), (0.1, 0.5)

    rows = run_experiment(
        benchmark,
        lambda: experiment_e11(n_grid=n_grid, conflict_rates=rates),
        "E11: commands x conflict density x engine (wall time)",
    )
    assert all(row["uncompleted"] == 0 for row in rows)
    low = min(rates)
    small, large = min(n_grid), max(n_grid)
    assert large == 4 * small  # the guard compares a 4x command spread
    for mode in ("generalized (single-coord)", "multicoordinated"):
        at = {
            row["commands"]: row
            for row in rows
            if row["mode"] == mode and row["conflict rate"] == low
        }
        ratio = at[large]["wall s"] / at[small]["wall s"]
        print(f"\n{mode}: {small}->{large} commands = {ratio:.1f}x wall time")
        # Coarse guard: 4x commands < 12x wall time.  The digraph engine
        # measures ~5-7x here; the pre-digraph implementation blows past
        # 12x (its per-event lattice work alone is O(n²)).
        assert ratio < 12.0


# ---------------------------------------------------------------------------
# 2. End-to-end speedup vs the pre-PR implementation
# ---------------------------------------------------------------------------


def test_e11_digraph_vs_legacy_speedup(benchmark):
    """>= 5x on a 200-command moderate-conflict generalized workload."""
    n_commands = 80 if QUICK else 200
    conflict_rate = 0.3

    def measure():
        digraph = _e11_run(
            "generalized (single-coord)", n_commands, conflict_rate
        )
        legacy = _e11_run(
            "generalized (single-coord)",
            n_commands,
            conflict_rate,
            bottom_factory=lambda: LegacyCommandHistory.bottom(KeyConflict()),
        )
        return digraph, legacy

    digraph, legacy = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert digraph["uncompleted"] == 0
    assert legacy["uncompleted"] == 0
    speedup = legacy["wall s"] / digraph["wall s"]
    print(
        f"\n{n_commands} commands @ conflict {conflict_rate}: "
        f"digraph {digraph['wall s']:.3f}s vs legacy {legacy['wall s']:.3f}s "
        f"= {speedup:.1f}x"
    )
    assert speedup >= 5.0


# ---------------------------------------------------------------------------
# 3. Conflict-relation calls per lattice op: O(conflicts) vs O(n²)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _CountingConflict(ConflictRelation):
    """Key conflict that counts invocations (the lattice ops' unit of work)."""

    inner: KeyConflict = field(default_factory=KeyConflict)
    calls: list = field(default_factory=lambda: [0], compare=False, hash=False)

    def conflicts(self, a: Command, b: Command) -> bool:
        self.calls[0] += 1
        return self.inner.conflicts(a, b)

    def partition(self, cmd: Command):
        return self.inner.partition(cmd)


def _grown_pair(cls, conflict, n: int, extra: int = 4):
    """Two histories sharing an n-command prefix, diverging by commuting tails."""
    shared = [Command(f"s{i:03d}", "put", f"k{i % 8}", i) for i in range(n)]
    base = cls.bottom(conflict)
    for cmd in shared:
        base = base.append(cmd)
    left = base
    right = base
    for i in range(extra):
        left = left.append(Command(f"l{i}", "put", f"xl{i}", i))
        right = right.append(Command(f"r{i}", "put", f"xr{i}", i))
    return base, left, right


def test_lattice_ops_make_no_conflict_calls_on_shared_commands():
    """Digraph leq/lub/is_compatible: conflict calls only on the suffix diff."""
    for n in (32, 128):
        conflict = _CountingConflict()
        base, left, right = _grown_pair(CommandHistory, conflict, n)

        conflict.calls[0] = 0
        assert base.leq(left) and base.leq(right)
        assert left.is_compatible(right)
        merged = left.lub(right)
        assert len(merged.command_set()) == n + 8
        digraph_calls = conflict.calls[0]

        legacy_conflict = _CountingConflict()
        lbase, lleft, lright = _grown_pair(LegacyCommandHistory, legacy_conflict, n)
        legacy_conflict.calls[0] = 0
        assert lbase.leq(lleft) and lbase.leq(lright)
        assert lleft.is_compatible(lright)
        lmerged = lleft.lub(lright)
        assert len(lmerged.command_set()) == n + 8
        legacy_calls = legacy_conflict.calls[0]

        print(
            f"\nleq+compat+lub at n={n}: digraph {digraph_calls} conflict "
            f"calls, legacy {legacy_calls}"
        )
        # Digraph: only the 4x4 cross-exclusive suffix pairs are checked,
        # independent of n.  Legacy: O(n²) pairwise re-derivation.
        assert digraph_calls <= 64
        assert legacy_calls > n * n / 2

    # And the legacy cost grows quadratically while the digraph's does not.
    measured = {}
    for n in (32, 128):
        for label, cls in (("digraph", CommandHistory), ("legacy", LegacyCommandHistory)):
            conflict = _CountingConflict()
            _, left, right = _grown_pair(cls, conflict, n)
            conflict.calls[0] = 0
            left.lub(right)
            measured[(label, n)] = conflict.calls[0]
    assert measured[("legacy", 128)] > 8 * measured[("legacy", 32)]
    assert measured[("digraph", 128)] <= measured[("digraph", 32)] + 8
