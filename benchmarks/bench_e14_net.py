"""E14 -- wall-clock throughput and latency on the real asyncio transport.

E1-E13 run on the deterministic simulator, so their "latency" is virtual
time.  E14 deploys the identical role classes on the
:class:`~repro.net.transport.NetRuntime` backend -- one runtime per node,
every message crossing a real loopback UDP (or TCP) socket through the
versioned codec -- and reports wall-clock msgs/sec and p50/p99 command
latency under three conditions: clean UDP, 5% injected loss, and a tiny
MTU that forces every frame over the TCP fallback.

Absolute numbers are hardware-dependent; the CI guard is only the
end-to-end property: every condition completes with all learners
delivering the identical order.

``E14_QUICK=1`` (the CI job) shrinks the workload.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e14

QUICK = os.environ.get("E14_QUICK", "") not in ("", "0")


def _sweep():
    if QUICK:
        return experiment_e14(n_commands=60)
    return experiment_e14()


def test_e14_real_transport(benchmark):
    rows = run_experiment(
        benchmark,
        _sweep,
        "E14: engines on real sockets (loopback UDP/TCP, wall clock)",
    )
    assert all(r["completed"] for r in rows)
    assert all(r["orders agree"] for r in rows)
    # The MTU-200 condition must actually exercise the TCP fallback.
    tcp_row = next(r for r in rows if "tcp" in r["condition"])
    assert tcp_row["tcp frames"] > 0
