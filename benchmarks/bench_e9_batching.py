"""E9 -- batching + pipelining throughput, and hot-path scaling fixes.

Two claims are measured here:

1. The batched, pipelined multi-instance engine (this PR's tentpole) beats
   the unbatched engine on commands delivered per simulation event at
   equal command counts, and a pipeline depth > 1 recovers the makespan a
   depth-1 pipeline loses under collision pressure.
2. The event-queue and learner-delta hot paths now scale linearly where
   the seed scaled quadratically: ``EventQueue.__len__`` is O(1) instead
   of a full heap scan, and the generalized learner's redundant "2b"
   handling does no conflict-relation work at all instead of the seed's
   O(n^2) lattice recomputation per event.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from math import comb

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e9
from repro.core.generalized import build_generalized
from repro.core.messages import Phase2b
from repro.cstruct.base import glb_set
from repro.cstruct.commands import Command, ConflictRelation, KeyConflict
from repro.cstruct.history import CommandHistory
from repro.sim.events import EventQueue
from repro.sim.scheduler import Simulation


def test_e9_batching_sweep(benchmark):
    rows = run_experiment(
        benchmark,
        experiment_e9,
        "E9: batch size x pipeline depth x collision pressure (jitter)",
    )
    assert all(row["unlearned"] == 0 for row in rows)
    for jitter in sorted({row["jitter"] for row in rows}):
        at = {row["engine"]: row for row in rows if row["jitter"] == jitter}
        unbatched = at["unbatched"]
        deep = at["batch 8 / depth 4"]
        # Batching with pipeline depth > 1 beats the unbatched engine on
        # commands per event (equal command counts, fewer events/messages).
        assert deep["cmds / 100 events"] > 2 * unbatched["cmds / 100 events"]
        assert deep["messages"] < unbatched["messages"] / 2
    # Under collision pressure, pipelining (depth > 1) beats a serial
    # depth-1 pipeline on makespan.
    jittered = {row["engine"]: row for row in rows if row["jitter"] > 0}
    assert jittered["batch 4 / depth 2"]["makespan"] < jittered["batch 4 / depth 1"]["makespan"]


# ---------------------------------------------------------------------------
# Micro-benchmark: EventQueue len/bool is O(1), not a heap scan
# ---------------------------------------------------------------------------


def _naive_len(queue: EventQueue) -> int:
    """The seed's O(n) ``__len__``: scan every heap entry."""
    return sum(1 for event in queue._heap if not event.cancelled)


def _time_len_calls(n_events: int, use_naive: bool, calls: int = 300) -> float:
    queue = EventQueue()
    for i in range(n_events):
        queue.push(float(i), lambda: None)
    probe = _naive_len if use_naive else len
    start = time.perf_counter()
    for _ in range(calls):
        probe(queue)
    return time.perf_counter() - start


def test_event_queue_len_scales_constant(benchmark):
    def measure():
        small, large = 1_000, 16_000
        return {
            "fixed": (_time_len_calls(small, False), _time_len_calls(large, False)),
            "naive": (_time_len_calls(small, True), _time_len_calls(large, True)),
        }

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    fixed_small, fixed_large = timings["fixed"]
    naive_small, naive_large = timings["naive"]
    print(
        f"\nlen(queue) cost, 1k -> 16k events: "
        f"fixed {fixed_small * 1e6:.0f}us -> {fixed_large * 1e6:.0f}us, "
        f"seed-style scan {naive_small * 1e6:.0f}us -> {naive_large * 1e6:.0f}us"
    )
    # 16x more events: the O(n) scan slows ~16x; the counter must not.
    # Generous bounds keep the check robust on noisy CI machines.
    assert fixed_large < fixed_small * 5
    assert naive_large > naive_small * 4


def test_event_queue_compaction_bounds_heap():
    """Cancelled events are compacted away instead of accumulating."""
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(10_000)]
    for event in events[: 9_000]:
        event.cancel()
    assert len(queue) == 1_000
    # The heap itself must have shed the cancelled majority (<= 2x live).
    assert len(queue._heap) <= 2_000


# ---------------------------------------------------------------------------
# Micro-benchmark: learner redundant-2b handling does O(1) lattice work
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _CountingConflict(ConflictRelation):
    """Key conflict that counts invocations (the learner's unit of work)."""

    inner: KeyConflict = field(default_factory=lambda: KeyConflict(frozenset({"get"})))
    calls: list = field(default_factory=lambda: [0], compare=False, hash=False)

    def conflicts(self, a: Command, b: Command) -> bool:
        self.calls[0] += 1
        return self.inner.conflicts(a, b)


def _seed_style_redundant_learn(learned, votes, needed, limit=20):
    """The seed learner's per-2b work, reproduced for comparison.

    For every learn event -- including fully redundant ones -- the seed
    enumerated quorum glbs over *all* reporting acceptors, ran
    ``is_compatible`` + ``lub`` against the learned struct (both quadratic
    in conflict checks), and recomputed ``command_set()`` differences and
    ``delta_after`` snapshots.
    """
    senders = sorted(votes)
    if comb(len(senders), needed) <= limit:
        groups = list(combinations(senders, needed))
    else:
        groups = [tuple(sorted(senders)[:needed])]
    new_learned = learned
    for group in groups:
        chosen = glb_set([votes[acc] for acc in group])
        assert new_learned.is_compatible(chosen)
        new_learned = new_learned.lub(chosen)
    if new_learned == learned:
        return ()
    return new_learned.delta_after(learned)


def _learner_with_history(n_commands: int, conflict):
    sim = Simulation(seed=1)
    cluster = build_generalized(
        sim, bottom=CommandHistory.bottom(conflict), n_coordinators=3, n_acceptors=3
    )
    learner = cluster.learners[0]
    rnd = cluster.config.schedule.make_round(0, 1, 2)
    cmds = [Command(f"c{i}", "put", f"k{i}", i) for i in range(n_commands)]
    history = CommandHistory.bottom(conflict).extend(cmds)
    acceptors = [a.pid for a in cluster.acceptors]
    for acc in acceptors:
        learner.on_phase2b(Phase2b(rnd, history, acc), acc)
    assert len(learner.learned.command_set()) == n_commands
    return learner, rnd, history, acceptors


def test_learner_redundant_2b_is_conflict_free():
    """Redundant "2b" deliveries cost zero conflict checks (seed: O(n^2)).

    Since PR 3 the digraph ``CommandHistory`` makes lattice ops themselves
    conflict-free between built histories, so the seed's O(n^2)-per-event
    cost is reproduced on the preserved legacy implementation
    (``benchmarks.bench_e11_lattice.LegacyCommandHistory``) -- the frontier
    learner must still short-circuit before any lattice op runs at all.
    """
    from benchmarks.bench_e11_lattice import LegacyCommandHistory

    measured = {}
    for n in (40, 80):
        conflict = _CountingConflict()
        learner, rnd, history, acceptors = _learner_with_history(n, conflict)

        conflict.calls[0] = 0
        for acc in acceptors:
            learner.on_phase2b(Phase2b(rnd, history, acc), acc)
        fixed_calls = conflict.calls[0]

        # The seed-style per-event recompute, on the seed's history type.
        legacy_conflict = _CountingConflict()
        cmds = [Command(f"c{i}", "put", f"k{i}", i) for i in range(n)]
        legacy = LegacyCommandHistory.bottom(legacy_conflict)
        for cmd in cmds:
            legacy = legacy.append(cmd)
        votes = {acc: legacy for acc in acceptors}
        legacy_conflict.calls[0] = 0
        _seed_style_redundant_learn(legacy, votes, needed=2)
        seed_calls = legacy_conflict.calls[0]
        measured[n] = seed_calls

        print(
            f"\nredundant 2b at n={n}: frontier learner {fixed_calls} conflict "
            f"checks, seed-style recompute {seed_calls}"
        )
        assert fixed_calls == 0
        assert seed_calls > n  # superlinear lattice work per event

    # And the seed-style work grows quadratically with history size.
    assert measured[80] > 3 * measured[40]
