"""E16 -- sharded multi-group consensus: near-linear throughput scaling.

One engine group totally orders every command through one coordinator
pipeline, so aggregate throughput is flat in cluster resources.  The
``repro.shard`` layer runs N independent groups (role classes unchanged)
behind a key-hashed router, with a generalized merge group deciding the
order of cross-shard commands that owning groups splice at barriers.
Claims pinned here (CI guards, quick mode ``E16_QUICK=1``):

1. **Near-linear scaling**: on a disjoint-key workload with constant
   per-group load, aggregate throughput at 4 groups is >= 3x the
   1-group baseline (>= 1.8x in quick mode's smaller workload).
2. **Zero divergence**: every run ends with all replicas of every group
   agreeing on every key's command order -- including the cross-shard
   rows, where the order is spliced from the merge group at barriers.
3. **Graceful cross-shard degradation**: at 10% cross-shard commands
   the cluster still completes with throughput above 1/4 of the
   all-disjoint rate (the cross path costs a merge decision plus a
   barrier stall, not a collapse).

Every test dumps its rows into ``BENCH_e16.json`` (cwd) for offline
before/after comparison.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import run_experiment
from repro.bench.experiments import experiment_e16, experiment_e16_cross

QUICK = os.environ.get("E16_QUICK", "") not in ("", "0")

BENCH_JSON = "BENCH_e16.json"

#: Scaling floor at 4 groups: the full workload sits well above 3x; the
#: quick workload is small enough that fixed costs bite, so CI guards a
#: looser but still super-batching floor.
MIN_SPEEDUP = 1.8 if QUICK else 3.0


def _dump(section: str, rows: list[dict]) -> None:
    data: dict = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as fh:
            data = json.load(fh)
    data[section] = [
        {
            key: value if isinstance(value, (int, float, bool, str)) else str(value)
            for key, value in row.items()
        }
        for row in rows
    ]
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2)


def _scaling_sweep():
    if QUICK:
        return experiment_e16(
            groups_grid=(1, 2, 4), clients_per_group=2, cmds_per_client=15
        )
    return experiment_e16()


def _cross_sweep():
    if QUICK:
        return experiment_e16_cross(
            fractions=(0.0, 0.10), clients_per_group=2, cmds_per_client=15
        )
    return experiment_e16_cross()


def test_e16_throughput_scaling(benchmark):
    rows = run_experiment(
        benchmark,
        _scaling_sweep,
        "E16a: aggregate throughput vs group count (disjoint keys)",
    )
    _dump("scaling", rows)
    assert all(r["completed"] for r in rows)
    assert all(r["divergent keys"] == 0 for r in rows)

    by_groups = {r["groups"]: r for r in rows}
    assert by_groups[4]["speedup vs 1 group"] >= MIN_SPEEDUP, (
        f"4-group speedup {by_groups[4]['speedup vs 1 group']} below "
        f"{MIN_SPEEDUP}x: {rows}"
    )
    # Scaling is monotone in the group count.
    speedups = [r["speedup vs 1 group"] for r in sorted(rows, key=lambda r: r["groups"])]
    assert speedups == sorted(speedups), f"non-monotone scaling: {rows}"


def test_e16_cross_shard_fraction(benchmark):
    rows = run_experiment(
        benchmark,
        _cross_sweep,
        "E16b: throughput vs cross-shard fraction at 4 groups",
    )
    _dump("cross", rows)
    assert all(r["completed"] for r in rows)
    # The correctness invariant under mixing: per-key order agreement
    # across all replicas of all groups, including barrier splices.
    assert all(r["divergent keys"] == 0 for r in rows)

    baseline = next(r for r in rows if r["cross"] == 0)
    mixed = [r for r in rows if r["cross"] > 0]
    assert all(r["barriers"] == r["cross"] for r in mixed)
    # Graceful degradation, not collapse: even at the 10% mix the
    # aggregate rate stays above a quarter of the disjoint-key rate.
    for row in mixed:
        assert row["throughput / ktime"] >= baseline["throughput / ktime"] / 4, (
            f"cross fraction {row['cross %']}% collapsed throughput: {row}"
        )
