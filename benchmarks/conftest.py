"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` file regenerates one of the paper's quantitative
claims (see DESIGN.md section 4 and EXPERIMENTS.md).  The experiments are
deterministic simulations, so every benchmark runs its experiment exactly
once (``pedantic(rounds=1)``) and prints the regenerated table; the
pytest-benchmark timing then reports the harness cost of the experiment.
"""

from __future__ import annotations

from repro.bench.tables import format_table


def run_experiment(benchmark, fn, title: str):
    """Execute *fn* once under the benchmark, print and return its rows."""
    rows = benchmark.pedantic(fn, rounds=1, iterations=1)
    print()
    print(format_table(rows, title=title))
    return rows
