"""Setuptools entry point.

Kept as plain setup.py so that ``pip install -e .`` works in offline
environments lacking the ``wheel`` package (legacy editable installs).
"""

from setuptools import find_packages, setup

setup(
    name="repro-multicoordinated-paxos",
    version="0.6.0",
    description=(
        "Reproduction of Multicoordinated Paxos (Camargos, Schmidt & "
        "Pedone, PODC'07)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro-lint = repro.lint.cli:main",
        ],
    },
)
