"""Offline trace checker: each invariant catches its planted violation.

The checker is only trustworthy if it is demonstrably *red* on bad
traces -- every test here plants one specific violation in an otherwise
clean trace and asserts the checker reports exactly that kind (plus a
minimal counterexample window for order divergence).  The JSON fixtures
under ``tests/checker_fixtures/`` feed the CI must-be-red self-test.
"""

import json
import os

import pytest

from repro.core.checker import (
    UNRECORDED,
    TraceEvent,
    TraceRecorder,
    check_trace,
    main,
    trace_from_json,
    trace_to_json,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "checker_fixtures")


def ev(kind, site="s0", cid="", t=0.0, key="", op="", arg=None,
       result=UNRECORDED, seq=()):
    return TraceEvent(t=t, site=site, kind=kind, cid=cid, op=op, key=key,
                      arg=arg, result=result, seq=seq)


def propose(cid, op="put", key="k", arg=None, t=0.0):
    return ev("propose", site="client", cid=cid, op=op, key=key, arg=arg, t=t)


def deliver(site, cid, op="put", key="k", arg=None, result=UNRECORDED, t=1.0):
    return ev("deliver", site=site, cid=cid, op=op, key=key, arg=arg,
              result=result, t=t)


def kinds(report):
    return sorted({v.kind for v in report.violations})


# -- clean traces -------------------------------------------------------------


def test_empty_trace_is_ok():
    assert check_trace([]).ok


def test_agreeing_sites_are_ok():
    events = [propose("a"), propose("b")]
    for site in ("s0", "s1"):
        events += [deliver(site, "a", arg=1), deliver(site, "b", arg=2)]
    report = check_trace(events)
    assert report.ok
    assert report.sites == 2 and report.keys == 1


def test_prefix_is_compatible_with_longer_sequence():
    events = [propose(c) for c in "abc"]
    events += [deliver("s0", c, arg=i) for i, c in enumerate("abc")]
    events += [deliver("s1", c, arg=i) for i, c in enumerate("ab")]  # lagging
    assert check_trace(events).ok


def test_reads_commute_with_reads():
    """Two sites interleave reads differently between the same writes: OK."""
    events = [propose("w1"), propose("r1", op="get"), propose("r2", op="get")]
    events += [
        deliver("s0", "w1", arg=5),
        deliver("s0", "r1", op="get"),
        deliver("s0", "r2", op="get"),
        deliver("s1", "w1", arg=5),
        deliver("s1", "r2", op="get"),
        deliver("s1", "r1", op="get"),
    ]
    assert check_trace(events).ok


# -- per-key order ------------------------------------------------------------


def test_order_divergence_is_caught_with_window():
    events = [propose(c) for c in "abcd"]
    events += [deliver("s0", c, arg=0) for c in "abcd"]
    events += [deliver("s1", c, arg=0) for c in "abdc"]  # swapped tail
    report = check_trace(events)
    assert kinds(report) == ["order-divergence"]
    (violation,) = report.violations
    assert "'k'" in violation.detail
    assert violation.window  # minimal counterexample window present
    assert any("position 2" in line for line in violation.window)


def test_divergence_across_keys_is_per_key():
    events = [propose("a", key="x"), propose("b", key="y")]
    events += [deliver("s0", "a", key="x"), deliver("s0", "b", key="y")]
    events += [deliver("s1", "b", key="y"), deliver("s1", "a", key="x")]
    assert check_trace(events).ok  # different keys never conflict


def test_read_anchor_disagreement_is_caught():
    events = [propose("w1"), propose("w2"), propose("r", op="get")]
    events += [
        deliver("s0", "w1", arg=1),
        deliver("s0", "r", op="get"),   # r after 1 write
        deliver("s0", "w2", arg=2),
        deliver("s1", "w1", arg=1),
        deliver("s1", "w2", arg=2),
        deliver("s1", "r", op="get"),   # r after 2 writes
    ]
    report = check_trace(events)
    assert kinds(report) == ["read-anchor"]


# -- nontriviality ------------------------------------------------------------


def test_ghost_delivery_is_caught():
    events = [propose("a"), deliver("s0", "a"), deliver("s0", "ghost")]
    report = check_trace(events)
    assert kinds(report) == ["nontriviality"]
    assert "ghost" in report.violations[0].detail


def test_trace_without_proposes_skips_nontriviality():
    # Role-only traces (no client instrumentation) still get order checks.
    events = [deliver("s0", "a"), deliver("s1", "a")]
    assert check_trace(events).ok


# -- results ------------------------------------------------------------------


def test_result_divergence_between_sites_is_caught():
    events = [propose("a", op="inc")]
    events += [
        deliver("s0", "a", op="inc", result=1),
        deliver("s1", "a", op="inc", result=2),
    ]
    report = check_trace(events)
    assert "result-divergence" in kinds(report)


def test_result_mismatch_against_witness_replay_is_caught():
    events = [propose("a", arg=5), propose("r", op="get")]
    events += [
        deliver("s0", "a", arg=5, result=5),
        deliver("s0", "r", op="get", result=99),  # replay says 5
    ]
    report = check_trace(events)
    assert kinds(report) == ["result-mismatch"]
    assert "99" in report.violations[0].detail


def test_cas_results_are_replayed():
    events = [
        propose("w", arg=1),
        propose("c1", op="cas", arg=(1, 2)),
        propose("c2", op="cas", arg=(1, 3)),
    ]
    events += [
        deliver("s0", "w", arg=1, result=1),
        deliver("s0", "c1", op="cas", arg=(1, 2), result=True),
        deliver("s0", "c2", op="cas", arg=(1, 3), result=False),
    ]
    assert check_trace(events).ok
    # Flip the second CAS result: the replay must notice.
    events[-1] = deliver("s0", "c2", op="cas", arg=(1, 3), result=True)
    assert kinds(check_trace(events)) == ["result-mismatch"]


# -- epochs: crash replays and checkpoint adoptions ---------------------------


def test_consistent_replay_after_crash_is_ok():
    events = [propose("a"), propose("b")]
    events += [deliver("s0", "a"), deliver("s0", "b")]
    # Replay from scratch (re-delivery of "a" opens a new epoch).
    events += [deliver("s0", "a"), deliver("s0", "b")]
    assert check_trace(events).ok


def test_regressed_replay_after_crash_is_caught():
    events = [propose("a"), propose("b")]
    events += [deliver("s0", "a"), deliver("s0", "b")]
    events += [deliver("s1", "a"), deliver("s1", "b")]
    # s0 comes back with the opposite order: decision regression.
    events += [deliver("s0", "b"), deliver("s0", "a")]
    report = check_trace(events)
    assert kinds(report) == ["order-divergence"]


def test_adoption_matching_peers_is_ok():
    events = [propose("a"), propose("b"), propose("c")]
    events += [deliver("s0", c) for c in "abc"]
    events += [
        ev("adopt", site="s1", seq=(("a", "put", "k", None), ("b", "put", "k", None))),
        deliver("s1", "c"),
    ]
    assert check_trace(events).ok


def test_adoption_divergent_from_peers_is_caught():
    events = [propose("a"), propose("b")]
    events += [deliver("s0", "a"), deliver("s0", "b")]
    events += [
        ev("adopt", site="s1", seq=(("b", "put", "k", None), ("a", "put", "k", None))),
    ]
    report = check_trace(events)
    assert kinds(report) == ["order-divergence"]


# -- real-time order ----------------------------------------------------------


def test_real_time_inversion_is_caught():
    events = [
        ev("invoke", site="client", cid="a", op="put", key="k", t=0.0),
        ev("complete", site="client", cid="a", t=1.0),   # a done at t=1
        ev("invoke", site="client", cid="b", op="put", key="k", t=5.0),
        ev("complete", site="client", cid="b", t=6.0),
        deliver("s0", "b", t=7.0),
        deliver("s0", "a", t=7.0),  # order b < a inverts real time
    ]
    report = check_trace(events)
    assert "real-time" in kinds(report)


def test_concurrent_commands_may_order_either_way():
    events = [
        ev("invoke", site="client", cid="a", op="put", key="k", t=0.0),
        ev("invoke", site="client", cid="b", op="put", key="k", t=0.0),
        ev("complete", site="client", cid="a", t=9.0),
        ev("complete", site="client", cid="b", t=9.0),
        deliver("s0", "b", t=5.0),
        deliver("s0", "a", t=5.0),
    ]
    assert check_trace(events).ok


# -- serialization + CLI ------------------------------------------------------


def test_json_round_trip_preserves_events():
    events = [
        propose("a", arg=(1, 2)),
        deliver("s0", "a", arg=(1, 2), result=(1, 2)),
        ev("adopt", site="s0", seq=(("a", "put", "k", [1, 2]),)),
    ]
    assert check_trace(events).ok
    back = trace_from_json(trace_to_json(events))
    assert check_trace(back).ok
    assert len(back) == len(events)


def test_recorder_stamps_sim_clock():
    class FakeSim:
        clock = 4.5

    rec = TraceRecorder(FakeSim())
    rec.note_propose(type("C", (), {"cid": "a", "op": "put", "key": "k", "arg": 1})())
    assert rec.events[0].t == 4.5


def test_cli_green_on_clean_fixture(capsys):
    assert main([os.path.join(FIXTURES, "clean_trace.json")]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_red_on_divergent_fixture(capsys):
    assert main([os.path.join(FIXTURES, "divergent_trace.json")]) == 1
    out = capsys.readouterr().out
    assert "order-divergence" in out


def test_fixture_traces_match_their_labels():
    with open(os.path.join(FIXTURES, "divergent_trace.json")) as fh:
        divergent = trace_from_json(fh.read())
    report = check_trace(divergent)
    assert not report.ok
    assert "order-divergence" in kinds(report)
    with open(os.path.join(FIXTURES, "clean_trace.json")) as fh:
        clean = trace_from_json(fh.read())
    assert check_trace(clean).ok


def test_cli_rejects_missing_file():
    with pytest.raises(OSError):
        main([os.path.join(FIXTURES, "no_such_trace.json")])


def test_render_mentions_counts():
    events = [propose("a"), deliver("s0", "a")]
    text = check_trace(events).render()
    assert "1 sites" in text or "1 site" in text or "sites" in text
    assert json.loads(trace_to_json(events))  # sanity: serializable
