"""Workload generation."""

import pytest

from repro.bench.workload import Workload, WorkloadConfig
from repro.bench.tables import format_table
from repro.smr.machine import kv_conflict


def test_generates_requested_count():
    workload = Workload.generate(WorkloadConfig(n_commands=25))
    assert len(workload.commands) == 25
    assert len(workload.arrival_times) == 25


def test_uniform_arrivals_are_periodic():
    config = WorkloadConfig(n_commands=4, period=3.0, start=10.0)
    workload = Workload.generate(config)
    times = [workload.arrival_times[c] for c in workload.commands]
    assert times == [13.0, 16.0, 19.0, 22.0]


def test_burst_arrivals_group_commands():
    config = WorkloadConfig(n_commands=6, arrival="burst", burst_size=2, period=5.0)
    workload = Workload.generate(config)
    times = [workload.arrival_times[c] for c in workload.commands]
    assert times[0] == times[1]
    assert times[2] == times[3] and times[2] == times[0] + 5.0


def test_poisson_arrivals_monotone():
    config = WorkloadConfig(n_commands=50, arrival="poisson", period=2.0, seed=3)
    workload = Workload.generate(config)
    times = [workload.arrival_times[c] for c in workload.commands]
    assert times == sorted(times)


def test_conflict_rate_zero_gives_commuting_commands():
    workload = Workload.generate(WorkloadConfig(n_commands=30, conflict_rate=0.0))
    rel = kv_conflict()
    for i, a in enumerate(workload.commands):
        for b in workload.commands[i + 1 :]:
            assert not rel(a, b)


def test_conflict_rate_one_makes_writes_conflict():
    workload = Workload.generate(WorkloadConfig(n_commands=10, conflict_rate=1.0))
    rel = kv_conflict()
    writes = [c for c in workload.commands if c.op == "put"]
    assert len(writes) == 10
    for i, a in enumerate(writes):
        for b in writes[i + 1 :]:
            assert rel(a, b)


def test_read_fraction_generates_gets():
    workload = Workload.generate(
        WorkloadConfig(n_commands=100, read_fraction=1.0, conflict_rate=1.0)
    )
    assert all(c.op == "get" for c in workload.commands)
    rel = kv_conflict()
    assert not rel(workload.commands[0], workload.commands[1])


def test_same_seed_reproducible():
    a = Workload.generate(WorkloadConfig(n_commands=20, conflict_rate=0.5, seed=7))
    b = Workload.generate(WorkloadConfig(n_commands=20, conflict_rate=0.5, seed=7))
    assert a.commands == b.commands
    assert a.arrival_times == b.arrival_times


def test_span_is_last_arrival():
    workload = Workload.generate(WorkloadConfig(n_commands=3, period=2.0, start=1.0))
    assert workload.span == 7.0


def test_config_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(conflict_rate=1.5)
    with pytest.raises(ValueError):
        WorkloadConfig(read_fraction=-0.1)
    with pytest.raises(ValueError):
        WorkloadConfig(arrival="bogus")
    with pytest.raises(ValueError):
        WorkloadConfig(arrival="burst", burst_size=0)


def test_format_table_alignment():
    rows = [{"name": "x", "value": 1.25}, {"name": "longer", "value": 2}]
    rendered = format_table(rows, title="T")
    lines = rendered.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_format_table_empty():
    assert "(no rows)" in format_table([])
