"""Property-based tests for command histories (hypothesis).

The direct glb/lub/leq implementations in :mod:`repro.cstruct.history` come
with correctness arguments (see the module docstring); these properties
execute those arguments on randomized inputs:

* ``⊑`` is a partial order and ``h ⊑ h • σ``;
* glb is the greatest lower bound; lub the least upper bound;
* the trusted fast-path constructions (append/glb/lub) agree with full
  re-canonicalization;
* compatibility is symmetric and equivalent to the existence of an upper
  bound we can exhibit.
"""

from hypothesis import given, settings, strategies as st

from repro.cstruct.commands import AlwaysConflict, Command, KeyConflict, NeverConflict
from repro.cstruct.history import CommandHistory, _canonical

RELATIONS = st.sampled_from(
    [KeyConflict(), AlwaysConflict(), NeverConflict()]
)

# A small command pool over two keys with reads and writes, so the conflict
# graph under KeyConflict is non-trivial.
POOL = [
    Command(cid=str(i), op=op, key=key)
    for i, (op, key) in enumerate(
        [("put", "x"), ("put", "x"), ("get", "x"), ("put", "y"), ("get", "y"), ("put", "y")]
    )
]

cmd_lists = st.lists(st.sampled_from(POOL), max_size=6)


def build(rel, cmds):
    return CommandHistory.bottom(rel).extend(cmds)


@given(RELATIONS, cmd_lists)
def test_extend_is_monotone(rel, cmds):
    h = CommandHistory.bottom(rel)
    for c in cmds:
        g = h.append(c)
        assert h.leq(g)
        h = g


@given(RELATIONS, cmd_lists, cmd_lists)
def test_leq_iff_extension_exists(rel, base, extra):
    h = build(rel, base)
    g = h.extend(extra)
    assert h.leq(g)


@given(RELATIONS, cmd_lists, cmd_lists)
def test_leq_antisymmetry(rel, xs, ys):
    h, g = build(rel, xs), build(rel, ys)
    if h.leq(g) and g.leq(h):
        assert h == g


@given(RELATIONS, cmd_lists, cmd_lists, cmd_lists)
def test_leq_transitivity(rel, xs, ys, zs):
    h, g, k = build(rel, xs), build(rel, ys), build(rel, zs)
    if h.leq(g) and g.leq(k):
        assert h.leq(k)


@given(RELATIONS, cmd_lists)
def test_append_fast_path_matches_recanonicalization(rel, cmds):
    h = CommandHistory.bottom(rel)
    for c in cmds:
        h = h.append(c)
        assert h.cmds == _canonical(h.cmds, rel)


@given(RELATIONS, cmd_lists, cmd_lists)
def test_glb_is_greatest_lower_bound(rel, xs, ys):
    h, g = build(rel, xs), build(rel, ys)
    m = h.glb(g)
    assert m.cmds == _canonical(m.cmds, rel)  # fast path stays canonical
    assert m.leq(h) and m.leq(g)
    # Greatest: every common prefix reachable by truncating either side is ⊑ m.
    for i in range(len(h.cmds) + 1):
        candidate = build(rel, h.cmds[:i])
        if candidate.leq(h) and candidate.leq(g):
            assert candidate.leq(m)


@given(RELATIONS, cmd_lists, cmd_lists)
def test_glb_symmetry(rel, xs, ys):
    h, g = build(rel, xs), build(rel, ys)
    assert h.glb(g) == g.glb(h)


@given(RELATIONS, cmd_lists, cmd_lists)
def test_compatibility_symmetry(rel, xs, ys):
    h, g = build(rel, xs), build(rel, ys)
    assert h.is_compatible(g) == g.is_compatible(h)


@given(RELATIONS, cmd_lists, cmd_lists)
def test_lub_is_least_upper_bound(rel, xs, ys):
    h, g = build(rel, xs), build(rel, ys)
    if not h.is_compatible(g):
        return
    j = h.lub(g)
    assert j.cmds == _canonical(j.cmds, rel)  # fast path stays canonical
    assert h.leq(j) and g.leq(j)
    assert j.command_set() == h.command_set() | g.command_set()


@given(RELATIONS, cmd_lists, cmd_lists, cmd_lists)
def test_lub_below_any_upper_bound(rel, xs, ys, zs):
    h, g = build(rel, xs), build(rel, ys)
    upper = build(rel, zs)
    if h.leq(upper) and g.leq(upper):
        assert h.is_compatible(g)
        assert h.lub(g).leq(upper)


@given(RELATIONS, cmd_lists, cmd_lists)
def test_common_extension_implies_compatibility(rel, xs, extra):
    h = build(rel, xs)
    g = h.extend(extra)
    assert h.is_compatible(g)
    assert h.lub(g) == g


@given(RELATIONS, cmd_lists, cmd_lists)
def test_glb_lub_absorption(rel, xs, ys):
    h, g = build(rel, xs), build(rel, ys)
    m = h.glb(g)
    assert m.lub(h) == h
    assert h.glb(h.lub(m)) == h


@settings(max_examples=60)
@given(RELATIONS, cmd_lists, cmd_lists)
def test_delta_after_replays(rel, xs, extra):
    prefix = build(rel, xs)
    full = prefix.extend(extra)
    assert prefix.extend(full.delta_after(prefix)) == full


@given(RELATIONS, st.permutations(POOL))
def test_canonical_form_is_representation_independent(rel, perm):
    """Permutations that preserve conflicting-pair order canonicalize equally."""
    reference = build(rel, POOL)
    candidate = build(rel, perm)
    same_pair_order = all(
        (perm.index(a) < perm.index(b)) == (POOL.index(a) < POOL.index(b))
        for i, a in enumerate(POOL)
        for b in POOL[i + 1 :]
        if rel(a, b)
    )
    if same_pair_order:
        assert candidate == reference
        assert candidate.cmds == reference.cmds
