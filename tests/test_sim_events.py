"""Event queue: ordering, cancellation, determinism."""

import pytest

from repro.sim.events import EventQueue


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while (event := queue.pop()) is not None:
        event.action()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    queue = EventQueue()
    fired = []
    for name in "abcde":
        queue.push(1.0, lambda n=name: fired.append(n))
    while (event := queue.pop()) is not None:
        event.action()
    assert fired == list("abcde")


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    keep = queue.push(1.0, lambda: None)
    cancel = queue.push(0.5, lambda: None)
    cancel.cancel()
    assert queue.pop() is keep
    assert queue.pop() is None


def test_len_ignores_cancelled_events():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    event = queue.push(2.0, lambda: None)
    assert len(queue) == 2
    event.cancel()
    assert len(queue) == 1


def test_bool_reflects_pending_events():
    queue = EventQueue()
    assert not queue
    event = queue.push(1.0, lambda: None)
    assert queue
    event.cancel()
    assert not queue


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.peek_time() == 1.0
    first.cancel()
    assert queue.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(-1.0, lambda: None)


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert queue.pop() is None
    assert len(queue) == 0
    assert not queue


def test_len_constant_under_cancellation_churn():
    """The live counter tracks push/cancel/pop exactly."""
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(100)]
    assert len(queue) == 100
    for event in events[::2]:
        event.cancel()
    assert len(queue) == 50
    # Double-cancel must not double-decrement.
    events[0].cancel()
    assert len(queue) == 50
    popped = 0
    while queue.pop() is not None:
        popped += 1
    assert popped == 50
    assert len(queue) == 0 and not queue


def test_cancel_after_pop_does_not_corrupt_count():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.pop() is first
    first.cancel()  # e.g. a timer cancelled after it fired
    assert len(queue) == 1
    assert queue.pop() is not None
    assert len(queue) == 0


def test_compaction_removes_cancelled_events():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(256)]
    for event in events[:200]:
        event.cancel()
    # Cancelled events exceeded half the heap: the heap was compacted and
    # stays within a small constant factor of the live count.
    assert len(queue) == 56
    assert len(queue._heap) <= 2 * len(queue) + 1
    # Compaction preserves ordering and the remaining events.
    times = []
    while (event := queue.pop()) is not None:
        times.append(event.time)
    assert times == [float(i) for i in range(200, 256)]


def test_small_heaps_are_not_compacted():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(10)]
    for event in events[:9]:
        event.cancel()
    assert len(queue) == 1
    assert len(queue._heap) == 10  # below the compaction floor; popped lazily
    assert queue.pop() is events[9]


def test_cancel_after_clear_is_harmless():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.clear()
    event.cancel()
    assert len(queue) == 0
    queue.push(2.0, lambda: None)
    assert len(queue) == 1
