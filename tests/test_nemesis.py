"""Nemesis primitives: seeded determinism, teardown, fault behavior.

The two satellite contracts:

* **Determinism** -- a nemesis with a fixed seed produces the identical
  fault schedule (its ``log``) on identical deployments, and a different
  seed produces a different one; episode randomness never consumes the
  simulation's own RNG stream.
* **Teardown** -- healing (scheduled or global) removes every drop
  filter and latency shaper the episodes installed and recovers every
  process a crash storm downed.
"""

from repro.chaos import mixed_soak, split_brain
from repro.sim.nemesis import (
    AsymmetricPartition,
    ClusterView,
    CrashStorm,
    Episode,
    FlappingLinks,
    IsolateLeader,
    LatencySkew,
    Nemesis,
    Scenario,
    SymmetricPartition,
)
from repro.sim.network import NetworkConfig
from repro.sim.process import Process
from repro.sim.scheduler import Simulation
from repro.smr.instances import LivenessConfig, RetransmitConfig, build_smr
from tests.conftest import cmd


class Node(Process):
    def __init__(self, pid, sim):
        super().__init__(pid, sim)
        self.received = []

    def on_probe(self, msg, src):
        self.received.append((src, self.now))


from dataclasses import dataclass  # noqa: E402


@dataclass(frozen=True)
class Probe:
    n: int = 0


def mesh(sim, n=4):
    return [Node(f"n{i}", sim) for i in range(n)]


def view_of(nodes) -> ClusterView:
    pids = tuple(node.pid for node in nodes)
    return ClusterView(acceptors=pids[: len(pids) // 2], learners=pids[len(pids) // 2 :])


def ping_all(nodes):
    for a in nodes:
        for b in nodes:
            if a is not b:
                a.send(b.pid, Probe())


# -- determinism --------------------------------------------------------------


def soak_log(seed, nemesis_seed):
    sim = Simulation(seed=seed, network=NetworkConfig(latency=1.0, jitter=0.5))
    cluster = build_smr(sim, n_learners=2)
    cluster.start_round(cluster.config.schedule.make_round(coord=0, count=2, rtype=2))
    view = ClusterView.of(cluster)
    nem = Nemesis(sim, view, seed=nemesis_seed)
    horizon = nem.apply(mixed_soak(view, seed=nemesis_seed, episodes=10))
    for i in range(20):
        cluster.propose(cmd(f"c{i}"), delay=1.0 + 2.0 * i)
    sim.run_until(lambda: sim.clock >= horizon, timeout=horizon + 1)
    nem.heal()
    return tuple(nem.log)


def test_same_seed_same_schedule():
    assert soak_log(3, 11) == soak_log(3, 11)


def test_different_seed_different_schedule():
    assert soak_log(3, 11) != soak_log(3, 12)


def test_mixed_soak_is_pure_in_view_and_seed():
    view = ClusterView(acceptors=("a0", "a1"), learners=("l0",))
    assert mixed_soak(view, 7) == mixed_soak(view, 7)
    assert mixed_soak(view, 7) != mixed_soak(view, 8)


def test_episode_randomness_does_not_touch_sim_rng():
    def run(with_nemesis):
        sim = Simulation(seed=5, network=NetworkConfig(latency=1.0, jitter=1.0))
        nodes = mesh(sim)
        bystander = Node("bystander", sim)  # faulted; exchanges no traffic
        if with_nemesis:
            nem = Nemesis(sim, view_of(nodes), seed=1)
            # Faults that *draw* randomness but only touch the bystander,
            # so any jitter difference must come from rng perturbation.
            nem.apply(
                Scenario(
                    "idle",
                    (
                        Episode(0.5, 2.0, CrashStorm(victims=(bystander.pid,), stagger=0.1)),
                        Episode(0.5, 2.0, LatencySkew(targets=(bystander.pid,))),
                    ),
                )
            )
        ping_all(nodes)
        sim.run_until(lambda: False, timeout=10.0)
        return [(n.pid, n.received) for n in nodes]

    assert run(False) == run(True)


# -- teardown -----------------------------------------------------------------


def test_heal_removes_all_hooks_and_recovers_crashes():
    sim = Simulation(seed=2, network=NetworkConfig(latency=1.0))
    nodes = mesh(sim, 6)
    view = view_of(nodes)
    nem = Nemesis(sim, view, seed=4)
    nem.apply(
        Scenario(
            "storm",
            (
                Episode(0.1, 0.0, SymmetricPartition(("n0",), ("n1",))),
                Episode(0.2, 0.0, FlappingLinks(pairs=(("n2", "n3"),))),
                Episode(0.3, 0.0, LatencySkew(targets=("n4",))),
                Episode(0.4, 0.0, CrashStorm(victims=("n5",), stagger=0.0)),
            ),
        )
    )
    sim.run_until(lambda: sim.clock >= 1.0, timeout=5.0)
    assert nem.open_episodes == 4
    assert sim.network._drop_filters and sim.network._latency_shapers
    assert not sim.alive("n5")
    nem.heal()
    assert nem.open_episodes == 0
    assert not sim.network._drop_filters
    assert not sim.network._latency_shapers
    assert sim.alive("n5")


def test_scheduled_heal_tears_down_without_explicit_heal():
    sim = Simulation(seed=2, network=NetworkConfig(latency=1.0))
    nodes = mesh(sim)
    nem = Nemesis(sim, view_of(nodes), seed=4)
    horizon = nem.apply(
        Scenario("brief", (Episode(0.5, 1.0, SymmetricPartition(("n0",), ("n1",))),))
    )
    sim.run_until(lambda: sim.clock >= horizon + 0.1, timeout=10.0)
    assert nem.open_episodes == 0
    assert not sim.network._drop_filters
    nem.heal()  # idempotent on an already-healed nemesis


def test_crash_storm_does_not_recover_scripted_crashes():
    """The storm only recovers processes *it* crashed."""
    sim = Simulation(seed=2)
    nodes = mesh(sim)
    nem = Nemesis(sim, view_of(nodes), seed=4)
    sim.crash("n0")  # scripted, pre-existing
    nem.apply(Scenario("s", (Episode(0.1, 0.0, CrashStorm(victims=("n0", "n1"), stagger=0.0)),)))
    sim.run_until(lambda: sim.clock >= 0.5, timeout=5.0)
    assert not sim.alive("n0") and not sim.alive("n1")
    nem.heal()
    assert sim.alive("n1")
    assert not sim.alive("n0")  # was already down when the storm struck


# -- fault behavior -----------------------------------------------------------


def test_asymmetric_partition_is_one_way():
    sim = Simulation(seed=1, network=NetworkConfig(latency=1.0))
    nodes = mesh(sim, 2)
    nem = Nemesis(sim, view_of(nodes), seed=0)
    nem.apply(Scenario("a", (Episode(0.0, 0.0, AsymmetricPartition(("n0",), ("n1",))),)))
    sim.run_until(lambda: sim.clock >= 0.5, timeout=5.0)
    nodes[0].send("n1", Probe())
    nodes[1].send("n0", Probe())
    sim.run_until(lambda: sim.clock >= 3.0, timeout=5.0)
    assert nodes[1].received == []  # n0 -> n1 dead
    assert len(nodes[0].received) == 1  # n1 -> n0 alive


def test_symmetric_partition_cuts_both_ways():
    sim = Simulation(seed=1, network=NetworkConfig(latency=1.0))
    nodes = mesh(sim, 3)
    nem = Nemesis(sim, view_of(nodes), seed=0)
    nem.apply(Scenario("s", (Episode(0.0, 0.0, SymmetricPartition(("n0",), ("n1",))),)))
    sim.run_until(lambda: sim.clock >= 0.5, timeout=5.0)
    ping_all(nodes)
    sim.run_until(lambda: sim.clock >= 3.0, timeout=5.0)
    assert [src for src, _ in nodes[0].received] == ["n2"]
    assert [src for src, _ in nodes[1].received] == ["n2"]
    assert sorted(src for src, _ in nodes[2].received) == ["n0", "n1"]


def test_isolate_leader_resolves_current_leader():
    sim = Simulation(seed=6, network=NetworkConfig(latency=1.0))
    cluster = build_smr(sim, n_learners=2)
    cluster.start_round(cluster.config.schedule.make_round(coord=0, count=2, rtype=2))
    view = ClusterView.of(cluster)
    nem = Nemesis(sim, view, seed=0)
    nem.apply(Scenario("iso", (Episode(1.0, 0.0, IsolateLeader()),)))
    sim.run_until(lambda: sim.clock >= 2.0, timeout=5.0)
    leader = view.leaders()[0]
    assert any(f"isolate leaders ['{leader}']" in line for _, line in nem.log)
    nem.heal()


def test_latency_skew_slows_targeted_links_only():
    sim = Simulation(seed=1, network=NetworkConfig(latency=1.0))
    nodes = mesh(sim, 3)
    nem = Nemesis(sim, view_of(nodes), seed=0)
    nem.apply(
        Scenario(
            "slow",
            (Episode(0.0, 0.0, LatencySkew(targets=("n0",), factor=5.0, extra=0.0)),),
        )
    )
    sim.run_until(lambda: sim.clock >= 0.5, timeout=5.0)
    t0 = sim.clock
    nodes[1].send("n0", Probe())
    nodes[1].send("n2", Probe())
    sim.run_until(lambda: sim.clock >= t0 + 10.0, timeout=20.0)
    ((_, at_n0),) = nodes[0].received
    ((_, at_n2),) = nodes[2].received
    assert at_n0 - t0 == 5.0  # 1.0 * factor
    assert at_n2 - t0 == 1.0  # untargeted link unshaped
    nem.heal()


def test_flapping_links_alternate_and_stop_on_heal():
    sim = Simulation(seed=1, network=NetworkConfig(latency=0.1))
    nodes = mesh(sim, 2)
    nem = Nemesis(sim, view_of(nodes), seed=9)
    nem.apply(
        Scenario(
            "flap",
            (Episode(0.0, 0.0, FlappingLinks(pairs=(("n0", "n1"),), mean_period=2.0)),),
        )
    )
    for i in range(100):
        sim.schedule(0.2 * i, lambda: nodes[0].send("n1", Probe()))
    sim.run_until(lambda: sim.clock >= 20.0, timeout=30.0)
    flips = [line for _, line in nem.log if "flap " in line]
    assert len(flips) >= 2  # both down and up transitions happened
    assert 0 < len(nodes[1].received) < 100  # some dropped, some delivered
    nem.heal()
    healed_at = len(nem.log)
    sim.run_until(lambda: sim.clock >= 40.0, timeout=60.0)
    assert len(nem.log) == healed_at  # no flip logs after teardown
    assert not sim.network._drop_filters


def test_engine_converges_after_soak_heal():
    """End to end: an SMR cluster delivers everything once the nemesis heals."""
    sim = Simulation(seed=13, network=NetworkConfig(latency=1.0, jitter=0.5))
    cluster = build_smr(
        sim,
        n_learners=2,
        retransmit=RetransmitConfig(retry_interval=4.0),
        liveness=LivenessConfig(
            heartbeat_period=2.0, suspect_timeout=8.0,
            check_period=2.0, stuck_timeout=10.0,
        ),
    )
    cluster.start_round(cluster.config.schedule.make_round(coord=0, count=2, rtype=2))
    view = ClusterView.of(cluster)
    nem = Nemesis(sim, view, seed=21)
    horizon = nem.apply(split_brain(view, at=2.0, duration=15.0))
    cmds = [cmd(f"c{i}") for i in range(10)]
    for i, command in enumerate(cmds):
        cluster.propose(command, delay=1.0 + 1.0 * i)
    sim.run_until(lambda: sim.clock >= horizon, timeout=horizon + 1)
    nem.heal()
    assert sim.run_until(lambda: cluster.everyone_delivered(cmds), timeout=2_000.0)
    orders = cluster.delivery_orders()
    assert len(set(orders)) == 1  # identical total order at every learner
