"""The consensus c-struct set (first command wins)."""

import pytest

from repro.cstruct.base import IncompatibleError
from repro.cstruct.value import ValueStruct
from tests.conftest import cmd

A, B = cmd("a"), cmd("b")
BOT = ValueStruct.bottom()


def test_bottom_is_empty():
    assert BOT.is_bottom()
    assert BOT.command_set() == frozenset()


def test_append_to_bottom_decides():
    assert ValueStruct.bottom().append(A).value == A


def test_append_to_decided_is_absorbed():
    assert BOT.append(A).append(B).value == A


def test_leq_bottom_below_everything():
    assert BOT.leq(BOT)
    assert BOT.leq(ValueStruct(A))
    assert not ValueStruct(A).leq(BOT)


def test_leq_reflexive_on_values():
    assert ValueStruct(A).leq(ValueStruct(A))
    assert not ValueStruct(A).leq(ValueStruct(B))


def test_glb():
    assert ValueStruct(A).glb(ValueStruct(A)) == ValueStruct(A)
    assert ValueStruct(A).glb(ValueStruct(B)) == BOT
    assert ValueStruct(A).glb(BOT) == BOT


def test_lub_compatible():
    assert BOT.lub(ValueStruct(A)) == ValueStruct(A)
    assert ValueStruct(A).lub(BOT) == ValueStruct(A)
    assert ValueStruct(A).lub(ValueStruct(A)) == ValueStruct(A)


def test_lub_incompatible_raises():
    with pytest.raises(IncompatibleError):
        ValueStruct(A).lub(ValueStruct(B))


def test_compatibility():
    assert BOT.is_compatible(ValueStruct(A))
    assert ValueStruct(A).is_compatible(ValueStruct(A))
    assert not ValueStruct(A).is_compatible(ValueStruct(B))


def test_contains():
    assert ValueStruct(A).contains(A)
    assert not ValueStruct(A).contains(B)
    assert not BOT.contains(A)


def test_extend_takes_first():
    assert BOT.extend([A, B]).value == A


def test_str():
    assert str(BOT) == "⊥"
    assert "a" in str(ValueStruct(A))
