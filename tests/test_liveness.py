"""Failure detector and leader election (Section 4.3)."""

from repro.core.liveness import FailureDetector, Heartbeat, LivenessConfig
from repro.protocols.leader import expected_leader
from repro.sim.process import Process
from repro.sim.scheduler import Simulation


class Node(Process):
    def __init__(self, pid, sim, index, peers, config):
        super().__init__(pid, sim)
        self.fd = FailureDetector(self, index, peers, config)
        self.fd.start()

    def on_heartbeat(self, msg, src):
        self.fd.on_heartbeat(msg)

    def on_recover(self):
        self.fd.start()


def deploy(n=3, config=None, seed=1):
    sim = Simulation(seed=seed)
    config = config or LivenessConfig(heartbeat_period=2.0, suspect_timeout=6.0)
    peers = [(i, f"n{i}") for i in range(n)]
    nodes = [Node(f"n{i}", sim, i, peers, config) for i in range(n)]
    return sim, nodes


def test_initially_everyone_trusted():
    sim, nodes = deploy()
    sim.run(until=10)
    assert nodes[2].fd.trusted() == [0, 1, 2]
    assert nodes[2].fd.leader() == 0
    assert nodes[0].fd.is_leader()


def test_crashed_node_gets_suspected():
    sim, nodes = deploy()
    sim.run(until=5)
    nodes[0].crash()
    sim.run(until=30)
    assert nodes[1].fd.suspects(0)
    assert nodes[1].fd.leader() == 1
    assert nodes[1].fd.is_leader()
    assert not nodes[2].fd.is_leader()


def test_never_suspects_self():
    sim, nodes = deploy()
    sim.run(until=30)
    assert not nodes[0].fd.suspects(0)


def test_recovered_node_trusted_again():
    sim, nodes = deploy()
    sim.run(until=5)
    nodes[0].crash()
    sim.run(until=30)
    assert nodes[1].fd.leader() == 1
    nodes[0].recover()
    sim.run(until=60)
    assert nodes[1].fd.leader() == 0


def test_cascading_failures_walk_down_the_index_order():
    sim, nodes = deploy(n=4)
    sim.run(until=5)
    nodes[0].crash()
    nodes[1].crash()
    sim.run(until=40)
    assert nodes[2].fd.is_leader()
    assert nodes[3].fd.leader() == 2


def test_partition_causes_mutual_suspicion():
    """The detector is unreliable: partitions look like crashes."""
    sim, nodes = deploy()
    sim.run(until=5)
    sim.network.partition({"n0"}, {"n1", "n2"})
    sim.run(until=40)
    assert nodes[1].fd.suspects(0)
    assert nodes[0].fd.is_leader()  # both sides elect a leader...
    assert nodes[1].fd.is_leader()  # ...which is safe, only liveness suffers
    sim.network.heal()
    sim.run(until=80)
    assert not nodes[1].fd.suspects(0)
    assert not nodes[1].fd.is_leader()


def test_expected_leader_helper():
    assert expected_leader([0, 1, 2], crashed=[]) == 0
    assert expected_leader([0, 1, 2], crashed=[0]) == 1
    assert expected_leader([0, 1, 2], crashed=[0, 1, 2]) is None
