"""Metrics: latency tracking, message counting, load fractions."""

from repro.sim.metrics import Metrics


def test_latency_propose_then_learn():
    metrics = Metrics()
    metrics.record_propose("c1", 10.0)
    metrics.record_learn("c1", "l0", 13.0)
    assert metrics.latency_of("c1") == 3.0


def test_first_learn_wins():
    metrics = Metrics()
    metrics.record_propose("c1", 0.0)
    metrics.record_learn("c1", "l0", 5.0)
    metrics.record_learn("c1", "l1", 3.0)
    metrics.record_learn("c1", "l0", 9.0)
    assert metrics.latency_of("c1") == 3.0


def test_record_propose_idempotent():
    metrics = Metrics()
    metrics.record_propose("c1", 1.0)
    metrics.record_propose("c1", 9.0)  # retransmission keeps the original
    metrics.record_learn("c1", "l0", 4.0)
    assert metrics.latency_of("c1") == 3.0


def test_unlearned_has_no_latency():
    metrics = Metrics()
    metrics.record_propose("c1", 1.0)
    assert metrics.latency_of("c1") is None
    assert metrics.unlearned_commands() == ["c1"]


def test_learned_commands_sorted_by_learn_time():
    metrics = Metrics()
    for cid, t_prop, t_learn in [("a", 0, 9), ("b", 1, 4), ("c", 2, 6)]:
        metrics.record_propose(cid, t_prop)
        metrics.record_learn(cid, "l", t_learn)
    assert metrics.learned_commands() == ["b", "c", "a"]


def test_mean_latency():
    metrics = Metrics()
    for cid, lat in [("a", 2.0), ("b", 4.0)]:
        metrics.record_propose(cid, 0.0)
        metrics.record_learn(cid, "l", lat)
    assert metrics.mean_latency() == 3.0


def test_mean_latency_empty_is_none():
    assert Metrics().mean_latency() is None


def test_message_counters():
    metrics = Metrics()

    class Ping:
        pass

    metrics.on_send("a", "b", Ping())
    metrics.on_send("a", "c", Ping())
    metrics.on_deliver("b", Ping())
    metrics.on_drop()
    assert metrics.total_messages == 2
    assert metrics.messages_sent["a"] == 2
    assert metrics.messages_by_type["Ping"] == 2
    assert metrics.messages_received["b"] == 1
    assert metrics.messages_dropped == 1


def test_load_fraction():
    metrics = Metrics()
    for _ in range(3):
        metrics.count_command_handled("coord0")
    assert metrics.load_fraction("coord0", 4) == 0.75
    assert metrics.load_fraction("coord1", 4) == 0.0
    assert metrics.load_fraction("coord0", 0) == 0.0
