"""Axioms CS0-CS4 executed on every c-struct implementation."""

from hypothesis import given, settings, strategies as st

from repro.cstruct.base import check_axioms, glb_set, is_compatible_set, lub_set
from repro.cstruct.commands import AlwaysConflict, Command, KeyConflict, NeverConflict
from repro.cstruct.cset import CommandSet
from repro.cstruct.history import CommandHistory
from repro.cstruct.seq import CommandSequence
from repro.cstruct.value import ValueStruct
from tests.conftest import cmd

COMMANDS = [cmd("a", "put", "x"), cmd("b", "put", "x"), cmd("c", "put", "y")]


def test_axioms_value_struct():
    bottom = ValueStruct.bottom()
    samples = [bottom.extend(seq) for seq in ([], [COMMANDS[0]], [COMMANDS[1]], COMMANDS)]
    check_axioms(bottom, COMMANDS, samples)


def test_axioms_command_set():
    bottom = CommandSet.bottom()
    samples = [
        bottom,
        bottom.append(COMMANDS[0]),
        bottom.extend(COMMANDS[:2]),
        bottom.extend(COMMANDS),
    ]
    check_axioms(bottom, COMMANDS, samples)


def test_axioms_command_sequence():
    bottom = CommandSequence.bottom()
    samples = [
        bottom,
        bottom.append(COMMANDS[0]),
        bottom.extend(COMMANDS[:2]),
        bottom.extend(COMMANDS),
    ]
    check_axioms(bottom, COMMANDS, samples)


def test_axioms_command_history_key_conflict():
    rel = KeyConflict()
    bottom = CommandHistory.bottom(rel)
    samples = [
        bottom,
        bottom.append(COMMANDS[0]),
        bottom.extend([COMMANDS[0], COMMANDS[2]]),
        bottom.extend([COMMANDS[1], COMMANDS[0]]),
        bottom.extend(COMMANDS),
    ]
    check_axioms(bottom, COMMANDS, samples)


POOL = [
    Command(cid=str(i), op=op, key=key)
    for i, (op, key) in enumerate(
        [("put", "x"), ("put", "x"), ("get", "x"), ("put", "y")]
    )
]


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from([KeyConflict(), AlwaysConflict(), NeverConflict()]),
    st.lists(st.lists(st.sampled_from(POOL), max_size=4), min_size=1, max_size=4),
)
def test_axioms_random_histories(rel, seqs):
    bottom = CommandHistory.bottom(rel)
    samples = [bottom.extend(seq) for seq in seqs]
    check_axioms(bottom, POOL, samples)


# -- set-level helpers --------------------------------------------------------


def test_glb_set_folds():
    rel = KeyConflict()
    a = CommandHistory.of(rel, COMMANDS[0], COMMANDS[2])
    b = CommandHistory.of(rel, COMMANDS[0])
    c = CommandHistory.of(rel, COMMANDS[0], COMMANDS[1])
    assert glb_set([a, b, c]) == b


def test_lub_set_folds():
    sets = [CommandSet.of(COMMANDS[0]), CommandSet.of(COMMANDS[1])]
    assert lub_set(sets) == CommandSet.of(COMMANDS[0], COMMANDS[1])


def test_glb_lub_set_empty_rejected():
    import pytest

    with pytest.raises(ValueError):
        glb_set([])
    with pytest.raises(ValueError):
        lub_set([])


def test_is_compatible_set():
    rel = KeyConflict()
    a = CommandHistory.of(rel, COMMANDS[0])
    b = CommandHistory.of(rel, COMMANDS[2])
    conflicting = CommandHistory.of(rel, COMMANDS[1])
    assert is_compatible_set([a, b])
    assert not is_compatible_set([a, b, conflicting])
