"""Equivalence of the paper's recursive operators with the direct ones.

Section 3.3.1 gives recursive sequence-level definitions of ``Prefix``
(glb), ``AreCompatible`` and ``⊔``.  We implement them verbatim in
:mod:`repro.cstruct.history_ops` and check they agree -- as *histories*,
i.e. up to commuting-command reordering -- with the direct implementations
of :mod:`repro.cstruct.history`.
"""

from hypothesis import given, strategies as st

from repro.cstruct import history_ops as ops
from repro.cstruct.commands import AlwaysConflict, Command, KeyConflict, NeverConflict
from repro.cstruct.history import CommandHistory
from tests.conftest import cmd

REL = KeyConflict()
A = cmd("a", "put", "x")
B = cmd("b", "put", "x")
C = cmd("c", "put", "y")
D = cmd("d", "get", "x")

POOL = [
    Command(cid=str(i), op=op, key=key)
    for i, (op, key) in enumerate(
        [("put", "x"), ("put", "x"), ("get", "x"), ("put", "y"), ("get", "y")]
    )
]

RELATIONS = st.sampled_from([KeyConflict(), AlwaysConflict(), NeverConflict()])
cmd_lists = st.lists(st.sampled_from(POOL), max_size=5)


def as_history(seq, rel=REL):
    return CommandHistory.of(rel, *seq)


# -- unit checks of the verbatim operators -------------------------------------


def test_descendants_direct_conflict():
    assert ops.descendants(A, (B, C), REL) == (B,)


def test_descendants_transitive():
    # D conflicts A; B conflicts D (same key writes/read) -> both descendants.
    assert ops.descendants(A, (D, B, C), REL) == (D, B)


def test_prefix_identical():
    assert ops.prefix((A, C), (A, C), REL) == (A, C)


def test_prefix_diverging_conflicts():
    assert ops.prefix((A, B), (B, A), REL) == ()


def test_prefix_keeps_commuting_tail():
    # C commutes with everything here and appears in both.
    assert set(ops.prefix((A, C), (C, B), REL)) == {C}


def test_are_compatible_simple_cases():
    assert ops.are_compatible((A,), (A, B), REL)
    assert not ops.are_compatible((A, B), (B, A), REL)
    assert ops.are_compatible((A, C), (C,), REL)
    assert not ops.are_compatible((A,), (B,), REL)


def test_lub_verbatim_merges():
    merged = ops.lub((A, C), (A, B))
    assert set(merged) == {A, B, C}


def test_glb_many_folds():
    assert ops.glb_many([(A, B), (A, D), (A,)], REL) == (A,)


def test_lub_many_folds():
    merged = ops.lub_many([(A,), (A, B), (A, C)])
    assert set(merged) == {A, B, C}


def test_glb_many_empty_rejected():
    import pytest

    with pytest.raises(ValueError):
        ops.glb_many([], REL)
    with pytest.raises(ValueError):
        ops.lub_many([])


# -- equivalence properties -----------------------------------------------------


@given(RELATIONS, cmd_lists, cmd_lists)
def test_prefix_equals_direct_glb(rel, xs, ys):
    h = CommandHistory.of(rel, *xs)
    g = CommandHistory.of(rel, *ys)
    paper = CommandHistory.of(rel, *ops.prefix(h.cmds, g.cmds, rel))
    assert paper == h.glb(g)


@given(RELATIONS, cmd_lists, cmd_lists)
def test_are_compatible_equals_direct(rel, xs, ys):
    h = CommandHistory.of(rel, *xs)
    g = CommandHistory.of(rel, *ys)
    assert ops.are_compatible(h.cmds, g.cmds, rel) == h.is_compatible(g)


@given(RELATIONS, cmd_lists, cmd_lists)
def test_lub_equals_direct_when_compatible(rel, xs, ys):
    h = CommandHistory.of(rel, *xs)
    g = CommandHistory.of(rel, *ys)
    if not h.is_compatible(g):
        return
    paper = CommandHistory.of(rel, *ops.lub(h.cmds, g.cmds))
    assert paper == h.lub(g)
