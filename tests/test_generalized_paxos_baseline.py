"""Generalized Paxos baseline (Section 2.3): the single-coordinated config."""

import pytest

from repro.core.rounds import RoundKind
from repro.cstruct.commands import KeyConflict
from repro.cstruct.history import CommandHistory
from repro.protocols.generalized import (
    build_generalized_paxos,
    generalized_paxos_schedule,
)
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from tests.conftest import cmd

REL = KeyConflict()
A = cmd("a", "put", "x", 1)
B = cmd("b", "put", "x", 2)
C = cmd("c", "put", "y", 3)


def deploy(seed=1, jitter=0.0, **kwargs):
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter))
    cluster = build_generalized_paxos(
        sim, bottom=CommandHistory.bottom(REL), **kwargs
    )
    return sim, cluster


def test_schedule_has_no_multicoordinated_rounds():
    schedule = generalized_paxos_schedule(3)
    for rtype in range(6):
        rnd = schedule.make_round(coord=0, count=1, rtype=rtype)
        assert schedule.kind(rnd) is not RoundKind.MULTI


def test_classic_rounds_are_single_coordinated():
    schedule = generalized_paxos_schedule(3)
    rnd = schedule.make_round(coord=1, count=1, rtype=2)
    assert schedule.coord_quorums(rnd) == (frozenset({1}),)


def test_fast_round_learns_commuting_commands_in_two_steps():
    sim, cluster = deploy()
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 0))
    sim.run(until=10)
    for i, command in enumerate([A, C]):
        cluster.propose(command, delay=1.0 + 0.1 * i)
    assert cluster.run_until_learned([A, C], timeout=200)
    assert sim.metrics.latency_of(A) == 2.0
    assert sim.metrics.latency_of(C) == 2.0


def test_commuting_commands_survive_reordering_without_collision():
    """The motivation of Generalized Paxos: commutable commands never collide."""
    sim, cluster = deploy(seed=4, jitter=1.0, n_proposers=2)
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 0))
    sim.run(until=10)
    commuting = [cmd(str(i), "put", f"k{i}", i) for i in range(6)]
    for i, command in enumerate(commuting):
        cluster.propose(command, delay=1.0 + i)
    assert cluster.run_until_learned(commuting, timeout=1000)
    assert sum(a.collisions_detected for a in cluster.acceptors) == 0


def test_classic_round_serializes_conflicts():
    sim, cluster = deploy()
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 1))
    for i, command in enumerate([A, B]):
        cluster.propose(command, delay=5.0 + 4 * i)
    assert cluster.run_until_learned([A, B], timeout=300)
    histories = cluster.learned_structs()
    orders = [
        [c for c in h.linear_extension() if c in (A, B)] for h in histories
    ]
    assert all(order == orders[0] for order in orders)


def test_single_coordinator_crash_blocks_classic_round():
    """Contrast with the multicoordinated engine: no redundancy here."""
    sim, cluster = deploy()
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 1))
    sim.run(until=10)
    cluster.coordinators[0].crash()
    cluster.propose(A, delay=1.0)
    assert not cluster.run_until_learned([A], timeout=100)
