"""Batching + pipelining layer of the multi-instance SMR engine."""

import pytest

from repro.core.liveness import LivenessConfig
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.instances import Batch, BatchingConfig, build_smr
from repro.smr.machine import KVStore
from repro.smr.replica import OrderedReplica
from tests.conftest import cmd


def deploy(batching, seed=1, jitter=0.0, liveness=None, **kwargs):
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter))
    cluster = build_smr(sim, liveness=liveness, batching=batching, **kwargs)
    rnd = cluster.config.schedule.make_round(coord=0, count=1, rtype=2)
    cluster.start_round(rnd)
    return sim, cluster


def make_cmds(n):
    return [cmd(f"b{i}", "put", f"k{i}", i) for i in range(n)]


def test_batching_config_validation():
    with pytest.raises(ValueError):
        BatchingConfig(max_batch=0)
    with pytest.raises(ValueError):
        BatchingConfig(flush_interval=0.0)
    with pytest.raises(ValueError):
        BatchingConfig(pipeline_depth=0)
    with pytest.raises(ValueError):
        BatchingConfig(retry_lane=0)
    with pytest.raises(ValueError):
        BatchingConfig(adaptive=True, ewma_alpha=0.0)
    with pytest.raises(ValueError):
        BatchingConfig(adaptive=True, ewma_alpha=1.5)
    with pytest.raises(ValueError):
        BatchingConfig(max_batch=4, min_batch=5)
    with pytest.raises(ValueError):
        BatchingConfig(min_batch=0)


def test_size_triggered_flush_packs_one_instance():
    sim, cluster = deploy(BatchingConfig(max_batch=3, flush_interval=50.0))
    sim.run(until=10)
    commands = make_cmds(3)
    for command in commands:
        cluster.propose(command, delay=1.0, proposer=0)
    assert cluster.run_until_delivered(commands, timeout=500)
    # All three commands rode one batch in one instance: the flush happened
    # at proposal time (size trigger), not at the long timeout.
    proposer = cluster.proposers[0]
    assert proposer.batches_sent == 1
    decided = cluster.learners[0].decided
    assert decided[0] == Batch(tuple(commands))
    assert cluster.learners[0].delivered == commands


def test_timeout_flush_ships_partial_batch():
    batching = BatchingConfig(max_batch=8, flush_interval=4.0)
    sim, cluster = deploy(batching)
    sim.run(until=10)  # phase 1 completes; the queue drains early
    start = sim.clock
    commands = make_cmds(2)  # fewer than max_batch: only the timer flushes
    for command in commands:
        cluster.propose(command, delay=1.0, proposer=0)
    sim.run(until=start + 2)  # past the proposals, before the flush deadline
    assert cluster.proposers[0].batches_sent == 0  # still buffering
    assert cluster.run_until_delivered(commands, timeout=500)
    assert cluster.proposers[0].batches_sent == 1
    # Delivery waited for the flush timer: latency >= flush_interval.
    assert all(sim.metrics.latency_of(c) >= batching.flush_interval for c in commands)


def test_size_and_timeout_triggers_mix():
    """A full batch flushes immediately; the remainder flushes on time."""
    batching = BatchingConfig(max_batch=4, flush_interval=5.0)
    sim, cluster = deploy(batching)
    sim.run(until=10)
    commands = make_cmds(6)  # one full batch of 4 + partial batch of 2
    for command in commands:
        cluster.propose(command, delay=1.0, proposer=0)
    assert cluster.run_until_delivered(commands, timeout=500)
    proposer = cluster.proposers[0]
    assert proposer.batches_sent == 2
    learner = cluster.learners[0]
    assert learner.decided[0] == Batch(tuple(commands[:4]))
    assert learner.decided[1] == Batch(tuple(commands[4:]))
    assert learner.delivered == commands
    full = [sim.metrics.latency_of(c) for c in commands[:4]]
    partial = [sim.metrics.latency_of(c) for c in commands[4:]]
    assert max(full) < batching.flush_interval
    assert min(partial) >= batching.flush_interval


def test_explicit_flush_ships_buffered_commands():
    sim, cluster = deploy(BatchingConfig(max_batch=100, flush_interval=1000.0))
    sim.run(until=10)
    commands = make_cmds(3)
    for command in commands:
        cluster.propose(command, delay=1.0, proposer=0)
    sim.run(until=12)
    assert cluster.proposers[0].batches_sent == 0
    cluster.flush()
    assert cluster.run_until_delivered(commands, timeout=500)


def test_pipeline_window_bounds_inflight_instances():
    depth = 2
    sim, cluster = deploy(
        BatchingConfig(max_batch=1, flush_interval=1.0, pipeline_depth=depth)
    )
    max_inflight = 0

    def watch(_sim):
        nonlocal max_inflight
        for coordinator in cluster.coordinators:
            max_inflight = max(max_inflight, len(coordinator.assigned))

    sim.add_invariant_check(watch)
    sim.run(until=10)
    commands = make_cmds(10)
    for command in commands:
        cluster.propose(command, delay=1.0, proposer=0)  # all at once
    assert cluster.run_until_delivered(commands, timeout=2000)
    assert max_inflight == depth  # full window used, never exceeded
    assert cluster.learners[0].delivered == commands


def test_batched_engine_uses_fewer_messages_and_events():
    commands = make_cmds(24)

    def run(batching):
        sim, cluster = deploy(batching, seed=3)
        sim.run(until=10)
        for i, command in enumerate(commands):
            cluster.propose(command, delay=1.0 + 0.5 * i)
        assert cluster.run_until_delivered(commands, timeout=5000)
        return sim.metrics.total_messages, sim.events_processed

    unbatched_msgs, unbatched_events = run(None)
    batched_msgs, batched_events = run(BatchingConfig(max_batch=8, flush_interval=2.0))
    assert batched_msgs < unbatched_msgs / 2
    assert batched_events < unbatched_events / 2


def test_batched_delivery_order_identical_across_learners():
    sim, cluster = deploy(
        BatchingConfig(max_batch=3, flush_interval=2.0, pipeline_depth=2),
        n_learners=3,
        n_proposers=2,
        jitter=0.6,
        seed=9,
        liveness=LivenessConfig(),
    )
    commands = make_cmds(12)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + (i % 3))
    assert cluster.run_until_delivered(commands, timeout=5000)
    orders = [learner.delivered for learner in cluster.learners]
    assert all(order == orders[0] for order in orders)
    assert sorted(orders[0], key=str) == sorted(commands, key=str)


def test_batched_replica_execution_matches_unbatched_state():
    operations = [
        cmd("1", "put", "x", 1),
        cmd("2", "inc", "x", 5),
        cmd("3", "cas", "x", (6, 7)),
        cmd("4", "inc", "y"),
        cmd("5", "put", "z", "v"),
    ]

    def final_state(batching):
        sim, cluster = deploy(batching, seed=2)
        replica = OrderedReplica(cluster.learners[0], KVStore())
        for i, operation in enumerate(operations):
            cluster.propose(operation, delay=5.0 + i, proposer=0)
        assert cluster.run_until_delivered(operations, timeout=1000)
        return replica.machine.snapshot()

    assert final_state(None) == final_state(
        BatchingConfig(max_batch=2, flush_interval=3.0)
    )


def test_proposer_recovery_reships_buffered_batch():
    """A crash with commands buffered must not lose them (stable journal)."""
    sim, cluster = deploy(BatchingConfig(max_batch=10, flush_interval=100.0))
    sim.run(until=10)
    commands = make_cmds(3)
    for command in commands:
        cluster.propose(command, delay=1.0, proposer=0)
    start = sim.clock
    sim.run(until=start + 2)  # buffered, crash before the flush deadline
    proposer = cluster.proposers[0]
    proposer.crash()
    assert proposer._buffer == []  # volatile buffer lost with the crash
    proposer.recover()  # journal re-ships the batch immediately
    assert proposer.batches_sent == 1
    assert cluster.run_until_delivered(commands, timeout=500)
    assert cluster.learners[0].delivered == commands


def test_batch_survives_coordinator_crash():
    sim, cluster = deploy(
        BatchingConfig(max_batch=4, flush_interval=2.0, pipeline_depth=2),
        liveness=LivenessConfig(),
        seed=3,
    )
    commands = make_cmds(8)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 2 * i)
    sim.schedule(15, lambda: cluster.coordinators[0].crash())
    assert cluster.run_until_delivered(commands, timeout=5000)


# -- retransmission-aware flow control (the reserved retry lane) --------------


def test_retry_lane_reserved_slots():
    """A full fresh pipeline must not block retries, and vice versa.

    Phase 1 completes on the live network first; then the acceptors are
    silenced so nothing decides -- assignments stay in flight and the
    window accounting is directly observable.
    """
    from repro.smr.instances import IPropose

    sim, cluster = deploy(
        BatchingConfig(max_batch=1, flush_interval=1.0, pipeline_depth=2, retry_lane=1)
    )
    sim.run(until=10)  # phase 1 completes on the live network
    coordinator = cluster.coordinators[0]
    assert coordinator.phase1_done
    # Now cut the acceptors off so no instance can decide.
    sim.network.add_drop_filter(lambda src, dst, msg: str(dst).startswith("acc"))
    fresh = make_cmds(5)
    for i, command in enumerate(fresh):
        coordinator.on_ipropose(IPropose(command), "prop0")
    sim.run(until=sim.clock + 1)
    # The fresh window (2) is full; the surplus waits in the fresh queue.
    assert len(coordinator.assigned) == 2
    assert len(coordinator.pending) == 3
    # A retry still gets through: it is served from the reserved lane.
    retry_cmd = cmd("r0", "put", "retry", 0)
    coordinator.on_ipropose(IPropose(retry_cmd, retry=True), "prop0")
    assert len(coordinator.assigned) == 3
    assert len(coordinator._retry_inflight) == 1
    assert not coordinator.pending_retry
    # The retry lane is bounded too: a second retry waits.
    retry_cmd2 = cmd("r1", "put", "retry", 1)
    coordinator.on_ipropose(IPropose(retry_cmd2, retry=True), "prop0")
    assert len(coordinator.assigned) == 3
    assert [p.cmd for p in coordinator.pending_retry] == [retry_cmd2]


def test_retry_lane_served_before_fresh_backlog():
    """Draining order: recovery traffic first, then fresh proposals."""
    from repro.smr.instances import IPropose

    sim, cluster = deploy(
        BatchingConfig(max_batch=1, flush_interval=1.0, pipeline_depth=1, retry_lane=1)
    )
    sim.run(until=10)
    coordinator = cluster.coordinators[0]
    sim.network.add_drop_filter(lambda src, dst, msg: str(dst).startswith("acc"))
    blocker = cmd("f0", "put", "x", 0)
    coordinator.on_ipropose(IPropose(blocker), "prop0")  # fills the window
    backlog = cmd("f1", "put", "x", 1)
    coordinator.on_ipropose(IPropose(backlog), "prop0")  # queued fresh
    retried = cmd("r0", "put", "x", 2)
    coordinator.on_ipropose(IPropose(retried, retry=True), "prop0")
    # The retry was assigned ahead of the queued fresh command.
    assert retried in coordinator._assigned_cmds
    assert backlog not in coordinator._assigned_cmds


def test_loss_recovery_throughput_with_retry_lane():
    """End to end under loss: retries and fresh traffic both complete."""
    from repro.smr.instances import RetransmitConfig

    sim = Simulation(
        seed=5, network=NetworkConfig(drop_rate=0.25), max_events=4_000_000
    )
    cluster = build_smr(
        sim,
        batching=BatchingConfig(
            max_batch=2, flush_interval=1.5, pipeline_depth=2, retry_lane=2
        ),
        retransmit=RetransmitConfig(retry_interval=4.0),
        liveness=LivenessConfig(),
    )
    cluster.start_round(cluster.config.schedule.make_round(coord=0, count=1, rtype=2))
    commands = make_cmds(24)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + i)
    assert cluster.run_until_delivered(commands, timeout=20_000)
    orders = [tuple(learner.delivered) for learner in cluster.learners]
    assert all(order == orders[0] for order in orders)


# -- adaptive batch sizing (EWMA of the arrival rate) -------------------------


def test_adaptive_target_tracks_arrival_rate():
    sim, cluster = deploy(
        BatchingConfig(
            max_batch=8, flush_interval=4.0, adaptive=True, ewma_alpha=1.0
        ),
        n_proposers=1,
    )
    sim.run(until=10)
    proposer = cluster.proposers[0]
    assert proposer.target_batch() == 8  # no observations yet: the cap
    # Sparse arrivals (period 2.0 vs flush window 4.0): ~2 per window.
    commands = make_cmds(4)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=1.0 + 2.0 * i, proposer=0)
    assert cluster.run_until_delivered(commands, timeout=1000)
    assert proposer.target_batch() == 2
    # Dense arrivals drive the estimate back up to the cap.
    dense = [cmd(f"dense{i}", "put", f"d{i}", i) for i in range(12)]
    for i, command in enumerate(dense):
        cluster.propose(command, delay=1.0 + 0.25 * i, proposer=0)
    assert cluster.run_until_delivered(dense, timeout=1000)
    assert proposer.target_batch() == 8


def test_adaptive_sparse_traffic_ships_smaller_batches():
    """Sparse arrivals must not wait out the full static cap."""

    def run(adaptive):
        sim, cluster = deploy(
            BatchingConfig(
                max_batch=8,
                flush_interval=6.0,
                adaptive=adaptive,
                ewma_alpha=0.5,
            ),
            n_proposers=1,
            seed=4,
        )
        commands = make_cmds(12)
        for i, command in enumerate(commands):
            cluster.propose(command, delay=5.0 + 2.0 * i, proposer=0)
        assert cluster.run_until_delivered(commands, timeout=2000)
        latencies = [sim.metrics.latency_of(c) for c in commands]
        return cluster.proposers[0].batches_sent, max(latencies)

    static_batches, static_worst = run(False)
    adaptive_batches, adaptive_worst = run(True)
    # Adaptive sizing ships more, smaller batches at lower worst latency:
    # the static engine waits flush_interval (or 8 commands) per batch.
    assert adaptive_batches > static_batches
    assert adaptive_worst < static_worst


def test_adaptive_dense_traffic_still_fills_batches():
    sim, cluster = deploy(
        BatchingConfig(
            max_batch=4, flush_interval=5.0, adaptive=True, ewma_alpha=0.5
        ),
        n_proposers=1,
        seed=2,
    )
    commands = make_cmds(16)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 0.1 * i, proposer=0)
    assert cluster.run_until_delivered(commands, timeout=2000)
    # Dense traffic converges to full batches: ~16/4 flushes, not 16.
    assert cluster.proposers[0].batches_sent <= 6
