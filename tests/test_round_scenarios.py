"""Section 4.5's deployment scenarios as round-schedule configurations.

"Clustered systems": ranges of fast RTypes so fast rounds follow fast
rounds (uncoordinated recovery chains); "conflict-prone": every round
single-coordinated.  The RType interpretation lives in
:class:`repro.core.rounds.RoundTypePolicy`, exactly as Section 4.5
suggests reinterpreting the RType field.
"""

import pytest

from repro.core.generalized import build_generalized
from repro.core.liveness import LivenessConfig
from repro.core.rounds import RoundKind, RoundSchedule, RoundTypePolicy
from repro.cstruct.history import CommandHistory
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.machine import kv_conflict
from tests.conftest import cmd


def clustered_schedule(n_coordinators=3) -> RoundSchedule:
    """RTypes 0..4 all fast; 5+ single-coordinated; recovery stays fast."""
    policy = RoundTypePolicy(fast_rtypes=frozenset(range(5)), multi_rtypes=frozenset())
    return RoundSchedule(range(n_coordinators), policy=policy, recovery_rtype=1)


def conflict_prone_schedule(n_coordinators=3) -> RoundSchedule:
    """Everything single-coordinated (no fast, no multi)."""
    policy = RoundTypePolicy(fast_rtypes=frozenset(), multi_rtypes=frozenset())
    return RoundSchedule(range(n_coordinators), policy=policy, recovery_rtype=7)


def test_clustered_policy_maps_rtype_range_to_fast():
    schedule = clustered_schedule()
    for rtype in range(5):
        assert schedule.kind(schedule.make_round(0, 1, rtype)) is RoundKind.FAST
    assert schedule.kind(schedule.make_round(0, 1, 5)) is RoundKind.SINGLE


def test_conflict_prone_policy_has_no_decentralized_rounds():
    schedule = conflict_prone_schedule()
    for rtype in range(8):
        assert schedule.kind(schedule.make_round(0, 1, rtype)) is RoundKind.SINGLE


def test_fast_recovery_rtype_keeps_rounds_fast():
    """Section 4.5: NextRound can stay fast for uncoordinated recovery."""
    policy = RoundTypePolicy(fast_rtypes=frozenset(range(5)), multi_rtypes=frozenset())
    schedule = RoundSchedule(range(3), policy=policy)  # no recovery override
    rnd = schedule.make_round(0, 1, 2)
    assert schedule.is_fast(schedule.next_round(rnd))


def test_clustered_deployment_stays_fast_without_conflicts():
    """Spontaneous ordering: fast rounds never need recovery."""
    sim = Simulation(seed=3)  # zero jitter = spontaneous order
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_coordinators=3,
        n_acceptors=4,
        schedule=clustered_schedule(),
        liveness=LivenessConfig(),
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 0))
    cmds = [cmd(f"c{i}", "put", "hot", i) for i in range(8)]
    for i, command in enumerate(cmds):
        cluster.propose(command, delay=5.0 + 3 * i)
    assert cluster.run_until_learned(cmds, timeout=2000)
    assert all(sim.metrics.latency_of(c) == 2.0 for c in cmds)
    assert sum(c.rounds_started for c in cluster.coordinators) == 1


def test_conflict_prone_deployment_serializes_everything():
    sim = Simulation(seed=4, network=NetworkConfig(jitter=1.0))
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_coordinators=3,
        n_acceptors=3,
        n_proposers=2,
        schedule=conflict_prone_schedule(),
        liveness=LivenessConfig(),
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 1))
    cmds = [cmd(f"c{i}", "put", "hot", i) for i in range(6)]
    for i, command in enumerate(cmds):
        cluster.propose(command, delay=5.0 + 2 * (i // 2))
    assert cluster.run_until_learned(cmds, timeout=3000)
    # Single-coordinated rounds cannot collide on ordering.
    assert sum(a.collisions_detected for a in cluster.acceptors) == 0


def test_round_numbers_partitioned_among_coordinators():
    """Section 4.5's conflict-prone scheme: rounds striped by coordinator."""
    schedule = conflict_prone_schedule()
    rounds = [
        schedule.make_round(coord=c, count=k, rtype=1)
        for k in range(1, 4)
        for c in range(3)
    ]
    assert len(set(rounds)) == len(rounds)
    assert sorted(rounds) == sorted(rounds, key=lambda r: (r.mcount, r.count, r.coord, r.rtype))


def test_mcount_dominates_round_order_across_incarnations():
    """Section 4.4: a recovered acceptor's MCount bump outranks old rounds."""
    schedule = clustered_schedule()
    old = schedule.make_round(coord=2, count=99, rtype=4)
    recovered = schedule.make_round(coord=0, count=1, rtype=0, mcount=1)
    assert old < recovered
