"""Generalized-engine production parity: batching, loss, checkpointing.

Batching is an optimization, never a semantics change: batched and
unbatched runs of the same workload must both converge with every learner
holding a compatible history over the full command set, and replicas
agreeing on the order of every conflicting pair.  The reliability layer
must keep the batched engine live under message loss, and stable-prefix
checkpointing must bound retained history at the checkpoint window while
laggards and crashed processes converge through snapshot install /
journal replay.
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import CheckpointConfig, RetransmitConfig
from repro.core.generalized import GenBatchingConfig, GeneralizedConfig, build_generalized
from repro.core.invariants import attach_generalized_oracle
from repro.core.quorums import QuorumSystem
from repro.core.rounds import RoundSchedule
from repro.core.topology import Topology
from repro.cstruct.cset import CommandSet
from repro.cstruct.history import CommandHistory
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.client import PipelinedClient
from repro.smr.machine import KVStore, kv_conflict
from repro.smr.replica import BroadcastReplica
from repro.bench.workload import Workload, WorkloadConfig


def deploy(
    seed=1,
    n_learners=2,
    batching=None,
    retransmit=None,
    checkpoint=None,
    drop_rate=0.0,
    jitter=0.0,
):
    sim = Simulation(
        seed=seed,
        network=NetworkConfig(drop_rate=drop_rate, jitter=jitter),
        max_events=10_000_000,
    )
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_learners=n_learners,
        batching=batching,
        retransmit=retransmit,
        checkpoint=checkpoint,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    return sim, cluster


def drive(sim, cluster, n_commands, conflict_rate, seed, window=10, timeout=60_000):
    """Closed-loop run; returns (workload, replicas, converged)."""
    replicas = [BroadcastReplica(l, KVStore()) for l in cluster.learners]
    client = PipelinedClient("t", cluster, window=window)
    client.watch_learner(cluster.learners[0])
    workload = Workload.generate(
        WorkloadConfig(
            n_commands=n_commands,
            conflict_rate=conflict_rate,
            read_fraction=0.2,
            seed=seed,
        )
    )
    sim.run(until=5.0)
    client.submit(workload.commands)
    converged = sim.run_until(
        lambda: cluster.everyone_learned(workload.commands), timeout=timeout
    )
    return workload, replicas, converged


def hot_order(replica, key="hot"):
    return [c for c in replica.executed if c.key == key]


# -- configuration validation -------------------------------------------------


def test_batching_config_validation():
    with pytest.raises(ValueError):
        GenBatchingConfig(max_batch=0)
    with pytest.raises(ValueError):
        GenBatchingConfig(flush_interval=0.0)


def _config_kwargs(n_learners=2):
    topology = Topology.build(2, 3, 3, n_learners)
    return dict(
        topology=topology,
        quorums=QuorumSystem(topology.acceptors),
        schedule=RoundSchedule(range(3), recovery_rtype=1),
    )


def test_checkpoint_requires_retransmit():
    with pytest.raises(ValueError, match="retransmit"):
        GeneralizedConfig(
            bottom=CommandHistory.bottom(kv_conflict()),
            checkpoint=CheckpointConfig(),
            **_config_kwargs(),
        )


def test_checkpoint_gc_quorum_bounded_by_learners():
    with pytest.raises(ValueError, match="gc_quorum"):
        GeneralizedConfig(
            bottom=CommandHistory.bottom(kv_conflict()),
            retransmit=RetransmitConfig(),
            checkpoint=CheckpointConfig(gc_quorum=5),
            **_config_kwargs(n_learners=2),
        )


def test_checkpoint_requires_stable_prefix_cstruct():
    with pytest.raises(ValueError, match="stable-prefix"):
        GeneralizedConfig(
            bottom=CommandSet.bottom(),
            retransmit=RetransmitConfig(),
            checkpoint=CheckpointConfig(),
            **_config_kwargs(),
        )


# -- batched ≡ unbatched convergence ------------------------------------------


@pytest.mark.parametrize("conflict_rate", [0.0, 0.3, 0.8])
@pytest.mark.parametrize("seed", [3, 11])
def test_batched_and_unbatched_runs_converge(conflict_rate, seed):
    """Randomized property: batching changes costs, never outcomes.

    Both runs must deliver the full command set with internally
    compatible learned histories and replicas agreeing on every
    conflicting pair's order; the safety oracle watches both runs.
    """
    outcomes = {}
    for label, batching in (
        ("unbatched", None),
        ("batched", GenBatchingConfig(max_batch=4, flush_interval=1.0)),
    ):
        sim, cluster = deploy(seed=seed, batching=batching, n_learners=3)
        workload = Workload.generate(
            WorkloadConfig(
                n_commands=48, conflict_rate=conflict_rate, read_fraction=0.2, seed=seed
            )
        )
        attach_generalized_oracle(sim, cluster, workload.commands)
        replicas = [BroadcastReplica(l, KVStore()) for l in cluster.learners]
        client = PipelinedClient("t", cluster, window=8)
        client.watch_learner(cluster.learners[0])
        sim.run(until=5.0)
        client.submit(workload.commands)
        assert sim.run_until(
            lambda: cluster.everyone_learned(workload.commands), timeout=60_000
        ), f"{label} run did not converge"
        values = cluster.learned_structs()
        for i, left in enumerate(values):
            for right in values[i + 1 :]:
                assert left.is_compatible(right)
            assert values[i].command_set() == frozenset(workload.commands)
        orders = {tuple(hot_order(r)) for r in replicas}
        states = {r.machine.snapshot() for r in replicas}
        assert len(orders) == 1 and len(states) == 1
        outcomes[label] = (len(workload.commands), states.pop())
    # Same command set delivered either way (states may differ across the
    # two *runs* -- commuting commands may interleave differently -- but
    # each run is internally agreed, asserted above).
    assert outcomes["batched"][0] == outcomes["unbatched"][0]


def test_batching_cuts_messages_and_events():
    seed = 7
    totals = {}
    for label, batching in (
        ("unbatched", None),
        ("batched", GenBatchingConfig(max_batch=8, flush_interval=2.0)),
    ):
        sim, cluster = deploy(seed=seed, batching=batching)
        workload, replicas, converged = drive(sim, cluster, 60, 0.3, seed)
        assert converged
        totals[label] = (sim.metrics.total_messages, sim.events_processed)
    assert totals["batched"][0] < totals["unbatched"][0] / 2
    assert totals["batched"][1] < totals["unbatched"][1] / 2


def test_partial_batch_ships_at_flush_interval():
    """A lone command never waits longer than flush_interval + transit."""
    sim, cluster = deploy(batching=GenBatchingConfig(max_batch=64, flush_interval=3.0))
    from tests.conftest import cmd

    lone = cmd("lone")
    sim.run(until=10.0)
    cluster.propose(lone)
    assert cluster.run_until_learned([lone], timeout=60)
    # flush deadline (3) + 3 protocol steps, plus scheduling slack.
    assert sim.clock <= 10.0 + 3.0 + 3.0 + 1.0


def test_pipelined_client_tail_flush():
    """The backlog tail ships immediately instead of waiting the deadline."""
    sim, cluster = deploy(batching=GenBatchingConfig(max_batch=8, flush_interval=50.0))
    workload, replicas, converged = drive(
        sim, cluster, 12, 0.0, seed=5, window=12, timeout=5_000
    )
    assert converged
    # With a 50-unit flush deadline and a 12-command window, only the
    # client's tail flush can have shipped the final partial batch early.
    assert sim.clock < 50.0


def test_proposer_flush_is_noop_when_empty():
    sim, cluster = deploy(batching=GenBatchingConfig())
    sim.run(until=20)  # round establishment settles first
    before = sim.metrics.total_messages
    cluster.flush()
    sim.run(until=40)
    assert sim.metrics.total_messages == before


# -- liveness under loss ------------------------------------------------------


def test_batched_run_survives_message_loss():
    """The reliability layer keeps the batched engine live on lossy links."""
    sim, cluster = deploy(
        seed=23,
        n_learners=3,
        batching=GenBatchingConfig(max_batch=4, flush_interval=1.0),
        retransmit=RetransmitConfig(),
        drop_rate=0.25,
    )
    workload, replicas, converged = drive(
        sim, cluster, 48, 0.3, seed=23, timeout=120_000
    )
    assert converged
    stats = cluster.retransmission_stats()
    assert stats["retransmissions"] + stats["reannounced_2a"] + stats["catchup_requests"] > 0
    assert len({tuple(hot_order(r)) for r in replicas}) == 1
    assert len({r.machine.snapshot() for r in replicas}) == 1


def test_unserved_drains_without_2b_echo():
    """Reliability must not starve when the 2b->coordinator echo is off.

    Coordinators key their 2a re-announce (and the leader's stuck
    detection) off _unserved, drained by Learned reports; with
    retransmission on, learners must send those even when
    send_2b_to_coordinators is disabled, or a converged idle cluster
    re-announces forever.
    """
    sim, cluster = deploy(seed=61, retransmit=RetransmitConfig())
    cluster.config.send_2b_to_coordinators = False
    workload, replicas, converged = drive(sim, cluster, 20, 0.2, seed=61)
    assert converged
    sim.run(until=sim.clock + 60.0)  # several reliability ticks
    assert all(not c._unserved for c in cluster.coordinators)


def test_unbatched_lossy_run_converges_too():
    sim, cluster = deploy(seed=29, retransmit=RetransmitConfig(), drop_rate=0.2)
    workload, replicas, converged = drive(sim, cluster, 30, 0.4, seed=29, timeout=120_000)
    assert converged


def test_proposer_recovery_reships_unacked():
    """A proposer crash loses volatile state; journalled commands re-ship."""
    sim, cluster = deploy(
        seed=31,
        batching=GenBatchingConfig(max_batch=4, flush_interval=1.0),
        retransmit=RetransmitConfig(),
    )
    # Cut the proposer off before its batch can reach anyone.
    from tests.conftest import cmd

    proposer = cluster.proposers[0]
    victims = [cmd(f"r{i}") for i in range(3)]
    sim.run(until=5.0)
    drops = sim.network.add_drop_filter(lambda src, dst, msg: src == proposer.pid)
    for command in victims:
        proposer.propose(command)
    proposer.flush()
    sim.run(until=15.0)
    sim.network.remove_drop_filter(drops)
    proposer.crash()
    sim.run(until=18.0)
    proposer.recover()
    assert cluster.run_until_learned(victims, timeout=60_000)


# -- stable-prefix checkpointing ----------------------------------------------


def ckpt(interval=20, **kw):
    return CheckpointConfig(interval=interval, gc_quorum=kw.pop("gc_quorum", 2), **kw)


def test_checkpointing_bounds_retained_history():
    peaks = {}
    for label, checkpoint in (("unbounded", None), ("bounded", ckpt(interval=20))):
        sim, cluster = deploy(
            seed=37,
            batching=GenBatchingConfig(max_batch=8, flush_interval=1.0),
            retransmit=RetransmitConfig(),
            checkpoint=checkpoint,
        )
        peak = 0

        def sample():
            nonlocal peak
            peak = max(peak, max(cluster.retained_history().values()))
            sim.schedule(5.0, sample)

        sim.schedule(5.0, sample)
        workload, replicas, converged = drive(sim, cluster, 160, 0.3, seed=37)
        assert converged
        sample()
        peaks[label] = peak
        if checkpoint is not None:
            stats = cluster.checkpoint_stats()
            assert stats["snapshots"] >= 2
            assert stats["acceptor_floor"] > 0
            assert stats["coordinator_floor"] > 0
    assert peaks["unbounded"] >= 159
    assert peaks["bounded"] <= 20 + 40  # window + in-flight/advertise slack


def test_learner_seen_survives_truncation():
    """has_learned covers the stable base after the tail is truncated."""
    sim, cluster = deploy(
        seed=41,
        batching=GenBatchingConfig(max_batch=8, flush_interval=1.0),
        retransmit=RetransmitConfig(),
        checkpoint=ckpt(interval=15),
    )
    workload, replicas, converged = drive(sim, cluster, 80, 0.2, seed=41)
    assert converged
    learner = cluster.learners[0]
    assert all(learner.has_learned(c) for c in workload.commands)
    # The learned tail is truncated well below the full history...
    assert len(learner.learned.command_set()) < 80
    # ...but the replica executed everything exactly once.
    assert len(replicas[0].executed) == 80


def test_laggard_learner_converges_via_snapshot_install():
    sim, cluster = deploy(
        seed=43,
        n_learners=3,
        batching=GenBatchingConfig(max_batch=8, flush_interval=1.0),
        retransmit=RetransmitConfig(),
        checkpoint=ckpt(interval=15, chunk_size=16),
    )
    replicas = [BroadcastReplica(l, KVStore()) for l in cluster.learners]
    client = PipelinedClient("t", cluster, window=10)
    client.watch_learner(cluster.learners[0])
    workload = Workload.generate(
        WorkloadConfig(n_commands=150, conflict_rate=0.3, read_fraction=0.2, seed=43)
    )
    sim.run(until=5.0)
    client.submit(workload.commands)
    victim = cluster.learners[2]
    assert sim.run_until(lambda: len(cluster.learners[0].delivered) >= 40, timeout=60_000)
    victim.crash()
    assert sim.run_until(lambda: len(cluster.learners[0].delivered) >= 110, timeout=60_000)
    # The live majority kept checkpointing; the cluster truncated far past
    # the victim's durable checkpoint while it was down.
    assert cluster.checkpoint_stats()["acceptor_floor"] > victim.snap_frontier
    victim.recover()
    assert sim.run_until(
        lambda: cluster.everyone_learned(workload.commands), timeout=120_000
    )
    assert victim.snapshot_installs >= 1
    assert len({tuple(hot_order(r)) for r in replicas}) == 1
    assert len({r.machine.snapshot() for r in replicas}) == 1


def test_learner_recovery_restores_own_checkpoint():
    """A brief outage recovers from the local checkpoint, not an install."""
    sim, cluster = deploy(
        seed=47,
        batching=GenBatchingConfig(max_batch=8, flush_interval=1.0),
        retransmit=RetransmitConfig(),
        checkpoint=ckpt(interval=10),
    )
    replicas = [BroadcastReplica(l, KVStore()) for l in cluster.learners]
    client = PipelinedClient("t", cluster, window=10)
    client.watch_learner(cluster.learners[0])
    workload = Workload.generate(
        WorkloadConfig(n_commands=60, conflict_rate=0.2, read_fraction=0.2, seed=47)
    )
    sim.run(until=5.0)
    client.submit(workload.commands)
    victim = cluster.learners[1]
    assert sim.run_until(lambda: victim.snap_frontier >= 20, timeout=60_000)
    frontier_before = victim.snap_frontier
    victim.crash()
    sim.run(until=sim.clock + 3.0)
    victim.recover()
    # Recovery fast-forwarded to the journalled checkpoint instead of
    # starting from nothing.
    assert victim.snap_frontier >= frontier_before
    assert len(victim.delivered) >= frontier_before
    assert sim.run_until(
        lambda: cluster.everyone_learned(workload.commands), timeout=120_000
    )
    assert len({tuple(hot_order(r)) for r in replicas}) == 1


def test_acceptor_recovery_replays_delta_journal():
    sim, cluster = deploy(
        seed=53,
        batching=GenBatchingConfig(max_batch=4, flush_interval=1.0),
        retransmit=RetransmitConfig(),
        checkpoint=ckpt(interval=25),
    )
    replicas = [BroadcastReplica(l, KVStore()) for l in cluster.learners]
    client = PipelinedClient("t", cluster, window=8)
    client.watch_learner(cluster.learners[0])
    workload = Workload.generate(
        WorkloadConfig(n_commands=90, conflict_rate=0.3, read_fraction=0.2, seed=53)
    )
    sim.run(until=5.0)
    client.submit(workload.commands)
    acceptor = cluster.acceptors[0]
    assert sim.run_until(lambda: len(cluster.learners[0].delivered) >= 30, timeout=60_000)
    acceptor.crash()
    sim.run(until=sim.clock + 2.0)
    acceptor.recover()
    # The vote tail came back from the delta journal (base + replay), not
    # from a whole-struct key: it matches the journal exactly, and the
    # checkpoint path never wrote the legacy "vval" key at all.
    assert len(acceptor.vval.command_set()) == acceptor.storage.prefix_count("gvote")
    assert len(acceptor.vval.command_set()) > 0
    assert "vval" not in acceptor.storage
    assert sim.run_until(
        lambda: cluster.everyone_learned(workload.commands), timeout=120_000
    )
    assert len({tuple(hot_order(r)) for r in replicas}) == 1


def test_checkpointed_run_under_loss():
    """Truncation + loss: catch-up and install keep everyone converging."""
    sim, cluster = deploy(
        seed=59,
        n_learners=3,
        batching=GenBatchingConfig(max_batch=4, flush_interval=1.0),
        retransmit=RetransmitConfig(),
        checkpoint=ckpt(interval=20),
        drop_rate=0.15,
    )
    workload, replicas, converged = drive(
        sim, cluster, 80, 0.3, seed=59, timeout=200_000
    )
    assert converged
    assert len({tuple(hot_order(r)) for r in replicas}) == 1
    assert len({r.machine.snapshot() for r in replicas}) == 1


def test_laggard_under_loss_with_round_change():
    """Regression: loss + truncation + a mid-run round change must not stall.

    This seed drives the engine through a round change while a learner is
    down and the cluster truncates past it; phase 1 of the new round
    loses messages, so progress depends on the reliability tick's 1a
    re-drive (acceptors re-answer duplicate current-round 1as with fresh
    1bs) and on coordinators adopting Nack-reported classic rounds.
    """
    sim, cluster = deploy(
        seed=73,
        n_learners=3,
        batching=GenBatchingConfig(max_batch=8, flush_interval=1.0),
        retransmit=RetransmitConfig(),
        checkpoint=ckpt(interval=15, chunk_size=16),
        drop_rate=0.1,
    )
    replicas = [BroadcastReplica(l, KVStore()) for l in cluster.learners]
    client = PipelinedClient("t", cluster, window=10)
    client.watch_learner(cluster.learners[0])
    from tests.conftest import cmd

    cmds = [cmd(f"s73-{i}", "put", "hot" if i % 4 == 0 else f"k{i}", i) for i in range(140)]
    sim.run(until=5.0)
    client.submit(cmds)
    victim = cluster.learners[2]
    assert sim.run_until(lambda: len(cluster.learners[0].delivered) >= 40, timeout=100_000)
    victim.crash()
    assert sim.run_until(
        lambda: len(cluster.learners[0].delivered) >= 110, timeout=100_000
    ), f"stalled at {len(cluster.learners[0].delivered)} with the victim down"
    victim.recover()
    assert sim.run_until(lambda: cluster.everyone_learned(cmds), timeout=400_000)
    assert victim.snapshot_installs >= 1
    assert len({tuple(hot_order(r)) for r in replicas}) == 1
    assert len({r.machine.snapshot() for r in replicas}) == 1


# -- storage: batched journal appends -----------------------------------------


def test_append_many_is_one_write():
    from repro.sim.storage import StableStorage

    storage = StableStorage()
    before = storage.write_count
    storage.append_many("j", 5, ["a", "b", "c"])
    assert storage.write_count == before + 1
    assert storage.prefix_items("j") == [(5, "a"), (6, "b"), (7, "c")]
    assert storage.prefix_count("j") == 3
    storage.append_many("j", 8, [])
    assert storage.write_count == before + 1  # empty group: no write
    removed = storage.truncate_below("j", 7)
    assert removed == 2 and storage.prefix_items("j") == [(7, "c")]
