"""Delta wire protocol + bounded dedup sessions (generalized engine).

The delta layer (``DeltaConfig``) is an optimization, never a semantics
change: senders ship only the unsent suffix of their 2a/2b streams,
stamped by the (size, digest) of what was already sent, and any mismatch
falls back to the cumulative protocol via ``ResyncRequest``.  These
tests pin (1) the digest/trail/interval-run primitives, (2) convergence
equivalence with the cumulative baseline under loss and crash/recovery,
(3) adversarial mismatch repair -- corrupted mirrors must heal through
resync, never diverge -- and (4) the sessions layer's bounded dedup
memory under multiples-longer runs.
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import CheckpointConfig, RetransmitConfig
from repro.core.generalized import (
    DeltaConfig,
    GeneralizedConfig,
    build_generalized,
)
from repro.core.quorums import QuorumSystem
from repro.core.rounds import RoundSchedule
from repro.core.sessions import (
    SessionConfig,
    SessionDedup,
    SessionMembers,
    session_key,
)
from repro.core.topology import Topology
from repro.cstruct.commands import Command
from repro.cstruct.digest import (
    DeltaTrail,
    digest_add,
    digest_of,
    runs_add,
    runs_contains,
    runs_count,
    runs_intersect,
    runs_issubset,
    runs_merge,
)
from repro.cstruct.history import CommandHistory
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.machine import kv_conflict


def cmds(n, clients=3, keys=5, start=0):
    """Session-stamped conflicting commands: cid = "<client>:<seq>"."""
    return [
        Command(f"cl{i % clients}:{i // clients}", "put", f"k{i % keys}", i)
        for i in range(start, start + n)
    ]


def deploy(
    seed=1,
    delta=None,
    sessions=None,
    retransmit=None,
    checkpoint=None,
    drop_rate=0.0,
    jitter=0.0,
    duplicate_rate=0.0,
):
    sim = Simulation(
        seed=seed,
        network=NetworkConfig(
            drop_rate=drop_rate, jitter=jitter, duplicate_rate=duplicate_rate
        ),
        max_events=10_000_000,
    )
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        retransmit=retransmit,
        checkpoint=checkpoint,
        delta=delta,
        sessions=sessions,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    return sim, cluster


def converge(sim, cluster, commands, spacing=0.9, timeout=80_000.0):
    for i, cmd in enumerate(commands):
        cluster.propose(cmd, delay=5.0 + i * spacing)
    ok = cluster.run_until_learned(commands, timeout=timeout)
    cluster.flush()
    if not ok:
        ok = cluster.run_until_learned(commands, timeout=timeout)
    return ok


def hot_orders(cluster, commands):
    """Per-learner delivered order restricted to the proposed commands."""
    wanted = set(commands)
    orders = []
    for learner in cluster.learners:
        seen = set()
        order = []
        for cmd in learner.delivered:
            if cmd in wanted and cmd not in seen:
                seen.add(cmd)
                order.append(cmd)
        orders.append(order)
    return orders


# -- primitives ---------------------------------------------------------------


def test_digest_is_order_independent_and_incremental():
    a, b, c = cmds(3)
    assert digest_of([a, b, c]) == digest_of([c, a, b])
    assert digest_add(digest_of([a]), [b, c]) == digest_of([a, b, c])
    assert digest_of([a, b]) != digest_of([a, c])
    assert digest_of([]) == 0


def test_delta_trail_suffixes():
    trail = DeltaTrail(limit=8)
    batches = [tuple(cmds(2, start=i * 2)) for i in range(4)]
    stamps = [(trail.size, trail.digest)]
    for batch in batches:
        trail.append(batch)
        stamps.append((trail.size, trail.digest))
    # Head stamp -> empty suffix; every recorded base -> the exact tail.
    assert trail.suffix_from(*stamps[-1]) == ()
    for i, (size, digest) in enumerate(stamps[:-1]):
        suffix = trail.suffix_from(size, digest)
        assert suffix == tuple(c for batch in batches[i:] for c in batch)
    # Unknown stamp (e.g. diverged peer) -> miss.
    assert trail.suffix_from(1, 12345) is None
    # Reset forgets history.
    trail.reset(0, 0)
    assert trail.suffix_from(*stamps[1]) is None


def test_delta_trail_bounded():
    trail = DeltaTrail(limit=3)
    oldest = (trail.size, trail.digest)
    for i in range(10):
        trail.append((Command(f"t:{i}", "put", "k", i),))
    assert trail.suffix_from(*oldest) is None  # trimmed past the limit
    assert len(trail._entries) <= 3


def test_interval_runs():
    runs = []
    for value in (5, 3, 4, 9, 1):
        assert runs_add(runs, value)
    assert not runs_add(runs, 4)
    assert [tuple(r) for r in runs] == [(1, 1), (3, 5), (9, 9)]
    assert runs_contains(runs, 3) and not runs_contains(runs, 7)
    assert runs_count(runs) == 5
    assert runs_merge(((1, 2),), ((2, 4), (8, 9))) == ((1, 4), (8, 9))
    assert runs_intersect(((1, 5),), ((4, 9),)) == ((4, 5),)
    assert runs_issubset(((2, 3),), ((1, 5),))
    assert not runs_issubset(((2, 6),), ((1, 5),))


def test_session_dedup_window_and_members():
    dedup = SessionDedup(window=8)
    first = cmds(30, clients=2)
    for cmd in first:
        assert dedup.add(cmd)
        assert not dedup.add(cmd)  # immediate duplicate
    assert len(dedup) == 30
    assert all(cmd in dedup for cmd in first)
    members = dedup.members()
    assert isinstance(members, SessionMembers)
    assert dedup.covers(members)
    assert all(cmd in members for cmd in first)
    # Claims compose like sets across representations.
    other = SessionMembers.from_commands(cmds(10, clients=2, start=25))
    union = members.union(other)
    assert all(cmd in union for cmd in cmds(35, clients=2))
    inter = members.intersection(frozenset(first[:4]))
    assert len(inter) == 4
    # Round-trips through its serializable state.
    restored = SessionDedup.restore(dedup.state(), window=8)
    assert len(restored) == len(dedup)
    assert all(cmd in restored for cmd in first)
    # Non-session cids fall back to the exact overflow set.
    plain = Command("no-session-id", "put", "k", 0)
    assert session_key(plain) is None
    assert dedup.add(plain) and plain in dedup


def test_session_dedup_retained_is_bounded():
    dedup = SessionDedup(window=16)
    for cmd in cmds(64, clients=2):
        dedup.add(cmd)
    small = dedup.retained()
    for cmd in cmds(2000, clients=2, start=64):
        dedup.add(cmd)
    assert len(dedup) == 2064  # the monotone count still advances
    assert dedup.retained() <= small + 4  # the retained cells do not


# -- configuration ------------------------------------------------------------


def _config_kwargs():
    topology = Topology.build(2, 3, 3, 2)
    return dict(
        topology=topology,
        quorums=QuorumSystem(topology.acceptors),
        schedule=RoundSchedule(range(3), recovery_rtype=1),
        bottom=CommandHistory.bottom(kv_conflict()),
    )


def test_delta_requires_retransmit():
    with pytest.raises(ValueError, match="retransmit"):
        GeneralizedConfig(delta=DeltaConfig(), **_config_kwargs())


def test_sessions_require_checkpoint():
    with pytest.raises(ValueError, match="checkpoint"):
        GeneralizedConfig(
            retransmit=RetransmitConfig(),
            sessions=SessionConfig(),
            **_config_kwargs(),
        )


def test_delta_config_validation():
    with pytest.raises(ValueError):
        DeltaConfig(trail=0)
    with pytest.raises(ValueError):
        DeltaConfig(idle_poll_every=0)
    with pytest.raises(ValueError):
        SessionConfig(window=0)


# -- convergence equivalence --------------------------------------------------


@pytest.mark.parametrize("seed", [7, 21, 42])
def test_delta_equivalent_to_cumulative_under_loss(seed):
    """Same workload, lossy network: delta mode converges to the same
    kind of agreement the cumulative baseline does -- every learner holds
    the full command set and all learners agree on the delivered order of
    conflicting commands."""
    workload = cmds(40, clients=4, keys=3)
    for delta in (None, DeltaConfig()):
        sim, cluster = deploy(
            seed=seed,
            delta=delta,
            retransmit=RetransmitConfig(),
            drop_rate=0.10,
            jitter=0.3,
        )
        assert converge(sim, cluster, workload), f"delta={delta} stalled"
        orders = hot_orders(cluster, workload)
        assert all(len(o) == len(workload) for o in orders)
        conflict = kv_conflict()
        reference = orders[0]
        position = {cmd: i for i, cmd in enumerate(reference)}
        for order in orders[1:]:
            for i, x in enumerate(order):
                for y in order[i + 1 :]:
                    if conflict(x, y):
                        assert position[x] < position[y], (
                            f"learners disagree on {x} vs {y}"
                        )
        if delta is not None:
            stats = cluster.delta_stats()
            assert stats["delta_2b"] > 0  # the fast path actually ran


def test_delta_survives_crash_recovery():
    """Acceptor and learner crashes mid-run: streams restart via full
    broadcasts/resyncs and the run still converges."""
    sim, cluster = deploy(
        seed=11,
        delta=DeltaConfig(),
        retransmit=RetransmitConfig(),
        checkpoint=CheckpointConfig(interval=16),
        drop_rate=0.05,
    )
    workload = cmds(36, clients=3, keys=4)
    for i, cmd in enumerate(workload):
        cluster.propose(cmd, delay=5.0 + i * 1.2)
    sim.schedule(18.0, cluster.acceptors[0].crash)
    sim.schedule(30.0, cluster.acceptors[0].recover)
    sim.schedule(26.0, cluster.learners[1].crash)
    sim.schedule(40.0, cluster.learners[1].recover)
    assert cluster.run_until_learned(workload, timeout=80_000.0)
    assert all(
        learner.delivered_total >= len(workload)
        for learner in cluster.learners
    )


# -- adversarial mismatch repair ----------------------------------------------


def test_corrupted_learner_mirror_heals_by_resync():
    """Flip a learner's digest mirror of an acceptor stream: the next
    delta must mismatch, trigger ResyncRequest, and re-converge off the
    full cumulative vote -- digests gate fallback, never correctness."""
    sim, cluster = deploy(
        seed=3, delta=DeltaConfig(), retransmit=RetransmitConfig()
    )
    first = cmds(10)
    assert converge(sim, cluster, first)
    victim = cluster.learners[0]
    assert victim._vote_raw, "expected established 2b mirrors"
    for acc, (rnd, size, digest) in list(victim._vote_raw.items()):
        victim._vote_raw[acc] = (rnd, size, digest ^ 0xDEAD)
    more = cmds(10, start=10)
    assert converge(sim, cluster, more)
    assert victim.resyncs_sent > 0
    assert all(victim.has_learned(cmd) for cmd in first + more)


def test_corrupted_acceptor_mirror_heals_by_resync():
    """Same adversarial flip on an acceptor's mirror of the coordinator
    2a stream: the acceptor must demand a resync and the coordinator's
    full Phase2a must repair it."""
    sim, cluster = deploy(
        seed=5, delta=DeltaConfig(), retransmit=RetransmitConfig()
    )
    first = cmds(8)
    assert converge(sim, cluster, first)
    victim = cluster.acceptors[0]
    assert victim._2a_mirror, "expected established 2a mirrors"
    for coord, (rnd, size, digest) in list(victim._2a_mirror.items()):
        victim._2a_mirror[coord] = (rnd, size + 1, digest)
    more = cmds(8, start=8)
    assert converge(sim, cluster, more)
    assert victim.resyncs_requested > 0
    assert sum(c.resyncs_answered for c in cluster.coordinators) > 0
    assert all(l.has_learned(cmd) for l in cluster.learners for cmd in more)


@pytest.mark.parametrize("seed", [5, 7, 23])
def test_gc_frame_shift_with_merges_stays_faithful(seed):
    """Acceptor GC + lattice merges + duplicates + crash: the hostile
    combination for the 2b stream.

    GC rewrites an acceptor's vote to a *smaller* retained tail (so the
    learner's full-vote mirror must regress instead of wedging), a
    concurrent merge gains commands the learner's fat stale record never
    saw (so a smaller-but-authoritative full must fold in by lub, not be
    dropped by the size rule), and duplicated deltas re-attach at moved
    stamps (so duplicate detection must go by digest).  Each of these
    once produced silent per-key order divergence or a permanent wedge;
    all learners must deliver everything in the same per-key order."""
    sim, cluster = deploy(
        seed=seed,
        delta=DeltaConfig(idle_poll_every=4),
        sessions=SessionConfig(window=256),
        retransmit=RetransmitConfig(catchup_interval=2.0),
        checkpoint=CheckpointConfig(interval=25, gc_quorum=2),
        drop_rate=0.15,
        duplicate_rate=0.05,
    )
    workload = cmds(120, clients=1, keys=5)
    sim.schedule(60.0, cluster.acceptors[1].crash)
    sim.schedule(75.0, cluster.acceptors[1].recover)
    assert converge(sim, cluster, workload, spacing=1.5)
    orders = hot_orders(cluster, workload)
    assert all(len(order) == len(workload) for order in orders)
    keyed = []
    for order in orders:
        per_key: dict = {}
        for cmd in order:
            per_key.setdefault(cmd.key, []).append(cmd.cid)
        keyed.append(per_key)
    assert all(k == keyed[0] for k in keyed[1:]), (
        "learners diverged on a per-key delivery order"
    )


# -- idle-cluster chatter -----------------------------------------------------


def test_idle_cluster_polls_are_stamped_and_suppressed():
    """After convergence the catch-up loop must settle into stamp acks
    (O(1) bytes) and suppressed polls instead of full vote re-sends."""
    sim, cluster = deploy(
        seed=9, delta=DeltaConfig(), retransmit=RetransmitConfig()
    )
    assert converge(sim, cluster, cmds(12))
    sim.run(until=sim.clock + 40.0)  # let in-flight traffic settle
    full_before = cluster.delta_stats()["full_2b"]
    stamps_before = cluster.delta_stats()["stamps_confirmed"]
    sim.run(until=sim.clock + 400.0)
    stats = cluster.delta_stats()
    assert stats["full_2b"] == full_before, "idle ticks re-shipped full votes"
    assert stats["stamps_confirmed"] > stamps_before
    assert stats["polls_suppressed"] > 0


# -- bounded sessions ---------------------------------------------------------


def test_sessions_bound_learner_dedup_state():
    """3x the history, ~flat dedup memory: retained cells track the
    session window, not the run length."""
    retained = {}
    totals = {}
    for n in (60, 180):
        sim, cluster = deploy(
            seed=13,
            delta=DeltaConfig(),
            sessions=SessionConfig(window=32),
            retransmit=RetransmitConfig(),
            checkpoint=CheckpointConfig(interval=16),
        )
        assert converge(sim, cluster, cmds(n, clients=3), spacing=0.6)
        retained[n] = cluster.retained_dedup()
        totals[n] = min(l.delivered_total for l in cluster.learners)
    assert totals[180] >= 3 * totals[60] - 6
    assert retained[180] <= retained[60] + 3 * 32, (
        f"dedup state grew with history: {retained}"
    )


def test_sessions_preserve_exactly_once_until_window():
    """A duplicate proposal inside the window is delivered once."""
    sim, cluster = deploy(
        seed=17,
        sessions=SessionConfig(window=64),
        retransmit=RetransmitConfig(),
        checkpoint=CheckpointConfig(interval=16),
    )
    workload = cmds(20, clients=2)
    assert converge(sim, cluster, workload)
    # Re-propose an already-delivered command: dedup must swallow it.
    dup = workload[5]
    cluster.propose(dup, delay=1.0)
    sim.run(until=sim.clock + 60.0)
    for learner in cluster.learners:
        assert sum(1 for c in learner.delivered if c == dup) <= 1
