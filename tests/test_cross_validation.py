"""Cross-validation across the implementation hierarchy.

The generalized engine restricted in various ways must agree with the
specialized implementations:

* generalized engine + ValueStruct ≈ the Section 3.1 consensus engine
  (first command decided, all learners agree);
* generalized engine + AlwaysConflict histories ≈ total-order broadcast
  ≈ the Classic Paxos baseline's delivery order semantics;
* CommandHistory under AlwaysConflict ≈ CommandSequence; under
  NeverConflict ≈ CommandSet (checked on protocol outputs, not just the
  algebra).
"""

import pytest

from repro.core.generalized import build_generalized
from repro.core.multicoordinated import build_consensus
from repro.cstruct.commands import AlwaysConflict, NeverConflict
from repro.cstruct.cset import CommandSet
from repro.cstruct.history import CommandHistory
from repro.cstruct.seq import CommandSequence
from repro.cstruct.value import ValueStruct
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from tests.conftest import cmd

A = cmd("a", "put", "x", 1)
B = cmd("b", "put", "x", 2)
C = cmd("c", "put", "y", 3)


@pytest.mark.parametrize("rtype", [1, 2])
def test_generalized_with_value_struct_decides_like_consensus(rtype):
    """One instance of generalized consensus over the value c-struct."""
    sim = Simulation(seed=4)
    cluster = build_generalized(
        sim, bottom=ValueStruct.bottom(), n_coordinators=3, n_acceptors=3
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype))
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=200)
    for learner in cluster.learners:
        assert learner.learned == ValueStruct(A)
    # The consensus engine on the same schedule and workload agrees.
    sim2 = Simulation(seed=4)
    consensus = build_consensus(sim2, n_coordinators=3, n_acceptors=3)
    consensus.start_round(consensus.config.schedule.make_round(0, 1, rtype))
    consensus.propose(A, delay=5.0)
    assert consensus.run_until_decided(timeout=200)
    assert consensus.decision() == A
    assert sim.metrics.latency_of(A) == sim2.metrics.latency_of(A)


def test_value_struct_absorbs_later_commands():
    """With ValueStruct, later proposals do not change the learned value."""
    sim = Simulation(seed=5)
    cluster = build_generalized(
        sim, bottom=ValueStruct.bottom(), n_coordinators=3, n_acceptors=3
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 1))
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=200)
    cluster.propose(B, delay=1.0)
    sim.run(until=sim.clock + 30)
    for learner in cluster.learners:
        assert learner.learned == ValueStruct(A)


def test_always_conflict_histories_give_total_order():
    sim = Simulation(seed=6, network=NetworkConfig(jitter=0.4))
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(AlwaysConflict()),
        n_coordinators=3,
        n_acceptors=3,
        n_learners=3,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    cmds = [A, B, C]
    for i, command in enumerate(cmds):
        cluster.propose(command, delay=5.0 + 4 * i)
    assert cluster.run_until_learned(cmds, timeout=500)
    orders = [learner.learned.linear_extension() for learner in cluster.learners]
    assert all(order == orders[0] for order in orders)


def test_sequence_cstruct_runs_the_engine():
    """CommandSequence works directly as the engine's c-struct."""
    sim = Simulation(seed=7)
    cluster = build_generalized(
        sim, bottom=CommandSequence.bottom(), n_coordinators=3, n_acceptors=3
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 1))
    cmds = [A, B, C]
    for i, command in enumerate(cmds):
        cluster.propose(command, delay=5.0 + 4 * i)
    assert cluster.run_until_learned(cmds, timeout=500)
    assert cluster.learners[0].learned.cmds == (A, B, C)


def test_command_set_cstruct_runs_the_engine():
    """CommandSet (everything commutes) never collides even under jitter."""
    sim = Simulation(seed=8, network=NetworkConfig(jitter=1.0))
    cluster = build_generalized(
        sim, bottom=CommandSet.bottom(), n_coordinators=3, n_acceptors=3,
        n_proposers=3,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    cmds = [A, B, C]
    for command in cmds:
        cluster.propose(command, delay=5.0)
    assert cluster.run_until_learned(cmds, timeout=500)
    assert sum(a.collisions_detected for a in cluster.acceptors) == 0
    assert cluster.learners[0].learned.command_set() == {A, B, C}


def test_history_never_conflict_equals_command_set_outcome():
    """Two engines, two c-struct sets, same semantics -> same learned sets."""
    outcomes = []
    for bottom in (CommandSet.bottom(), CommandHistory.bottom(NeverConflict())):
        sim = Simulation(seed=9, network=NetworkConfig(jitter=0.7))
        cluster = build_generalized(
            sim, bottom=bottom, n_coordinators=3, n_acceptors=3, n_proposers=2
        )
        cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
        for command in (A, B, C):
            cluster.propose(command, delay=5.0)
        assert cluster.run_until_learned([A, B, C], timeout=500)
        outcomes.append(cluster.learners[0].learned.command_set())
    assert outcomes[0] == outcomes[1]
