"""Unit tests for the asyncio transport runtime itself.

The conformance suite proves the engines run on :class:`NetRuntime`;
these tests pin the transport's own contract -- address-book plumbing,
UDP-vs-TCP path selection, loss injection hooks, timer semantics, error
surfacing -- with plain processes instead of protocol roles.
"""

from __future__ import annotations

import asyncio
from typing import Hashable

import pytest

from repro.core.messages import Phase1a
from repro.core.rounds import RoundId
from repro.core.runtime import Process, Runtime
from repro.net.codec import encode
from repro.net.transport import AddressBook, NetRuntime, loopback_book
from repro.smr.instances import IGossip


class Recorder(Process):
    def __init__(self, pid, sim):
        super().__init__(pid, sim)
        self.got = []

    def on_phase1a(self, msg, src: Hashable) -> None:
        self.got.append((msg, src))

    def on_igossip(self, msg, src: Hashable) -> None:
        self.got.append((msg, src))


def _pair(loss_rate=0.0, mtu=1400):
    book = loopback_book(["a", "b"])
    book.placement.update({"pa": "a", "pb": "b", "pb2": "b"})
    ra = NetRuntime("a", book, seed=1, loss_rate=loss_rate, mtu=mtu)
    rb = NetRuntime("b", book, seed=2, loss_rate=loss_rate, mtu=mtu)
    return book, ra, rb


def test_address_book_json_roundtrip():
    book = AddressBook(
        nodes={"a": ("127.0.0.1", 4001)}, placement={"p": "a"}
    )
    assert AddressBook.from_json(book.to_json()) == book
    assert book.node_of("p") == "a"
    assert book.node_of("stranger") is None
    assert book.pids_on("a") == ["p"]


def test_runtime_satisfies_protocol():
    book, ra, _rb = _pair()
    assert isinstance(ra, Runtime)


def test_udp_and_tcp_path_selection():
    async def main():
        book, ra, rb = _pair(mtu=200)
        await ra.start()
        await rb.start()
        recorder = Recorder("pb", rb)
        Recorder("pa", ra)
        small = Phase1a(RoundId(0, 1, 0, 2))
        big = IGossip(tuple(f"cmd-{i:04d}" for i in range(40)), ())
        assert len(encode(("pa", "pb", small))) <= 200 < len(encode(("pa", "pb", big)))
        ra.send("pa", "pb", small)
        ra.send("pa", "pb", big)
        assert await rb.wait_until(lambda: len(recorder.got) == 2, timeout=5.0)
        assert ra.frames_udp == 1 and ra.frames_tcp == 1
        assert {type(m).__name__ for m, _ in recorder.got} == {"Phase1a", "IGossip"}
        assert all(src == "pa" for _, src in recorder.got)
        await ra.stop()
        await rb.stop()

    asyncio.run(main())


def test_same_node_delivery_skips_the_socket_but_stays_async():
    async def main():
        book, ra, rb = _pair()
        await rb.start()
        first = Recorder("pb", rb)
        second = Recorder("pb2", rb)
        first.send("pb2", Phase1a(RoundId()))
        assert second.got == []  # never delivered reentrantly
        assert await rb.wait_until(lambda: len(second.got) == 1, timeout=2.0)
        assert rb.frames_udp == 0 and rb.frames_tcp == 0
        await rb.stop()

    asyncio.run(main())


def test_drop_filters_and_self_send_immunity():
    async def main():
        book, ra, rb = _pair()
        await ra.start()
        await rb.start()
        recorder = Recorder("pb", rb)
        mine = Recorder("pa", ra)
        dropped = ra.add_drop_filter(lambda src, dst, msg: dst == "pb")
        ra.send("pa", "pb", Phase1a(RoundId()))
        ra.send("pa", "pa", Phase1a(RoundId()))  # self-sends never drop
        assert await ra.wait_until(lambda: len(mine.got) == 1, timeout=2.0)
        assert ra.metrics.messages_dropped == 1
        ra.remove_drop_filter(dropped)
        ra.send("pa", "pb", Phase1a(RoundId()))
        assert await rb.wait_until(lambda: len(recorder.got) == 1, timeout=2.0)
        await ra.stop()
        await rb.stop()

    asyncio.run(main())


def test_seeded_loss_rate_drops_remote_sends():
    async def main():
        book, ra, rb = _pair(loss_rate=1.0)
        await ra.start()
        await rb.start()
        Recorder("pb", rb)
        for _ in range(5):
            ra.send("pa", "pb", Phase1a(RoundId()))
        assert ra.metrics.messages_dropped == 5
        assert ra.frames_udp == 0
        await ra.stop()
        await rb.stop()

    asyncio.run(main())


def test_timers_fire_and_cancel():
    async def main():
        book, ra, _rb = _pair()
        await ra.start()
        fired = []
        ra.schedule(0.02, lambda: fired.append("kept"))
        cancelled = ra.schedule(0.02, lambda: fired.append("cancelled"))
        cancelled.cancel()
        assert await ra.wait_until(lambda: bool(fired), timeout=2.0)
        await asyncio.sleep(0.05)
        assert fired == ["kept"]
        with pytest.raises(ValueError):
            ra.schedule(-1.0, lambda: None)
        await ra.stop()

    asyncio.run(main())


def test_schedule_before_start_is_an_error():
    book, ra, _rb = _pair()
    with pytest.raises(RuntimeError):
        ra.schedule(0.1, lambda: None)


def test_handler_exceptions_surface_via_wait_until():
    async def main():
        book, ra, rb = _pair()
        await ra.start()
        await rb.start()
        Recorder("pb", rb)  # has no on_igossip? it does; use unhandled type
        ra.send("pa", "pb", RoundId(0, 9, 0, 1))  # no on_roundid handler
        with pytest.raises(TypeError):
            await rb.wait_until(lambda: False, timeout=2.0)
        assert rb.errors
        await ra.stop()
        await rb.stop()

    asyncio.run(main())


def test_undecodable_frame_is_recorded_not_fatal():
    async def main():
        book, ra, rb = _pair()
        await ra.start()
        await rb.start()
        recorder = Recorder("pb", rb)
        host, port = book.addr_of("b")
        transport, _ = await asyncio.get_running_loop().create_datagram_endpoint(
            asyncio.DatagramProtocol, remote_addr=(host, port)
        )
        transport.sendto(b"garbage-not-a-frame")
        await asyncio.sleep(0.05)
        assert len(rb.errors) == 1  # recorded for diagnosis...
        rb.errors.clear()
        ra.send("pa", "pb", Phase1a(RoundId()))  # ...but the node still works
        assert await rb.wait_until(lambda: len(recorder.got) == 1, timeout=2.0)
        transport.close()
        await ra.stop()
        await rb.stop()

    asyncio.run(main())


def test_duplicate_pid_rejected():
    async def main():
        book, ra, _rb = _pair()
        await ra.start()
        Recorder("pa", ra)
        with pytest.raises(ValueError):
            Recorder("pa", ra)
        await ra.stop()

    asyncio.run(main())
