"""Checkpointing & log truncation: bounded memory + snapshot state transfer.

The engine keeps the full decided history unless a ``CheckpointConfig``
is supplied; these tests cover the checkpointing subsystem end to end:
learner snapshots and frontier advertisement, the collective-safe-frontier
policies, garbage collection at acceptors/coordinators/learners, the
two-tier catch-up (log replay above the truncation floor, chunked
resumable snapshot install below it), crash-recovery from the local
checkpoint, and the property that GC never drops an instance any correct
process may still need.
"""

import pytest

from repro.core.liveness import LivenessConfig
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.instances import (
    BatchingConfig,
    CheckpointConfig,
    FrontierTracker,
    ICatchUp,
    ISnapshotChunk,
    RetransmitConfig,
    build_smr,
)
from repro.smr.client import PipelinedClient
from repro.smr.machine import KVStore
from repro.smr.replica import OrderedReplica
from tests.conftest import cmd


def deploy(
    seed=1,
    drop_rate=0.0,
    n_learners=3,
    checkpoint=None,
    retransmit=None,
    liveness=None,
    batching=None,
    **kwargs,
):
    sim = Simulation(
        seed=seed,
        network=NetworkConfig(drop_rate=drop_rate),
        max_events=4_000_000,
    )
    cluster = build_smr(
        sim,
        n_learners=n_learners,
        liveness=liveness,
        batching=batching,
        retransmit=retransmit,
        checkpoint=checkpoint,
        **kwargs,
    )
    cluster.start_round(cluster.config.schedule.make_round(coord=0, count=1, rtype=2))
    return sim, cluster


def make_cmds(n, prefix="c"):
    return [cmd(f"{prefix}{i}", "put", f"k{prefix}{i}", i) for i in range(n)]


def pump(cluster, cmds, start=5.0, spacing=0.5, timeout=10_000.0, learners=None):
    for i, command in enumerate(cmds):
        cluster.propose(command, delay=start + spacing * i)
    watched = cluster.learners if learners is None else learners
    assert cluster.sim.run_until(
        lambda: all(l.has_delivered(c) for l in watched for c in cmds),
        timeout=cluster.sim.clock + timeout,
    )


# -- configuration and the frontier policy -----------------------------------


def test_checkpoint_config_validation():
    CheckpointConfig()  # defaults are valid
    with pytest.raises(ValueError):
        CheckpointConfig(interval=0)
    with pytest.raises(ValueError):
        CheckpointConfig(interval_bytes=0)
    with pytest.raises(ValueError):
        CheckpointConfig(gc_quorum=0)
    with pytest.raises(ValueError):
        CheckpointConfig(chunk_size=0)
    with pytest.raises(ValueError):
        CheckpointConfig(advertise_interval=0.0)


def test_frontier_tracker_policies():
    learners = ("learn0", "learn1", "learn2")
    # Per-replica policy (quorum=None): the minimum over all learners.
    tracker = FrontierTracker(learners, None)
    assert tracker.safe_bound() == 0
    tracker.update("learn0", 40)
    tracker.update("learn1", 30)
    assert tracker.safe_bound() == 0  # learn2 never advertised
    tracker.update("learn2", 10)
    assert tracker.safe_bound() == 10
    # Quorum policy: the k-th highest advertised frontier.
    tracker = FrontierTracker(learners, 2)
    tracker.update("learn0", 40)
    assert tracker.safe_bound() == 0  # only one checkpoint holder
    tracker.update("learn1", 30)
    assert tracker.safe_bound() == 30  # two learners cover [0, 30)
    # Monotone: stale (lower) advertisements never lower the bound.
    tracker.update("learn1", 5)
    assert tracker.safe_bound() == 30
    # Unknown senders are ignored, not trusted.
    tracker.update("intruder", 10_000)
    assert tracker.safe_bound() == 30


# -- snapshots, advertisement and garbage collection -------------------------


def test_snapshot_taken_at_interval_and_cluster_truncates():
    sim, cluster = deploy(
        checkpoint=CheckpointConfig(interval=10), retransmit=RetransmitConfig()
    )
    replicas = [OrderedReplica(l, KVStore()) for l in cluster.learners]
    pump(cluster, make_cmds(35))
    stats = cluster.checkpoint_stats()
    assert stats["snapshots"] >= 3
    assert stats["min_snap_frontier"] >= 30
    # Advertisements drove GC everywhere: votes, journals and decision
    # maps below the collective frontier are gone.
    assert stats["acceptor_floor"] >= 30
    assert stats["coordinator_floor"] >= 30
    retained = cluster.retained_state()
    assert retained["acceptor votes"] <= 10
    assert retained["acceptor journal"] <= 10
    assert retained["coordinator decided"] <= 10
    # The journal floor is durable metadata, not data loss.
    for acceptor in cluster.acceptors:
        assert acceptor.storage.floor("vote") == acceptor.gc_floor
    assert len({r.order_signature() for r in replicas}) == 1


def test_checkpoint_requires_retransmit():
    """Truncation without the catch-up layer would GC unrecoverable state."""
    with pytest.raises(ValueError):
        deploy(checkpoint=CheckpointConfig())


def test_gc_quorum_must_fit_learner_count():
    """An over-sized quorum must error, not silently weaken the policy."""
    with pytest.raises(ValueError):
        deploy(
            n_learners=3,
            checkpoint=CheckpointConfig(gc_quorum=4),
            retransmit=RetransmitConfig(),
        )


def test_interval_bytes_triggers_snapshot():
    checkpoint = CheckpointConfig(interval=10_000, interval_bytes=200)
    sim, cluster = deploy(checkpoint=checkpoint, retransmit=RetransmitConfig())
    pump(cluster, make_cmds(30))
    # The instance-count trigger alone would never fire.
    assert all(l.snapshots_taken >= 1 for l in cluster.learners)
    assert all(l.snap_frontier > 0 for l in cluster.learners)


def test_retained_state_flat_versus_linear_growth():
    """The checkpointed engine's retained state tracks the window."""

    def peak_retained(checkpoint):
        sim, cluster = deploy(
            seed=7, checkpoint=checkpoint, retransmit=RetransmitConfig()
        )
        peaks = {}

        def sample():
            for key, value in cluster.retained_state().items():
                peaks[key] = max(peaks.get(key, 0), value)
            sim.schedule(5.0, sample)

        sim.schedule(5.0, sample)
        pump(cluster, make_cmds(120), spacing=0.5)
        return peaks

    bounded = peak_retained(CheckpointConfig(interval=15))
    unbounded = peak_retained(None)
    # Without checkpointing the acceptors retain the whole history
    # (sampling may miss the very last decisions; ~linear is the point)...
    assert unbounded["acceptor votes"] >= 100
    assert unbounded["coordinator decided"] >= 100
    # ...with it, peaks track the checkpoint window (interval plus the
    # in-flight slack between a snapshot and its advertisement landing).
    assert bounded["acceptor votes"] <= 3 * 15
    assert bounded["acceptor journal"] <= 3 * 15
    assert bounded["coordinator decided"] <= 3 * 15


def test_all_policy_blocks_gc_below_crashed_learner():
    """gc_quorum=None: a dead learner's frontier pins the whole log."""
    sim, cluster = deploy(
        checkpoint=CheckpointConfig(interval=10),
        retransmit=RetransmitConfig(),
        liveness=LivenessConfig(),
    )
    pump(cluster, make_cmds(25))
    victim = cluster.learners[2]
    pinned = victim.snap_frontier
    victim.crash()
    pump(cluster, make_cmds(30, prefix="d"), start=1.0, learners=cluster.learners[:2])
    # Live learners checkpointed far past the victim...
    assert min(l.snap_frontier for l in cluster.learners[:2]) > pinned
    # ...but nothing was truncated beyond its last advertised frontier.
    assert all(a.gc_floor <= pinned for a in cluster.acceptors)
    assert all(c.gc_floor <= pinned for c in cluster.coordinators)


def test_quorum_policy_truncates_past_crashed_learner():
    sim, cluster = deploy(
        checkpoint=CheckpointConfig(interval=10, gc_quorum=2),
        retransmit=RetransmitConfig(),
        liveness=LivenessConfig(),
    )
    pump(cluster, make_cmds(25))
    victim = cluster.learners[2]
    pinned = victim.snap_frontier
    victim.crash()
    pump(cluster, make_cmds(30, prefix="d"), start=1.0, learners=cluster.learners[:2])
    # Two live checkpoint holders satisfy the policy: the log moves on.
    assert min(a.gc_floor for a in cluster.acceptors) > pinned


# -- two-tier catch-up and snapshot-based state transfer ----------------------


def test_laggard_restart_below_floor_installs_snapshot_and_converges():
    """The E12 acceptance scenario as a unit test.

    A learner crashes, the cluster truncates past its checkpoint, the
    learner restarts: log replay cannot serve it any more, so it must
    install a peer snapshot and then replay the suffix -- ending with the
    identical executed order and machine state.
    """
    sim, cluster = deploy(
        seed=3,
        checkpoint=CheckpointConfig(interval=10, gc_quorum=2, chunk_size=8),
        retransmit=RetransmitConfig(),
        liveness=LivenessConfig(),
    )
    replicas = [OrderedReplica(l, KVStore()) for l in cluster.learners]
    first = make_cmds(30)
    pump(cluster, first)
    victim = cluster.learners[2]
    victim.crash()
    second = make_cmds(40, prefix="d")
    for i, command in enumerate(second):
        cluster.propose(command, delay=1.0 + 0.5 * i)
    live = cluster.learners[:2]
    assert sim.run_until(
        lambda: all(l.has_delivered(c) for l in live for c in second),
        timeout=sim.clock + 10_000,
    )
    # The cluster truncated past the victim's durable checkpoint.
    assert min(a.gc_floor for a in cluster.acceptors) > victim.storage.read(
        "snapshot"
    )["frontier"]
    victim.recover()
    assert sim.run_until(
        lambda: all(victim.has_delivered(c) for c in first + second),
        timeout=sim.clock + 10_000,
    )
    assert victim.snapshot_installs >= 1
    assert len({r.order_signature() for r in replicas}) == 1
    assert len({r.machine.snapshot() for r in replicas}) == 1


def test_client_completes_commands_that_arrive_via_snapshot_install():
    """Regression (found by the nemesis soak): a snapshot install
    fast-forwards the replica's executed state without firing execute
    observers, so a client watching only that replica wedged when its
    in-flight commands landed inside the snapshot.  Completion must come
    through the learner's adoption hook instead."""
    sim, cluster = deploy(
        seed=3,
        checkpoint=CheckpointConfig(interval=10, gc_quorum=2, chunk_size=8),
        retransmit=RetransmitConfig(),
        liveness=LivenessConfig(),
    )
    replicas = [OrderedReplica(l, KVStore()) for l in cluster.learners]
    victim = cluster.learners[2]
    client = PipelinedClient("c0", cluster, window=30)
    client.watch_replica(replicas[2])
    mine = [cmd(f"m{i}", "put", f"km{i}", i) for i in range(20)]
    client.submit(mine)
    # Crash the watched learner once it has checkpointed part of the
    # window; the rest of the window decides while it is down.
    assert sim.run_until(
        lambda: sum(victim.has_delivered(c) for c in mine) >= 12,
        timeout=10_000,
    )
    victim.crash()
    background = make_cmds(40, prefix="bg")
    for i, command in enumerate(background):
        cluster.propose(command, delay=1.0 + 0.5 * i)
    live = cluster.learners[:2]
    assert sim.run_until(
        lambda: all(l.has_delivered(c) for l in live for c in mine + background),
        timeout=sim.clock + 10_000,
    )
    # The cluster truncated past the victim's durable checkpoint, so its
    # recovery must go through a snapshot install -- which covers the
    # client commands decided during the outage.
    assert min(a.gc_floor for a in cluster.acceptors) > victim.storage.read(
        "snapshot"
    )["frontier"]
    assert not client.all_completed()
    victim.recover()
    assert sim.run_until(client.all_completed, timeout=sim.clock + 10_000)
    assert victim.snapshot_installs >= 1


def test_gap_above_floor_served_from_log_without_install():
    """Tier one: a short outage is healed by plain log replay."""
    sim, cluster = deploy(
        seed=5,
        checkpoint=CheckpointConfig(interval=50, gc_quorum=2),
        retransmit=RetransmitConfig(),
    )
    pump(cluster, make_cmds(10))
    victim = cluster.learners[2]
    victim.crash()
    second = make_cmds(8, prefix="d")
    for i, command in enumerate(second):
        cluster.propose(command, delay=1.0 + 0.5 * i)
    live = cluster.learners[:2]
    assert sim.run_until(
        lambda: all(l.has_delivered(c) for l in live for c in second),
        timeout=sim.clock + 10_000,
    )
    victim.recover()
    assert sim.run_until(
        lambda: all(victim.has_delivered(c) for c in second),
        timeout=sim.clock + 10_000,
    )
    # Nothing was truncated past it, so no snapshot transfer was needed.
    assert victim.snapshot_installs == 0


def test_snapshot_transfer_resumes_after_chunk_loss():
    """Dropped chunks are re-requested, not restarted: install completes."""
    sim, cluster = deploy(
        seed=9,
        checkpoint=CheckpointConfig(interval=10, gc_quorum=2, chunk_size=4),
        retransmit=RetransmitConfig(catchup_interval=4.0),
        liveness=LivenessConfig(),
    )
    # Drop a fixed subset of snapshot chunks on first transmission.
    dropped = set()

    def drop_even_chunks_once(src, dst, msg):
        if isinstance(msg, ISnapshotChunk) and msg.seq % 2 == 0:
            key = (dst, msg.frontier, msg.seq)
            if key not in dropped:
                dropped.add(key)
                return True
        return False

    sim.network.add_drop_filter(drop_even_chunks_once)
    first = make_cmds(30)
    pump(cluster, first)
    victim = cluster.learners[2]
    victim.crash()
    second = make_cmds(30, prefix="d")
    for i, command in enumerate(second):
        cluster.propose(command, delay=1.0 + 0.5 * i)
    live = cluster.learners[:2]
    assert sim.run_until(
        lambda: all(l.has_delivered(c) for l in live for c in second),
        timeout=sim.clock + 10_000,
    )
    victim.recover()
    assert sim.run_until(
        lambda: all(victim.has_delivered(c) for c in first + second),
        timeout=sim.clock + 20_000,
    )
    assert victim.snapshot_installs >= 1
    assert dropped  # the fault actually fired


def test_snapshot_transfer_survives_lost_initial_request():
    """A transfer whose very first request (so *every* chunk) is lost must
    be re-driven by the catch-up tick, not abandoned half-armed."""
    from repro.smr.instances import ISnapshotRequest

    sim, cluster = deploy(
        seed=11,
        checkpoint=CheckpointConfig(interval=10, gc_quorum=2, chunk_size=8),
        retransmit=RetransmitConfig(catchup_interval=4.0),
        liveness=LivenessConfig(),
    )
    requests = []

    def drop_first_requests(src, dst, msg):
        if isinstance(msg, ISnapshotRequest) and len(requests) < 3:
            requests.append(msg)
            return True
        return False

    sim.network.add_drop_filter(drop_first_requests)
    first = make_cmds(30)
    pump(cluster, first)
    victim = cluster.learners[2]
    victim.crash()
    second = make_cmds(40, prefix="d")
    for i, command in enumerate(second):
        cluster.propose(command, delay=1.0 + 0.5 * i)
    live = cluster.learners[:2]
    assert sim.run_until(
        lambda: all(l.has_delivered(c) for l in live for c in second),
        timeout=sim.clock + 10_000,
    )
    assert min(a.gc_floor for a in cluster.acceptors) > victim.storage.read(
        "snapshot"
    )["frontier"]
    victim.recover()
    assert sim.run_until(
        lambda: all(victim.has_delivered(c) for c in first + second),
        timeout=sim.clock + 20_000,
    )
    assert requests  # the fault actually fired
    assert victim.snapshot_installs >= 1


def test_recovered_coordinator_phase1_skips_truncated_prefix():
    """A crash-recovered coordinator must not re-open [0, floor) as holes:
    the journalled GC floor keeps its recovery phase 1 O(window)."""
    sim, cluster = deploy(
        seed=6,
        checkpoint=CheckpointConfig(interval=10),
        retransmit=RetransmitConfig(),
        liveness=LivenessConfig(),
    )
    pump(cluster, make_cmds(35))
    coordinator = cluster.coordinators[0]
    floor = coordinator.gc_floor
    assert floor >= 30
    coordinator.crash()
    coordinator.recover()
    assert coordinator.gc_floor == floor  # journalled, not re-learned
    # A new round led by the recovered coordinator closes no holes below
    # the floor (its 2as would all be below-floor no-ops).
    rnd = cluster.config.schedule.make_round(coord=0, count=5, rtype=2)
    coordinator.start_round(rnd)
    sim.run(until=sim.clock + 10)
    assert coordinator.phase1_done
    assert all(i >= floor for i in coordinator._sent)
    # And the cluster still works end to end afterwards.
    pump(cluster, make_cmds(10, prefix="d"), start=1.0)


def test_trailing_decision_inside_window_still_retransmitted():
    """A live learner missing a decision *before* any checkpoint covers it
    must still be driven by proposer retransmission: unacked values are
    retired on the collective frontier passing their instance, never on a
    bare ack count."""
    from repro.smr.instances import I2b, IDecided

    sim, cluster = deploy(
        seed=8,
        checkpoint=CheckpointConfig(interval=50, gc_quorum=2),
        retransmit=RetransmitConfig(retry_interval=3.0),
    )
    laggard_pid = cluster.config.topology.learners[2]
    laggard = cluster.learners[2]

    # The last command's decision evidence never reaches learner 2.
    target = cmd("last", "put", "klast", 99)

    def blind_to_target(src, dst, msg):
        if dst != laggard_pid:
            return False
        if isinstance(msg, I2b) and msg.val == target:
            return True
        if isinstance(msg, IDecided) and msg.val == target:
            return True
        return False

    sim.network.add_drop_filter(blind_to_target)
    commands = make_cmds(19) + [target]
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 0.5 * i)
    live = cluster.learners[:2]
    assert sim.run_until(
        lambda: all(l.has_delivered(c) for l in live for c in commands),
        timeout=20_000,
    )
    # interval=50 > 20 commands: no checkpoint exists, so the proposers
    # must keep the value unacked and keep retrying.
    assert all(l.snapshots_taken == 0 for l in cluster.learners)
    assert any(target in p._unacked for p in cluster.proposers)
    # Unblind the learner: retransmission (IDecided re-announce) lands.
    sim.network.remove_drop_filter(blind_to_target)
    assert sim.run_until(
        lambda: laggard.has_delivered(target), timeout=sim.clock + 10_000
    )
    # Once every learner acked, the buffer retires.
    assert sim.run_until(
        lambda: all(target not in p._unacked for p in cluster.proposers),
        timeout=sim.clock + 10_000,
    )


def test_gap_at_last_prefrontier_instance_is_requested():
    """The instance just below an advertised frontier must be reachable by
    gap detection: gaps() includes its (advertisement-raised) top bound."""
    from repro.smr.instances import I2b, IDecided

    sim, cluster = deploy(
        seed=4,
        checkpoint=CheckpointConfig(interval=10, gc_quorum=2),
        retransmit=RetransmitConfig(catchup_interval=3.0),
    )
    laggard_pid = cluster.config.topology.learners[2]
    laggard = cluster.learners[2]
    commands = make_cmds(20)
    target = commands[-1]

    def blind_to_target(src, dst, msg):
        if dst != laggard_pid:
            return False
        if isinstance(msg, I2b) and msg.val == target:
            return True
        if isinstance(msg, IDecided) and msg.val == target:
            return True
        return False

    sim.network.add_drop_filter(blind_to_target)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 0.5 * i)
    live = cluster.learners[:2]
    assert sim.run_until(
        lambda: all(l.has_delivered(c) for l in live for c in commands),
        timeout=20_000,
    )
    # Peers checkpointed at (multiples of) the full run; the laggard sits
    # exactly one instance short.  The catch-up must close that last gap
    # -- via ICatchUp if the log still has it, or snapshot install if the
    # acceptors truncated it -- even with the evidence filter still up
    # (the filter passes ISnapshotChunk and acceptor re-I2b carries the
    # same value, which it blocks -- so lift it after the first poll to
    # model a transient, not permanent, blind spot).
    sim.run(until=sim.clock + 5.0)
    sim.network.remove_drop_filter(blind_to_target)
    assert sim.run_until(
        lambda: laggard.has_delivered(target), timeout=sim.clock + 10_000
    )


# -- crash-recovery from the local checkpoint ---------------------------------


def test_learner_recovery_restores_own_snapshot_then_replays_suffix():
    sim, cluster = deploy(
        seed=2,
        checkpoint=CheckpointConfig(interval=10),
        retransmit=RetransmitConfig(),
    )
    replicas = [OrderedReplica(l, KVStore()) for l in cluster.learners]
    pump(cluster, make_cmds(25))
    victim = cluster.learners[2]
    frontier = victim.snap_frontier
    assert frontier >= 20
    victim.crash()
    # The crash wipes volatile delivery state and the machine.
    assert victim.delivered == []
    assert replicas[2].executed == []
    victim.recover()
    # Snapshot-restore: the frontier and the delivered prefix come back
    # from the learner's own journalled checkpoint, not from replay.
    assert victim._next_delivery == frontier
    assert victim.delivered == cluster.learners[0].delivered[: len(victim.delivered)]
    assert replicas[2].executed == victim.delivered  # machine fast-forwarded
    # Suffix replay: the remainder converges through ordinary catch-up.
    pump(cluster, make_cmds(12, prefix="d"), start=1.0)
    assert len({r.order_signature() for r in replicas}) == 1
    assert len({r.machine.snapshot() for r in replicas}) == 1


def test_acceptor_recovery_reads_floor_and_journal_suffix():
    sim, cluster = deploy(
        checkpoint=CheckpointConfig(interval=10), retransmit=RetransmitConfig()
    )
    pump(cluster, make_cmds(35))
    acceptor = cluster.acceptors[0]
    floor = acceptor.gc_floor
    votes_before = dict(acceptor.votes)
    assert floor >= 30
    acceptor.crash()
    assert acceptor.votes == {}
    acceptor.recover()
    assert acceptor.gc_floor == floor
    assert acceptor.votes == votes_before
    assert all(instance >= floor for instance in acceptor.votes)


def test_phase1_hole_closing_respects_replier_floors():
    """Vote absence below a replier's truncation floor is not evidence.

    A coordinator whose own floor is stale (here: a fresh coordinator of
    a new round) must not no-op-close instances below a phase-1 replier's
    floor -- those votes may be decided-then-truncated, and closing them
    with NOOP at a higher round would overwrite a chosen value.
    """
    sim, cluster = deploy(
        seed=12,
        checkpoint=CheckpointConfig(interval=10, gc_quorum=2),
        retransmit=RetransmitConfig(),
        liveness=LivenessConfig(),
    )
    replicas = [OrderedReplica(l, KVStore()) for l in cluster.learners]
    first = make_cmds(30)
    pump(cluster, first)
    sim.run(until=sim.clock + 20)  # let the periodic advertisements land
    floor = min(a.gc_floor for a in cluster.acceptors)
    assert floor >= 30
    # Wipe coordinator 1's memory of the truncated prefix (its journalled
    # floor included), then make it lead a new round: the only floor
    # knowledge left is what the phase-1 replies carry.
    coordinator = cluster.coordinators[1]
    coordinator.crash()
    coordinator.storage.clear()
    coordinator.recover()
    assert coordinator.gc_floor == 0
    rnd = cluster.config.schedule.make_round(coord=1, count=7, rtype=2)
    coordinator.start_round(rnd)
    sim.run(until=sim.clock + 15)
    assert coordinator.phase1_done
    # The replier floors stopped it from re-opening [0, floor).
    assert coordinator.gc_floor >= floor
    assert all(i >= floor for i in coordinator._sent)
    # And no learner saw a conflicting (NOOP-overwritten) decision: the
    # consistency oracle in on_i2b/_check_consistent would have raised.
    pump(cluster, make_cmds(10, prefix="d"), start=1.0)
    assert len({r.order_signature() for r in replicas}) == 1


# -- the GC-safety property ---------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_gc_never_drops_an_instance_a_correct_process_needs(seed):
    """Randomized runs: message loss, a mid-run learner outage, continuous
    truncation -- and still every learner converges to the identical full
    order, and no truncation floor ever overtakes the checkpoint policy's
    justification (the quorum-th highest durable learner frontier)."""
    sim, cluster = deploy(
        seed=seed,
        drop_rate=0.15,
        checkpoint=CheckpointConfig(interval=8, gc_quorum=2, chunk_size=8),
        retransmit=RetransmitConfig(retry_interval=4.0, gossip_interval=5.0, catchup_interval=4.0),
        liveness=LivenessConfig(),
    )
    replicas = [OrderedReplica(l, KVStore()) for l in cluster.learners]
    victim = cluster.learners[seed % 3]

    def durable_frontier(learner):
        # The invariant is about *durable* checkpoints: a crashed
        # learner's volatile snap_frontier is 0, but its journalled
        # checkpoint (which justified earlier truncation) survives.
        snapshot = learner.storage._data.get("snapshot")
        return snapshot["frontier"] if snapshot is not None else 0

    def check_floors():
        frontiers = sorted(
            (durable_frontier(l) for l in cluster.learners), reverse=True
        )
        justification = frontiers[1]  # gc_quorum=2: the 2nd highest
        for acceptor in cluster.acceptors:
            assert acceptor.gc_floor <= justification
        for coordinator in cluster.coordinators:
            assert coordinator.gc_floor <= justification
        sim.schedule(3.0, check_floors)

    sim.schedule(3.0, check_floors)
    commands = make_cmds(60)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 0.8 * i)
    sim.schedule(20.0, victim.crash)
    sim.schedule(45.0, victim.recover)
    assert cluster.run_until_delivered(commands, timeout=30_000)
    assert len({r.order_signature() for r in replicas}) == 1
    assert len({r.machine.snapshot() for r in replicas}) == 1
