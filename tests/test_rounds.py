"""Round numbers and round schedules (Sections 4.4-4.5)."""

import pytest

from repro.core.rounds import (
    ZERO,
    RoundId,
    RoundKind,
    RoundSchedule,
    RoundTypePolicy,
    majorities,
)


def test_zero_is_smallest():
    assert ZERO < RoundId(0, 1, 0, 0)
    assert ZERO < RoundId(1, 0, 0, 0)
    assert not RoundId(0, 1, 0, 0) < ZERO


def test_lexicographic_order():
    assert RoundId(0, 1, 2, 0) < RoundId(0, 2, 0, 0)  # count dominates coord
    assert RoundId(0, 5, 9, 9) < RoundId(1, 0, 0, 0)  # mcount dominates all
    assert RoundId(0, 1, 0, 0) < RoundId(0, 1, 1, 0)  # coord breaks ties
    assert RoundId(0, 1, 1, 0) < RoundId(0, 1, 1, 2)  # rtype last


def test_total_ordering_helpers():
    a, b = RoundId(0, 1, 0, 1), RoundId(0, 2, 0, 1)
    assert a <= b and a < b and b > a and b >= a
    assert max(a, b) == b


def test_round_equality_and_hash():
    assert RoundId(0, 1, 2, 3) == RoundId(0, 1, 2, 3)
    assert hash(RoundId(0, 1, 2, 3)) == hash(RoundId(0, 1, 2, 3))


def test_policy_default_mapping():
    policy = RoundTypePolicy()
    assert policy.kind(0) is RoundKind.FAST
    assert policy.kind(1) is RoundKind.SINGLE
    assert policy.kind(2) is RoundKind.MULTI
    assert policy.kind(7) is RoundKind.SINGLE


def test_policy_clustered_range_of_fast_rtypes():
    policy = RoundTypePolicy(fast_rtypes=frozenset(range(5)))
    assert all(policy.kind(i) is RoundKind.FAST for i in range(5))
    assert policy.kind(5) is RoundKind.SINGLE


def test_kind_flags():
    assert RoundKind.FAST.is_fast and not RoundKind.FAST.is_classic
    assert RoundKind.MULTI.is_classic and not RoundKind.MULTI.is_fast
    assert RoundKind.SINGLE.is_classic


def test_schedule_single_round_quorum_is_owner():
    schedule = RoundSchedule([0, 1, 2])
    rnd = schedule.make_round(coord=1, count=1, rtype=1)
    assert schedule.coord_quorums(rnd) == (frozenset({1}),)
    assert schedule.coordinators_of(rnd) == frozenset({1})


def test_schedule_multi_round_quorums_are_majorities():
    schedule = RoundSchedule([0, 1, 2])
    rnd = schedule.make_round(coord=0, count=1, rtype=2)
    quorums = schedule.coord_quorums(rnd)
    assert set(quorums) == {frozenset({0, 1}), frozenset({0, 2}), frozenset({1, 2})}
    # Assumption 3: pairwise intersection.
    for p in quorums:
        for q in quorums:
            assert p & q


def test_schedule_fast_round_singleton_quorums():
    schedule = RoundSchedule([0, 1, 2])
    rnd = schedule.make_round(coord=0, count=1, rtype=0)
    assert set(schedule.coord_quorums(rnd)) == {
        frozenset({0}),
        frozenset({1}),
        frozenset({2}),
    }
    assert schedule.is_fast(rnd)


def test_zero_round_has_no_coordinators_and_is_classic():
    schedule = RoundSchedule([0, 1, 2])
    assert schedule.coord_quorums(ZERO) == ()
    assert schedule.coordinators_of(ZERO) == frozenset()
    assert not schedule.is_fast(ZERO)


def test_is_coord_quorum():
    schedule = RoundSchedule([0, 1, 2])
    rnd = schedule.make_round(coord=0, count=1, rtype=2)
    assert schedule.is_coord_quorum(rnd, frozenset({0, 1}))
    assert schedule.is_coord_quorum(rnd, frozenset({0, 1, 2}))
    assert not schedule.is_coord_quorum(rnd, frozenset({2}))


def test_next_round_increments_count():
    schedule = RoundSchedule([0, 1, 2])
    rnd = schedule.make_round(coord=1, count=3, rtype=2)
    nxt = schedule.next_round(rnd)
    assert nxt.count == 4 and nxt.coord == 1 and nxt > rnd


def test_next_round_recovery_rtype():
    schedule = RoundSchedule([0, 1, 2], recovery_rtype=1)
    rnd = schedule.make_round(coord=0, count=1, rtype=2)
    assert schedule.next_round(rnd).rtype == 1
    assert schedule.next_round(rnd, rtype=0).rtype == 0


def test_make_round_count_zero_reserved():
    schedule = RoundSchedule([0])
    with pytest.raises(ValueError):
        schedule.make_round(coord=0, count=0, rtype=1)


def test_single_round_unknown_owner_rejected():
    schedule = RoundSchedule([0, 1])
    with pytest.raises(ValueError):
        schedule.coord_quorums(RoundId(0, 1, 9, 1))


def test_empty_coordinators_rejected():
    with pytest.raises(ValueError):
        RoundSchedule([])


def test_majorities_sizes():
    assert majorities([0]) == (frozenset({0}),)
    assert set(majorities([0, 1])) == {frozenset({0, 1})}
    assert len(majorities([0, 1, 2, 3])) == 4  # C(4,3) minimal majorities
    for quorum in majorities([0, 1, 2, 3]):
        assert len(quorum) == 3


def test_str_rendering():
    assert "c0" in str(RoundId(0, 1, 0, 2))
