"""protolint: each rule fires on the planted fixtures and only there.

The fixture corpus under ``lint_fixtures/`` is the analyzer's oracle:
``violations/`` plants one instance of every defect class each rule
exists to catch (including the minimized ``_observed`` durability bug
that motivated the tool), and ``clean/`` is a miniature protocol that
exercises the same constructs correctly.  A rule change that stops
firing on a plant, or starts firing on the clean corpus, fails here.
The final test is the gate CI enforces: the production tree itself is
finding-free.
"""

from pathlib import Path

import pytest

from repro.lint import RULES, run_lint
from repro.lint.cli import main as lint_main

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures"
VIOLATIONS = FIXTURES / "violations"
CLEAN = FIXTURES / "clean"


def messages(findings, rule=None):
    return [f.message for f in findings if rule is None or f.rule == rule]


# -- durability ---------------------------------------------------------------


def test_durability_catches_observed_bug():
    findings = run_lint(
        [VIOLATIONS / "durability_observed.py"], rules=["durability"]
    )
    assert any(
        "BuggyCoordinator._observed" in m for m in messages(findings)
    ), findings


def test_durability_partial_journaling():
    findings = run_lint(
        [VIOLATIONS / "durability_observed.py"], rules=["durability"]
    )
    texts = messages(findings)
    # horizon is mutated in on_vote and never journalled...
    assert any("PartiallyDurable.horizon" in m for m in texts)
    # ...while the journalled, restored, and VOLATILE attrs stay silent.
    assert not any(".votes" in m for m in texts)
    assert not any(".stats" in m for m in texts)
    assert not any(".crnd" in m for m in texts)


def test_durability_findings_name_the_handler():
    findings = run_lint(
        [VIOLATIONS / "durability_observed.py"], rules=["durability"]
    )
    assert any("on_propose" in m for m in messages(findings))


# -- determinism --------------------------------------------------------------


def test_determinism_catches_each_hazard():
    findings = run_lint(
        [VIOLATIONS / "determinism_hazards.py"], rules=["determinism"]
    )
    texts = " | ".join(messages(findings))
    assert "random.random()" in texts
    assert "without a seed" in texts
    assert "wall-clock read time.time()" in texts
    assert "id()-based ordering" in texts
    assert "iteration over a set feeds an ordered sink" in texts
    assert "iteration over .values() feeds an ordered sink" in texts
    assert "next(iter(<set>))" in texts
    assert "list(<set>)" in texts


# -- taxonomy -----------------------------------------------------------------


def test_taxonomy_catches_every_drift_direction():
    findings = run_lint(
        [VIOLATIONS / "taxonomy_drift.py"],
        rules=["taxonomy"],
        docs=VIOLATIONS / "docs.md",
    )
    texts = " | ".join(messages(findings))
    assert "message Orphan is sent but no Process subclass" in texts
    assert "message Ghost has a handler but is never constructed" in texts
    assert "handler on_retired matches no frozen-dataclass" in texts
    assert "message Pong has no row" in texts
    assert "documented message Legacy does not exist" in texts
    # Ping is handled, constructed, and documented: silent.
    assert "message Ping" not in texts


# -- config -------------------------------------------------------------------


def test_config_catches_missing_and_partial_validation():
    findings = run_lint(
        [VIOLATIONS / "config_unvalidated.py"], rules=["config"]
    )
    texts = " | ".join(messages(findings))
    assert "TimeoutConfig has numeric fields" in texts
    assert "PartialConfig.depth" in texts
    # rate is referenced in __post_init__, label is not numeric: silent.
    assert "PartialConfig.rate" not in texts
    assert "label" not in texts


# -- clean corpus -------------------------------------------------------------


def test_clean_fixture_has_zero_findings_across_all_rules():
    findings = run_lint([CLEAN], docs=CLEAN / "docs.md")
    assert findings == [], [f.render() for f in findings]


# -- suppressions -------------------------------------------------------------


def test_inline_suppression_silences_one_line(tmp_path):
    hazard = "import time\n\ndef f():\n    return time.time()\n"
    unsuppressed = tmp_path / "a.py"
    unsuppressed.write_text(hazard)
    suppressed = tmp_path / "b.py"
    suppressed.write_text(
        hazard.replace(
            "return time.time()",
            "return time.time()  # protolint: ignore[determinism]",
        )
    )
    assert run_lint([unsuppressed], rules=["determinism"]) != []
    assert run_lint([suppressed], rules=["determinism"]) == []


def test_comment_line_suppression_reaches_next_line(tmp_path):
    path = tmp_path / "c.py"
    path.write_text(
        "import time\n\ndef f():\n"
        "    # justified: host-time logging only\n"
        "    # protolint: ignore[determinism]\n"
        "    return time.time()\n"
    )
    assert run_lint([path], rules=["determinism"]) == []


def test_unknown_rule_is_an_error():
    with pytest.raises(ValueError):
        run_lint([CLEAN], rules=["no-such-rule"])


# -- CLI ----------------------------------------------------------------------


def test_cli_exit_codes(capsys):
    assert (
        lint_main(
            ["--docs", str(CLEAN / "docs.md"), str(CLEAN)]
        )
        == 0
    )
    assert (
        lint_main(
            ["--docs", str(VIOLATIONS / "docs.md"), str(VIOLATIONS)]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "[durability]" in out and "[taxonomy]" in out


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in RULES:
        assert name in out


# -- the gate -----------------------------------------------------------------


def test_production_tree_is_finding_free():
    findings = run_lint([REPO / "src" / "repro"], docs=REPO / "docs" / "messages.md")
    assert findings == [], "\n".join(f.render() for f in findings)
