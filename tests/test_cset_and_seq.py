"""Command-set and command-sequence c-structs."""

import pytest

from repro.cstruct.base import IncompatibleError
from repro.cstruct.cset import CommandSet
from repro.cstruct.seq import CommandSequence
from tests.conftest import cmd

A, B, C = cmd("a"), cmd("b"), cmd("c")


# -- command sets ------------------------------------------------------------


def test_set_append_adds():
    assert CommandSet.bottom().append(A).cmds == frozenset({A})


def test_set_append_idempotent():
    one = CommandSet.of(A)
    assert one.append(A) is one


def test_set_order_is_inclusion():
    assert CommandSet.of(A).leq(CommandSet.of(A, B))
    assert not CommandSet.of(A, B).leq(CommandSet.of(A))


def test_set_glb_is_intersection():
    assert CommandSet.of(A, B).glb(CommandSet.of(B, C)) == CommandSet.of(B)


def test_set_lub_is_union():
    assert CommandSet.of(A).lub(CommandSet.of(B)) == CommandSet.of(A, B)


def test_sets_always_compatible():
    assert CommandSet.of(A).is_compatible(CommandSet.of(B))


def test_set_contains():
    assert CommandSet.of(A).contains(A)
    assert not CommandSet.of(A).contains(B)


# -- command sequences ---------------------------------------------------------


def test_seq_append_preserves_order():
    assert CommandSequence.bottom().extend([A, B]).cmds == (A, B)


def test_seq_append_dedupes():
    assert CommandSequence.of(A, B).append(A).cmds == (A, B)


def test_seq_duplicates_rejected_at_construction():
    with pytest.raises(ValueError):
        CommandSequence.of(A, A)


def test_seq_order_is_prefix():
    assert CommandSequence.of(A).leq(CommandSequence.of(A, B))
    assert not CommandSequence.of(B).leq(CommandSequence.of(A, B))
    assert not CommandSequence.of(A, B).leq(CommandSequence.of(A))


def test_seq_glb_longest_common_prefix():
    left = CommandSequence.of(A, B, C)
    right = CommandSequence.of(A, B)
    assert left.glb(right) == CommandSequence.of(A, B)
    diverging = CommandSequence.of(A, C)
    assert left.glb(diverging) == CommandSequence.of(A)


def test_seq_compatibility_is_prefix_relation():
    assert CommandSequence.of(A).is_compatible(CommandSequence.of(A, B))
    assert not CommandSequence.of(A, B).is_compatible(CommandSequence.of(B, A))


def test_seq_lub_is_longer_of_compatible():
    assert CommandSequence.of(A).lub(CommandSequence.of(A, B)) == CommandSequence.of(A, B)


def test_seq_lub_incompatible_raises():
    with pytest.raises(IncompatibleError):
        CommandSequence.of(A).lub(CommandSequence.of(B))


def test_seq_len_and_str():
    assert len(CommandSequence.of(A, B)) == 2
    assert str(CommandSequence.bottom()) == "⊥"


def test_sequence_linear_extension_is_its_order():
    a, b, c = cmd("a"), cmd("b"), cmd("c")
    seq = CommandSequence.of(c, a, b)
    assert seq.linear_extension() == (c, a, b)


def test_cset_linear_extension_is_deterministic():
    a, b, c = cmd("a"), cmd("b"), cmd("c")
    left = CommandSet.of(c, a, b).linear_extension()
    right = CommandSet.of(b, c, a).linear_extension()
    assert left == right  # sorted, not hash order
    assert set(left) == {a, b, c}
