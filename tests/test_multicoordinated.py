"""Multicoordinated Paxos for consensus (Section 3.1)."""

import pytest

from repro.core.invariants import attach_consensus_oracle
from repro.core.multicoordinated import build_consensus
from repro.core.rounds import RoundSchedule
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from tests.conftest import cmd

A = cmd("a", "put", "x", 1)
B = cmd("b", "put", "x", 2)


def deploy(seed=1, jitter=0.0, drop=0.0, **kwargs):
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter, drop_rate=drop))
    cluster = build_consensus(sim, **kwargs)
    return sim, cluster


def start(cluster, rtype, coord=0, count=1):
    rnd = cluster.config.schedule.make_round(coord=coord, count=count, rtype=rtype)
    cluster.start_round(rnd)
    return rnd


# -- basic decisions per round kind ---------------------------------------------


@pytest.mark.parametrize("rtype,expected_steps", [(1, 3.0), (2, 3.0)])
def test_classic_rounds_decide_in_three_steps(rtype, expected_steps):
    sim, cluster = deploy()
    start(cluster, rtype)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_decided(timeout=100)
    assert cluster.decision() == A
    assert sim.metrics.latency_of(A) == expected_steps


def test_fast_round_decides_in_two_steps():
    sim, cluster = deploy(n_acceptors=4)
    start(cluster, rtype=0)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_decided(timeout=100)
    assert sim.metrics.latency_of(A) == 2.0


def test_all_learners_agree():
    sim, cluster = deploy(n_learners=3)
    start(cluster, rtype=2)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_decided(timeout=100)
    assert cluster.decided_values() == [A, A, A]


def test_decision_is_a_proposed_value():
    sim, cluster = deploy(n_proposers=2)
    oracle = attach_consensus_oracle(sim, cluster, [A, B])
    start(cluster, rtype=2)
    cluster.propose(A, delay=5.0, proposer=0)
    cluster.propose(B, delay=5.5, proposer=1)
    assert cluster.run_until_decided(timeout=300)
    assert cluster.decision() in (A, B)


# -- multicoordinated availability (the paper's headline property) ----------------


def test_multicoordinated_round_survives_one_coordinator_crash():
    sim, cluster = deploy(n_coordinators=3)
    start(cluster, rtype=2)
    sim.run(until=10)  # phase 1 completes
    cluster.coordinators[1].crash()
    cluster.propose(A, delay=1.0)
    assert cluster.run_until_decided(timeout=100)
    assert cluster.decision() == A


def test_multicoordinated_round_blocked_without_coordinator_quorum():
    sim, cluster = deploy(n_coordinators=3)
    start(cluster, rtype=2)
    sim.run(until=10)
    cluster.coordinators[0].crash()
    cluster.coordinators[1].crash()  # no majority of coordinators left
    cluster.propose(A, delay=1.0)
    assert not cluster.run_until_decided(timeout=100)


def test_single_coordinated_round_blocked_by_owner_crash():
    sim, cluster = deploy(n_coordinators=3)
    start(cluster, rtype=1)
    sim.run(until=10)
    cluster.coordinators[0].crash()
    cluster.propose(A, delay=1.0)
    assert not cluster.run_until_decided(timeout=100)


def test_acceptor_minority_crash_tolerated():
    sim, cluster = deploy(n_acceptors=3)
    start(cluster, rtype=2)
    sim.run(until=10)
    cluster.acceptors[0].crash()
    cluster.propose(A, delay=1.0)
    assert cluster.run_until_decided(timeout=100)


def test_acceptor_majority_crash_blocks():
    sim, cluster = deploy(n_acceptors=3)
    start(cluster, rtype=2)
    sim.run(until=10)
    cluster.acceptors[0].crash()
    cluster.acceptors[1].crash()
    cluster.propose(A, delay=1.0)
    assert not cluster.run_until_decided(timeout=100)


# -- rounds and safety across rounds ------------------------------------------------


def test_higher_round_preserves_chosen_value():
    """Once a value is chosen, later rounds must pick it up (phase 1)."""
    sim, cluster = deploy()
    start(cluster, rtype=2)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_decided(timeout=100)
    # Start a higher single-coordinated round owned by another coordinator
    # and propose a different value: the decision must not change.
    rnd2 = cluster.config.schedule.make_round(coord=1, count=2, rtype=1)
    cluster.coordinators[1].pending.append(B)
    cluster.start_round(rnd2)
    sim.run(until=sim.clock + 50)
    assert cluster.decision() == A
    for learner in cluster.learners:
        assert learner.learned == A


def test_stale_round_gets_nacked():
    sim, cluster = deploy()
    rnd2 = cluster.config.schedule.make_round(coord=1, count=2, rtype=1)
    cluster.start_round(rnd2, coordinator=1)
    sim.run(until=10)
    rnd1 = cluster.config.schedule.make_round(coord=0, count=1, rtype=1)
    cluster.coordinators[0].crnd  # still ZERO
    cluster.start_round(rnd1, coordinator=0)
    sim.run(until=20)
    assert cluster.coordinators[0].highest_seen >= rnd2


def test_round_must_be_started_by_its_coordinator():
    sim, cluster = deploy(n_coordinators=3)
    rnd = cluster.config.schedule.make_round(coord=0, count=1, rtype=1)
    with pytest.raises(ValueError):
        cluster.coordinators[1].start_round(rnd)


def test_round_numbers_must_increase():
    sim, cluster = deploy()
    rnd = start(cluster, rtype=2)
    sim.run(until=5)
    with pytest.raises(ValueError):
        cluster.coordinators[0].start_round(rnd)


# -- collisions (Section 4.2) ----------------------------------------------------------


def test_multicoordinated_collision_detected_and_resolved():
    found_collision = False
    for seed in range(20):
        sim, cluster = deploy(seed=seed, jitter=0.9, n_proposers=2)
        oracle = attach_consensus_oracle(sim, cluster, [A, B])
        start(cluster, rtype=2)
        cluster.propose(A, delay=6.0, proposer=0)
        cluster.propose(B, delay=6.0, proposer=1)
        assert cluster.run_until_decided(timeout=500), f"seed {seed} undecided"
        if sum(a.collisions_detected for a in cluster.acceptors):
            found_collision = True
    assert found_collision


def test_multicoordinated_collision_rarely_wastes_disk_writes():
    """Section 4.2: colliding 2a values are (almost) never accepted.

    Collision detection fires *before* acceptance, so unlike fast rounds no
    acceptor-quorum's worth of losing values hits the disk.  An individual
    acceptor may still have accepted the losing value just before the
    collision surfaced (it saw an agreeing coordinator quorum), so the
    claim is statistical: far below one wasted write per collision,
    against >= 2 for fast rounds (see experiment E5b).
    """
    collided_runs = 0
    wasted_total = 0
    for seed in range(20):
        sim, cluster = deploy(seed=seed, jitter=0.9, n_proposers=2)
        start(cluster, rtype=2)
        cluster.propose(A, delay=6.0, proposer=0)
        cluster.propose(B, delay=6.0, proposer=1)
        assert cluster.run_until_decided(timeout=500)
        if not sum(a.collisions_detected for a in cluster.acceptors):
            continue
        collided_runs += 1
        decision = cluster.decision()
        wasted_total += sum(
            sum(1 for rnd, val in acc.accept_log if val != decision)
            for acc in cluster.acceptors
        )
    assert collided_runs > 0
    assert wasted_total / collided_runs < 0.5


def test_fast_collision_coordinated_recovery():
    recovered = 0
    for seed in range(20):
        sim, cluster = deploy(seed=seed, jitter=0.9, n_proposers=2, n_acceptors=4)
        oracle = attach_consensus_oracle(sim, cluster, [A, B])
        start(cluster, rtype=0)
        cluster.propose(A, delay=6.0, proposer=0)
        cluster.propose(B, delay=6.0, proposer=1)
        assert cluster.run_until_decided(timeout=500), f"seed {seed} undecided"
        recovered += sum(c.collisions_recovered for c in cluster.coordinators)
    assert recovered > 0


# -- fault model ---------------------------------------------------------------------


def test_acceptor_recovery_bumps_mcount():
    sim, cluster = deploy()
    start(cluster, rtype=2)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_decided(timeout=100)
    acceptor = cluster.acceptors[0]
    acceptor.crash()
    acceptor.recover()
    assert acceptor.storage.read("mcount") == 1
    assert acceptor.rnd.mcount == 1
    assert acceptor.vval == A  # vote reloaded from stable storage


def test_acceptor_recovery_without_reduction_reloads_rnd():
    sim, cluster = deploy(reduce_disk_writes=False)
    rnd = start(cluster, rtype=2)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_decided(timeout=100)
    acceptor = cluster.acceptors[0]
    acceptor.crash()
    acceptor.recover()
    assert acceptor.rnd == rnd


def test_message_loss_tolerated_with_retransmission():
    """Drops may require client retry; safety is never violated."""
    decided = 0
    for seed in range(10):
        sim, cluster = deploy(seed=seed, drop=0.1)
        oracle = attach_consensus_oracle(sim, cluster, [A])
        start(cluster, rtype=2)
        for attempt in range(5):
            cluster.propose(A, delay=5.0 + attempt * 20, proposer=0)
        if cluster.run_until_decided(timeout=500):
            decided += 1
            assert cluster.decision() == A
    assert decided >= 8


def test_duplicated_messages_are_harmless():
    sim = Simulation(seed=2, network=NetworkConfig(duplicate_rate=0.5))
    cluster = build_consensus(sim)
    oracle = attach_consensus_oracle(sim, cluster, [A])
    start(cluster, rtype=2)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_decided(timeout=200)
    assert cluster.decision() == A
