"""Edge paths of the protocol engines: nacks, adoption, stale messages."""

from repro.core.generalized import build_generalized
from repro.core.liveness import LivenessConfig
from repro.core.messages import ANY, Learned, Nack, Phase1a, Phase2a
from repro.core.multicoordinated import build_consensus
from repro.core.rounds import ZERO, RoundId
from repro.cstruct.history import CommandHistory
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.machine import kv_conflict
from tests.conftest import cmd

A = cmd("a", "put", "x", 1)
B = cmd("b", "put", "x", 2)


def test_any_is_a_singleton():
    from repro.core.messages import _AnyValue

    assert _AnyValue() is ANY
    assert repr(ANY) == "ANY"


def test_acceptor_nacks_stale_1a():
    sim = Simulation(seed=1)
    cluster = build_consensus(sim)
    high = cluster.config.schedule.make_round(1, 2, 1)
    cluster.start_round(high, coordinator=1)
    sim.run(until=10)
    low = cluster.config.schedule.make_round(0, 1, 1)
    acceptor = cluster.acceptors[0]
    acceptor.deliver(Phase1a(low), "coord0")
    sim.run(until=15)
    # The stale coordinator learns about the higher round via the nack.
    assert cluster.coordinators[0].highest_seen >= high


def test_acceptor_nacks_stale_2a():
    sim = Simulation(seed=1)
    cluster = build_generalized(sim, bottom=CommandHistory.bottom(kv_conflict()))
    high = cluster.config.schedule.make_round(1, 2, 1)
    cluster.start_round(high, coordinator=1)
    sim.run(until=10)
    low = cluster.config.schedule.make_round(0, 1, 1)
    stale = Phase2a(low, CommandHistory.bottom(kv_conflict()), 0)
    cluster.acceptors[0].deliver(stale, "coord0")
    sim.run(until=15)
    assert cluster.coordinators[0].highest_seen >= high


def test_coordinator_adopts_round_via_1b():
    """A coordinator of a multicoordinated round joins when 1b arrive,
    even though another coordinator sent the 1a."""
    sim = Simulation(seed=1)
    cluster = build_consensus(sim)
    rnd = cluster.config.schedule.make_round(0, 1, 2)
    cluster.start_round(rnd)  # coordinator 0 sends the 1a
    sim.run(until=10)
    assert cluster.coordinators[1].crnd == rnd
    assert cluster.coordinators[2].crnd == rnd


def test_learned_notification_clears_unserved():
    sim = Simulation(seed=1)
    cluster = build_generalized(
        sim, bottom=CommandHistory.bottom(kv_conflict()), liveness=LivenessConfig()
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=200)
    sim.run(until=sim.clock + 5)  # let the Learned notifications arrive
    for coordinator in cluster.coordinators:
        assert A not in coordinator._unserved
        assert A in coordinator._learned_cmds


def test_learned_message_handled_even_without_liveness():
    sim = Simulation(seed=1)
    cluster = build_generalized(sim, bottom=CommandHistory.bottom(kv_conflict()))
    cluster.coordinators[0].deliver(Learned((A,), "learn0"), "learn0")
    assert A in cluster.coordinators[0]._learned_cmds


def test_duplicate_propose_is_idempotent():
    sim = Simulation(seed=1)
    cluster = build_generalized(sim, bottom=CommandHistory.bottom(kv_conflict()))
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    for _ in range(3):
        cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=200)
    coordinator = cluster.coordinators[0]
    assert coordinator.known_cmds.count(A) == 1


def test_acceptor_ignores_duplicate_2a_content():
    sim = Simulation(seed=1, network=NetworkConfig(duplicate_rate=0.6))
    cluster = build_generalized(sim, bottom=CommandHistory.bottom(kv_conflict()))
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=200)
    # Exactly one acceptance batch per acceptor despite duplicates.
    for acceptor in cluster.acceptors:
        assert acceptor.storage.write_counts["vval"] <= 2


def test_consensus_cluster_decision_none_before_learning():
    sim = Simulation(seed=1)
    cluster = build_consensus(sim)
    assert cluster.decision() is None
    assert cluster.decided_values() == []


def test_zero_round_never_adopted():
    sim = Simulation(seed=1)
    cluster = build_generalized(sim, bottom=CommandHistory.bottom(kv_conflict()))
    assert cluster.coordinators[0].crnd == ZERO
    assert cluster.acceptors[0].rnd == ZERO
    cluster.propose(A, delay=5.0)
    sim.run(until=20)
    # Without a started round nothing can be accepted or learned.
    assert all(a.vval.is_bottom() for a in cluster.acceptors)
    assert all(l.learned.is_bottom() for l in cluster.learners)


def test_nack_carries_higher_round():
    nack = Nack(RoundId(0, 1, 0, 1), RoundId(0, 5, 1, 1), "acc0")
    assert nack.higher > nack.rnd


def test_simulation_is_deterministic_per_seed():
    def run(seed):
        sim = Simulation(seed=seed, network=NetworkConfig(jitter=0.8))
        cluster = build_generalized(
            sim, bottom=CommandHistory.bottom(kv_conflict()), n_proposers=2
        )
        cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
        cluster.propose(A, delay=5.0, proposer=0)
        cluster.propose(B, delay=5.0, proposer=1)
        cluster.run_until_learned([A, B], timeout=1000)
        return (
            str(cluster.learners[0].learned),
            sim.metrics.total_messages,
            sim.clock,
        )

    assert run(3) == run(3)
