"""Transport conformance: the same scenarios on the simulator and on sockets.

The Runtime seam's contract is that the role classes cannot tell the
backends apart.  This suite runs one scenario matrix -- basic liveness,
lossy-link convergence, learner crash + snapshot-install recovery --
against **both** implementations:

* ``sim``: the deterministic :class:`Simulation` (virtual time, seeded
  drops), the repository's test oracle;
* ``net``: a :class:`LoopbackDeployment` -- one asyncio runtime per node,
  every message crossing a real loopback UDP/TCP socket through the
  versioned codec, wall-clock timers.

The *assertions* are identical (all commands delivered everywhere,
learner orders identical, no transport errors); only the time scales
differ (simulator units vs sub-second wall-clock configs).  Slow
wall-clock cases are skipped under ``CI=quick``.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass

import pytest

from repro.core.checkpoint import CheckpointConfig, RetransmitConfig
from repro.core.liveness import LivenessConfig
from repro.cstruct.commands import Command
from repro.net.cluster import (
    LoopbackDeployment,
    wall_clock_checkpoint,
    wall_clock_liveness,
    wall_clock_retransmit,
)
from repro.net.transport import DEFAULT_MTU
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.client import PipelinedClient
from repro.smr.instances import build_smr, make_instances_config

QUICK = os.environ.get("CI") == "quick"
slow = pytest.mark.skipif(QUICK, reason="wall-clock case skipped under CI=quick")

SHAPE = dict(n_proposers=2, n_coordinators=3, n_acceptors=3, n_learners=2)


@dataclass(frozen=True)
class Scenario:
    """One conformance case, backend-agnostic."""

    name: str
    n_commands: int
    loss: float = 0.0
    checkpoint: bool = False
    crash_learner: bool = False
    mtu: int = DEFAULT_MTU  # net only; small values force the TCP path
    seed: int = 5


BASIC = Scenario("basic", n_commands=20)
LOSSY = Scenario("lossy", n_commands=30, loss=0.15, seed=7)
RECOVERY = Scenario(
    "recovery", n_commands=36, loss=0.05, checkpoint=True, crash_learner=True,
    mtu=300, seed=9,
)


def _commands(scenario: Scenario) -> list[Command]:
    return [
        Command(f"tc-{scenario.name}-{i}", "put", f"k{i % 4}", i)
        for i in range(scenario.n_commands)
    ]


def _assert_converged(scenario, delivered, orders, errors=()):
    assert delivered, f"{scenario.name}: not all commands delivered everywhere"
    assert len(set(orders)) == 1, f"{scenario.name}: learner orders diverge"
    assert len(orders[0]) == scenario.n_commands
    assert not errors, f"{scenario.name}: transport errors: {errors}"


# -- simulator backend ---------------------------------------------------------


def run_sim(scenario: Scenario) -> None:
    sim = Simulation(
        seed=scenario.seed,
        network=NetworkConfig(drop_rate=scenario.loss),
        max_events=8_000_000,
    )
    cluster = build_smr(
        sim,
        **SHAPE,
        retransmit=RetransmitConfig(),
        liveness=LivenessConfig(),
        checkpoint=(
            CheckpointConfig(interval=8, chunk_size=4, gc_quorum=1)
            if scenario.checkpoint
            else None
        ),
    )
    cluster.start_round(cluster.config.schedule.make_round(coord=0, count=1, rtype=2))
    cmds = _commands(scenario)
    for index, cmd in enumerate(cmds):
        cluster.propose(cmd, delay=5.0 + 2.0 * index)
    if scenario.crash_learner:
        victim = cluster.learners[0]
        sim.schedule(20.0, victim.crash)
        sim.schedule(45.0, victim.recover)
    delivered = cluster.run_until_delivered(cmds, timeout=50_000)
    _assert_converged(scenario, delivered, cluster.delivery_orders())


# -- asyncio/socket backend ----------------------------------------------------


async def run_net(scenario: Scenario) -> None:
    config = make_instances_config(
        **SHAPE,
        retransmit=wall_clock_retransmit(),
        liveness=wall_clock_liveness(),
        checkpoint=(
            wall_clock_checkpoint(interval=8, chunk_size=4, gc_quorum=1)
            if scenario.checkpoint
            else None
        ),
    )
    deployment = LoopbackDeployment(
        config, seed=scenario.seed, loss_rate=scenario.loss, mtu=scenario.mtu
    )
    await deployment.start()
    try:
        client = PipelinedClient("conformance", deployment.cluster, window=4)
        deployment.cluster.attach_client(client)
        cmds = _commands(scenario)
        client.submit(cmds)
        if scenario.crash_learner:
            victim = config.topology.learners[0]
            deployment.driver.schedule(1.0, lambda: deployment.crash(victim))
            deployment.driver.schedule(3.0, lambda: deployment.recover(victim))
        delivered = await deployment.run_until_delivered(cmds, timeout=60.0)
        _assert_converged(
            scenario, delivered, deployment.delivery_orders(), deployment.errors()
        )
    finally:
        await deployment.stop()


# -- the matrix ----------------------------------------------------------------


@pytest.mark.parametrize("scenario", [BASIC, LOSSY, RECOVERY], ids=lambda s: s.name)
def test_sim_backend(scenario):
    run_sim(scenario)


def test_net_backend_basic():
    asyncio.run(run_net(BASIC))


@slow
def test_net_backend_lossy():
    asyncio.run(run_net(LOSSY))


@slow
def test_net_backend_recovery():
    asyncio.run(run_net(RECOVERY))


# -- generalized engine --------------------------------------------------------
#
# The same contract for the generalized engine: identical scenarios and
# assertions on the simulator and on loopback sockets.  Learned c-structs
# are partial orders, so "orders identical" becomes "per-key projections
# of the delivered order identical" (commands on one key all conflict
# under ``kv_conflict``; commuting commands may interleave freely).

GEN_BASIC = Scenario("gen-basic", n_commands=16)
GEN_LOSSY = Scenario("gen-lossy", n_commands=24, loss=0.15, seed=7)
GEN_RECOVERY = Scenario(
    "gen-recovery", n_commands=24, loss=0.05, checkpoint=True,
    crash_learner=True, mtu=300, seed=9,
)

KEYS = 3


def _gen_commands(scenario: Scenario) -> list[Command]:
    return [
        Command(f"gc-{scenario.name}-{i}", "put", f"k{i % KEYS}", i)
        for i in range(scenario.n_commands)
    ]


def _per_key_orders(learners, cmds) -> dict[str, set[tuple]]:
    """Per-key projection of each learner's delivered order."""
    out: dict[str, set[tuple]] = {}
    for key in sorted({c.key for c in cmds}):
        wanted = {c for c in cmds if c.key == key}
        orders = set()
        for learner in learners:
            seen: set = set()
            order = []
            for cmd in learner.delivered:
                if cmd in wanted and cmd not in seen:
                    seen.add(cmd)
                    order.append(cmd)
            orders.add(tuple(order))
        out[key] = orders
    return out


def _assert_gen_converged(scenario, learned, learners, cmds, errors=()):
    assert learned, f"{scenario.name}: not all commands learned everywhere"
    for key, orders in _per_key_orders(learners, cmds).items():
        assert len(orders) == 1, f"{scenario.name}: order on {key!r} diverges"
        assert len(next(iter(orders))) == sum(1 for c in cmds if c.key == key)
    assert not errors, f"{scenario.name}: transport errors: {errors}"


def run_gen_sim(scenario: Scenario) -> None:
    from repro.core.generalized import build_generalized
    from repro.cstruct.history import CommandHistory
    from repro.smr.machine import kv_conflict

    sim = Simulation(
        seed=scenario.seed,
        network=NetworkConfig(drop_rate=scenario.loss),
        max_events=8_000_000,
    )
    cluster = build_generalized(
        sim,
        CommandHistory.bottom(kv_conflict()),
        **SHAPE,
        retransmit=RetransmitConfig(),
        liveness=LivenessConfig(),
        checkpoint=(
            CheckpointConfig(interval=8, chunk_size=4, gc_quorum=1)
            if scenario.checkpoint
            else None
        ),
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    cmds = _gen_commands(scenario)
    for index, cmd in enumerate(cmds):
        cluster.propose(cmd, delay=5.0 + 2.0 * index)
    if scenario.crash_learner:
        victim = cluster.learners[0]
        sim.schedule(20.0, victim.crash)
        sim.schedule(45.0, victim.recover)
    learned = cluster.run_until_learned(cmds, timeout=50_000)
    _assert_gen_converged(scenario, learned, cluster.learners, cmds)


async def run_gen_net(scenario: Scenario) -> None:
    from repro.core.generalized import GeneralizedConfig
    from repro.core.quorums import QuorumSystem
    from repro.core.rounds import RoundSchedule
    from repro.core.topology import Topology
    from repro.cstruct.history import CommandHistory
    from repro.net.cluster import GeneralizedLoopbackDeployment
    from repro.smr.machine import kv_conflict

    topology = Topology.build(
        SHAPE["n_proposers"], SHAPE["n_coordinators"],
        SHAPE["n_acceptors"], SHAPE["n_learners"],
    )
    config = GeneralizedConfig(
        topology=topology,
        quorums=QuorumSystem(topology.acceptors, f=1),
        schedule=RoundSchedule(range(SHAPE["n_coordinators"]), recovery_rtype=1),
        bottom=CommandHistory.bottom(kv_conflict()),
        retransmit=wall_clock_retransmit(),
        liveness=wall_clock_liveness(),
        checkpoint=(
            wall_clock_checkpoint(interval=8, chunk_size=4, gc_quorum=1)
            if scenario.checkpoint
            else None
        ),
    )
    deployment = GeneralizedLoopbackDeployment(
        config, seed=scenario.seed, loss_rate=scenario.loss, mtu=scenario.mtu
    )
    await deployment.start()
    try:
        cmds = _gen_commands(scenario)
        for index, cmd in enumerate(cmds):
            deployment.cluster.propose(cmd, delay=0.3 + 0.02 * index)
        if scenario.crash_learner:
            victim = config.topology.learners[0]
            deployment.driver.schedule(1.0, lambda: deployment.crash(victim))
            deployment.driver.schedule(3.0, lambda: deployment.recover(victim))
        learned = await deployment.run_until_learned(cmds, timeout=60.0)
        _assert_gen_converged(
            scenario, learned, deployment.learners, cmds, deployment.errors()
        )
    finally:
        await deployment.stop()


@pytest.mark.parametrize(
    "scenario", [GEN_BASIC, GEN_LOSSY, GEN_RECOVERY], ids=lambda s: s.name
)
def test_gen_sim_backend(scenario):
    run_gen_sim(scenario)


def test_gen_net_backend_basic():
    asyncio.run(run_gen_net(GEN_BASIC))


@slow
def test_gen_net_backend_lossy():
    asyncio.run(run_gen_net(GEN_LOSSY))


@slow
def test_gen_net_backend_recovery():
    asyncio.run(run_gen_net(GEN_RECOVERY))
