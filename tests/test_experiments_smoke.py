"""Smoke tests for the experiment harness (small parameterizations).

The full experiments run under ``pytest benchmarks/ --benchmark-only``;
these tests keep the harness itself under unit-test coverage with reduced
workloads, so a regression in an experiment runner fails fast here.
"""

from repro.bench.experiments import (
    _availability_run,
    _e5_run,
    _e7_run,
    _e8_run,
    experiment_e1,
    experiment_e2,
    experiment_e4,
    experiment_e6,
)


def test_e1_shapes():
    rows = experiment_e1()
    assert len(rows) == 7
    for row in rows:
        assert row["steps"] == row["paper"]


def test_e2_small_range():
    rows = experiment_e2(range(3, 6))
    assert [row["n"] for row in rows] == [3, 4, 5]
    for row in rows:
        assert row["classic/multicoord quorum"] <= row["fast quorum"]


def test_e3_single_run():
    row = _availability_run(rtype=2, n_commands=10, crash_at=25.0)
    assert row["unlearned"] == 0
    assert row["interruption"] <= 1.0


def test_e4_rows_have_bounds():
    rows = experiment_e4()
    assert {row["mode"] for row in rows} == {"classic (leader)", "multicoordinated", "fast"}
    for row in rows:
        assert 0.0 < row["max load"] <= 1.0


def test_e5_single_cell():
    row = _e5_run("multicoordinated", conflict_rate=0.0, seed=1)
    assert row["unlearned"] == 0
    assert row["collisions"] == 0


def test_e6_rows():
    rows = experiment_e6()
    assert all(row["coordinator writes"] == 0 for row in rows)


def test_e7_single_run_returns_latency_or_none():
    collided, latency = _e7_run("coordinated", seed=0)
    assert isinstance(collided, bool)
    assert latency is None or latency > 0


def test_e8_single_cell():
    row = _e8_run("single-coordinated", jitter=0.0, conflict_rate=1.0, seed=2)
    assert row["unlearned"] == 0
    assert row["mean latency (steps)"] == 3.0
