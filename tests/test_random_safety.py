"""Randomized fault-injection runs under the safety oracles.

Each run drives a protocol through a jittery, lossy network with random
crash/recovery events while the oracles from :mod:`repro.core.invariants`
check Nontriviality, Stability and Consistency after *every* delivered
message.  Liveness is *not* asserted under message loss (the paper only
guarantees it under eventual reliability); safety must hold regardless.
"""

import random

import pytest

from repro.core.generalized import build_generalized
from repro.core.invariants import attach_consensus_oracle, attach_generalized_oracle
from repro.core.liveness import LivenessConfig
from repro.core.multicoordinated import build_consensus
from repro.cstruct.commands import KeyConflict
from repro.cstruct.history import CommandHistory
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from tests.conftest import cmd

REL = KeyConflict()


def _random_faults(sim, cluster, rng, horizon, crashables):
    """Schedule random crash/recover pairs on *crashables* (keep quorums)."""
    for process in crashables:
        if rng.random() < 0.5:
            down = rng.uniform(5, horizon / 2)
            up = down + rng.uniform(5, horizon / 3)
            sim.schedule(down, process.crash)
            sim.schedule(up, process.recover)


@pytest.mark.parametrize("seed", range(6))
def test_consensus_safety_under_chaos(seed):
    rng = random.Random(seed)
    sim = Simulation(
        seed=seed,
        network=NetworkConfig(jitter=rng.uniform(0, 1.5), drop_rate=0.05),
    )
    cluster = build_consensus(sim, n_proposers=2, n_coordinators=3, n_acceptors=3)
    values = [cmd(f"v{i}", "put", "x", i) for i in range(3)]
    oracle = attach_consensus_oracle(sim, cluster, values)
    rtype = rng.choice([1, 2])
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype))
    for i, value in enumerate(values):
        for retry in range(3):
            cluster.propose(value, delay=5.0 + i + retry * 40, proposer=i % 2)
    # one acceptor and one non-essential coordinator may bounce
    _random_faults(sim, cluster, rng, 100, [cluster.acceptors[2], cluster.coordinators[2]])
    sim.run(until=300)  # oracle raises on any safety violation
    decided = cluster.decided_values()
    assert all(v in values for v in decided)


@pytest.mark.parametrize("seed", range(6))
def test_generalized_safety_under_chaos(seed):
    rng = random.Random(seed + 100)
    sim = Simulation(
        seed=seed,
        network=NetworkConfig(jitter=rng.uniform(0, 1.2), drop_rate=0.03),
    )
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(REL),
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=3,
        n_learners=2,
        liveness=LivenessConfig(),
    )
    commands = [
        cmd(f"c{i}", "put", rng.choice(["hot", f"k{i}"]), i) for i in range(6)
    ]
    oracle = attach_generalized_oracle(sim, cluster, commands)
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rng.choice([1, 2])))
    for i, command in enumerate(commands):
        for retry in range(3):
            cluster.propose(command, delay=6.0 + 3 * i + retry * 80)
    _random_faults(sim, cluster, rng, 120, [cluster.acceptors[1], cluster.coordinators[1]])
    sim.run(until=500)
    for left in cluster.learners:
        for right in cluster.learners:
            assert left.learned.is_compatible(right.learned)


@pytest.mark.parametrize("seed", range(4))
def test_fast_rounds_safety_under_chaos(seed):
    rng = random.Random(seed + 200)
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=1.0, drop_rate=0.02))
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(REL),
        n_proposers=2,
        n_coordinators=2,
        n_acceptors=4,
        n_learners=2,
        liveness=LivenessConfig(),
    )
    commands = [cmd(f"c{i}", "put", "hot", i) for i in range(4)]
    oracle = attach_generalized_oracle(sim, cluster, commands)
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 0))
    for i, command in enumerate(commands):
        for retry in range(3):
            cluster.propose(command, delay=6.0 + 2 * i + retry * 80)
    sim.run(until=500)
    for left in cluster.learners:
        for right in cluster.learners:
            assert left.learned.is_compatible(right.learned)
