"""Command histories: unit behaviour (Section 3.3.1)."""

import pytest

from repro.cstruct.base import IncompatibleError
from repro.cstruct.commands import AlwaysConflict, KeyConflict, NeverConflict
from repro.cstruct.history import CommandHistory
from tests.conftest import cmd

REL = KeyConflict()
A = cmd("a", "put", "x")  # conflicts with B (same key, writes)
B = cmd("b", "put", "x")
C = cmd("c", "put", "y")  # commutes with A and B
D = cmd("d", "get", "x")  # conflicts with A, B (read vs write)
E = cmd("e", "get", "x")  # commutes with D, conflicts with A, B


def hist(*cmds):
    return CommandHistory.of(REL, *cmds)


def test_bottom_is_empty():
    assert CommandHistory.bottom(REL).is_bottom()
    assert len(CommandHistory.bottom(REL)) == 0


def test_append_idempotent():
    h = hist(A, C)
    assert h.append(A) == h


def test_semantic_equality_commuting_order_irrelevant():
    assert hist(A, C) == hist(C, A)
    assert hash(hist(A, C)) == hash(hist(C, A))


def test_semantic_equality_conflicting_order_matters():
    assert hist(A, B) != hist(B, A)


def test_leq_conflicting_pairs_keep_order():
    assert hist(A).leq(hist(A, B))
    assert not hist(B).leq(hist(A, B))  # A conflicts B and precedes it


def test_leq_commuting_extension():
    assert hist(A).leq(hist(C, A))  # C commutes with A, any order fine


def test_leq_not_superset():
    assert not hist(A, B).leq(hist(A))


def test_leq_reflexive_antisymmetric():
    h, g = hist(A, B, C), hist(A, B, C)
    assert h.leq(h)
    assert h.leq(g) and g.leq(h) and h == g


def test_glb_common_prefix():
    left = hist(A, B)
    right = hist(A, D)
    assert left.glb(right) == hist(A)


def test_glb_conflicting_head_disagreement_is_bottom():
    assert hist(A, B).glb(hist(B, A)).is_bottom()


def test_glb_keeps_commuting_commands():
    left = hist(A, C)
    right = hist(C, B)
    assert left.glb(right) == hist(C)


def test_glb_transitive_exclusion():
    # c ∈ both, but its conflicting predecessors differ -> excluded.
    left = hist(A, D)   # D after A
    right = hist(B, D)  # D after B
    assert left.glb(right).is_bottom()


def test_glb_symmetric():
    left, right = hist(A, C, D), hist(C, B)
    assert left.glb(right) == right.glb(left)


def test_lub_merges_commuting():
    assert hist(A).lub(hist(C)) == hist(A, C)


def test_lub_extension_chain():
    small, big = hist(A), hist(A, B, C)
    assert small.lub(big) == big


def test_lub_incompatible_conflicting_order():
    with pytest.raises(IncompatibleError):
        hist(A, B).lub(hist(B, A))


def test_incompatible_cross_difference():
    # A only in left, B only in right, A conflicts B -> incompatible.
    assert not hist(A).is_compatible(hist(B))
    assert hist(A).is_compatible(hist(C))


def test_incompatible_mixed_membership():
    # D in both; left has A before D, right lacks A; a common upper bound
    # would need A both before D (from left) and after D (from right).
    left = hist(A, D)
    right = hist(D)
    assert right.leq(left) is False
    assert left.is_compatible(right) is False


def test_compatible_when_shared_prefix_ordered_same():
    left = hist(A, D)
    right = hist(A, E)
    assert left.is_compatible(right)
    merged = left.lub(right)
    assert merged.contains(D) and merged.contains(E)


def test_contains_and_command_set():
    h = hist(A, C)
    assert h.contains(A) and h.contains(C) and not h.contains(B)
    assert h.command_set() == frozenset({A, C})


def test_linear_extension_respects_conflict_order():
    h = hist(B, A, C)  # B before A (conflicting)
    order = h.linear_extension()
    assert order.index(B) < order.index(A)


def test_delta_after_prefix():
    prefix = hist(A)
    full = prefix.extend([B, C])
    delta = full.delta_after(prefix)
    assert set(delta) == {B, C}
    replay = prefix.extend(delta)
    assert replay == full


def test_mixed_conflict_relations_rejected():
    other = CommandHistory.bottom(AlwaysConflict())
    with pytest.raises(ValueError):
        hist(A).glb(other)


def test_always_conflict_behaves_like_sequences():
    rel = AlwaysConflict()
    h = CommandHistory.of(rel, A, B, C)
    g = CommandHistory.of(rel, A, B)
    assert g.leq(h)
    assert h.glb(g) == g
    assert not CommandHistory.of(rel, B, A).is_compatible(h)


def test_never_conflict_behaves_like_sets():
    rel = NeverConflict()
    h = CommandHistory.of(rel, A, B)
    g = CommandHistory.of(rel, B, C)
    assert h.is_compatible(g)
    assert h.glb(g).command_set() == {B}
    assert h.lub(g).command_set() == {A, B, C}


def test_str_rendering():
    assert str(CommandHistory.bottom(REL)) == "⊥"
    assert "#a" in str(hist(A))
