"""Simulation driver: clock, run/run_until, limits, invariant hooks."""

import pytest

from repro.sim.process import Process
from repro.sim.scheduler import Simulation, SimulationError


def test_clock_advances_with_events():
    sim = Simulation()
    times = []
    sim.schedule(1.0, lambda: times.append(sim.clock))
    sim.schedule(4.0, lambda: times.append(sim.clock))
    sim.run()
    assert times == [1.0, 4.0]
    assert sim.clock == 4.0


def test_run_until_time_bound():
    sim = Simulation()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.clock == 5.0
    sim.run()
    assert fired == [1, 2]


def test_run_until_predicate():
    sim = Simulation()
    state = {"done": False}
    sim.schedule(3.0, lambda: state.update(done=True))
    sim.schedule(9.0, lambda: None)
    assert sim.run_until(lambda: state["done"], timeout=100)
    assert sim.clock == 3.0


def test_run_until_predicate_timeout():
    sim = Simulation()
    sim.schedule(50.0, lambda: None)
    assert not sim.run_until(lambda: False, timeout=10.0)
    assert sim.clock == 10.0


def test_run_until_already_true():
    sim = Simulation()
    assert sim.run_until(lambda: True)


def test_schedule_in_past_rejected():
    sim = Simulation()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_max_events_guard():
    sim = Simulation(max_events=10)

    def loop():
        sim.schedule(1.0, loop)

    sim.schedule(1.0, loop)
    with pytest.raises(SimulationError):
        sim.run()


def test_duplicate_process_id_rejected():
    sim = Simulation()
    Process("a", sim)
    with pytest.raises(ValueError):
        Process("a", sim)


def test_invariant_check_runs_after_each_event():
    sim = Simulation()
    counted = []
    sim.add_invariant_check(lambda s: counted.append(s.clock))
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert counted == [1.0, 2.0]


def test_invariant_violation_propagates():
    sim = Simulation()

    def check(s):
        raise AssertionError("violated")

    sim.add_invariant_check(check)
    sim.schedule(1.0, lambda: None)
    with pytest.raises(AssertionError):
        sim.run()


def test_crash_and_recover_helpers():
    sim = Simulation()
    p = Process("a", sim)
    sim.crash("a")
    assert not sim.alive("a")
    sim.recover("a")
    assert sim.alive("a")
