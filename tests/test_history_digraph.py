"""Digraph c-struct ops ≡ the paper-verbatim oracle, at scale.

The incremental constraint-digraph implementation of
:mod:`repro.cstruct.history` (per-command conflicting-predecessor sets,
suffix-diff ``leq``, one-pass digraph merges for ``lub``/``is_compatible``)
is validated here against the paper's recursive operators
(:mod:`repro.cstruct.history_ops`) on randomized histories of up to ~64
commands across conflict densities:

* dense  -- every pair conflicts (``AlwaysConflict``);
* moderate -- a few shared keys (``KeyConflict`` over 3 keys, some reads);
* sparse -- many keys (``KeyConflict`` over 12 keys);
* empty  -- nothing conflicts (``NeverConflict``).

A second group of regression tests pins the ``_trusted`` fast paths: every
operation's output must carry a canonical sequence *and* a predecessor map
identical to a from-scratch rebuild -- the fast paths may never skip
canonicalization invariants.
"""

from hypothesis import given, settings, strategies as st

from repro.cstruct import history_ops as ops
from repro.cstruct.base import glb_set, is_compatible_set, lub_set
from repro.cstruct.commands import (
    AlwaysConflict,
    Command,
    CustomConflict,
    KeyConflict,
    NeverConflict,
)
from repro.cstruct.history import CommandHistory, _canonical, _digraph_of


def _pool(n_cmds: int, keys: list[str], read_every: int = 4) -> list[Command]:
    return [
        Command(
            cid=f"c{i:03d}",
            op="get" if read_every and i % read_every == 0 else "put",
            key=keys[i % len(keys)],
            arg=i,
        )
        for i in range(n_cmds)
    ]


DENSE_POOL = _pool(64, ["k"], read_every=0)
MODERATE_POOL = _pool(64, ["a", "b", "c"])
SPARSE_POOL = _pool(64, [f"k{j}" for j in range(12)])

# CustomConflict keeps the base partition() (None -- no bucket info), so
# this scenario exercises the full-scan branches of append/extend that the
# partitioned relations never take.
CUSTOM = CustomConflict(fn=lambda a, b: a.key == b.key and "put" in (a.op, b.op))

SCENARIOS = st.sampled_from(
    [
        (AlwaysConflict(), DENSE_POOL),
        (KeyConflict(), MODERATE_POOL),
        (KeyConflict(), SPARSE_POOL),
        (NeverConflict(), MODERATE_POOL),
        (CUSTOM, MODERATE_POOL),
    ]
)


def _lists(pool_and_rel):
    rel, pool = pool_and_rel
    return st.lists(st.sampled_from(pool), max_size=64)


@st.composite
def two_histories(draw):
    rel, pool = draw(SCENARIOS)
    xs = draw(st.lists(st.sampled_from(pool), max_size=64))
    ys = draw(st.lists(st.sampled_from(pool), max_size=64))
    return rel, CommandHistory.of(rel, *xs), CommandHistory.of(rel, *ys)


@st.composite
def history_family(draw, size=3):
    rel, pool = draw(SCENARIOS)
    histories = [
        CommandHistory.of(rel, *draw(st.lists(st.sampled_from(pool), max_size=24)))
        for _ in range(size)
    ]
    return rel, histories


def _oracle_glb(rel, h, g):
    return CommandHistory.of(rel, *ops.prefix(h.cmds, g.cmds, rel))


def assert_trusted_invariants(h: CommandHistory) -> None:
    """The fast-path output equals a from-scratch canonical rebuild."""
    assert h.cmds == _canonical(h.cmds, h.conflict)
    assert h._preds == _digraph_of(h.cmds, h.conflict)
    assert h._set == frozenset(h.cmds)


# -- pairwise ops against the paper oracle ----------------------------------


@settings(max_examples=120, deadline=None)
@given(two_histories())
def test_glb_matches_oracle(data):
    rel, h, g = data
    direct = h.glb(g)
    assert direct == _oracle_glb(rel, h, g)
    assert_trusted_invariants(direct)


@settings(max_examples=120, deadline=None)
@given(two_histories())
def test_is_compatible_matches_oracle(data):
    rel, h, g = data
    expected = ops.are_compatible(h.cmds, g.cmds, rel)
    assert h.is_compatible(g) == expected
    assert g.is_compatible(h) == expected


@settings(max_examples=120, deadline=None)
@given(two_histories())
def test_lub_matches_oracle(data):
    rel, h, g = data
    if not ops.are_compatible(h.cmds, g.cmds, rel):
        return
    direct = h.lub(g)
    assert direct == CommandHistory.of(rel, *ops.lub(h.cmds, g.cmds))
    assert_trusted_invariants(direct)


@settings(max_examples=120, deadline=None)
@given(two_histories())
def test_leq_matches_oracle(data):
    """``h ⊑ g`` ⟺ the oracle glb (greatest lower bound) is ``h`` itself."""
    rel, h, g = data
    expected = _oracle_glb(rel, h, g) == h
    assert h.leq(g) == expected


@settings(max_examples=80, deadline=None)
@given(two_histories(), st.lists(st.integers(0, 63), max_size=8))
def test_leq_on_true_extensions(data, indices):
    """Extensions built by append/extend are always ⊒ their base."""
    rel, h, g = data
    extension = h.extend(g.cmds)
    assert h.leq(extension)
    assert extension == h.lub(extension)
    assert_trusted_invariants(extension)


# -- set-level folds against the paper's pairwise iteration ------------------


@settings(max_examples=80, deadline=None)
@given(history_family())
def test_glb_set_matches_oracle_fold(data):
    rel, hs = data
    folded = glb_set(hs)
    assert folded == CommandHistory.of(
        rel, *ops.glb_many([h.cmds for h in hs], rel)
    )
    assert_trusted_invariants(folded)


@settings(max_examples=80, deadline=None)
@given(history_family())
def test_is_compatible_set_equals_pairwise(data):
    """The running-lub accumulation agrees with the O(k²) pairwise scan."""
    rel, hs = data
    pairwise = all(
        a.is_compatible(b) for i, a in enumerate(hs) for b in hs[i + 1 :]
    )
    assert is_compatible_set(hs) == pairwise


@settings(max_examples=80, deadline=None)
@given(history_family())
def test_lub_set_matches_oracle_fold(data):
    rel, hs = data
    if not is_compatible_set(hs):
        return
    folded = lub_set(hs)
    assert folded == CommandHistory.of(rel, *ops.lub_many([h.cmds for h in hs]))
    assert_trusted_invariants(folded)


# -- _trusted regression: fast paths never skip canonicalization -------------


@settings(max_examples=60, deadline=None)
@given(two_histories())
def test_append_chain_keeps_invariants(data):
    rel, h, g = data
    grown = h
    for cmd in g.cmds[:8]:
        grown = grown.append(cmd)
        assert_trusted_invariants(grown)


@settings(max_examples=60, deadline=None)
@given(two_histories())
def test_op_chains_keep_invariants(data):
    """Mixed op chains (glb of lub, lub of glb) stay canonical throughout."""
    rel, h, g = data
    m = h.glb(g)
    assert_trusted_invariants(m)
    assert m.lub(h) == h  # absorption, exercising lub on glb outputs
    if h.is_compatible(g):
        j = h.lub(g)
        assert_trusted_invariants(j)
        assert j.glb(h) == h


def test_delta_after_roundtrip_dense():
    rel = AlwaysConflict()
    base = CommandHistory.of(rel, *DENSE_POOL[:10])
    full = base.extend(DENSE_POOL[10:20])
    assert base.extend(full.delta_after(base)) == full


# -- conflict-relation memoization -------------------------------------------


def test_key_conflict_cache_is_correct_and_bounded():
    rel = KeyConflict()
    pool = MODERATE_POOL[:16]
    fresh = KeyConflict()
    for a in pool:
        for b in pool:
            assert rel(a, b) == fresh.conflicts(a, b)  # cached == uncached
            assert rel(a, b) == rel(b, a)  # symmetric entries agree
    assert len(rel._pair_cache) <= rel.cache_limit


def test_custom_conflict_cache_memoizes_predicate():
    calls = []

    def predicate(a, b):
        calls.append((a, b))
        return a.key == b.key

    rel = CustomConflict(fn=predicate)
    a, b = MODERATE_POOL[0], MODERATE_POOL[1]
    first = rel(a, b)
    count = len(calls)
    assert rel(a, b) == first
    assert rel(b, a) == first  # symmetric entry served from the cache
    assert len(calls) == count


def test_cache_eviction_clears_at_limit():
    class TinyCache(KeyConflict):
        cache_limit = 4

    rel = TinyCache()
    for cmd in SPARSE_POOL[:12]:
        rel(cmd, SPARSE_POOL[20])
    assert len(rel._pair_cache) <= 2 * TinyCache.cache_limit


def test_uncached_relation_has_no_cache():
    rel = AlwaysConflict()
    rel(MODERATE_POOL[0], MODERATE_POOL[1])
    assert not hasattr(rel, "_pair_cache")


def test_partition_soundness_on_builtin_relations():
    """conflicts(a, b) implies partition(a) == partition(b)."""
    for rel in (KeyConflict(), AlwaysConflict(), NeverConflict()):
        for a in MODERATE_POOL[:12]:
            for b in MODERATE_POOL[:12]:
                if rel(a, b):
                    assert rel.partition(a) == rel.partition(b)


# -- stable-prefix split (checkpointing support) -----------------------------


@st.composite
def history_and_members(draw):
    """A history plus a candidate stable-member set (possibly partial)."""
    rel, pool = draw(SCENARIOS)
    xs = draw(st.lists(st.sampled_from(pool), max_size=48))
    h = CommandHistory.of(rel, *xs)
    members = frozenset(draw(st.lists(st.sampled_from(pool), max_size=48)))
    return rel, h, members


@settings(max_examples=120, deadline=None)
@given(history_and_members())
def test_stable_split_prefix_is_genuine_prefix(data):
    """The split prefix is a downward-closed member-only prefix: ⊑ self."""
    rel, h, members = data
    prefix, tail = h.stable_split(members)
    assert prefix._set <= members or not prefix.cmds
    assert prefix.leq(h)
    # Oracle cross-check: a genuine prefix is its own glb with the whole.
    assert tuple(ops.prefix(prefix.cmds, h.cmds, rel)) == prefix.cmds
    assert_trusted_invariants(prefix)
    assert_trusted_invariants(tail)


@settings(max_examples=120, deadline=None)
@given(history_and_members())
def test_stable_split_reconstructs_exactly(data):
    """``prefix • tail-order`` rebuilds the original history."""
    rel, h, members = data
    prefix, tail = h.stable_split(members)
    assert prefix._set.isdisjoint(tail._set)
    assert prefix._set | tail._set == h._set
    assert prefix.extend(tail.linear_extension()) == h


@settings(max_examples=120, deadline=None)
@given(history_and_members())
def test_stable_split_prefix_is_maximal(data):
    """No tail command in *members* could have joined the prefix."""
    rel, h, members = data
    prefix, tail = h.stable_split(members)
    for cmd in tail.cmds:
        if cmd in members:
            # Blocked by a conflicting predecessor outside the prefix.
            assert not (h._preds[cmd] <= prefix._set)


@settings(max_examples=120, deadline=None)
@given(history_and_members())
def test_without_equals_split_tail(data):
    rel, h, members = data
    assert h.without(members) == h.stable_split(members)[1]
    assert h.without(frozenset()) is h


def test_stable_split_full_and_empty_members():
    rel = KeyConflict()
    h = CommandHistory.of(rel, *MODERATE_POOL[:12])
    prefix, tail = h.stable_split(h._set)
    assert prefix == h and not tail.cmds
    prefix, tail = h.stable_split(frozenset())
    assert not prefix.cmds and tail == h
