"""Property-based safety of the value-picking rules.

The central obligation (Section 2.2, Definition 1): if a value *was
chosen* at some round k -- i.e. a full k-quorum accepted (an extension of)
it -- then any value picked from phase "1b" messages of a later round must
extend it.  We generate random vote configurations that *contain* a chosen
value and check the pick; and for the consensus rule, random splits that
never elect two candidates.
"""

from hypothesis import given, settings, strategies as st

from repro.core.messages import Phase1b
from repro.core.provedsafe import pick_value, proved_safe
from repro.core.quorums import QuorumSystem
from repro.core.rounds import ZERO, RoundId
from repro.cstruct.commands import Command, KeyConflict
from repro.cstruct.history import CommandHistory

REL = KeyConflict()
POOL = [Command(str(i), "put", key) for i, key in enumerate("xxyy")]
K_FAST = RoundId(0, 1, 0, 0)
NEW = RoundId(0, 2, 0, 1)


def is_fast(rnd):
    return rnd.rtype == 0 and rnd != ZERO


def history(cmds):
    return CommandHistory.of(REL, *cmds)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.sampled_from(POOL), max_size=3),  # the chosen prefix
    st.lists(st.lists(st.sampled_from(POOL), max_size=2), min_size=4, max_size=4),
)
def test_proved_safe_extends_chosen_values(chosen_cmds, extras):
    """Every acceptor accepted an extension of `chosen`; the pick must too."""
    n = 4
    system = QuorumSystem(range(n))  # F=1, E=1: classic 3, fast 3
    chosen = history(chosen_cmds)
    msgs = {}
    for acceptor, extra in enumerate(extras):
        accepted = chosen.extend(extra)
        msgs[acceptor] = Phase1b(NEW, vrnd=K_FAST, vval=accepted, acceptor=acceptor)
    picks = proved_safe(system, msgs, is_fast)
    assert picks
    for pick in picks:
        assert chosen.leq(pick), f"pick {pick} does not extend chosen {chosen}"


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.sampled_from(POOL), max_size=3),
    st.integers(min_value=3, max_value=4),  # quorum reporting the value
)
def test_pick_value_repropose_chosen(chosen_cmds, reporters):
    """Consensus: a value accepted by a full quorum must be re-proposed."""
    if not chosen_cmds:
        return
    system = QuorumSystem(range(4))
    value = chosen_cmds[0]
    msgs = {}
    for acceptor in range(4):
        if acceptor < reporters:
            msgs[acceptor] = Phase1b(NEW, vrnd=K_FAST, vval=value, acceptor=acceptor)
        else:
            msgs[acceptor] = Phase1b(NEW, vrnd=ZERO, vval=None, acceptor=acceptor)
    pick = pick_value(system, msgs, is_fast)
    assert not pick.free
    assert pick.value == value


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_pick_value_never_elects_two(data):
    """Legal splits (below min intersection each) always come out free."""
    system = QuorumSystem(range(4))
    a, b = POOL[0], POOL[1]
    # With |Q| = 4 and q_k = 3 the minimal intersection is 3: any 2/2 split
    # is provably unchoosable for both values.
    votes = data.draw(st.permutations([a, a, b, b]))
    msgs = {
        acceptor: Phase1b(NEW, vrnd=K_FAST, vval=value, acceptor=acceptor)
        for acceptor, value in enumerate(votes)
    }
    pick = pick_value(system, msgs, is_fast)
    assert pick.free


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.lists(st.sampled_from(POOL), max_size=3), min_size=3, max_size=3)
)
def test_proved_safe_initial_round_returns_reported_or_bottom(vote_lists):
    """With vrnd = ZERO everywhere the pick is ⊥ (nothing constrains it)."""
    system = QuorumSystem(range(3))
    bottom = CommandHistory.bottom(REL)
    msgs = {
        acceptor: Phase1b(NEW, vrnd=ZERO, vval=bottom, acceptor=acceptor)
        for acceptor in range(3)
    }
    picks = proved_safe(system, msgs, is_fast)
    assert picks == [bottom]
