"""Topology naming and coordinator index mapping."""

from repro.core.topology import Topology


def test_build_generates_role_prefixed_pids():
    topo = Topology.build(1, 2, 3, 2)
    assert topo.proposers == ("prop0",)
    assert topo.coordinators == ("coord0", "coord1")
    assert topo.acceptors == ("acc0", "acc1", "acc2")
    assert topo.learners == ("learn0", "learn1")


def test_coordinator_index_roundtrip():
    topo = Topology.build(1, 3, 3, 1)
    for index in topo.coordinator_indices:
        assert topo.coordinator_index(topo.coordinator_pid(index)) == index


def test_coordinator_pids_sorted_by_index():
    topo = Topology.build(1, 3, 3, 1)
    assert topo.coordinator_pids({2, 0}) == ["coord0", "coord2"]
