"""Quorum systems and Assumptions 1-3 (Section 2.2, E2 claims)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.quorums import CoordinatorQuorums, QuorumSystem, paper_quorum_sizes


def test_default_majority_quorums():
    system = QuorumSystem(range(5))
    assert system.f == 2
    assert system.classic_quorum_size == 3


def test_default_fast_tolerance_maximal():
    system = QuorumSystem(range(5))
    assert system.e == 1
    assert system.fast_quorum_size == 4
    # E is maximal: E+1 would break Assumption 2.
    with pytest.raises(ValueError):
        QuorumSystem(range(5), e=system.e + 1)


def test_assumption1_requires_majority_intersection():
    with pytest.raises(ValueError):
        QuorumSystem(range(4), f=2)  # n <= 2F


def test_assumption2_requires_n_gt_2e_plus_f():
    with pytest.raises(ValueError):
        QuorumSystem(range(5), f=2, e=2)


def test_e_cannot_exceed_f():
    with pytest.raises(ValueError):
        QuorumSystem(range(7), f=1, e=2)


def test_empty_acceptors_rejected():
    with pytest.raises(ValueError):
        QuorumSystem([])


def test_negative_tolerances_rejected():
    with pytest.raises(ValueError):
        QuorumSystem(range(3), f=-1)


def test_is_quorum_by_cardinality():
    system = QuorumSystem(["a", "b", "c", "d", "e"])
    assert system.is_quorum({"a", "b", "c"})
    assert not system.is_quorum({"a", "b"})
    assert system.is_quorum({"a", "b", "c", "d"}, fast=True)
    assert not system.is_quorum({"a", "b", "c"}, fast=True)


def test_is_quorum_ignores_foreign_members():
    system = QuorumSystem(["a", "b", "c"])
    assert not system.is_quorum({"a", "x", "y"})


def test_quorum_enumeration():
    system = QuorumSystem(range(4))
    classic = list(system.quorums())
    assert len(classic) == math.comb(4, system.classic_quorum_size)
    assert all(len(q) == system.classic_quorum_size for q in classic)


def test_min_intersection_formula():
    system = QuorumSystem(range(5))
    assert system.min_intersection(3, 3) == 1
    assert system.min_intersection(3, 4) == 2


@given(st.integers(min_value=1, max_value=25))
def test_default_construction_satisfies_assumptions(n):
    system = QuorumSystem(range(n))
    system.check_assumptions(exhaustive=n <= 6)


@given(st.integers(min_value=3, max_value=9), st.data())
def test_explicit_tolerances_satisfy_assumptions(n, data):
    f = data.draw(st.integers(min_value=0, max_value=(n - 1) // 2))
    e_max = max((n - f - 1) // 2, 0)
    e = data.draw(st.integers(min_value=0, max_value=min(e_max, f)))
    system = QuorumSystem(range(n), f=f, e=e)
    system.check_assumptions(exhaustive=n <= 6)


def test_paper_quorum_sizes_headline_formulas():
    """Fast quorums are ⌈3n/4⌉ when classic quorums are majorities.

    (The TR prints the slightly conservative ⌈(3n+1)/4⌉, which coincides
    except when 4 divides n; the tight bound is ⌈3n/4⌉.)
    """
    for n in range(3, 20):
        sizes = paper_quorum_sizes(n)
        assert sizes["classic_quorum"] == n // 2 + 1  # any majority
        assert sizes["fast_quorum"] == math.ceil(3 * n / 4)
        assert sizes["balanced_quorum"] == math.ceil((2 * n + 1) / 3)


def test_balanced_quorums_satisfy_both_assumptions():
    """Sets of ⌈(2n+1)/3⌉ acceptors can serve as classic AND fast quorums."""
    for n in range(3, 15):
        size = math.ceil((2 * n + 1) / 3)
        e = f = n - size
        if e < 0:
            continue
        system = QuorumSystem(range(n), f=f, e=e)
        system.check_assumptions(exhaustive=n <= 6)
        assert system.classic_quorum_size == system.fast_quorum_size == size


def test_coordinator_quorums_assumption3():
    good = CoordinatorQuorums([frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})])
    good.check_assumption()
    bad = CoordinatorQuorums([frozenset({0}), frozenset({1})])
    with pytest.raises(AssertionError):
        bad.check_assumption()


def test_coordinator_quorums_covered_by():
    quorums = CoordinatorQuorums([frozenset({0, 1}), frozenset({1, 2})])
    assert quorums.covered_by(frozenset({0, 1, 2}))
    assert quorums.covered_by(frozenset({1, 2}))
    assert not quorums.covered_by(frozenset({0, 2}))


def test_coordinator_quorums_empty_rejected():
    with pytest.raises(ValueError):
        CoordinatorQuorums([])
