"""Planted determinism violations: one of each hazard class."""

import random
import time


def unseeded_draw():
    return random.random()  # module-level global RNG


def system_seeded_instance():
    return random.Random()  # no seed


def wall_clock():
    return time.time()


def id_ordering(processes):
    return sorted(processes, key=id)


class Broadcaster:
    def __init__(self):
        self.peers = set()
        self.outbox = []

    def send(self, dst, msg):
        self.outbox.append((dst, msg))

    def emit(self, msg):
        for peer in self.peers:  # set iteration feeding an ordered sink
            self.send(peer, msg)

    def drain(self, buffer):
        for value in buffer.values():  # .values() feeding an ordered sink
            self.outbox.append(value)

    def pick_representative(self):
        return next(iter(self.peers))  # hash-order representative

    def materialize(self):
        return list(self.peers)  # hash order baked into a sequence
