"""Planted config-validation violations."""

from dataclasses import dataclass


@dataclass
class TimeoutConfig:  # numeric fields, no __post_init__ at all
    interval: float = 1.0
    retries: int = 3


@dataclass
class PartialConfig:  # __post_init__ exists but misses one numeric field
    depth: int = 4
    rate: float = 0.5
    label: str = "x"

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
