"""Planted durability violations, including the minimized ``_observed`` bug.

This reproduces the real regression protolint exists to catch: a
coordinator's proposal-dedup horizon (``_observed``) was mutated in the
propose handler but never journalled, so a crash-recovered coordinator
re-served every command it had already driven to a decision.
"""


class Storage:
    """Stand-in for repro.sim.storage.StableStorage."""

    def __init__(self) -> None:
        self.data = {}

    def write(self, key, value):
        self.data[key] = value

    def read(self, key, default=None):
        return self.data.get(key, default)


class Process:
    def __init__(self, pid):
        self.pid = pid
        self.storage = Storage()


class BuggyCoordinator(Process):
    """The minimized PR-2 bug: ``_observed`` mutated, never journalled."""

    def __init__(self, pid):
        super().__init__(pid)
        self.crnd = 0
        self._observed = {}

    def on_propose(self, msg, src):
        # BUG: mutated in a handler, not journalled, not restored, not
        # declared VOLATILE -> silently empty after crash recovery.
        self._observed[msg] = 1
        self.crnd += 1

    def on_recover(self):
        self.crnd = self.storage.read("crnd", 0)


class PartiallyDurable(Process):
    """Journals one attribute, forgets a second mutated in the same handler."""

    VOLATILE = {"stats"}

    def __init__(self, pid):
        super().__init__(pid)
        self.votes = {}
        self.horizon = 0
        self.stats = 0

    def on_vote(self, msg, src):
        self.votes[msg] = src
        self.storage.write("votes", self.votes)
        self.horizon = max(self.horizon, msg)  # BUG: never journalled
        self.stats += 1  # fine: declared VOLATILE

    def on_recover(self):
        self.votes = self.storage.read("votes", {})
