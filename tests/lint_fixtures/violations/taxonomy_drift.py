"""Planted taxonomy drift: every direction of the rule fires here.

Paired with ``docs.md`` in this directory, which documents ``Ping`` but
omits ``Pong`` (undocumented message) and still lists a long-deleted
``Legacy`` message (stale doc entry).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Ping:
    nonce: int


@dataclass(frozen=True)
class Pong:  # handled below but missing from docs.md
    nonce: int


@dataclass(frozen=True)
class Orphan:  # sent below, but nothing defines on_orphan
    payload: str


@dataclass(frozen=True)
class Ghost:  # handled below, but nothing ever constructs one
    pass


class Process:
    def send(self, dst, msg):
        pass


class Node(Process):
    def on_ping(self, msg, src):
        self.send(src, Pong(msg.nonce))
        self.send(src, Orphan("?"))

    def on_pong(self, msg, src):
        pass

    def on_ghost(self, msg, src):
        pass

    def on_retired(self, msg, src):  # stale handler: no Retired class exists
        pass


def client(node):
    node.send("n1", Ping(1))
