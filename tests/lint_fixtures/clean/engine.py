"""A miniature protocol that satisfies every protolint rule.

Every construct here is the sanctioned counterpart of a plant in
``../violations``: journalled-and-restored durable state plus a declared
``VOLATILE`` set, a seeded RNG, sorted iteration on the emitting path, a
fully validated config, and a message vocabulary that matches both its
handlers and ``docs.md``.
"""

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Echo:
    nonce: int


@dataclass
class EchoConfig:
    fanout: int = 2
    period: float = 1.0
    seed: int = 7  # protolint: ignore[config] -- every int is a valid seed

    def __post_init__(self):
        if self.fanout < 1:
            raise ValueError("fanout must be at least 1")
        if self.period <= 0:
            raise ValueError("period must be positive")


class Storage:
    def __init__(self):
        self.data = {}

    def write(self, key, value):
        self.data[key] = value

    def read(self, key, default=None):
        return self.data.get(key, default)


class Process:
    def __init__(self, pid):
        self.pid = pid
        self.storage = Storage()

    def send(self, dst, msg):
        pass


class EchoNode(Process):
    VOLATILE = {"echoes_seen"}  # statistics, rebuilt from zero

    def __init__(self, pid, config):
        super().__init__(pid)
        self.config = config
        self.rng = random.Random(config.seed)
        self.peers = set()
        self.horizon = 0
        self.echoes_seen = 0

    def on_echo(self, msg, src):
        self.echoes_seen += 1
        self.horizon = max(self.horizon, msg.nonce)
        self.storage.write("horizon", self.horizon)
        for peer in sorted(self.peers):  # canonical emission order
            self.send(peer, Echo(msg.nonce + 1))

    def on_recover(self):
        self.horizon = self.storage.read("horizon", 0)


def client(node):
    node.send("n1", Echo(0))
