"""Sharded conformance on the subprocess launcher (``repro.net.node``).

A 2-group sharded cluster as real OS processes: each group's
coordinators + acceptors in their own ``python -m repro.net.node``
child, the merge group likewise, and two learner-site children each
hosting one :class:`~repro.shard.replica.ShardReplica` per group (the
group learner and the merge learner are co-sited by
:func:`~repro.net.node.sharded_node_plan`).  The driver hosts the
proposers and a :class:`~repro.shard.router.ShardRouter`, submits a
mixed single-shard + cross-shard workload, and audits the replicas'
per-key executed orders over the wire (``CtlKeyOrders``):

* every command executed by every replica of every owning group;
* **zero per-key divergence** -- for each (group, key), all sites
  report the identical cid sequence (the invariant
  ``ShardedDeployment.divergent_keys`` checks on the simulator).
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cstruct.commands import Command
from repro.net.cluster import (
    DRIVER_NODE,
    GenNetCluster,
    NetCluster,
    codec_context_for,
    wall_clock_liveness,
    wall_clock_retransmit,
)
from repro.net.node import (
    ControlClient,
    control_pid,
    sharded_configs_from_spec,
    sharded_node_plan,
)
from repro.net.transport import AddressBook, NetRuntime
from repro.shard.router import ShardRouter

QUICK = os.environ.get("CI") == "quick"

ROOT = Path(__file__).resolve().parent.parent

SHAPE = {"n_proposers": 1, "n_coordinators": 2, "n_acceptors": 3, "n_learners": 2}
N_GROUPS = 2
N_CMDS = 24
CROSS_EVERY = 4


def reserve_ports(count: int) -> list[int]:
    """Localhost ports free for both UDP and TCP (see cluster_launcher)."""
    holds, ports = [], []
    while len(ports) < count:
        udp = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        udp.bind(("127.0.0.1", 0))
        port = udp.getsockname()[1]
        tcp = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            tcp.bind(("127.0.0.1", port))
        except OSError:
            udp.close()
            continue
        holds += [udp, tcp]
        ports.append(port)
    for sock in holds:
        sock.close()
    return ports


def group_keys(shard_map, per_group: int = 2) -> dict[int, list[str]]:
    """The first *per_group* keys hashing to each group."""
    out: dict[int, list[str]] = {gid: [] for gid in range(shard_map.n_groups)}
    index = 0
    while any(len(keys) < per_group for keys in out.values()):
        key = f"k{index}"
        index += 1
        owner = shard_map.group_of_key(key)
        if len(out[owner]) < per_group:
            out[owner].append(key)
    return out


def workload(shard_map) -> list[Command]:
    """Mixed ops over both groups, every ``CROSS_EVERY``-th cross-shard."""
    keys = group_keys(shard_map)
    cmds = []
    for i in range(N_CMDS):
        if i % CROSS_EVERY == CROSS_EVERY - 1:
            cmds.append(
                Command(f"x{i}", "put", f"{keys[0][0]}|{keys[1][0]}", i)
            )
            continue
        gid = i % N_GROUPS
        key = keys[gid][(i // N_GROUPS) % len(keys[gid])]
        op, arg = (("put", i), ("inc", 1), ("get", None))[i % 3]
        cmds.append(Command(f"s{i}", op, key, arg))
    return cmds


async def drive() -> None:
    spec_base = {
        "shape": SHAPE,
        "sharded": {"n_groups": N_GROUPS},
        "retransmit": vars(wall_clock_retransmit()),
        "liveness": vars(wall_clock_liveness()),
        "lifetime": 120.0,
    }
    shard_map, group_configs, merge_config = sharded_configs_from_spec(spec_base)
    placement = sharded_node_plan(group_configs, merge_config)
    nodes = sorted({*placement.values(), DRIVER_NODE})
    remote_nodes = [node for node in nodes if node != DRIVER_NODE]
    for node in nodes:
        placement[control_pid(node)] = node

    book = AddressBook(placement=placement)
    for node, port in zip(remote_nodes, reserve_ports(len(remote_nodes))):
        book.nodes[node] = ("127.0.0.1", port)
    book.nodes[DRIVER_NODE] = ("127.0.0.1", 0)

    driver = NetRuntime(
        DRIVER_NODE, book, seed=99, codec_context=codec_context_for(merge_config)
    )
    await driver.start()

    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    children: list[subprocess.Popen] = []
    control: ControlClient | None = None
    try:
        for index, node in enumerate(remote_nodes):
            spec = {
                **spec_base,
                "node": node,
                "seed": index + 1,
                "driver": DRIVER_NODE,
                **book.to_json(),
            }
            children.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro.net.node", json.dumps(spec)],
                    env=env,
                )
            )

        groups = [NetCluster(driver, config) for config in group_configs]
        merge = GenNetCluster(driver, merge_config)
        router = ShardRouter(driver, shard_map, groups, merge)
        control = ControlClient(control_pid(DRIVER_NODE), driver, set(remote_nodes))
        assert await driver.wait_until(control.all_ready, timeout=30.0), (
            f"nodes never ready: {sorted(control.expected - control.hellos)}"
        )
        coordinator_nodes = sorted(
            {
                book.node_of(config.topology.coordinators[0])
                for config in (*group_configs, merge_config)
            }
        )
        control.start_nodes(coordinator_nodes)

        cmds = workload(shard_map)
        cross = [c for c in cmds if len(shard_map.groups_of(c)) > 1]
        assert cross, "workload must include cross-shard commands"
        for index, cmd in enumerate(cmds):
            router.propose(cmd, delay=0.3 + 0.05 * index)

        site_nodes = sorted(
            {book.node_of(pid) for pid in group_configs[0].topology.learners}
        )
        n_replicas = N_GROUPS * SHAPE["n_learners"]

        def executed_everywhere() -> bool:
            orders = control.replica_key_orders()
            if len(orders) < n_replicas:
                return False
            for cmd in cmds:
                for gid in shard_map.groups_of(cmd):
                    for site in range(SHAPE["n_learners"]):
                        replica = orders.get((gid, site), {})
                        for key in shard_map.owned_keys(cmd, gid):
                            if cmd.cid not in replica.get(key, ()):
                                return False
            return True

        done = False
        deadline = time.monotonic() + 90.0
        while time.monotonic() < deadline:
            control.audit_key_orders(site_nodes)
            await driver.wait_until(
                lambda: len(control.key_orders) >= len(site_nodes), timeout=5.0
            )
            if executed_everywhere():
                done = True
                break
            await asyncio.sleep(0.3)
        orders = control.replica_key_orders()
        assert done, (
            "commands never executed everywhere: "
            f"{ {rep: {k: len(v) for k, v in o.items()} for rep, o in orders.items()} }"
        )

        # Zero per-key divergence across the sites of each group.
        divergent = []
        for gid in range(N_GROUPS):
            keys = sorted(
                {
                    key
                    for site in range(SHAPE["n_learners"])
                    for key in orders[(gid, site)]
                }
            )
            for key in keys:
                per_site = {
                    orders[(gid, site)].get(key, ())
                    for site in range(SHAPE["n_learners"])
                }
                if len(per_site) > 1:
                    divergent.append((gid, key))
        assert divergent == [], f"per-key divergence across sites: {divergent}"

        # Every cross-shard command executed once in *each* owning group.
        for cmd in cross:
            for gid in shard_map.groups_of(cmd):
                (key,) = shard_map.owned_keys(cmd, gid)
                for site in range(SHAPE["n_learners"]):
                    assert orders[(gid, site)][key].count(cmd.cid) == 1
    finally:
        if control is not None:
            control.shutdown_cluster(remote_nodes)
            await asyncio.sleep(0.3)
        await driver.stop()
        deadline = time.monotonic() + 10.0
        for child in children:
            try:
                child.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                child.kill()


@pytest.mark.skipif(QUICK, reason="subprocess cluster skipped under CI=quick")
def test_sharded_cluster_as_os_processes():
    asyncio.run(drive())
