"""State-machine replication: KV store, replicas, clients."""

import pytest

from repro.core.broadcast import GenericBroadcast
from repro.core.rounds import RoundSchedule
from repro.protocols.classic import build_classic_paxos
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.client import Client
from repro.smr.machine import KVStore, kv_conflict
from repro.smr.replica import BroadcastReplica, OrderedReplica
from tests.conftest import cmd


# -- the KV state machine -------------------------------------------------------


def test_kv_put_get():
    kv = KVStore()
    kv.apply(cmd("1", "put", "x", 7))
    assert kv.apply(cmd("2", "get", "x")) == 7
    assert kv.get("x") == 7


def test_kv_get_missing_is_none():
    assert KVStore().apply(cmd("1", "get", "nope")) is None


def test_kv_inc_defaults_to_one():
    kv = KVStore()
    assert kv.apply(cmd("1", "inc", "n")) == 1
    assert kv.apply(cmd("2", "inc", "n", 4)) == 5


def test_kv_cas():
    kv = KVStore()
    kv.apply(cmd("1", "put", "x", 1))
    assert kv.apply(cmd("2", "cas", "x", (1, 2))) is True
    assert kv.apply(cmd("3", "cas", "x", (1, 9))) is False
    assert kv.get("x") == 2


def test_kv_unknown_op_rejected():
    with pytest.raises(ValueError):
        KVStore().apply(cmd("1", "fly", "x"))


def test_kv_snapshot_deterministic():
    left, right = KVStore(), KVStore()
    for store in (left, right):
        store.apply(cmd("1", "put", "b", 2))
        store.apply(cmd("2", "put", "a", 1))
    assert left.snapshot() == right.snapshot() == (("a", 1), ("b", 2))


def test_kv_commuting_orders_converge():
    """Commands that commute under kv_conflict leave the same final state."""
    rel = kv_conflict()
    a, b = cmd("1", "put", "x", 1), cmd("2", "put", "y", 2)
    assert not rel(a, b)
    left, right = KVStore(), KVStore()
    left.apply(a), left.apply(b)
    right.apply(b), right.apply(a)
    assert left.snapshot() == right.snapshot()


# -- generic-broadcast replication ------------------------------------------------


def deploy_broadcast(seed=1, jitter=0.0, n_learners=2):
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter))
    service = GenericBroadcast.deploy(
        sim, kv_conflict(), n_learners=n_learners, n_coordinators=3, n_acceptors=3
    )
    rnd = service.cluster.config.schedule.make_round(0, 1, 2)
    service.start_round(rnd)
    replicas = [
        BroadcastReplica(learner, KVStore()) for learner in service.cluster.learners
    ]
    return sim, service, replicas


def test_replicas_converge_to_same_state():
    sim, service, replicas = deploy_broadcast()
    cmds = [
        cmd("1", "put", "x", 1),
        cmd("2", "put", "y", 2),
        cmd("3", "inc", "x"),  # wait: inc on x conflicts with put on x
    ]
    for i, command in enumerate(cmds):
        service.broadcast(command, delay=5.0 + 4 * i)
    assert service.cluster.run_until_learned(cmds, timeout=500)
    snapshots = {replica.machine.snapshot() for replica in replicas}
    assert len(snapshots) == 1


def test_replicas_execute_conflicting_commands_in_same_order():
    sim, service, replicas = deploy_broadcast(jitter=0.8, seed=5)
    conflicting = [cmd(str(i), "put", "hot", i) for i in range(4)]
    for i, command in enumerate(conflicting):
        service.broadcast(command, delay=5.0 + 3 * i)
    assert service.cluster.run_until_learned(conflicting, timeout=2000)
    orders = [
        [c for c in replica.executed if c.key == "hot"] for replica in replicas
    ]
    assert all(order == orders[0] for order in orders)
    final = {replica.machine.get("hot") for replica in replicas}
    assert len(final) == 1


def test_deliver_callback_fires_per_learner():
    sim, service, replicas = deploy_broadcast()
    delivered = []
    service.on_deliver(lambda pid, command: delivered.append((pid, command.cid)))
    command = cmd("9", "put", "k", 1)
    service.broadcast(command, delay=5.0)
    assert service.cluster.run_until_learned([command], timeout=200)
    assert sorted(delivered) == [("learn0", "9"), ("learn1", "9")]


def test_delivered_histories_compatible():
    sim, service, replicas = deploy_broadcast(jitter=1.0, seed=3)
    cmds = [cmd(str(i), "put", f"k{i % 2}", i) for i in range(5)]
    for i, command in enumerate(cmds):
        service.broadcast(command, delay=5.0 + 2 * i)
    service.cluster.run_until_learned(cmds, timeout=2000)
    left, right = service.delivered_histories()
    assert left.is_compatible(right)


# -- classic (instance-ordered) replication -----------------------------------------


def test_ordered_replicas_match():
    sim = Simulation(seed=1)
    cluster = build_classic_paxos(sim, n_learners=2)
    cluster.start_round(1)
    replicas = [OrderedReplica(learner, KVStore()) for learner in cluster.learners]
    cmds = [cmd("1", "put", "x", 1), cmd("2", "inc", "x", 2), cmd("3", "put", "x", 9)]
    for i, command in enumerate(cmds):
        cluster.propose(command, delay=5.0 + 3 * i)
    assert cluster.run_until_delivered(cmds, timeout=500)
    assert replicas[0].machine.snapshot() == replicas[1].machine.snapshot()
    assert replicas[0].executed == replicas[1].executed == cmds


# -- clients ---------------------------------------------------------------------------


def test_client_latency_tracking():
    sim, service, replicas = deploy_broadcast(n_learners=1)
    client = Client("c1", service.cluster)
    client.watch_replica(replicas[0])
    command = client.issue(cmd("42", "put", "k", 1), delay=5.0)
    assert service.cluster.run_until_learned([command], timeout=200)
    assert client.all_completed()
    assert client.latency(command) == 3.0


def test_client_incomplete_latency_is_none():
    sim, service, replicas = deploy_broadcast(n_learners=1)
    client = Client("c1", service.cluster)
    command = cmd("42", "put", "k", 1)
    assert client.latency(command) is None


# -- duplicate-delivery deduplication ---------------------------------------------------


class FakeBroadcastLearner:
    """Minimal learner double: lets tests fire learn events directly."""

    def __init__(self):
        self.callbacks = []

    def on_learn(self, callback):
        self.callbacks.append(callback)

    def learn(self, *cmds):
        for callback in self.callbacks:
            callback(tuple(cmds), None)


class FakeOrderedLearner:
    def __init__(self):
        self.callbacks = []

    def on_deliver(self, callback):
        self.callbacks.append(callback)

    def deliver(self, instance, command):
        for callback in self.callbacks:
            callback(instance, command)


def test_broadcast_replica_executes_duplicates_once():
    replica = BroadcastReplica(FakeBroadcastLearner(), KVStore())
    command = cmd("1", "inc", "x")  # non-idempotent: re-execution would show
    replica.learner.learn(command)
    replica.learner.learn(command)  # duplicate learn event (resubmission)
    replica.learner.learn(command, command)  # duplicate within one delta
    assert replica.executed == [command]
    assert replica.machine.get("x") == 1


def test_broadcast_replica_preserves_first_result():
    replica = BroadcastReplica(FakeBroadcastLearner(), KVStore())
    command = cmd("1", "inc", "x")
    observed = []
    replica.on_execute(lambda c, result: observed.append(result))
    replica.learner.learn(command)
    assert replica.results[command] == 1
    replica.learner.learn(command)  # would return 2 if re-executed
    assert replica.results[command] == 1  # first-execution result kept
    assert observed == [1]  # observers fire once per unique command


def test_ordered_replica_executes_duplicates_once():
    replica = OrderedReplica(FakeOrderedLearner(), KVStore())
    command = cmd("1", "inc", "x")
    replica.learner.deliver(0, command)
    replica.learner.deliver(3, command)  # same command decided in two instances
    assert replica.executed == [command]
    assert replica.results[command] == 1
    assert replica.machine.get("x") == 1
