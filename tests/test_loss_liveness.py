"""Liveness under message loss: the multi-instance reliability layer.

The paper's link model is fair-lossy plus retransmission (Section 2.1.1).
These tests cover each re-driver of the reliability layer in isolation --
proposer retransmission with backoff, coordinator gossip and observed-set
journalling, learner gap detection and catch-up -- and then end-to-end
delivery on networks dropping 30% and 50% of all messages.
"""

import pytest

from repro.core.liveness import LivenessConfig
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.instances import (
    BatchingConfig,
    I2b,
    IDecided,
    IPropose,
    RetransmitConfig,
    build_smr,
)
from tests.conftest import cmd


def deploy(seed=1, drop_rate=0.0, retransmit=None, liveness=None, **kwargs):
    sim = Simulation(
        seed=seed,
        network=NetworkConfig(drop_rate=drop_rate),
        max_events=4_000_000,
    )
    cluster = build_smr(sim, liveness=liveness, retransmit=retransmit, **kwargs)
    rnd = cluster.config.schedule.make_round(coord=0, count=1, rtype=2)
    cluster.start_round(rnd)
    return sim, cluster


def make_cmds(n):
    return [cmd(f"c{i}", "put", f"k{i}", i) for i in range(n)]


# -- config validation (mirrors the NetworkConfig range checks) --------------


def test_retransmit_config_validation():
    RetransmitConfig()  # defaults are valid
    with pytest.raises(ValueError):
        RetransmitConfig(retry_interval=0.0)
    with pytest.raises(ValueError):
        RetransmitConfig(backoff=0.5)
    with pytest.raises(ValueError):
        RetransmitConfig(retry_interval=10.0, max_interval=5.0)
    with pytest.raises(ValueError):
        RetransmitConfig(gossip_interval=-1.0)
    with pytest.raises(ValueError):
        RetransmitConfig(catchup_interval=0.0)
    with pytest.raises(ValueError):
        RetransmitConfig(max_resend=0)


def test_liveness_config_validation():
    LivenessConfig()  # defaults are valid
    with pytest.raises(ValueError):
        LivenessConfig(heartbeat_period=0.0)
    with pytest.raises(ValueError):
        LivenessConfig(check_period=-1.0)
    with pytest.raises(ValueError):
        LivenessConfig(stuck_timeout=0.0)
    with pytest.raises(ValueError):
        LivenessConfig(heartbeat_period=4.0, suspect_timeout=4.0)
    with pytest.raises(ValueError):
        LivenessConfig(recovery_rtype=7)


# -- proposer retransmission --------------------------------------------------


def test_proposer_retransmits_with_exponential_backoff():
    retransmit = RetransmitConfig(
        retry_interval=2.0, backoff=2.0, max_interval=16.0,
        gossip_interval=500.0, catchup_interval=500.0,
    )
    sim, cluster = deploy(retransmit=retransmit, n_learners=1)
    sim.run(until=10)

    send_times = []

    def swallow_proposals(src, dst, msg):
        if isinstance(msg, IPropose):
            if dst == cluster.config.topology.coordinators[0]:
                send_times.append(sim.clock)
            return True
        return False

    sim.network.add_drop_filter(swallow_proposals)
    command = make_cmds(1)[0]
    cluster.propose(command, delay=1.0, proposer=0)
    sim.run(until=sim.clock + 60.0)

    proposer = cluster.proposers[0]
    assert proposer.retransmissions >= 4
    assert command in proposer._unacked
    # Gaps between attempts follow the backoff schedule: 2, 4, 8, 16, 16...
    gaps = [b - a for a, b in zip(send_times, send_times[1:])]
    assert gaps[:4] == [2.0, 4.0, 8.0, 16.0]
    assert all(gap == 16.0 for gap in gaps[4:])

    # Heal the network: the next retry goes through and the ack retires
    # the value from the unacked buffer.
    sim.network.remove_drop_filter(swallow_proposals)
    assert cluster.run_until_delivered([command], timeout=sim.clock + 100.0)
    sim.run(until=sim.clock + 40.0)
    assert proposer._unacked == {}


def test_unacked_values_survive_proposer_crash():
    retransmit = RetransmitConfig(retry_interval=3.0, gossip_interval=500.0)
    sim, cluster = deploy(retransmit=retransmit, n_learners=1)
    sim.run(until=10)

    # The learner hears nothing, so no ack can retire the value.
    def blind_learner(src, dst, msg):
        return dst == cluster.config.topology.learners[0] and isinstance(
            msg, (I2b, IDecided)
        )

    sim.network.add_drop_filter(blind_learner)
    command = make_cmds(1)[0]
    cluster.propose(command, delay=1.0, proposer=0)
    sim.run(until=20)
    proposer = cluster.proposers[0]
    assert command in proposer._unacked

    proposer.crash()
    assert proposer._unacked == {}  # volatile state lost
    proposer.recover()  # journal re-ships and re-arms the retry timer
    assert command in proposer._unacked

    sim.network.remove_drop_filter(blind_learner)
    assert cluster.run_until_delivered([command], timeout=sim.clock + 200.0)
    sim.run(until=sim.clock + 40.0)
    assert proposer._unacked == {}


def test_propose_to_crashed_proposer_is_a_lost_message():
    """A dead proposer must not half-register an unacked value.

    Registering while crashed would journal a value whose retry timer
    never re-arms: recovery would see it already tracked, skip the
    re-ship, and strand it forever.  The crash model instead drops the
    client message outright; resubmission is the client's re-driver.
    """
    sim, cluster = deploy(retransmit=RetransmitConfig())
    sim.run(until=10)
    proposer = cluster.proposers[0]
    proposer.crash()
    command = make_cmds(1)[0]
    proposer.propose(command)
    assert proposer._unacked == {}
    assert proposer.storage.read("unacked", ()) == ()
    proposer.recover()
    assert proposer._unacked == {}  # nothing stranded half-registered


def test_no_retransmissions_on_a_reliable_network():
    sim, cluster = deploy(retransmit=RetransmitConfig(), liveness=LivenessConfig())
    commands = make_cmds(6)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 2 * i)
    assert cluster.run_until_delivered(commands, timeout=2000)
    assert all(p.retransmissions == 0 for p in cluster.proposers)


# -- learner gap detection and catch-up ---------------------------------------


def test_learner_gap_filled_from_acceptor_vote_journal():
    # Retry/gossip silenced: only the gap-driven catch-up path can heal.
    retransmit = RetransmitConfig(
        retry_interval=500.0, max_interval=500.0,
        gossip_interval=500.0, catchup_interval=2.0,
    )
    sim, cluster = deploy(retransmit=retransmit, n_learners=1)
    sim.run(until=10)
    learner = cluster.learners[0]

    # The learner misses every I2b quorum below the top instance.
    def drop_low_instances(src, dst, msg):
        return (
            dst == learner.pid and isinstance(msg, I2b) and msg.instance < 3
        )

    blinder = sim.network.add_drop_filter(drop_low_instances)
    commands = make_cmds(4)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=1.0 + 3 * i, proposer=0)
    sim.run(until=sim.clock + 20.0)
    # All four instances decided at the coordinators; the learner only saw
    # the top one, so instances 0-2 are detected as gaps.
    assert max(len(c.decided) for c in cluster.coordinators) == 4
    assert learner.decided.keys() == {3}
    assert learner.gaps() == [0, 1, 2]
    assert learner.delivered == []  # nothing deliverable past the gap

    sim.network.remove_drop_filter(blinder)
    assert cluster.run_until_delivered(commands, timeout=sim.clock + 100.0)
    assert learner.catchup_requests >= 1
    assert learner.delivered == commands
    assert learner.gaps() == []


def test_blind_learner_caught_up_by_peers_and_decision_reannounce():
    """A learner that never receives a single I2b still converges.

    The proposer keeps retransmitting until *every* learner acks; a
    coordinator answers the retransmission with IDecided (top instance),
    which opens gaps that peer learners fill via catch-up -- all without
    any I2b reaching the blind learner.
    """
    retransmit = RetransmitConfig(retry_interval=3.0, catchup_interval=3.0)
    sim, cluster = deploy(
        retransmit=retransmit, liveness=LivenessConfig(), n_learners=2, seed=3
    )
    blind = cluster.learners[1]
    sim.network.add_drop_filter(
        lambda src, dst, msg: dst == blind.pid and isinstance(msg, I2b)
    )
    commands = make_cmds(6)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 2 * i)
    assert cluster.run_until_delivered(commands, timeout=3000)
    assert blind.delivered == cluster.learners[0].delivered


def test_recovered_learner_catches_up_without_new_traffic():
    """Decisions made during a learner outage reach it after recovery.

    The dead learner never acked them, so the proposers are still
    retrying; the resulting IDecided re-announcements raise its top
    decided instance and the gap poll fills the rest -- no new client
    traffic required.
    """
    sim, cluster = deploy(seed=2, retransmit=RetransmitConfig(), liveness=LivenessConfig(), n_learners=2)
    commands = make_cmds(8)
    for i, command in enumerate(commands[:4]):
        cluster.propose(command, delay=10.0 + i)
    sim.run(until=20)
    learner = cluster.learners[1]
    assert all(learner.has_delivered(c) for c in commands[:4])
    learner.crash()
    for i, command in enumerate(commands[4:]):
        cluster.propose(command, delay=1.0 + i)  # decided while it is down
    sim.run(until=sim.clock + 15.0)
    assert all(cluster.learners[0].has_delivered(c) for c in commands)
    assert not any(learner.has_delivered(c) for c in commands[4:])
    learner.recover()  # no further client traffic ever
    assert sim.run_until(
        lambda: all(learner.has_delivered(c) for c in commands),
        timeout=sim.clock + 2_000.0,
    )
    assert learner.delivered == cluster.learners[0].delivered


# -- coordinator gossip and crash-recovery ------------------------------------


def test_observed_set_journalled_across_coordinator_crash():
    sim, cluster = deploy(retransmit=RetransmitConfig())
    sim.run(until=10)
    coordinator = cluster.coordinators[2]
    command = make_cmds(1)[0]
    coordinator.on_ipropose(IPropose(command), "prop0")
    assert command in coordinator._observed

    coordinator.crash()
    assert coordinator._observed == {}  # volatile state lost with the crash
    coordinator.recover()
    assert command in coordinator._observed  # reloaded from stable storage


def test_command_seen_only_by_crashed_coordinator_is_recovered():
    """Observed-journal + gossip + stuck detection re-drive a lost command.

    The command reaches only coordinator 2, whose outbound links are cut
    before it can drive an instance; the coordinator then crashes.  On
    recovery the journalled observed set is gossiped to the leader, whose
    stuck detection re-proposes the command.  (Proposer retransmission is
    silenced so that only this path can deliver.)
    """
    retransmit = RetransmitConfig(
        retry_interval=10_000.0, max_interval=10_000.0,
        gossip_interval=4.0, catchup_interval=4.0,
    )
    liveness = LivenessConfig(stuck_timeout=8.0, check_period=4.0)
    sim, cluster = deploy(retransmit=retransmit, liveness=liveness)
    sim.run(until=10)
    topology = cluster.config.topology
    stranded_pid = topology.coordinators[2]

    # The proposal reaches only coordinator 2...
    proposal_filter = sim.network.add_drop_filter(
        lambda src, dst, msg: isinstance(msg, IPropose) and dst != stranded_pid
    )
    # ...whose outbound links are cut, so it cannot drive the instance.
    for other in (*topology.acceptors, *topology.coordinators):
        if other != stranded_pid:
            sim.network.block(stranded_pid, other)

    command = make_cmds(1)[0]
    cluster.propose(command, delay=1.0, proposer=0)
    sim.run(until=sim.clock + 3.0)
    stranded = cluster.coordinators[2]
    assert command in stranded._observed
    assert not any(command in c._observed for c in cluster.coordinators[:2])

    stranded.crash()
    sim.network.heal()
    sim.network.remove_drop_filter(proposal_filter)
    stranded.recover()
    assert cluster.run_until_delivered([command], timeout=sim.clock + 300.0)


def test_coordinators_missing_i2b_quorum_converge_via_2a_reannounce():
    """Acceptors answer a re-announced 2a with their journalled vote.

    If every coordinator misses an instance's I2b quorum (the learners can
    still decide it from their own copies), the coordinators would
    otherwise re-announce the 2a forever -- the acceptors' vote guard
    blocks a re-accept and nothing re-sent the vote -- leaving _sent and
    the batching pipeline slot occupied for good.  With retry and
    catch-up silenced, convergence here proves the re-announce/vote-echo
    path alone heals the coordinators.
    """
    retransmit = RetransmitConfig(
        retry_interval=10_000.0, max_interval=10_000.0,
        gossip_interval=2.0, catchup_interval=10_000.0,
    )
    sim, cluster = deploy(
        retransmit=retransmit,
        batching=BatchingConfig(max_batch=1, flush_interval=1.0, pipeline_depth=1),
    )
    sim.run(until=10)
    coordinator_pids = set(cluster.config.topology.coordinators)
    blackout = sim.network.add_drop_filter(
        lambda src, dst, msg: isinstance(msg, I2b) and dst in coordinator_pids
    )
    first, second = make_cmds(2)
    cluster.propose(first, delay=1.0, proposer=0)
    sim.run(until=sim.clock + 10.0)
    # The learner decided (and delivered) instance 0; no coordinator did.
    assert cluster.learners[0].delivered == [first]
    assert all(0 not in c.decided for c in cluster.coordinators)

    sim.network.remove_drop_filter(blackout)
    cluster.propose(second, delay=1.0, proposer=0)
    assert cluster.run_until_delivered([first, second], timeout=sim.clock + 200.0)
    sim.run(until=sim.clock + 20.0)
    # The vote echo let every coordinator record the decision and retire
    # its 2a state: the re-announce loop has terminated.
    assert all(0 in c.decided for c in cluster.coordinators)
    assert all(c._sent == {} for c in cluster.coordinators)
    assert all(c.assigned == {} for c in cluster.coordinators)


def test_stale_observed_entry_retired_by_gossip_answer():
    """A coordinator that slept through a decision stops gossiping it.

    The coordinator observes a command, crashes, and recovers after the
    command was decided: its reloaded observed set is stale (it never saw
    the decision).  Peers answering its gossip with IDecided let it retire
    the entry instead of re-broadcasting it forever.
    """
    retransmit = RetransmitConfig(
        retry_interval=10_000.0, max_interval=10_000.0,
        gossip_interval=2.0, catchup_interval=2.0,
    )
    sim, cluster = deploy(retransmit=retransmit)
    sim.run(until=10)
    sleeper = cluster.coordinators[2]
    command = make_cmds(1)[0]
    cluster.propose(command, delay=1.0, proposer=0)
    # Crash right after the proposal reaches the coordinators, before the
    # decision; the remaining coordinator quorum decides without it.
    sim.run(until=sim.clock + 2.5)
    assert command in sleeper._observed
    sleeper.crash()
    assert cluster.run_until_delivered([command], timeout=sim.clock + 100.0)

    sleeper.recover()
    assert command in sleeper._observed  # stale journal entry reloaded
    sim.run(until=sim.clock + 10.0)  # a couple of gossip rounds
    assert command not in sleeper._observed  # retired via peers' IDecided
    assert command in sleeper.decided.values()


# -- decided-state retirement (bounded coordinator/learner state) -------------


def test_inflight_state_retired_after_decisions():
    sim, cluster = deploy(
        retransmit=RetransmitConfig(),
        liveness=LivenessConfig(),
        batching=BatchingConfig(max_batch=4, flush_interval=2.0),
    )
    commands = make_cmds(16)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + i)
    assert cluster.run_until_delivered(commands, timeout=3000)
    sim.run(until=sim.clock + 60.0)  # let trailing acks/gossip settle
    for coordinator in cluster.coordinators:
        assert coordinator.assigned == {}
        assert coordinator._assigned_cmds == set()
        assert coordinator._sent == {}  # decided instances retired
        assert coordinator._sent_values == {}
        assert coordinator._p2b == {}  # vote buffers released on decision
        assert coordinator._observed == {}  # everything proposed was served
    for learner in cluster.learners:
        assert learner._votes == {}
    for acceptor in cluster.acceptors:
        # Late third-coordinator endorsements must not rebuild the released
        # quorum buffers, or acceptor state grows with decided history.
        assert acceptor._p2a == {}
        assert acceptor._collided == set()


def test_race_losing_command_is_redriven_without_a_round_change():
    """Retiring _sent entries unblocks requeued race losers.

    In the seed, a command whose 2a lost its instance race stayed shadowed
    by its own stale ``_sent`` entry: the requeue hit the already-driving
    check and dropped the command until the next round change.  After the
    fix, feeding the coordinator an I2b quorum deciding *another* value
    for its instance must leave its own command re-assigned to a fresh
    instance.
    """
    sim, cluster = deploy()
    sim.run(until=10)
    coordinator = cluster.coordinators[0]
    rnd = coordinator.crnd
    own, rival = make_cmds(2)
    coordinator.on_ipropose(IPropose(own), "prop0")
    assert coordinator.assigned[0].cmd == own  # instance 0 claimed

    # A rival coordinator quorum decided instance 0 with another value.
    for acceptor in cluster.config.topology.acceptors[:2]:
        coordinator.on_i2b(I2b(rnd, 0, rival, acceptor), acceptor)
    assert coordinator.decided[0] == rival
    assert coordinator.reassignments == 1
    # The loser was re-driven into a fresh instance, not silently dropped
    # (the seed's stale _sent entry made the requeue a no-op).
    assert coordinator.assigned[1].cmd == own
    assert coordinator._sent[1] == own
    assert 0 not in coordinator._sent  # decided instance retired


# -- end-to-end delivery under random loss ------------------------------------


@pytest.mark.parametrize("drop_rate", [0.3, 0.5])
@pytest.mark.parametrize(
    "batching",
    [None, BatchingConfig(max_batch=4, flush_interval=2.0, pipeline_depth=2)],
    ids=["unbatched", "batched"],
)
def test_all_commands_delivered_under_loss(drop_rate, batching):
    for seed in (1, 2):
        sim, cluster = deploy(
            seed=seed,
            drop_rate=drop_rate,
            retransmit=RetransmitConfig(),
            liveness=LivenessConfig(),
            batching=batching,
            n_proposers=2,
            n_learners=2,
        )
        commands = make_cmds(24)
        for i, command in enumerate(commands):
            cluster.propose(command, delay=10.0 + 3.0 * (i // 4))
        assert cluster.run_until_delivered(commands, timeout=20_000), (
            f"undelivered commands at drop_rate={drop_rate}, seed={seed}"
        )
        first, second = cluster.delivery_orders()
        assert first == second  # identical total order at both learners
        assert sorted(first, key=str) == sorted(commands, key=str)


def test_client_resubmission_backstop():
    """Client-level retry delivers even with the engine's layer off."""
    from repro.smr.client import Client
    from repro.smr.machine import KVStore
    from repro.smr.replica import OrderedReplica

    with pytest.raises(ValueError):
        Client("bad", cluster=None, retry_interval=0.0)
    with pytest.raises(ValueError):
        Client("bad", cluster=None, max_retries=-1)

    sim, cluster = deploy()  # no retransmit, no liveness: nothing re-drives
    sim.run(until=10)
    replica = OrderedReplica(cluster.learners[0], KVStore())
    client = Client("cl", cluster, retry_interval=5.0)
    client.watch_replica(replica)

    swallowed = []

    def swallow_first_attempt(src, dst, msg):
        if isinstance(msg, IPropose) and len(swallowed) < 3:
            swallowed.append(msg)
            return True
        return False

    sim.network.add_drop_filter(swallow_first_attempt)
    command = cmd("cl0", "put", "k", 1)
    client.issue(command, delay=1.0)
    # The first attempt vanished on every link; the watchdog resubmits.
    assert cluster.run_until_delivered([command], timeout=sim.clock + 200.0)
    assert client.retries[command] >= 1
    sim.run(until=sim.clock + 20.0)
    assert client.all_completed()


def test_seed_engine_strands_commands_under_loss():
    """Control: without the reliability layer the same run stalls."""
    sim, cluster = deploy(
        seed=1, drop_rate=0.3, retransmit=None, liveness=LivenessConfig(),
        n_proposers=2, n_learners=2,
    )
    commands = make_cmds(24)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=10.0 + 3.0 * (i // 4))
    assert not cluster.run_until_delivered(commands, timeout=5_000)
