"""Stable storage: durability semantics and write accounting."""

from repro.sim.storage import StableStorage


def test_write_then_read():
    storage = StableStorage("a")
    storage.write("k", 42)
    assert storage.read("k") == 42


def test_read_default():
    assert StableStorage().read("missing", "fallback") == "fallback"


def test_write_count_increments_per_write():
    storage = StableStorage()
    storage.write("a", 1)
    storage.write("a", 2)
    storage.write("b", 3)
    assert storage.write_count == 3


def test_write_many_is_one_disk_write():
    storage = StableStorage()
    storage.write_many({"vrnd": 1, "vval": "x"})
    assert storage.write_count == 1
    assert storage.read("vrnd") == 1
    assert storage.read("vval") == "x"


def test_per_key_write_counts():
    storage = StableStorage()
    storage.write("rnd", 1)
    storage.write("rnd", 2)
    storage.write_many({"vrnd": 1, "vval": "x"})
    assert storage.write_counts["rnd"] == 2
    assert storage.write_counts["vrnd"] == 1
    assert storage.write_counts["vval"] == 1


def test_contains_and_keys():
    storage = StableStorage()
    storage.write("a", 1)
    assert "a" in storage
    assert "b" not in storage
    assert list(storage.keys()) == ["a"]


def test_read_count_increments():
    storage = StableStorage()
    storage.read("a")
    storage.read("b")
    assert storage.read_count == 2


def test_clear_erases_but_keeps_counters():
    storage = StableStorage()
    storage.write("a", 1)
    storage.clear()
    assert "a" not in storage
    assert storage.write_count == 1
