"""Stable storage: durability semantics and write accounting."""

from repro.sim.storage import StableStorage


def test_write_then_read():
    storage = StableStorage("a")
    storage.write("k", 42)
    assert storage.read("k") == 42


def test_read_default():
    assert StableStorage().read("missing", "fallback") == "fallback"


def test_write_count_increments_per_write():
    storage = StableStorage()
    storage.write("a", 1)
    storage.write("a", 2)
    storage.write("b", 3)
    assert storage.write_count == 3


def test_write_many_is_one_disk_write():
    storage = StableStorage()
    storage.write_many({"vrnd": 1, "vval": "x"})
    assert storage.write_count == 1
    assert storage.read("vrnd") == 1
    assert storage.read("vval") == "x"


def test_per_key_write_counts():
    storage = StableStorage()
    storage.write("rnd", 1)
    storage.write("rnd", 2)
    storage.write_many({"vrnd": 1, "vval": "x"})
    assert storage.write_counts["rnd"] == 2
    assert storage.write_counts["vrnd"] == 1
    assert storage.write_counts["vval"] == 1


def test_contains_and_keys():
    storage = StableStorage()
    storage.write("a", 1)
    assert "a" in storage
    assert "b" not in storage
    assert list(storage.keys()) == ["a"]


def test_read_count_increments():
    storage = StableStorage()
    storage.read("a")
    storage.read("b")
    assert storage.read_count == 2


def test_clear_erases_but_keeps_counters():
    storage = StableStorage()
    storage.write("a", 1)
    storage.clear()
    assert "a" not in storage
    assert storage.write_count == 1


# -- prefix-keyed journals and compaction -------------------------------------


def test_append_and_prefix_items_in_index_order():
    storage = StableStorage()
    storage.append("vote", 3, "c")
    storage.append("vote", 1, "a")
    storage.append("vote", 2, "b")
    assert storage.prefix_items("vote") == [(1, "a"), (2, "b"), (3, "c")]
    assert storage.prefix_count("vote") == 3
    assert storage.read("vote:2") == "b"  # addressable like any key
    assert storage.write_count == 3  # one disk write per journal append


def test_prefix_items_ignores_other_prefixes_and_non_indices():
    storage = StableStorage()
    storage.append("vote", 1, "a")
    storage.append("other", 2, "x")
    storage.write("vote:meta", "not an entry")
    storage.write("votes:1", "different prefix")
    assert storage.prefix_items("vote") == [(1, "a")]
    assert storage.prefix_count("vote") == 1


def test_truncate_below_compacts_and_records_durable_floor():
    storage = StableStorage()
    for i in range(6):
        storage.append("vote", i, f"v{i}")
    writes = storage.write_count
    removed = storage.truncate_below("vote", 4)
    assert removed == 4
    assert storage.prefix_items("vote") == [(4, "v4"), (5, "v5")]
    assert storage.floor("vote") == 4
    # The whole compaction is one batched disk write.
    assert storage.write_count == writes + 1
    assert storage.truncate_count == 1


def test_truncate_below_is_monotone():
    storage = StableStorage()
    storage.append("vote", 0, "a")
    storage.truncate_below("vote", 3)
    assert storage.truncate_below("vote", 2) == 0  # lower bound: no-op
    assert storage.floor("vote") == 3
    storage.append("vote", 5, "b")
    assert storage.truncate_below("vote", 6) == 1
    assert storage.floor("vote") == 6


def test_truncate_leaves_unrelated_keys_alone():
    storage = StableStorage()
    storage.write("rnd", 7)
    storage.append("vote", 0, "a")
    storage.append("snap", 0, "s")
    storage.truncate_below("vote", 10)
    assert storage.read("rnd") == 7
    assert storage.prefix_items("snap") == [(0, "s")]


def test_clear_scoped_to_one_prefix():
    """The all-or-nothing clear() bug: scoped recovery wipes must not
    clobber unrelated journals or flat keys."""
    storage = StableStorage()
    storage.write("rnd", 7)
    storage.append("vote", 0, "a")
    storage.append("vote", 1, "b")
    storage.append("snap", 0, "s")
    storage.truncate_below("vote", 1)
    storage.clear("vote")
    assert storage.prefix_count("vote") == 0
    assert storage.floor("vote") == 0  # the journal restarts from scratch
    assert storage.read("rnd") == 7
    assert storage.prefix_items("snap") == [(0, "s")]
    storage.clear()  # unscoped: everything goes
    assert "rnd" not in storage
    assert storage.prefix_count("snap") == 0


def test_delete_single_key():
    storage = StableStorage()
    storage.write("a", 1)
    writes = storage.write_count
    storage.delete("a")
    assert "a" not in storage
    assert storage.write_count == writes + 1
    storage.delete("missing")  # no-op, no write
    assert storage.write_count == writes + 1
