"""Value-picking rules: the Fast Paxos rule and Definition 1's ProvedSafe."""

import pytest

from repro.core.messages import Phase1b
from repro.core.provedsafe import Pick, pick_value, proved_safe
from repro.core.quorums import QuorumSystem
from repro.core.rounds import ZERO, RoundId
from repro.cstruct.commands import KeyConflict
from repro.cstruct.history import CommandHistory
from tests.conftest import cmd

R1 = RoundId(0, 1, 0, 0)  # a fast round (rtype 0 under the default policy)
R2 = RoundId(0, 2, 0, 1)  # a classic round


def fast_map(rnd):
    return rnd.rtype == 0 and rnd != ZERO


def msg(acc, rnd, vrnd, vval):
    return Phase1b(rnd=rnd, vrnd=vrnd, vval=vval, acceptor=acc)


# -- consensus rule (Section 2.2) ------------------------------------------------


def test_pick_free_when_nothing_accepted():
    system = QuorumSystem(range(3))
    msgs = {a: msg(a, R2, ZERO, None) for a in range(3)}
    assert pick_value(system, msgs, fast_map) == Pick(free=True)


def test_pick_value_from_classic_round():
    system = QuorumSystem(range(3))
    v = cmd("v")
    msgs = {
        0: msg(0, R2, R2, v),
        1: msg(1, R2, ZERO, None),
        2: msg(2, R2, ZERO, None),
    }
    # k = R2 classic, q_k = 2, |Q| = 3, min intersection = 2?  No: 3+2-3 = 2,
    # a single reporter is not enough to prove choosability -> free.
    assert pick_value(system, msgs, fast_map).free


def test_pick_value_quorum_reported():
    system = QuorumSystem(range(3))
    v = cmd("v")
    msgs = {
        0: msg(0, R2, R2, v),
        1: msg(1, R2, R2, v),
        2: msg(2, R2, ZERO, None),
    }
    pick = pick_value(system, msgs, fast_map)
    assert not pick.free and pick.value == v


def test_pick_highest_round_dominates():
    system = QuorumSystem(range(3))
    old, new = cmd("old"), cmd("new")
    r3 = RoundId(0, 3, 0, 1)
    msgs = {
        0: msg(0, r3, R2, old),
        1: msg(1, r3, r3, new),
        2: msg(2, r3, r3, new),
    }
    pick = pick_value(system, msgs, fast_map)
    assert pick.value == new


def test_pick_fast_round_split_is_free():
    """Case 1 of Section 2.2: no k-quorum partially agreed -> free."""
    system = QuorumSystem(range(4))  # F=1, E=1: classic 3, fast 3
    a, b = cmd("a"), cmd("b")
    msgs = {
        0: msg(0, R2, R1, a),
        1: msg(1, R2, R1, a),
        2: msg(2, R2, R1, b),
        3: msg(3, R2, R1, b),
    }
    # min intersection with a fast 3-quorum: 4+3-4 = 3 > 2 votes each -> free.
    assert pick_value(system, msgs, fast_map).free


def test_pick_fast_round_dominant_value():
    """Case 2 of Section 2.2: exactly one value may have been chosen."""
    system = QuorumSystem(range(4))
    a, b = cmd("a"), cmd("b")
    msgs = {
        0: msg(0, R2, R1, a),
        1: msg(1, R2, R1, a),
        2: msg(2, R2, R1, a),
        3: msg(3, R2, R1, b),
    }
    pick = pick_value(system, msgs, fast_map)
    assert not pick.free and pick.value == a


def test_pick_empty_rejected():
    with pytest.raises(ValueError):
        pick_value(QuorumSystem(range(3)), {}, fast_map)


def test_pick_detects_quorum_requirement_violation():
    """Two choosable values means the deployment's quorums were wrong.

    We forge an unreachable state: a phase-1 "quorum" of only two
    acceptors, so the minimal k-quorum intersection is 1 and both reported
    values qualify as choosable.  The rule must refuse rather than pick.
    """
    system = QuorumSystem(range(4))
    a, b = cmd("a"), cmd("b")
    r9 = RoundId(0, 9, 0, 1)
    bad = {
        0: msg(0, r9, R2, a),
        1: msg(1, r9, R2, b),
    }
    with pytest.raises(ValueError):
        pick_value(system, bad, fast_map)


# -- ProvedSafe over c-structs (Definition 1) --------------------------------------


REL = KeyConflict()
A, B, C = cmd("a", "put", "x"), cmd("b", "put", "x"), cmd("c", "put", "y")


def hist(*cmds):
    return CommandHistory.of(REL, *cmds)


def test_proved_safe_initial_state_returns_bottom():
    system = QuorumSystem(range(3))
    msgs = {a: msg(a, R2, ZERO, hist()) for a in range(3)}
    picks = proved_safe(system, msgs, fast_map)
    assert picks == [hist()]


def test_proved_safe_unanimous_classic_round():
    system = QuorumSystem(range(3))
    value = hist(A, C)
    msgs = {
        0: msg(0, R2, R2, value),
        1: msg(1, R2, R2, value),
        2: msg(2, R2, ZERO, hist()),
    }
    picks = proved_safe(system, msgs, fast_map)
    assert picks == [value]


def test_proved_safe_merges_compatible_fast_values():
    """Γ's lub combines what different quorum intersections prove."""
    system = QuorumSystem(range(4))
    msgs = {
        0: msg(0, R2, R1, hist(A, C)),
        1: msg(1, R2, R1, hist(A)),
        2: msg(2, R2, R1, hist(C)),
        3: msg(3, R2, R1, hist()),
    }
    picks = proved_safe(system, msgs, fast_map)
    assert len(picks) == 1
    # Nothing is provably chosen beyond the glbs, but the lub of the glbs
    # must extend every provably-chosen prefix and stay within the union.
    assert picks[0].command_set() <= {A, C}


def test_proved_safe_free_case_returns_reported_values():
    """QinterRAtk empty: any value reported at k is pickable."""
    system = QuorumSystem(range(4))
    value = hist(A)
    msgs = {
        0: msg(0, R2, R1, value),
        1: msg(1, R2, ZERO, hist()),
        2: msg(2, R2, ZERO, hist()),
        3: msg(3, R2, ZERO, hist()),
    }
    # k-acceptors = {0} smaller than the min intersection (3) -> free case.
    picks = proved_safe(system, msgs, fast_map)
    assert picks == [value]


def test_proved_safe_incompatible_split_keeps_common_prefix():
    system = QuorumSystem(range(4))
    msgs = {
        0: msg(0, R2, R1, hist(C, A, B)),
        1: msg(1, R2, R1, hist(C, A, B)),
        2: msg(2, R2, R1, hist(C, B, A)),
        3: msg(3, R2, R1, hist(C, B, A)),
    }
    picks = proved_safe(system, msgs, fast_map)
    assert len(picks) == 1
    assert picks[0].contains(C)


def test_proved_safe_empty_rejected():
    with pytest.raises(ValueError):
        proved_safe(QuorumSystem(range(3)), {}, fast_map)
