"""Network model: latency, jitter, loss, duplication, partitions."""

from dataclasses import dataclass

import pytest

from repro.sim.network import NetworkConfig
from repro.sim.process import Process
from repro.sim.scheduler import Simulation


@dataclass(frozen=True)
class Ping:
    payload: int = 0


class Sink(Process):
    def __init__(self, pid, sim):
        super().__init__(pid, sim)
        self.received = []

    def on_ping(self, msg, src):
        self.received.append((self.now, msg.payload))


def test_unit_latency_delivery():
    sim = Simulation(network=NetworkConfig(latency=1.0))
    a = Sink("a", sim)
    b = Sink("b", sim)
    a.send("b", Ping(1))
    sim.run()
    assert b.received == [(1.0, 1)]


def test_custom_latency():
    sim = Simulation(network=NetworkConfig(latency=2.5))
    a = Sink("a", sim)
    b = Sink("b", sim)
    a.send("b", Ping(1))
    sim.run()
    assert b.received == [(2.5, 1)]


def test_self_send_is_instantaneous():
    sim = Simulation(network=NetworkConfig(latency=5.0, drop_rate=0.9))
    a = Sink("a", sim)
    a.send("a", Ping(1))
    sim.run()
    assert a.received == [(0.0, 1)]


def test_zero_jitter_preserves_send_order():
    sim = Simulation(seed=1)
    a = Sink("a", sim)
    b = Sink("b", sim)
    for i in range(10):
        a.send("b", Ping(i))
    sim.run()
    assert [p for _, p in b.received] == list(range(10))


def test_jitter_delays_within_bounds():
    sim = Simulation(seed=3, network=NetworkConfig(latency=1.0, jitter=2.0))
    a = Sink("a", sim)
    b = Sink("b", sim)
    for i in range(50):
        a.send("b", Ping(i))
    sim.run()
    assert all(1.0 <= t <= 3.0 for t, _ in b.received)


def test_jitter_can_invert_messages():
    sim = Simulation(seed=3, network=NetworkConfig(latency=1.0, jitter=2.0))
    a = Sink("a", sim)
    b = Sink("b", sim)
    for i in range(50):
        a.send("b", Ping(i))
    sim.run()
    order = [p for _, p in b.received]
    assert order != sorted(order)


def test_drop_rate_loses_messages():
    sim = Simulation(seed=5, network=NetworkConfig(drop_rate=0.5))
    a = Sink("a", sim)
    b = Sink("b", sim)
    for i in range(200):
        a.send("b", Ping(i))
    sim.run()
    assert 50 < len(b.received) < 150
    assert sim.metrics.messages_dropped == 200 - len(b.received)


def test_duplicate_rate_duplicates():
    sim = Simulation(seed=5, network=NetworkConfig(duplicate_rate=1.0))
    a = Sink("a", sim)
    b = Sink("b", sim)
    a.send("b", Ping(1))
    sim.run()
    assert len(b.received) == 2


def test_partition_blocks_both_directions():
    sim = Simulation()
    a = Sink("a", sim)
    b = Sink("b", sim)
    sim.network.block("a", "b")
    a.send("b", Ping(1))
    b.send("a", Ping(2))
    sim.run()
    assert a.received == [] and b.received == []


def test_unblock_heals_link():
    sim = Simulation()
    a = Sink("a", sim)
    b = Sink("b", sim)
    sim.network.block("a", "b")
    sim.network.unblock("a", "b")
    a.send("b", Ping(1))
    sim.run()
    assert len(b.received) == 1


def test_group_partition_and_heal():
    sim = Simulation()
    nodes = [Sink(f"n{i}", sim) for i in range(4)]
    sim.network.partition({"n0", "n1"}, {"n2", "n3"})
    nodes[0].send("n2", Ping(1))
    nodes[0].send("n1", Ping(2))
    sim.run()
    assert nodes[2].received == []
    assert len(nodes[1].received) == 1
    sim.network.heal()
    nodes[0].send("n2", Ping(3))
    sim.run()
    assert len(nodes[2].received) == 1


def test_delivery_to_dead_process_counts_as_drop():
    sim = Simulation()
    a = Sink("a", sim)
    b = Sink("b", sim)
    a.send("b", Ping(1))
    b.crash()
    sim.run()
    assert sim.metrics.messages_dropped == 1


def test_config_validation():
    with pytest.raises(ValueError):
        NetworkConfig(latency=0)
    with pytest.raises(ValueError):
        NetworkConfig(jitter=-1)
    with pytest.raises(ValueError):
        NetworkConfig(drop_rate=-0.1)
    with pytest.raises(ValueError):
        NetworkConfig(drop_rate=1.1)
    with pytest.raises(ValueError):
        NetworkConfig(duplicate_rate=-0.1)
    with pytest.raises(ValueError):
        NetworkConfig(duplicate_rate=2.0)


def test_rate_ranges_are_consistent():
    """Both rates accept the full closed interval [0, 1] (documented)."""
    assert NetworkConfig(drop_rate=1.0).drop_rate == 1.0
    assert NetworkConfig(duplicate_rate=1.0).duplicate_rate == 1.0
    assert NetworkConfig(drop_rate=0.0, duplicate_rate=0.0) is not None


def test_full_drop_rate_loses_every_remote_message():
    sim = Simulation(seed=1, network=NetworkConfig(drop_rate=1.0))
    a = Sink("a", sim)
    b = Sink("b", sim)
    a.send("b", Ping(1))  # dropped
    a.send("a", Ping(2))  # self-delivery is reliable
    sim.run(until=10)
    assert b.received == []
    assert a.received == [(0.0, 2)]
    assert sim.metrics.messages_dropped == 1


# -- drop filters and latency shapers (composition semantics) ----------------


def test_drop_filter_drops_matching_messages():
    sim = Simulation()
    a = Sink("a", sim)
    b = Sink("b", sim)
    sim.network.add_drop_filter(lambda src, dst, msg: dst == "b")
    a.send("b", Ping(1))
    a.send("a", Ping(2))  # self-delivery bypasses filters
    sim.run()
    assert b.received == []
    assert a.received == [(0.0, 2)]
    assert sim.metrics.messages_dropped == 1


def test_every_drop_filter_sees_every_message():
    """No short-circuit: a filter observes traffic even when an earlier
    filter already dropped the message (regression: stateful filters --
    flap schedules, counters -- must not depend on stacking order)."""
    sim = Simulation()
    a = Sink("a", sim)
    b = Sink("b", sim)
    seen_first, seen_second = [], []

    def first(src, dst, msg):
        seen_first.append(msg.payload)
        return True  # drops everything

    def second(src, dst, msg):
        seen_second.append(msg.payload)
        return False

    sim.network.add_drop_filter(first, label="a-first")
    sim.network.add_drop_filter(second, label="z-second")
    for i in range(3):
        a.send("b", Ping(i))
    sim.run()
    assert b.received == []
    assert seen_first == [0, 1, 2]
    assert seen_second == [0, 1, 2]  # called despite first dropping
    assert sim.metrics.messages_dropped == 3  # one drop per message, not per filter


def test_drop_filters_apply_in_sorted_label_order():
    sim = Simulation()
    a = Sink("a", sim)
    Sink("b", sim)
    calls = []
    sim.network.add_drop_filter(lambda s, d, m: calls.append("z") or False, label="z")
    sim.network.add_drop_filter(lambda s, d, m: calls.append("a") or False, label="a")
    a.send("b", Ping(1))
    sim.run()
    assert calls == ["a", "z"]  # sorted by (label, seq), not insertion order


def test_same_label_filters_keep_registration_order():
    sim = Simulation()
    a = Sink("a", sim)
    Sink("b", sim)
    calls = []
    sim.network.add_drop_filter(lambda s, d, m: calls.append(1) or False, label="x")
    sim.network.add_drop_filter(lambda s, d, m: calls.append(2) or False, label="x")
    a.send("b", Ping(1))
    sim.run()
    assert calls == [1, 2]  # sequence number breaks the tie


def test_remove_drop_filter_restores_traffic():
    sim = Simulation()
    a = Sink("a", sim)
    b = Sink("b", sim)
    drop = lambda src, dst, msg: True  # noqa: E731
    sim.network.add_drop_filter(drop)
    a.send("b", Ping(1))
    sim.run()
    sim.network.remove_drop_filter(drop)
    assert not sim.network._drop_filters
    a.send("b", Ping(2))
    sim.run()
    assert [p for _, p in b.received] == [2]


def test_latency_shapers_chain_in_sorted_order():
    sim = Simulation(network=NetworkConfig(latency=1.0))
    a = Sink("a", sim)
    b = Sink("b", sim)
    # Applied sorted by label: double first, then add one -> 1*2 + 1 = 3.
    sim.network.add_latency_shaper(lambda s, d, delay: delay + 1.0, label="b-add")
    sim.network.add_latency_shaper(lambda s, d, delay: delay * 2.0, label="a-mul")
    a.send("b", Ping(1))
    sim.run()
    assert b.received == [(3.0, 1)]


def test_latency_shaper_never_applies_to_self_delivery():
    sim = Simulation(network=NetworkConfig(latency=1.0))
    a = Sink("a", sim)
    sim.network.add_latency_shaper(lambda s, d, delay: delay + 100.0)
    a.send("a", Ping(1))
    sim.run()
    assert a.received == [(0.0, 1)]


def test_negative_shaped_delay_is_clamped():
    sim = Simulation(network=NetworkConfig(latency=1.0))
    a = Sink("a", sim)
    b = Sink("b", sim)
    shaper = lambda s, d, delay: -5.0  # noqa: E731
    sim.network.add_latency_shaper(shaper)
    a.send("b", Ping(1))
    sim.run()
    assert b.received == [(0.0, 1)]
    sim.network.remove_latency_shaper(shaper)
    assert not sim.network._latency_shapers


def test_identical_seeds_give_identical_runs():
    def run(seed):
        sim = Simulation(seed=seed, network=NetworkConfig(jitter=1.0, drop_rate=0.2))
        a = Sink("a", sim)
        b = Sink("b", sim)
        for i in range(50):
            a.send("b", Ping(i))
        sim.run()
        return b.received

    assert run(9) == run(9)
    assert run(9) != run(10)
