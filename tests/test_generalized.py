"""Multicoordinated Generalized Paxos (Section 3.2)."""

import pytest

from repro.core.generalized import build_generalized
from repro.core.invariants import attach_generalized_oracle
from repro.core.liveness import LivenessConfig
from repro.core.rounds import RoundSchedule
from repro.cstruct.commands import KeyConflict
from repro.cstruct.history import CommandHistory
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from tests.conftest import cmd

REL = KeyConflict()
A = cmd("a", "put", "x", 1)
B = cmd("b", "put", "x", 2)
C = cmd("c", "put", "y", 3)
D = cmd("d", "put", "z", 4)


def deploy(seed=1, jitter=0.0, liveness=None, **kwargs):
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter))
    cluster = build_generalized(
        sim, bottom=CommandHistory.bottom(REL), liveness=liveness, **kwargs
    )
    return sim, cluster


def start(cluster, rtype, coord=0, count=1):
    rnd = cluster.config.schedule.make_round(coord=coord, count=count, rtype=rtype)
    cluster.start_round(rnd)
    return rnd


# -- learning in each round kind -----------------------------------------------


@pytest.mark.parametrize("rtype", [1, 2])
def test_classic_rounds_learn_all_commands(rtype):
    sim, cluster = deploy()
    oracle = attach_generalized_oracle(sim, cluster, [A, B, C])
    start(cluster, rtype)
    for i, command in enumerate([A, B, C]):
        cluster.propose(command, delay=5.0 + 3 * i)
    assert cluster.run_until_learned([A, B, C], timeout=300)
    for learner in cluster.learners:
        assert learner.learned.command_set() == {A, B, C}


def test_classic_latency_is_three_steps():
    sim, cluster = deploy()
    start(cluster, 2)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=100)
    assert sim.metrics.latency_of(A) == 3.0


def test_fast_round_latency_is_two_steps():
    sim, cluster = deploy(n_acceptors=4)
    start(cluster, 0)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=100)
    assert sim.metrics.latency_of(A) == 2.0


def test_conflicting_commands_learned_in_same_order_everywhere():
    sim, cluster = deploy(n_learners=3)
    start(cluster, 2)
    cluster.propose(A, delay=5.0)
    cluster.propose(B, delay=9.0)
    assert cluster.run_until_learned([A, B], timeout=300)
    orders = [
        [c for c in learner.learned.linear_extension() if c in (A, B)]
        for learner in cluster.learners
    ]
    assert all(order == orders[0] for order in orders)


def test_learned_histories_pairwise_compatible_under_jitter():
    sim, cluster = deploy(seed=7, jitter=1.0, n_learners=3, n_proposers=3)
    oracle = attach_generalized_oracle(sim, cluster, [A, B, C, D])
    start(cluster, 2)
    for i, command in enumerate([A, B, C, D]):
        cluster.propose(command, delay=5.0 + i)
    cluster.run_until_learned([A, B, C, D], timeout=1000)
    values = cluster.learned_structs()
    for i, left in enumerate(values):
        for right in values[i + 1 :]:
            assert left.is_compatible(right)


# -- multicoordination: availability and glb-based acceptance ----------------------


def test_multicoordinated_round_survives_coordinator_crash():
    sim, cluster = deploy()
    start(cluster, 2)
    sim.run(until=10)
    cluster.coordinators[2].crash()
    cluster.propose(A, delay=1.0)
    assert cluster.run_until_learned([A], timeout=100)


def test_multicoordinated_round_blocked_without_coord_quorum():
    sim, cluster = deploy()
    start(cluster, 2)
    sim.run(until=10)
    cluster.coordinators[1].crash()
    cluster.coordinators[2].crash()
    cluster.propose(A, delay=1.0)
    assert not cluster.run_until_learned([A], timeout=100)


def test_acceptor_accepts_glb_of_coordinator_quorum():
    """With commuting commands, partial forwarding still makes progress."""
    sim, cluster = deploy()
    start(cluster, 2)
    sim.run(until=10)
    # A reaches only coordinators {0, 1}; C reaches only {1, 2}.  Each is
    # forwarded by a full quorum, so both must be learned.
    from repro.core.messages import Propose

    cluster.coordinators[0].deliver(Propose(A, coord_quorum=frozenset({0, 1})), "test")
    cluster.coordinators[1].deliver(Propose(A, coord_quorum=frozenset({0, 1})), "test")
    cluster.coordinators[1].deliver(Propose(C, coord_quorum=frozenset({1, 2})), "test")
    cluster.coordinators[2].deliver(Propose(C, coord_quorum=frozenset({1, 2})), "test")
    sim.metrics.record_propose(A, sim.clock)
    sim.metrics.record_propose(C, sim.clock)
    assert cluster.run_until_learned([A, C], timeout=100)


# -- collisions (Section 4.2) ---------------------------------------------------------


def test_commuting_concurrent_commands_do_not_collide():
    sim, cluster = deploy(seed=3, jitter=1.0, n_proposers=2)
    start(cluster, 2)
    cluster.propose(C, delay=6.0, proposer=0)
    cluster.propose(D, delay=6.0, proposer=1)
    assert cluster.run_until_learned([C, D], timeout=300)
    assert sum(a.collisions_detected for a in cluster.acceptors) == 0


def test_conflicting_concurrent_commands_collide_and_recover():
    collided = 0
    for seed in range(12):
        sim, cluster = deploy(seed=seed, jitter=1.0, n_proposers=2)
        oracle = attach_generalized_oracle(sim, cluster, [A, B])
        start(cluster, 2)
        cluster.propose(A, delay=6.0, proposer=0)
        cluster.propose(B, delay=6.0, proposer=1)
        assert cluster.run_until_learned([A, B], timeout=1000), f"seed {seed}"
        collided += sum(a.collisions_detected for a in cluster.acceptors)
    assert collided > 0


def test_fast_round_collision_recovered_by_leader():
    sim, cluster = deploy(
        seed=4, jitter=1.0, n_proposers=2, n_acceptors=4,
        liveness=LivenessConfig(),
    )
    oracle = attach_generalized_oracle(sim, cluster, [A, B])
    start(cluster, 0)
    cluster.propose(A, delay=6.0, proposer=0)
    cluster.propose(B, delay=6.0, proposer=1)
    assert cluster.run_until_learned([A, B], timeout=2000)


# -- liveness (Section 4.3) -----------------------------------------------------------


def test_leader_bootstraps_first_round_on_demand():
    sim, cluster = deploy(liveness=LivenessConfig())
    cluster.propose(A, delay=5.0)  # no round started manually
    assert cluster.run_until_learned([A], timeout=500)


def test_leader_crash_triggers_new_round():
    sim, cluster = deploy(liveness=LivenessConfig())
    start(cluster, 1)  # single-coordinated, owned by coordinator 0
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=500)
    cluster.coordinators[0].crash()
    cluster.propose(B, delay=1.0)
    assert cluster.run_until_learned([B], timeout=2000)
    assert cluster.coordinators[1].rounds_started >= 1


def test_acceptor_recovery_rejoins_via_higher_mcount():
    sim, cluster = deploy(liveness=LivenessConfig())
    start(cluster, 1)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=500)
    acceptor = cluster.acceptors[0]
    acceptor.crash()
    sim.run(until=sim.clock + 5)
    acceptor.recover()
    assert acceptor.rnd.mcount == 1
    # Crash another acceptor: the recovered one is now needed for quorums.
    cluster.acceptors[1].crash()
    cluster.propose(B, delay=1.0)
    assert cluster.run_until_learned([B], timeout=3000)
    assert acceptor.vval.contains(B)


# -- stability and incremental growth ---------------------------------------------------


def test_learned_only_grows():
    sim, cluster = deploy()
    snapshots = []

    def snapshot(sim_):
        snapshots.append(cluster.learners[0].learned)

    sim.add_invariant_check(snapshot)
    start(cluster, 2)
    for i, command in enumerate([A, C, B, D]):
        cluster.propose(command, delay=5.0 + 4 * i)
    assert cluster.run_until_learned([A, B, C, D], timeout=500)
    for previous, current in zip(snapshots, snapshots[1:]):
        assert previous.leq(current)


def test_learn_callback_delivers_each_command_once():
    sim, cluster = deploy()
    delivered = []
    cluster.learners[0].on_learn(lambda cmds, learned: delivered.extend(cmds))
    start(cluster, 2)
    for i, command in enumerate([A, B, C]):
        cluster.propose(command, delay=5.0 + 4 * i)
    assert cluster.run_until_learned([A, B, C], timeout=500)
    assert sorted(delivered, key=str) == sorted([A, B, C], key=str)
    assert len(delivered) == len(set(delivered))


def test_coordinator_keeps_no_stable_state():
    sim, cluster = deploy()
    start(cluster, 2)
    for i, command in enumerate([A, B, C]):
        cluster.propose(command, delay=5.0 + 4 * i)
    assert cluster.run_until_learned([A, B, C], timeout=500)
    assert all(c.storage.write_count == 0 for c in cluster.coordinators)


def test_acceptor_writes_once_per_accept_batch():
    sim, cluster = deploy()
    start(cluster, 2)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=100)
    for acceptor in cluster.acceptors:
        assert acceptor.storage.write_counts["vval"] >= 1


# -- incremental learner frontier ----------------------------------------------


def test_redundant_2b_deliveries_fire_no_callbacks():
    """Duplicate/echoed "2b" messages must not refire learn events."""
    from repro.core.messages import Phase2b

    sim, cluster = deploy()
    learner = cluster.learners[0]
    events = []
    learner.on_learn(lambda cmds, learned: events.append(cmds))
    rnd = start(cluster, 2)
    for i, command in enumerate([A, C]):
        cluster.propose(command, delay=5.0 + 4 * i)
    assert cluster.run_until_learned([A, C], timeout=500)
    learned_before = learner.learned
    events_before = list(events)
    # Redeliver every acceptor's current vote (equal but distinct structs).
    for acceptor in cluster.acceptors:
        copy = CommandHistory(acceptor.vval.cmds, acceptor.vval.conflict)
        learner.on_phase2b(Phase2b(rnd, copy, acceptor.pid), acceptor.pid)
    assert events == events_before
    assert learner.learned == learned_before


def test_learner_grows_after_redundant_deliveries():
    """The exhausted-vote cache must not block later genuine growth."""
    from repro.core.messages import Phase2b

    sim, cluster = deploy()
    learner = cluster.learners[0]
    rnd = start(cluster, 2)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_learned([A], timeout=500)
    for acceptor in cluster.acceptors:
        learner.on_phase2b(Phase2b(rnd, acceptor.vval, acceptor.pid), acceptor.pid)
    cluster.propose(D, delay=1.0)
    assert cluster.run_until_learned([A, D], timeout=500)
    assert learner.learned.contains(D)


def test_learner_handles_duplicated_network_messages():
    sim, cluster = deploy(seed=4)
    sim.network.config.duplicate_rate = 1.0  # every remote message twice
    start(cluster, 2)
    for i, command in enumerate([A, B, C, D]):
        cluster.propose(command, delay=5.0 + 4 * i)
    assert cluster.run_until_learned([A, B, C, D], timeout=2000)
