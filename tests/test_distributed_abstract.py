"""Distributed Abstract Multicoordinated Paxos and its refinement mapping.

Proposition 6 of the paper: every behaviour of the distributed abstract
algorithm maps (via the ``maxTried`` refinement mapping) to a behaviour of
Abstract Multicoordinated Paxos.  We execute distributed schedules --
scripted and randomized -- and assert the abstract invariants on the mapped
state after every action.
"""

import random

import pytest

from repro.core.abstract import AbstractQuorums, ActionNotEnabled
from repro.core.distributed_abstract import DistAbstractMCPaxos
from repro.cstruct.commands import KeyConflict
from repro.cstruct.history import CommandHistory
from tests.conftest import cmd

REL = KeyConflict()
A = cmd("a", "put", "x")
B = cmd("b", "put", "x")
C = cmd("c", "put", "y")
BOTTOM = CommandHistory.bottom(REL)

ACCEPTORS = ("a0", "a1", "a2")
COORDS = ("c0", "c1", "c2")


def majorities(members):
    from itertools import combinations

    size = len(members) // 2 + 1
    return tuple(frozenset(combo) for combo in combinations(members, size))


def model(fast=frozenset({3}), max_balnum=3):
    quorums = AbstractQuorums(
        acceptors=ACCEPTORS,
        classic_size=2,
        fast_size=3,
        fast_balnums=fast,
    )
    coord_quorums = {
        0: (),
        1: (frozenset({"c0"}),),  # single-coordinated
        2: majorities(COORDS),  # multicoordinated
        # Fast balnum: a single coordinator starts it (acceptors then
        # append proposals directly).  B.1.3 requires same-balnum
        # coordinator quorums to intersect even for fast balnums.
        3: (frozenset({"c0"}),),
    }
    return DistAbstractMCPaxos(
        quorums=quorums,
        coordinators=COORDS,
        coord_quorums=coord_quorums,
        bottom=BOTTOM,
        learners=("l0", "l1"),
        max_balnum=max_balnum,
    )


def join_all(m, balnum):
    for acceptor in ACCEPTORS:
        m.phase1b(acceptor, balnum)


# -- scripted runs -----------------------------------------------------------------


def test_single_coordinated_balnum_end_to_end():
    m = model()
    m.propose(A)
    m.phase1a("c0", 1)
    join_all(m, 1)
    value = m.phase2start("c0", 1, frozenset(ACCEPTORS[:2]), suffix=[A])
    assert value.contains(A)
    for acceptor in ACCEPTORS:
        m.phase2b_classic(acceptor, 1, frozenset({"c0"}))
    m.learn("l0", 1, frozenset(ACCEPTORS[:2]))
    assert m.learned["l0"].contains(A)
    m.check_refinement()


def test_multicoordinated_balnum_requires_quorum_of_2a():
    m = model()
    m.propose(A)
    m.phase1a("c0", 2)
    join_all(m, 2)
    m.phase2start("c0", 2, frozenset(ACCEPTORS[:2]), suffix=[A])
    # Only one coordinator tried: no coordinator quorum is complete.
    with pytest.raises(ActionNotEnabled):
        m.phase2b_classic("a0", 2, frozenset({"c0", "c1"}))
    m.phase2start("c1", 2, frozenset(ACCEPTORS[:2]), suffix=[A])
    m.phase2b_classic("a0", 2, frozenset({"c0", "c1"}))
    assert m.ballot_array.vote("a0", 2).contains(A)
    m.check_refinement()


def test_acceptor_takes_glb_of_coordinator_quorum():
    m = model()
    m.propose(A)
    m.propose(C)
    m.phase1a("c0", 2)
    join_all(m, 2)
    m.phase2start("c0", 2, frozenset(ACCEPTORS[:2]))
    m.phase2start("c1", 2, frozenset(ACCEPTORS[:2]))
    m.phase2a_classic("c0", 2, A)  # c0 tried ⟨A⟩
    m.phase2a_classic("c1", 2, C)  # c1 tried ⟨C⟩ -- compatible, glb = ⊥
    m.phase2b_classic("a0", 2, frozenset({"c0", "c1"}))
    assert m.ballot_array.vote("a0", 2) == BOTTOM
    # Once both forward both commands, the acceptor's vote grows.
    m.phase2a_classic("c0", 2, C)
    m.phase2a_classic("c1", 2, A)
    m.phase2b_classic("a0", 2, frozenset({"c0", "c1"}))
    vote = m.ballot_array.vote("a0", 2)
    assert vote.contains(A) and vote.contains(C)
    m.check_refinement()


def test_mapped_max_tried_is_glb_over_quorums():
    m = model()
    m.propose(A)
    m.propose(C)
    m.phase1a("c0", 2)
    join_all(m, 2)
    m.phase2start("c0", 2, frozenset(ACCEPTORS[:2]), suffix=[A, C])
    assert m.mapped_max_tried(2) is None  # no full quorum tried yet
    m.phase2start("c1", 2, frozenset(ACCEPTORS[:2]), suffix=[A])
    mapped = m.mapped_max_tried(2)
    assert mapped is not None
    assert mapped.contains(A)
    assert not mapped.contains(C)  # C only tried by c0, no quorum agrees yet
    m.check_refinement()


def test_fast_balnum_direct_appends():
    m = model()
    m.propose(A)
    m.phase1a("c0", 3)
    join_all(m, 3)
    m.phase2start("c0", 3, frozenset(ACCEPTORS[:2]))
    for acceptor in ACCEPTORS:
        m.phase2b_classic(acceptor, 3, frozenset({"c0"}))
    m.phase2b_fast("a0", A)
    m.phase2b_fast("a1", A)
    m.phase2b_fast("a2", A)
    m.learn("l1", 3, frozenset(ACCEPTORS))
    assert m.learned["l1"].contains(A)
    m.check_refinement()


def test_learn_requires_full_quorum_of_2b():
    m = model()
    m.propose(A)
    m.phase1a("c0", 1)
    join_all(m, 1)
    m.phase2start("c0", 1, frozenset(ACCEPTORS[:2]), suffix=[A])
    m.phase2b_classic("a0", 1, frozenset({"c0"}))
    with pytest.raises(ActionNotEnabled):
        m.learn("l0", 1, frozenset(ACCEPTORS[:2]))  # a1 has not voted


def test_phase2start_picks_previous_round_values():
    """A new balnum must extend what may have been chosen below it."""
    m = model()
    m.propose(A)
    m.phase1a("c0", 1)
    join_all(m, 1)
    m.phase2start("c0", 1, frozenset(ACCEPTORS[:2]), suffix=[A])
    for acceptor in ACCEPTORS:
        m.phase2b_classic(acceptor, 1, frozenset({"c0"}))
    # Move to balnum 2; the pick must contain A.
    m.phase1a("c2", 2)
    for acceptor in ACCEPTORS:
        m.phase1b(acceptor, 2)
    value = m.phase2start("c2", 2, frozenset(ACCEPTORS))
    assert value.contains(A)
    m.check_refinement()


# -- randomized schedules with per-step refinement checking ----------------------------


COMMANDS = [cmd(f"r{i}", "put", k) for i, k in enumerate("xxyy")]


def _random_schedule(seed: int, steps: int = 100) -> None:
    rng = random.Random(seed)
    m = model()
    balnums = list(range(1, m.max_balnum + 1))
    acc_quorums = list(m.quorums.quorums(1))
    for _ in range(steps):
        action = rng.randrange(8)
        try:
            if action == 0:
                remaining = [c for c in COMMANDS if c not in m.prop_cmd]
                if remaining:
                    m.propose(rng.choice(remaining))
            elif action == 1:
                m.phase1a(rng.choice(COORDS), rng.choice(balnums))
            elif action == 2:
                m.phase1b(rng.choice(ACCEPTORS), rng.choice(balnums))
            elif action == 3:
                suffix = rng.sample(sorted(m.prop_cmd, key=str), k=min(len(m.prop_cmd), 1))
                m.phase2start(
                    rng.choice(COORDS),
                    rng.choice(balnums),
                    frozenset(rng.choice(acc_quorums)),
                    suffix=suffix,
                )
            elif action == 4:
                if m.prop_cmd:
                    m.phase2a_classic(
                        rng.choice(COORDS),
                        rng.choice(balnums),
                        rng.choice(sorted(m.prop_cmd, key=str)),
                    )
            elif action == 5:
                balnum = rng.choice(balnums)
                quorums = m.coord_quorums.get(balnum, ())
                if quorums:
                    m.phase2b_classic(
                        rng.choice(ACCEPTORS), balnum, rng.choice(list(quorums))
                    )
            elif action == 6:
                if m.prop_cmd:
                    m.phase2b_fast(
                        rng.choice(ACCEPTORS), rng.choice(sorted(m.prop_cmd, key=str))
                    )
            else:
                balnum = rng.choice(balnums)
                quorum = frozenset(rng.choice(list(m.quorums.quorums(balnum))))
                m.learn(rng.choice(("l0", "l1")), balnum, quorum)
        except ActionNotEnabled:
            continue
        m.check_refinement()


@pytest.mark.parametrize("seed", range(6))
def test_random_schedules_satisfy_refinement(seed):
    _random_schedule(seed)
