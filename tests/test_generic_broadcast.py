"""The four Generic Broadcast properties (Section 3.3) on randomized runs.

Non-triviality: only proposed commands are delivered;
Stability: a learner's history only ever grows;
Consistency: learned histories are pairwise compatible (conflicting
commands delivered in the same order everywhere);
Liveness: with a nonfaulty quorum and proposer, every broadcast command is
eventually contained in every learner's history.
"""

import random

import pytest

from repro.core.broadcast import GenericBroadcast
from repro.core.liveness import LivenessConfig
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.machine import kv_conflict
from tests.conftest import cmd


def deploy(seed, jitter=0.8, n_learners=3):
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter))
    service = GenericBroadcast.deploy(
        sim,
        kv_conflict(),
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=3,
        n_learners=n_learners,
        liveness=LivenessConfig(),
    )
    service.start_round(service.cluster.config.schedule.make_round(0, 1, 2))
    return sim, service


def random_workload(seed, n=8):
    rng = random.Random(seed)
    commands = []
    for i in range(n):
        key = rng.choice(["hot", f"key{i}"])
        op = rng.choice(["put", "put", "get"])
        commands.append(cmd(f"c{i}", op, key, i))
    return commands


@pytest.mark.parametrize("seed", range(5))
def test_nontriviality_and_liveness(seed):
    sim, service = deploy(seed)
    commands = random_workload(seed)
    for i, command in enumerate(commands):
        service.broadcast(command, delay=5.0 + 2 * (i // 2))
    assert service.cluster.run_until_learned(commands, timeout=5000)
    for history in service.delivered_histories():
        assert history.command_set() == set(commands)  # nontriviality + liveness


@pytest.mark.parametrize("seed", range(5))
def test_stability(seed):
    sim, service = deploy(seed, n_learners=1)
    learner = service.cluster.learners[0]
    snapshots = []
    sim.add_invariant_check(lambda s: snapshots.append(learner.learned))
    commands = random_workload(seed)
    for i, command in enumerate(commands):
        service.broadcast(command, delay=5.0 + 2 * (i // 2))
    assert service.cluster.run_until_learned(commands, timeout=5000)
    for previous, current in zip(snapshots, snapshots[1:]):
        assert previous.leq(current)


@pytest.mark.parametrize("seed", range(5))
def test_consistency(seed):
    sim, service = deploy(seed)
    commands = random_workload(seed)
    conflict = service.conflict
    for i, command in enumerate(commands):
        service.broadcast(command, delay=5.0 + 2 * (i // 2))
    assert service.cluster.run_until_learned(commands, timeout=5000)
    histories = service.delivered_histories()
    for i, left in enumerate(histories):
        for right in histories[i + 1 :]:
            assert left.is_compatible(right)
    # Conflicting pairs delivered in the same order everywhere.
    orders = [h.linear_extension() for h in histories]
    for i, a in enumerate(commands):
        for b in commands[i + 1 :]:
            if not conflict(a, b):
                continue
            relative = [
                order.index(a) < order.index(b) for order in orders
            ]
            assert all(r == relative[0] for r in relative)


def test_delivery_callbacks_respect_conflict_order():
    sim, service = deploy(seed=11)
    deliveries: dict[str, list] = {}

    def observer(pid, command):
        deliveries.setdefault(pid, []).append(command)

    service.on_deliver(observer)
    a = cmd("a", "put", "hot", 1)
    b = cmd("b", "put", "hot", 2)
    c = cmd("c", "put", "cold", 3)
    for i, command in enumerate([a, b, c]):
        service.broadcast(command, delay=5.0 + 2 * i)
    assert service.cluster.run_until_learned([a, b, c], timeout=2000)
    hot_orders = [
        [x for x in cmds if x.key == "hot"] for cmds in deliveries.values()
    ]
    assert len(deliveries) == 3
    assert all(order == hot_orders[0] for order in hot_orders)
