"""Commands and conflict relations."""

from repro.cstruct.commands import (
    AlwaysConflict,
    Command,
    CustomConflict,
    KeyConflict,
    NeverConflict,
)
from tests.conftest import cmd


def test_command_equality_and_hash():
    assert cmd("1") == cmd("1")
    assert cmd("1") != cmd("2")
    assert hash(cmd("1")) == hash(cmd("1"))


def test_command_str():
    assert "put" in str(cmd("1", "put", "x", 3))
    assert "#1" in str(cmd("1"))


def test_always_conflict_distinct_pairs():
    rel = AlwaysConflict()
    assert rel(cmd("1"), cmd("2"))
    assert not rel(cmd("1"), cmd("1"))


def test_never_conflict():
    rel = NeverConflict()
    assert not rel(cmd("1"), cmd("2"))


def test_key_conflict_same_key_write():
    rel = KeyConflict()
    assert rel(cmd("1", "put", "x"), cmd("2", "put", "x"))
    assert rel(cmd("1", "put", "x"), cmd("2", "get", "x"))


def test_key_conflict_reads_commute():
    rel = KeyConflict()
    assert not rel(cmd("1", "get", "x"), cmd("2", "get", "x"))


def test_key_conflict_different_keys_commute():
    rel = KeyConflict()
    assert not rel(cmd("1", "put", "x"), cmd("2", "put", "y"))


def test_key_conflict_custom_read_ops():
    rel = KeyConflict(read_ops=frozenset({"peek"}))
    assert not rel(cmd("1", "peek", "x"), cmd("2", "peek", "x"))
    assert rel(cmd("1", "get", "x"), cmd("2", "get", "x"))


def test_conflict_relations_are_value_comparable():
    assert AlwaysConflict() == AlwaysConflict()
    assert KeyConflict() == KeyConflict()
    assert KeyConflict() != KeyConflict(read_ops=frozenset({"peek"}))
    assert AlwaysConflict() != NeverConflict()


def test_custom_conflict_symmetrized():
    def one_sided(a, b):
        return a.cid < b.cid and a.key == b.key

    rel = CustomConflict(one_sided)
    assert rel(cmd("1", key="x"), cmd("2", key="x"))
    assert rel(cmd("2", key="x"), cmd("1", key="x"))
    assert not rel(cmd("1", key="x"), cmd("2", key="y"))
    assert not rel(cmd("1"), cmd("1"))


def test_relations_are_symmetric_on_samples():
    rels = [AlwaysConflict(), NeverConflict(), KeyConflict()]
    samples = [cmd("1", "put", "x"), cmd("2", "get", "x"), cmd("3", "put", "y")]
    for rel in rels:
        for a in samples:
            for b in samples:
                assert rel(a, b) == rel(b, a)
