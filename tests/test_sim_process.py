"""Process runtime: dispatch, timers, crash-recovery."""

from dataclasses import dataclass

import pytest

from repro.sim.process import Process
from repro.sim.scheduler import Simulation


@dataclass(frozen=True)
class Ping:
    payload: int = 0


@dataclass(frozen=True)
class Unknown:
    pass


class Echo(Process):
    def __init__(self, pid, sim):
        super().__init__(pid, sim)
        self.seen = []
        self.recovered = 0

    def on_ping(self, msg, src):
        self.seen.append((msg.payload, src))

    def on_recover(self):
        self.recovered += 1


def test_dispatch_by_message_type_name():
    sim = Simulation()
    a = Echo("a", sim)
    b = Echo("b", sim)
    a.send("b", Ping(7))
    sim.run()
    assert b.seen == [(7, "a")]


def test_unhandled_message_raises():
    sim = Simulation()
    a = Echo("a", sim)
    Echo("b", sim)
    a.send("b", Unknown())
    with pytest.raises(TypeError):
        sim.run()


def test_broadcast_reaches_all():
    sim = Simulation()
    a = Echo("a", sim)
    others = [Echo(f"p{i}", sim) for i in range(3)]
    a.broadcast([p.pid for p in others], Ping(1))
    sim.run()
    assert all(p.seen == [(1, "a")] for p in others)


def test_crashed_process_drops_messages():
    sim = Simulation()
    a = Echo("a", sim)
    b = Echo("b", sim)
    b.crash()
    a.send("b", Ping(1))
    sim.run()
    assert b.seen == []


def test_crashed_process_does_not_send():
    sim = Simulation()
    a = Echo("a", sim)
    b = Echo("b", sim)
    a.crash()
    a.send("b", Ping(1))
    sim.run()
    assert b.seen == []


def test_timer_fires_after_delay():
    sim = Simulation()
    a = Echo("a", sim)
    fired = []
    a.set_timer(5.0, lambda: fired.append(sim.clock))
    sim.run()
    assert fired == [5.0]


def test_timer_cancel():
    sim = Simulation()
    a = Echo("a", sim)
    fired = []
    timer = a.set_timer(5.0, lambda: fired.append(1))
    timer.cancel()
    sim.run()
    assert fired == []


def test_crash_cancels_timers():
    sim = Simulation()
    a = Echo("a", sim)
    fired = []
    a.set_timer(5.0, lambda: fired.append(1))
    a.crash()
    sim.run()
    assert fired == []


def test_periodic_timer_repeats_until_cancel():
    sim = Simulation()
    a = Echo("a", sim)
    fired = []

    def tick():
        fired.append(sim.clock)
        if len(fired) == 3:
            timer.cancel()

    timer = a.set_periodic_timer(2.0, tick)
    sim.run(until=100)
    assert fired == [2.0, 4.0, 6.0]


def test_recover_calls_hook_and_restores_liveness():
    sim = Simulation()
    a = Echo("a", sim)
    b = Echo("b", sim)
    b.crash()
    b.recover()
    assert b.recovered == 1
    a.send("b", Ping(9))
    sim.run()
    assert b.seen == [(9, "a")]


def test_crash_is_idempotent():
    sim = Simulation()
    a = Echo("a", sim)
    a.crash()
    a.crash()
    assert a.crash_count == 1


def test_storage_survives_crash():
    sim = Simulation()
    a = Echo("a", sim)
    a.storage.write("vrnd", 3)
    a.crash()
    a.recover()
    assert a.storage.read("vrnd") == 3


def test_fired_one_shot_timers_are_retired():
    """Fired timers must not accumulate in the process timer list."""
    sim = Simulation()
    proc = Echo("p", sim)
    for i in range(10):
        proc.set_timer(float(i + 1), lambda: None)
    assert len(proc._timers) == 10
    sim.run()
    assert proc._timers == []
    # A periodic timer stays registered until cancelled.
    periodic = proc.set_periodic_timer(1.0, lambda: None)
    sim.run(until=sim.clock + 5)
    assert periodic in proc._timers
