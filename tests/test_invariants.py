"""The safety oracles themselves must detect violations."""

import pytest

from repro.core.invariants import (
    ConsensusInvariants,
    GeneralizedInvariants,
    SafetyViolation,
)
from repro.cstruct.commands import KeyConflict
from repro.cstruct.history import CommandHistory
from tests.conftest import cmd

REL = KeyConflict()
A = cmd("a", "put", "x")
B = cmd("b", "put", "x")


class FakeLearner:
    def __init__(self, pid, learned=None):
        self.pid = pid
        self.learned = learned


def test_consensus_ok_when_nothing_learned():
    oracle = ConsensusInvariants([FakeLearner("l0")], proposed=[A])
    oracle(None)


def test_consensus_detects_unproposed_value():
    oracle = ConsensusInvariants([FakeLearner("l0", A)], proposed=[B])
    with pytest.raises(SafetyViolation, match="nontriviality"):
        oracle(None)


def test_consensus_detects_disagreement():
    learners = [FakeLearner("l0", A), FakeLearner("l1", B)]
    oracle = ConsensusInvariants(learners, proposed=[A, B])
    with pytest.raises(SafetyViolation, match="consistency"):
        oracle(None)


def test_consensus_detects_instability():
    learner = FakeLearner("l0", A)
    oracle = ConsensusInvariants([learner], proposed=[A, B])
    oracle(None)
    learner.learned = B
    with pytest.raises(SafetyViolation, match="stability"):
        oracle(None)


def test_consensus_allow_extends_proposals():
    learner = FakeLearner("l0", A)
    oracle = ConsensusInvariants([learner], proposed=[])
    oracle.allow(A)
    oracle(None)


def test_generalized_detects_unproposed_command():
    learned = CommandHistory.of(REL, A)
    oracle = GeneralizedInvariants([FakeLearner("l0", learned)], proposed=[B])
    with pytest.raises(SafetyViolation, match="nontriviality"):
        oracle(None)


def test_generalized_detects_incompatible_learners():
    left = FakeLearner("l0", CommandHistory.of(REL, A, B))
    right = FakeLearner("l1", CommandHistory.of(REL, B, A))
    oracle = GeneralizedInvariants([left, right], proposed=[A, B])
    with pytest.raises(SafetyViolation, match="consistency"):
        oracle(None)


def test_generalized_detects_regression():
    learner = FakeLearner("l0", CommandHistory.of(REL, A))
    oracle = GeneralizedInvariants([learner], proposed=[A, B])
    oracle(None)
    learner.learned = CommandHistory.bottom(REL)
    with pytest.raises(SafetyViolation, match="stability"):
        oracle(None)


def test_generalized_accepts_compatible_growth():
    learner = FakeLearner("l0", CommandHistory.bottom(REL))
    oracle = GeneralizedInvariants([learner], proposed=[A, B])
    oracle(None)
    learner.learned = CommandHistory.of(REL, A)
    oracle(None)
    learner.learned = CommandHistory.of(REL, A, B)
    oracle(None)
