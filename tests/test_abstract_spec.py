"""Executable Abstract Multicoordinated Paxos (Appendix A.2) as an oracle.

Unit tests pin down the ballot-array predicates (chosen/choosable/safe-at)
and the enabling conditions of each action; the randomized driver then
performs long schedules of enabled actions and asserts the paper's
invariants after every step -- a lightweight model-checking pass.
"""

import random

import pytest

from repro.core.abstract import AbstractMCPaxos, AbstractQuorums, ActionNotEnabled
from repro.cstruct.commands import KeyConflict
from repro.cstruct.history import CommandHistory
from tests.conftest import cmd

REL = KeyConflict()
A = cmd("a", "put", "x")
B = cmd("b", "put", "x")
C = cmd("c", "put", "y")
BOTTOM = CommandHistory.bottom(REL)


def hist(*cmds):
    return CommandHistory.of(REL, *cmds)


def model(n_acceptors=3, fast=frozenset({2}), max_balnum=3):
    quorums = AbstractQuorums(
        acceptors=tuple(f"a{i}" for i in range(n_acceptors)),
        classic_size=n_acceptors // 2 + 1,
        fast_size=n_acceptors,  # E = 0 keeps small models assumption-clean
        fast_balnums=fast,
    )
    return AbstractMCPaxos(
        quorums=quorums, bottom=BOTTOM, learners=("l0", "l1"), max_balnum=max_balnum
    )


# -- predicates ------------------------------------------------------------------


def test_bottom_chosen_initially():
    m = model()
    assert m.ballot_array.is_chosen(BOTTOM, m.quorums, m.max_balnum)


def test_nonbottom_not_chosen_initially():
    m = model()
    assert not m.ballot_array.is_chosen(hist(A), m.quorums, m.max_balnum)


def test_everything_safe_at_balnum_one_initially():
    """Quorum intersection with balnum 0 voters makes any value safe at 1."""
    m = model()
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 1)
    assert m.ballot_array.is_safe_at(hist(A), 1, m.quorums)


def test_nothing_safe_before_acceptors_advance():
    """With no acceptor past balnum 0, every c-struct is still choosable at 0."""
    m = model()
    assert not m.ballot_array.is_safe_at(hist(A), 1, m.quorums)


def test_choosable_respects_moved_acceptors():
    m = model()
    # All acceptors move past balnum 1 without voting there.
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 2)
    assert not m.ballot_array.is_choosable_at(hist(A), 1, m.quorums)
    # Balnum 0 still carries the initial ⊥ votes.
    assert m.ballot_array.is_choosable_at(BOTTOM, 0, m.quorums)


# -- action enabling ----------------------------------------------------------------


def test_propose_twice_disabled():
    m = model()
    m.propose(A)
    with pytest.raises(ActionNotEnabled):
        m.propose(A)


def test_join_ballot_monotone():
    m = model()
    m.join_ballot("a0", 2)
    with pytest.raises(ActionNotEnabled):
        m.join_ballot("a0", 1)


def test_start_ballot_requires_proposed_commands():
    m = model()
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 1)
    with pytest.raises(ActionNotEnabled):
        m.start_ballot(1, hist(A))
    m.propose(A)
    m.start_ballot(1, hist(A))
    assert m.max_tried[1] == hist(A)


def test_start_ballot_once():
    m = model()
    m.propose(A)
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 1)
    m.start_ballot(1, BOTTOM)
    with pytest.raises(ActionNotEnabled):
        m.start_ballot(1, hist(A))


def test_suggest_extends_max_tried():
    m = model()
    m.propose(A)
    m.propose(C)
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 1)
    m.start_ballot(1, hist(A))
    m.suggest(1, [C])
    assert m.max_tried[1] == hist(A, C)


def test_suggest_requires_started_ballot():
    m = model()
    m.propose(A)
    with pytest.raises(ActionNotEnabled):
        m.suggest(1, [A])


def test_classic_vote_requires_max_tried_prefix():
    m = model()
    m.propose(A)
    m.propose(B)
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 1)
    m.start_ballot(1, hist(A))
    with pytest.raises(ActionNotEnabled):
        m.classic_vote("a0", 1, hist(B))
    m.classic_vote("a0", 1, hist(A))
    assert m.ballot_array.vote("a0", 1) == hist(A)


def test_classic_vote_monotone_within_balnum():
    m = model()
    m.propose(A)
    m.propose(B)
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 1)
    m.start_ballot(1, hist(A, B))
    m.classic_vote("a0", 1, hist(A, B))
    with pytest.raises(ActionNotEnabled):
        m.classic_vote("a0", 1, hist(A))  # would shrink the vote


def test_fast_vote_appends_at_fast_balnum():
    m = model()
    m.propose(A)
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 2)
    m.start_ballot(2, BOTTOM)
    m.classic_vote("a0", 2, BOTTOM)
    m.fast_vote("a0", A)
    assert m.ballot_array.vote("a0", 2) == hist(A)


def test_fast_vote_disabled_at_classic_balnum():
    m = model()
    m.propose(A)
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 1)
    m.start_ballot(1, BOTTOM)
    m.classic_vote("a0", 1, BOTTOM)
    with pytest.raises(ActionNotEnabled):
        m.fast_vote("a0", A)


def test_learn_requires_chosen():
    m = model()
    m.propose(A)
    with pytest.raises(ActionNotEnabled):
        m.learn("l0", hist(A))
    m.learn("l0", BOTTOM)
    assert m.learned["l0"] == BOTTOM


def test_full_classic_round_reaches_decision():
    m = model()
    m.propose(A)
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 1)
    m.start_ballot(1, hist(A))
    for acceptor in m.quorums.acceptors:
        m.classic_vote(acceptor, 1, hist(A))
    assert m.ballot_array.is_chosen(hist(A), m.quorums, m.max_balnum)
    m.learn("l0", hist(A))
    assert m.learned["l0"] == hist(A)
    m.check_invariants()


def test_proved_safe_abstract_returns_safe_values():
    m = model()
    m.propose(A)
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 1)
    m.start_ballot(1, hist(A))
    for acceptor in m.quorums.acceptors:
        m.classic_vote(acceptor, 1, hist(A))
    for acceptor in m.quorums.acceptors:
        m.join_ballot(acceptor, 3)
    quorum = frozenset(m.quorums.acceptors)
    picks = m.proved_safe(quorum, 3)
    for value in picks:
        assert m.ballot_array.is_safe_at(value, 3, m.quorums)
        assert hist(A).leq(value)


# -- randomized schedules ------------------------------------------------------------


COMMANDS = [cmd(f"c{i}", "put", k) for i, k in enumerate("xxyyz")]


def _random_schedule(seed: int, steps: int = 120) -> None:
    rng = random.Random(seed)
    m = model(max_balnum=4, fast=frozenset({2, 4}))
    accs = list(m.quorums.acceptors)
    for _ in range(steps):
        action = rng.randrange(7)
        try:
            if action == 0:
                candidates = [c for c in COMMANDS if c not in m.prop_cmd]
                if candidates:
                    m.propose(rng.choice(candidates))
            elif action == 1:
                m.join_ballot(rng.choice(accs), rng.randint(1, m.max_balnum))
            elif action == 2:
                balnum = rng.randint(1, m.max_balnum)
                base = BOTTOM.extend(
                    rng.sample(sorted(m.prop_cmd, key=str), k=min(len(m.prop_cmd), 2))
                )
                m.start_ballot(balnum, base)
            elif action == 3:
                balnum = rng.randint(1, m.max_balnum)
                if m.prop_cmd:
                    m.suggest(balnum, [rng.choice(sorted(m.prop_cmd, key=str))])
            elif action == 4:
                balnum = rng.randint(1, m.max_balnum)
                tried = m.max_tried[balnum]
                if tried is not None:
                    m.classic_vote(rng.choice(accs), balnum, tried)
            elif action == 5:
                if m.prop_cmd:
                    m.fast_vote(rng.choice(accs), rng.choice(sorted(m.prop_cmd, key=str)))
            else:
                acceptor = rng.choice(accs)
                balnum = m.ballot_array.mbal[acceptor]
                vote = m.ballot_array.vote(acceptor, balnum)
                if vote is not None:
                    m.learn(rng.choice(list(m.learners)), vote)
        except ActionNotEnabled:
            continue
        m.check_invariants()


@pytest.mark.parametrize("seed", range(8))
def test_random_schedules_preserve_invariants(seed):
    _random_schedule(seed)
