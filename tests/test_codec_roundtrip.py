"""Wire round-trips for the whole message taxonomy -- auto-enumerated.

The message list is NOT written down here: it is recomputed from the
protolint taxonomy rule's registry (:func:`repro.lint.taxonomy.
message_names` over ``src/repro``), the same scan that enforces
handlers + docs rows.  Adding a new message dataclass therefore fails
this suite until it both registers with the codec (automatic for frozen
dataclasses in scanned modules) and gets a wire sample below -- a new
message can never silently lack wire support.

Also pins the header contract (magic + version rejection) and the
canonical-bytes property for unordered containers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.net.node  # noqa: F401  (registers the Ctl* control messages)
from repro.core.messages import (
    ANY,
    CatchUp,
    Learned,
    Nack,
    Phase1a,
    Phase1b,
    Phase2a,
    Phase2aDelta,
    Phase2b,
    Phase2bDelta,
    Propose,
    ProposeBatch,
    ResyncRequest,
    VoteStamp,
)
from repro.core.checkpoint import (
    ICheckpoint,
    ISnapshotChunk,
    ISnapshotOffer,
    ISnapshotRequest,
    ITruncated,
)
from repro.core.liveness import Heartbeat
from repro.core.rounds import RoundId
from repro.cstruct.commands import Command
from repro.cstruct.history import CommandHistory
from repro.lint.engine import Module, collect_files
from repro.lint.taxonomy import message_names
from repro.net import codec
from repro.net.codec import CodecContext, CodecError
from repro.net.node import (
    CtlHello,
    CtlKeyOrders,
    CtlKeyOrdersReply,
    CtlOrders,
    CtlOrdersReply,
    CtlShutdown,
    CtlStart,
    CtlWelcome,
)
from repro.protocols.classic import C1a, C1b, C2a, C2b, CNack, CPropose
from repro.protocols.fast import F_ANY, F1a, F1b, F2a, F2b, FPropose
from repro.smr.instances import (
    Batch,
    I1a,
    I1b,
    I2a,
    I2b,
    IAck,
    ICatchUp,
    IDecided,
    IDecidedDelta,
    IGossip,
    INack,
    IPropose,
)
from repro.smr.machine import kv_conflict

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
MESSAGES = sorted(
    message_names([Module.load(path) for path in collect_files([SRC])])
)

CMD = Command("wire-1", "put", "key", 41)
CMD2 = Command("wire-2", "get", "key", None)
RND = RoundId(mcount=0, count=3, coord=1, rtype=2)
HIGHER = RoundId(mcount=0, count=4, coord=2, rtype=1)
CONTEXT = CodecContext(conflict=kv_conflict())

# One representative instance per message, exercising every field --
# nested values, sentinels, optional quorums, batches.  A new message
# class must add its sample here (test_sample_exists fails otherwise).
MESSAGE_SAMPLES = {
    # core single-value protocol
    "Propose": Propose(CMD, frozenset({0, 1}), frozenset({"a0", "a1"})),
    "ProposeBatch": ProposeBatch((CMD, CMD2), frozenset({0}), None),
    "Phase1a": Phase1a(RND),
    "Phase1b": Phase1b(RND, RoundId(), CMD, "a0"),
    "Phase2a": Phase2a(RND, ANY, 1, frozenset({"a0", "a2"})),
    "Phase2b": Phase2b(RND, CMD, "a1", fresh=(CMD, CMD2)),
    "Nack": Nack(RND, HIGHER, "a2"),
    "Learned": Learned((CMD,), "l0"),
    "CatchUp": CatchUp(seen=7, rnd=RND, size=7, digest=0x1F2F3F4F5F6F7F),
    "Heartbeat": Heartbeat(sender=1),
    # delta wire protocol
    "Phase2aDelta": Phase2aDelta(RND, 3, 0xA1B2C3, (CMD, CMD2), 1),
    "Phase2bDelta": Phase2bDelta(RND, 3, 0xA1B2C3, (CMD,), "a1"),
    "VoteStamp": VoteStamp(RND, 5, 0xD4E5F6, "a2"),
    "ResyncRequest": ResyncRequest(RND, 3),
    # shared checkpoint / state transfer
    "ICheckpoint": ICheckpoint(12, frozenset({"learn0", "learn1"})),
    "ITruncated": ITruncated(5),
    "ISnapshotOffer": ISnapshotOffer(8),
    "ISnapshotRequest": ISnapshotRequest(8, (0, 2)),
    "ISnapshotChunk": ISnapshotChunk(8, 1, 3, (CMD, CMD2), (("key", 41),)),
    # multi-instance engine
    "IPropose": IPropose(CMD, frozenset({0, 1}), frozenset({"acc0"}), retry=True),
    "I1a": I1a(RND),
    "I1b": I1b(RND, "acc0", ((4, RND, CMD),), floor=2),
    "I2a": I2a(RND, 7, Batch((CMD, CMD2)), 1, reannounce=True),
    "I2b": I2b(RND, 7, CMD, "acc2"),
    "INack": INack(RND, HIGHER),
    "IAck": IAck(Batch((CMD,)), 9),
    "IDecided": IDecided(3, CMD),
    "IGossip": IGossip((CMD,), (2, 5)),
    "ICatchUp": ICatchUp((1, 2, 3), frontier=4, digest=0x5A5A5A),
    "IDecidedDelta": IDecidedDelta(((4, CMD), (5, Batch((CMD2,))))),
    # net control plane
    "CtlHello": CtlHello("acc0"),
    "CtlWelcome": CtlWelcome(),
    "CtlStart": CtlStart(0),
    "CtlOrders": CtlOrders(),
    "CtlOrdersReply": CtlOrdersReply("learn0", (("learn0", (CMD, CMD2)),)),
    "CtlKeyOrders": CtlKeyOrders(),
    "CtlKeyOrdersReply": CtlKeyOrdersReply(
        "site0", ((0, 0, (("key", ("wire-1", "wire-2")),)),)
    ),
    "CtlShutdown": CtlShutdown(),
    # classic baseline
    "CPropose": CPropose(CMD),
    "C1a": C1a(2),
    "C1b": C1b(2, "acc0", ((0, 1, CMD),)),
    "C2a": C2a(2, 5, CMD),
    "C2b": C2b(2, 5, CMD, "acc0"),
    "CNack": CNack(2, 4),
    # fast baseline
    "FPropose": FPropose(CMD),
    "F1a": F1a(3),
    "F1b": F1b(3, 1, CMD, "acc0"),
    "F2a": F2a(3, F_ANY),
    "F2b": F2b(3, CMD, "acc1"),
}


def test_taxonomy_enumeration_found_the_vocabulary():
    # Guard against the scan silently matching nothing (wrong path, rule
    # refactor): the engine's core messages must be among the results.
    assert {"Phase1a", "IPropose", "CtlHello"} <= set(MESSAGES)


@pytest.mark.parametrize("name", MESSAGES)
def test_message_is_codec_registered(name):
    assert name in codec.registered_names(), (
        f"message {name} is not wire-registered: its module must be scanned "
        f"by repro.net.codec (register_module) at import time"
    )


@pytest.mark.parametrize("name", MESSAGES)
def test_message_has_wire_sample(name):
    assert name in MESSAGE_SAMPLES, (
        f"new message {name}: add a representative instance to "
        f"MESSAGE_SAMPLES so its wire round-trip is covered"
    )


@pytest.mark.parametrize("name", sorted(MESSAGE_SAMPLES))
def test_message_roundtrips(name):
    sample = MESSAGE_SAMPLES[name]
    decoded = codec.decode(codec.encode(sample), CONTEXT)
    assert decoded == sample
    assert type(decoded) is type(sample)


def test_no_stale_samples():
    assert set(MESSAGE_SAMPLES) <= set(MESSAGES), (
        "samples for classes that are no longer messages: "
        f"{sorted(set(MESSAGE_SAMPLES) - set(MESSAGES))}"
    )


def test_command_history_rides_the_wire():
    history = CommandHistory.of(kv_conflict(), CMD, CMD2, Command("w3", "put", "z", 3))
    msg = Phase2a(RND, history, 0, None)
    decoded = codec.decode(codec.encode(msg), CONTEXT)
    assert decoded.val == history
    with pytest.raises(CodecError):
        codec.decode(codec.encode(msg))  # no conflict relation provided


def test_sentinels_decode_by_identity():
    assert codec.decode(codec.encode(Phase2a(RND, ANY, 0, None))).val is ANY
    assert codec.decode(codec.encode(F2a(3, F_ANY))).val is F_ANY


def test_header_rejects_foreign_and_future_frames():
    frame = codec.encode(Phase1a(RND))
    with pytest.raises(CodecError):
        codec.decode(b"XX" + frame[2:])  # wrong magic
    with pytest.raises(CodecError):
        codec.decode(frame[:2] + bytes([codec.WIRE_VERSION + 1]) + frame[3:])
    with pytest.raises(CodecError):
        codec.decode(frame[:3] + b"{not json")


def test_unordered_containers_have_canonical_bytes():
    a = Propose(CMD, frozenset({2, 0, 1}), frozenset({"a1", "a0"}))
    b = Propose(CMD, frozenset({1, 2, 0}), frozenset({"a0", "a1"}))
    assert codec.encode(a) == codec.encode(b)
