"""Delta-aware peer catch-up: ``ICatchUp`` stamps and ``IDecidedDelta``.

A laggard learner's catch-up poll stamps the ``(size, digest)`` of its
contiguous delivered prefix; a peer learner whose decided trail covers
that stamp answers with **one** ``IDecidedDelta`` carrying the missing
suffix, instead of per-instance ``IDecided`` full values.  Stamps the
peer cannot match fall back to the full-value path -- never wrong, at
worst redundant.
"""

from __future__ import annotations

from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.instances import (
    I2b,
    IDecided,
    RetransmitConfig,
    build_smr,
)
from tests.conftest import cmd


def deploy(seed=1):
    sim = Simulation(seed=seed, network=NetworkConfig(), max_events=2_000_000)
    cluster = build_smr(
        sim,
        n_learners=2,
        retransmit=RetransmitConfig(
            retry_interval=4.0, gossip_interval=4.0, catchup_interval=3.0
        ),
    )
    rnd = cluster.config.schedule.make_round(coord=0, count=1, rtype=2)
    cluster.start_round(rnd)
    return sim, cluster


def blind(cluster):
    """A drop filter starving learner 1 of all decision evidence."""
    laggard = cluster.config.topology.learners[1]

    def starve(src, dst, msg):
        return dst == laggard and isinstance(msg, (I2b, IDecided))

    return starve


def test_peer_catchup_ships_one_delta_suffix():
    sim, cluster = deploy()
    starve = blind(cluster)
    sim.network.add_drop_filter(starve)
    first = [cmd(f"a{i}", "put", f"k{i % 3}", i) for i in range(10)]
    for i, command in enumerate(first):
        cluster.propose(command, delay=1.0 + i)
    sim.run(until=30.0)
    sim.network.remove_drop_filter(starve)

    # New traffic reveals the gap to the starved learner: its next poll
    # carries the (0, 0) stamp of its empty delivered prefix, and the
    # up-to-date peer answers with the whole suffix in one message.
    second = [cmd(f"b{i}", "put", f"k{i % 3}", i) for i in range(3)]
    for i, command in enumerate(second):
        cluster.propose(command, delay=1.0 + i)
    assert cluster.run_until_delivered([*first, *second], timeout=400.0)

    healthy, laggard = cluster.learners
    assert healthy.delta_catchup_sent > 0
    assert laggard.delta_catchup_received > 0
    assert healthy.catchup_fallbacks == 0
    orders = cluster.delivery_orders()
    assert orders[0] == orders[1]
    # The trail mirrors the delivered prefix entry for entry.
    for learner in cluster.learners:
        assert learner._decided_trail.size == learner._next_delivery


def test_unmatchable_stamp_falls_back_to_full_values():
    sim, cluster = deploy(seed=3)
    starve = blind(cluster)
    sim.network.add_drop_filter(starve)
    first = [cmd(f"a{i}", "put", f"k{i % 3}", i) for i in range(8)]
    for i, command in enumerate(first):
        cluster.propose(command, delay=1.0 + i)
    sim.run(until=30.0)
    sim.network.remove_drop_filter(starve)

    # Corrupt the healthy peer's trail anchor: the laggard's (0, 0)
    # stamp no longer matches any base, so the peer counts a fallback
    # and serves per-instance IDecided -- correctness is unaffected.
    healthy = cluster.learners[0]
    healthy._decided_trail.reset(healthy._decided_trail.size, 0xBAD)

    second = [cmd(f"b{i}", "put", f"k{i % 3}", i) for i in range(3)]
    for i, command in enumerate(second):
        cluster.propose(command, delay=1.0 + i)
    assert cluster.run_until_delivered([*first, *second], timeout=400.0)

    assert healthy.delta_catchup_sent == 0
    assert healthy.catchup_fallbacks > 0
    orders = cluster.delivery_orders()
    assert orders[0] == orders[1]


def test_stats_expose_delta_counters():
    sim, cluster = deploy()
    stats = cluster.retransmission_stats()
    assert stats["delta_catchups"] == 0
    assert stats["catchup_fallbacks"] == 0
