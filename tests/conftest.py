"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.cstruct.commands import AlwaysConflict, Command, KeyConflict, NeverConflict


def cmd(cid: str, op: str = "put", key: str = "x", arg=None) -> Command:
    """Shorthand command constructor used across the suite."""
    return Command(cid=cid, op=op, key=key, arg=arg)


@pytest.fixture
def always():
    return AlwaysConflict()


@pytest.fixture
def never():
    return NeverConflict()


@pytest.fixture
def by_key():
    return KeyConflict(read_ops=frozenset({"get"}))
