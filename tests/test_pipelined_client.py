"""PipelinedClient: windowed closed-loop load generation (ROADMAP item)."""

import pytest

from repro.core.generalized import build_generalized
from repro.cstruct.commands import Command
from repro.cstruct.history import CommandHistory
from repro.sim.scheduler import Simulation
from repro.smr.client import Client, PipelinedClient
from repro.smr.instances import BatchingConfig, build_smr
from repro.smr.machine import KVStore, kv_conflict
from repro.smr.replica import OrderedReplica


def _commands(n: int) -> list[Command]:
    return [Command(cid=f"p{i:03d}", op="put", key=f"k{i}", arg=i) for i in range(n)]


def _generalized_cluster(sim: Simulation):
    cluster = build_generalized(
        sim, bottom=CommandHistory.bottom(kv_conflict()), n_coordinators=3, n_acceptors=3
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    return cluster


def test_window_must_be_positive():
    sim = Simulation(seed=1)
    cluster = _generalized_cluster(sim)
    with pytest.raises(ValueError):
        PipelinedClient("bad", cluster, window=0)


def test_pipelined_client_completes_backlog_on_generalized():
    sim = Simulation(seed=1)
    cluster = _generalized_cluster(sim)
    client = PipelinedClient("pc", cluster, window=4)
    client.watch_learner(cluster.learners[0])
    cmds = _commands(20)
    client.submit(cmds, delay=5.0)
    assert sim.run_until(lambda: client.all_completed(), timeout=5_000)
    assert len(client.completed) == 20
    assert not client.backlog and not client.in_flight


def test_window_bounds_in_flight():
    sim = Simulation(seed=2)
    cluster = _generalized_cluster(sim)
    client = PipelinedClient("pc", cluster, window=3)
    client.watch_learner(cluster.learners[0])
    client.submit(_commands(17), delay=5.0)
    assert sim.run_until(lambda: client.all_completed(), timeout=5_000)
    assert client.peak_in_flight == 3  # saturated but never above the window


def test_completion_refills_the_window():
    """Commands are issued gradually, completion-driven, not all at once."""
    sim = Simulation(seed=3)
    cluster = _generalized_cluster(sim)
    client = PipelinedClient("pc", cluster, window=2)
    client.watch_learner(cluster.learners[0])
    client.submit(_commands(6), delay=5.0)
    assert sim.run_until(lambda: client.all_completed(), timeout=5_000)
    issue_times = sorted(client.issue_times.values())
    # With window 2 and 6 commands, issuing happens in at least 3 waves.
    assert len(set(issue_times)) >= 3


def test_pipelined_client_drives_batched_instances_engine():
    sim = Simulation(seed=4)
    cluster = build_smr(
        sim,
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=3,
        batching=BatchingConfig(max_batch=4, flush_interval=2.0, pipeline_depth=2),
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    client = PipelinedClient("pc", cluster, window=8)
    replica = OrderedReplica(cluster.learners[0], KVStore())
    client.watch_replica(replica)
    cmds = _commands(24)
    client.submit(cmds, delay=5.0)
    assert sim.run_until(lambda: client.all_completed(), timeout=10_000)
    assert all(client.latency(cmd) is not None for cmd in cmds)


def test_base_client_watch_learner():
    """The plain Client can also observe completions at a learner."""
    sim = Simulation(seed=5)
    cluster = _generalized_cluster(sim)
    client = Client("c", cluster)
    client.watch_learner(cluster.learners[0])
    cmd = Command("solo", "put", "x", 1)
    client.issue(cmd, delay=5.0)
    assert sim.run_until(lambda: client.all_completed(), timeout=1_000)
    assert client.latency(cmd) is not None
