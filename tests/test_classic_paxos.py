"""Classic Paxos baseline (Section 2.1): multi-instance SMR protocol."""

import pytest

from repro.core.liveness import LivenessConfig
from repro.protocols.classic import NOOP, build_classic_paxos
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from tests.conftest import cmd

A = cmd("a", "put", "x", 1)
B = cmd("b", "put", "x", 2)
C = cmd("c", "put", "y", 3)


def deploy(seed=1, liveness=None, **kwargs):
    sim = Simulation(seed=seed, network=NetworkConfig())
    cluster = build_classic_paxos(sim, liveness=liveness, **kwargs)
    return sim, cluster


def test_single_command_three_steps_steady_state():
    sim, cluster = deploy()
    cluster.start_round(1)
    sim.run(until=10)  # phase 1 for all instances completes
    cluster.propose(A, delay=1.0)
    assert cluster.run_until_delivered([A], timeout=100)
    assert sim.metrics.latency_of(A) == 3.0


def test_commands_delivered_in_same_order_at_all_learners():
    sim, cluster = deploy(n_learners=3)
    cluster.start_round(1)
    for i, command in enumerate([A, B, C]):
        cluster.propose(command, delay=5.0 + 2 * i)
    assert cluster.run_until_delivered([A, B, C], timeout=300)
    orders = [learner.delivered for learner in cluster.learners]
    assert all(order == orders[0] for order in orders)


def test_one_instance_per_command():
    sim, cluster = deploy()
    cluster.start_round(1)
    for i, command in enumerate([A, B, C]):
        cluster.propose(command, delay=5.0 + 2 * i)
    assert cluster.run_until_delivered([A, B, C], timeout=300)
    decided = cluster.learners[0].decided
    assert sorted(decided) == [0, 1, 2]
    assert set(decided.values()) == {A, B, C}


def test_duplicate_proposals_assigned_once():
    sim, cluster = deploy()
    cluster.start_round(1)
    cluster.propose(A, delay=5.0)
    cluster.propose(A, delay=9.0)
    assert cluster.run_until_delivered([A], timeout=200)
    sim.run(until=sim.clock + 30)
    values = list(cluster.learners[0].decided.values())
    assert values.count(A) == 1


def test_leader_failover_with_failure_detector():
    sim, cluster = deploy(liveness=LivenessConfig())
    cluster.propose(A, delay=10.0)
    assert cluster.run_until_delivered([A], timeout=1000)
    cluster.coordinators[0].crash()
    cluster.propose(B, delay=5.0)
    assert cluster.run_until_delivered([B], timeout=2000)
    assert cluster.learners[0].delivered == [A, B]


def test_new_leader_completes_chosen_but_unfinished_instances():
    """The new leader re-proposes values found in phase 1b answers."""
    sim, cluster = deploy(liveness=LivenessConfig())
    cluster.propose(A, delay=10.0)
    assert cluster.run_until_delivered([A], timeout=1000)
    # Crash the leader right after it assigns B to an instance but while
    # the 2a messages may still be undelivered to some learners.
    cluster.propose(B, delay=1.0)
    leader = cluster.coordinators[0]
    sim.run_until(lambda: 1 in leader.assigned or B in leader.assigned.values(), timeout=200)
    leader.crash()
    assert cluster.run_until_delivered([B], timeout=3000)
    assert cluster.learners[0].delivered == [A, B]


def test_gap_filled_with_noop_after_failover():
    """Instances left empty by a dead leader are closed with no-ops."""
    sim, cluster = deploy(liveness=LivenessConfig(), n_acceptors=3)
    cluster.propose(A, delay=10.0)
    assert cluster.run_until_delivered([A], timeout=1000)
    leader = cluster.coordinators[0]
    # Manually poke an instance assignment whose 2a never goes out: crash
    # the leader while cutting it off from all acceptors.
    for acc in cluster.acceptors:
        sim.network.block(leader.pid, acc.pid)
    cluster.propose(B, delay=1.0)
    sim.run(until=sim.clock + 5)
    leader.crash()
    sim.network.heal()
    assert cluster.run_until_delivered([B], timeout=3000)
    delivered = cluster.learners[0].delivered
    assert delivered[0] == A and B in delivered
    assert NOOP not in delivered  # no-ops close instances silently


def test_acceptor_minority_failure_tolerated():
    sim, cluster = deploy(n_acceptors=5)
    cluster.start_round(1)
    sim.run(until=10)
    cluster.acceptors[0].crash()
    cluster.acceptors[1].crash()
    cluster.propose(A, delay=1.0)
    assert cluster.run_until_delivered([A], timeout=200)


def test_acceptor_majority_failure_blocks():
    sim, cluster = deploy(n_acceptors=3)
    cluster.start_round(1)
    sim.run(until=10)
    cluster.acceptors[0].crash()
    cluster.acceptors[1].crash()
    cluster.propose(A, delay=1.0)
    assert not cluster.run_until_delivered([A], timeout=200)


def test_acceptor_recovery_restores_votes():
    sim, cluster = deploy()
    cluster.start_round(1)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_delivered([A], timeout=200)
    acceptor = cluster.acceptors[0]
    acceptor.crash()
    acceptor.recover()
    assert acceptor.rnd == 1
    assert acceptor.votes[0] == (1, A)


def test_round_ownership_round_robin():
    sim, cluster = deploy(n_coordinators=3)
    owners = [cluster.coordinators[(r - 1) % 3] for r in (1, 2, 3)]
    assert [c.owns(r) for c, r in zip(owners, (1, 2, 3))] == [True] * 3
    assert not cluster.coordinators[0].owns(2)
    assert cluster.coordinators[0].my_round_above(1) == 4


def test_start_round_validation():
    sim, cluster = deploy(n_coordinators=3)
    with pytest.raises(ValueError):
        cluster.coordinators[0].start_round(2)  # not the owner
    cluster.coordinators[0].start_round(1)
    with pytest.raises(ValueError):
        cluster.coordinators[0].start_round(1)  # not above current


def test_consistency_assertion_guards_instances():
    sim, cluster = deploy()
    cluster.start_round(1)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_delivered([A], timeout=200)
    learner = cluster.learners[0]
    from repro.protocols.classic import C2b

    with pytest.raises(AssertionError):
        for i, acc in enumerate(["acc0", "acc1", "acc2"]):
            learner.on_c2b(C2b(rnd=9, instance=0, val=B, acceptor=acc), acc)
