"""Fast Paxos baseline (Section 2.2)."""

import pytest

from repro.protocols.fast import F_ANY, build_fast_paxos, _pick, F1b, FastConfig
from repro.core.topology import Topology
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from tests.conftest import cmd

A = cmd("a", "put", "x", 1)
B = cmd("b", "put", "x", 2)


def deploy(seed=1, jitter=0.0, **kwargs):
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter))
    cluster = build_fast_paxos(sim, **kwargs)
    return sim, cluster


def test_fast_decision_two_steps():
    sim, cluster = deploy(n_acceptors=4)
    cluster.start_round(1)
    sim.run(until=10)
    cluster.propose(A, delay=1.0)
    assert cluster.run_until_decided(timeout=100)
    assert sim.metrics.latency_of(A) == 2.0


def test_classic_round_decision_three_steps():
    sim, cluster = deploy(n_acceptors=4, fast_rounds=lambda r: False)
    cluster.start_round(1)
    sim.run(until=10)
    cluster.propose(A, delay=1.0)
    assert cluster.run_until_decided(timeout=100)
    assert sim.metrics.latency_of(A) == 3.0


def test_any_value_broadcast_in_fast_round():
    sim, cluster = deploy(n_acceptors=4)
    cluster.start_round(1)
    sim.run(until=10)
    assert cluster.coordinators[0].sent
    assert all(1 in acc._any_open for acc in cluster.acceptors)


def test_fast_quorum_larger_than_classic():
    sim, cluster = deploy(n_acceptors=4)
    assert cluster.config.fast_quorum_size == 3
    assert cluster.config.classic_quorum_size == 3
    sim, cluster = deploy(n_acceptors=8)
    assert cluster.config.fast_quorum_size == 6
    assert cluster.config.classic_quorum_size == 5


def test_fast_round_needs_fast_quorum_of_acceptors():
    sim, cluster = deploy(n_acceptors=4)  # E=1: tolerate one failure
    cluster.start_round(1)
    sim.run(until=10)
    cluster.acceptors[0].crash()
    cluster.acceptors[1].crash()  # two failures exceed E
    cluster.propose(A, delay=1.0)
    assert not cluster.run_until_decided(timeout=100)


def test_one_acceptor_failure_still_fast():
    sim, cluster = deploy(n_acceptors=4)
    cluster.start_round(1)
    sim.run(until=10)
    cluster.acceptors[0].crash()
    cluster.propose(A, delay=1.0)
    assert cluster.run_until_decided(timeout=100)


def test_collision_then_coordinated_recovery_decides():
    recovered_runs = 0
    for seed in range(20):
        sim, cluster = deploy(
            seed=seed, jitter=0.9, n_acceptors=4, n_proposers=2,
            fast_rounds=lambda r: r == 1,
        )
        cluster.start_round(1)
        cluster.propose(A, delay=6.0, proposer=0)
        cluster.propose(B, delay=6.0, proposer=1)
        assert cluster.run_until_decided(timeout=500), f"seed {seed}"
        assert cluster.decision() in (A, B)
        recovered_runs += bool(
            sum(c.collisions_recovered for c in cluster.coordinators)
        )
    assert recovered_runs > 0


def test_collision_then_uncoordinated_recovery_decides():
    for seed in range(20):
        sim, cluster = deploy(
            seed=seed, jitter=0.9, n_acceptors=4, n_proposers=2,
            uncoordinated=True, fast_rounds=lambda r: True,
        )
        cluster.start_round(1)
        cluster.propose(A, delay=6.0, proposer=0)
        cluster.propose(B, delay=6.0, proposer=1)
        assert cluster.run_until_decided(timeout=500), f"seed {seed}"


def test_collision_then_restart_recovery_decides():
    for seed in range(20):
        sim, cluster = deploy(
            seed=seed, jitter=0.9, n_acceptors=4, n_proposers=2,
            fast_rounds=lambda r: r == 1, recovery="restart",
        )
        cluster.start_round(1)
        cluster.propose(A, delay=6.0, proposer=0)
        cluster.propose(B, delay=6.0, proposer=1)
        assert cluster.run_until_decided(timeout=500), f"seed {seed}"


def test_fast_collision_wastes_disk_writes():
    """Section 4.2: the losing value was accepted, hence written to disk."""
    wasted_seen = False
    for seed in range(20):
        sim, cluster = deploy(
            seed=seed, jitter=0.9, n_acceptors=4, n_proposers=2,
            fast_rounds=lambda r: r == 1,
        )
        cluster.start_round(1)
        cluster.propose(A, delay=6.0, proposer=0)
        cluster.propose(B, delay=6.0, proposer=1)
        assert cluster.run_until_decided(timeout=500)
        if not sum(c.collisions_recovered for c in cluster.coordinators):
            continue
        decision = cluster.decision()
        wasted = sum(
            sum(1 for _, val in acc.accept_log if val != decision)
            for acc in cluster.acceptors
        )
        assert wasted >= 1
        wasted_seen = True
    assert wasted_seen


def test_consecutive_rounds_share_owner():
    topology = Topology.build(1, 2, 4, 1)
    config = FastConfig(
        topology=topology, n_acceptors=4, f=1, e=1, fast_rounds=lambda r: True
    )
    assert config.owner(1) == config.owner(2) == 0
    assert config.owner(3) == config.owner(4) == 1
    assert config.owner(5) == 0


def test_pick_rule_free_on_initial_state():
    topology = Topology.build(1, 1, 4, 1)
    config = FastConfig(
        topology=topology, n_acceptors=4, f=1, e=1, fast_rounds=lambda r: True
    )
    msgs = {f"acc{i}": F1b(2, 0, None, f"acc{i}") for i in range(3)}
    assert _pick(config, msgs).free


def test_pick_rule_dominant_value():
    topology = Topology.build(1, 1, 4, 1)
    config = FastConfig(
        topology=topology, n_acceptors=4, f=1, e=1, fast_rounds=lambda r: r == 1
    )
    msgs = {
        "acc0": F1b(2, 1, A, "acc0"),
        "acc1": F1b(2, 1, A, "acc1"),
        "acc2": F1b(2, 1, A, "acc2"),
        "acc3": F1b(2, 1, B, "acc3"),
    }
    pick = _pick(config, msgs)
    assert not pick.free and pick.value == A


def test_learner_consistency_assertion():
    sim, cluster = deploy(n_acceptors=4)
    cluster.start_round(1)
    cluster.propose(A, delay=5.0)
    assert cluster.run_until_decided(timeout=100)
    from repro.protocols.fast import F2b

    learner = cluster.learners[0]
    with pytest.raises(AssertionError):
        for acc in ["acc0", "acc1", "acc2"]:
            learner.on_f2b(F2b(5, B, acc), acc)
