"""Multicoordinated MultiPaxos: one consensus instance per command."""

import pytest

from repro.core.liveness import LivenessConfig
from repro.core.rounds import ZERO, RoundId
from repro.cstruct.commands import Command
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.instances import NOOP, build_smr
from repro.smr.machine import KVStore
from repro.smr.replica import OrderedReplica
from tests.conftest import cmd


def deploy(seed=1, jitter=0.0, liveness=None, **kwargs):
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter))
    cluster = build_smr(sim, liveness=liveness, **kwargs)
    return sim, cluster


def start_multi(cluster, count=1):
    rnd = cluster.config.schedule.make_round(coord=0, count=count, rtype=2)
    cluster.start_round(rnd)
    return rnd


def make_cmds(n, key_prefix="k"):
    return [cmd(f"c{i}", "put", f"{key_prefix}{i}", i) for i in range(n)]


def test_sequential_commands_three_steps_each():
    sim, cluster = deploy()
    start_multi(cluster)
    sim.run(until=10)
    commands = make_cmds(4)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=1.0 + 3 * i)
    assert cluster.run_until_delivered(commands, timeout=500)
    assert all(sim.metrics.latency_of(c) == 3.0 for c in commands)


def test_learners_deliver_identical_total_order():
    sim, cluster = deploy(n_learners=3, jitter=0.6, seed=9, n_proposers=2)
    start_multi(cluster)
    commands = make_cmds(6)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 2 * (i // 2))
    assert cluster.run_until_delivered(commands, timeout=3000)
    orders = [learner.delivered for learner in cluster.learners]
    assert all(order == orders[0] for order in orders)


def test_each_command_delivered_exactly_once():
    sim, cluster = deploy(n_proposers=2, jitter=0.8, seed=4, liveness=LivenessConfig())
    start_multi(cluster)
    commands = make_cmds(8)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 2 * (i // 2))
    assert cluster.run_until_delivered(commands, timeout=3000)
    delivered = cluster.learners[0].delivered
    assert sorted(delivered, key=str) == sorted(commands, key=str)


def test_coordinator_crash_does_not_stall_multicoordinated_round():
    sim, cluster = deploy()
    start_multi(cluster)
    sim.run(until=10)
    cluster.coordinators[1].crash()
    commands = make_cmds(3)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=1.0 + 3 * i)
    assert cluster.run_until_delivered(commands, timeout=500)


def test_leader_crash_recovered_by_failure_detector():
    sim, cluster = deploy(liveness=LivenessConfig(), seed=3)
    start_multi(cluster)
    commands = make_cmds(10)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 4 * i)
    sim.schedule(15, lambda: cluster.coordinators[0].crash())
    assert cluster.run_until_delivered(commands, timeout=5000)


def test_instance_races_resolved_with_load_balancing():
    decided_all = 0
    for seed in range(8):
        sim, cluster = deploy(
            seed=seed, jitter=0.8, n_proposers=2, n_acceptors=5,
            liveness=LivenessConfig(),
        )
        cluster.set_load_balancing(True)
        start_multi(cluster)
        commands = make_cmds(8)
        for i, command in enumerate(commands):
            cluster.propose(command, delay=5.0 + 2 * (i // 2))
        assert cluster.run_until_delivered(commands, timeout=3000), f"seed {seed}"
        decided_all += 1
    assert decided_all == 8


def test_load_balancing_bounds_acceptor_load():
    """E4's acceptor claim, end-to-end: no acceptor sees every command."""
    sim, cluster = deploy(n_proposers=2, n_acceptors=5, liveness=LivenessConfig())
    cluster.set_load_balancing(True)
    start_multi(cluster)
    commands = make_cmds(30)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 4 * i)
    assert cluster.run_until_delivered(commands, timeout=10_000)
    loads = [a.commands_accepted / len(commands) for a in cluster.acceptors]
    assert max(loads) < 1.0
    assert max(loads) <= 0.5 + 1 / 5 + 0.15  # bound + racing slack


def test_replica_execution_matches_across_learners():
    sim, cluster = deploy(n_learners=2, seed=2)
    start_multi(cluster)
    replicas = [OrderedReplica(learner, KVStore()) for learner in cluster.learners]
    commands = [
        cmd("1", "put", "x", 1),
        cmd("2", "inc", "x", 5),
        cmd("3", "cas", "x", (6, 7)),
    ]
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 3 * i)
    assert cluster.run_until_delivered(commands, timeout=500)
    assert replicas[0].machine.snapshot() == replicas[1].machine.snapshot()
    assert replicas[0].machine.get("x") == 7


def test_acceptor_recovery_preserves_votes():
    sim, cluster = deploy(liveness=LivenessConfig())
    start_multi(cluster)
    commands = make_cmds(3)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 3 * i)
    assert cluster.run_until_delivered(commands, timeout=500)
    acceptor = cluster.acceptors[0]
    votes_before = dict(acceptor.votes)
    acceptor.crash()
    acceptor.recover()
    assert acceptor.votes == votes_before


def test_round_validation():
    sim, cluster = deploy()
    rnd = cluster.config.schedule.make_round(coord=0, count=1, rtype=2)
    with pytest.raises(ValueError):
        cluster.coordinators[0].start_round(ZERO)
    cluster.coordinators[0].start_round(rnd)
    with pytest.raises(ValueError):
        cluster.coordinators[0].start_round(rnd)


def test_noop_never_delivered():
    sim, cluster = deploy(liveness=LivenessConfig(), seed=6, jitter=0.8, n_proposers=2)
    start_multi(cluster)
    commands = make_cmds(6)
    for i, command in enumerate(commands):
        cluster.propose(command, delay=5.0 + 2 * (i // 2))
    assert cluster.run_until_delivered(commands, timeout=3000)
    assert NOOP not in cluster.learners[0].delivered


def test_learner_detects_conflicting_decision():
    sim, cluster = deploy()
    start_multi(cluster)
    commands = make_cmds(1)
    cluster.propose(commands[0], delay=5.0)
    assert cluster.run_until_delivered(commands, timeout=500)
    from repro.smr.instances import I2b

    learner = cluster.learners[0]
    bad = cmd("evil", "put", "x", 666)
    rnd = RoundId(0, 9, 0, 1)
    with pytest.raises(AssertionError):
        for acc in ["acc0", "acc1", "acc2"]:
            learner.on_i2b(I2b(rnd, 0, bad, acc), acc)
