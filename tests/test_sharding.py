"""Sharded multi-group consensus: routing, barriers, convergence.

The `repro.shard` layer runs N independent engine groups behind a
key-hashed router, with cross-shard commands decided by a generalized
merge group and spliced into each owning group's stream at barrier
placeholders.  The correctness claims tested here:

* **Isolation** -- with disjoint keys the sharded deployment is
  *observationally identical* to N independent single-group runs: the
  default network consumes no RNG, so each group's trace is a pure
  function of its own inputs, and the delivered sequences must match a
  standalone cluster of the same shape command for command.
* **Convergence** -- after any run (clean, lossy, crashed) every
  replica of every group agrees on every key's command order, and the
  barrier splice gives cross-shard commands the *same* relative order
  at every owning group.
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import RetransmitConfig
from repro.core.liveness import LivenessConfig
from repro.cstruct.commands import Command
from repro.cstruct.sharding import ShardKeyConflict, ShardMap, key_group, split_key
from repro.shard import ShardedDeployment, barrier_command
from repro.shard.deploy import _build_group, make_group_config
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation


def keys_for_group(shard_map: ShardMap, gid: int, count: int, prefix: str = "k"):
    """The first *count* ``<prefix><i>`` keys hashing to group *gid*."""
    keys, i = [], 0
    while len(keys) < count:
        key = f"{prefix}{i}"
        if shard_map.group_of_key(key) == gid:
            keys.append(key)
        i += 1
    return keys


# -- key hashing and conflicts ------------------------------------------------


def test_key_group_is_deterministic_and_in_range():
    for n in (1, 2, 4, 7):
        for i in range(64):
            gid = key_group(f"k{i}", n)
            assert 0 <= gid < n
            assert gid == key_group(f"k{i}", n)  # process-stable


def test_shard_map_routes_multi_key_commands():
    shard_map = ShardMap(4)
    ka = keys_for_group(shard_map, 0, 1)[0]
    kb = keys_for_group(shard_map, 3, 1)[0]
    single = Command("s", "put", ka, 1)
    cross = Command("x", "put", f"{ka}|{kb}", 1)
    assert shard_map.groups_of(single) == (0,)
    assert shard_map.groups_of(cross) == (0, 3)
    assert not shard_map.is_cross_shard(single)
    assert shard_map.is_cross_shard(cross)
    assert shard_map.owned_keys(cross, 0) == (ka,)
    assert shard_map.owned_keys(cross, 3) == (kb,)
    assert shard_map.owned_keys(cross, 1) == ()


def test_split_key_dedups_and_preserves_order():
    assert split_key("") == ()
    assert split_key("a") == ("a",)
    assert split_key("b|a|b") == ("b", "a")


def test_shard_key_conflict_is_key_intersection_plus_a_write():
    conflict = ShardKeyConflict(read_ops=frozenset({"get"}))
    wa = Command("1", "put", "a|b", 1)
    wb = Command("2", "put", "b|c", 2)
    rc = Command("3", "get", "b", None)
    other = Command("4", "put", "z", 4)
    assert conflict.conflicts(wa, wb)  # share b, both write
    assert conflict.conflicts(wa, rc)  # read vs write on b
    assert not conflict.conflicts(rc, Command("5", "get", "b|c", None))
    assert not conflict.conflicts(wa, other)  # disjoint keys


def test_barrier_command_shape():
    cmd = Command("x1", "put", "a|b", 1)
    bar = barrier_command(7, 2, cmd)
    assert bar.cid == "xb7@g2"
    assert bar.key == ""  # keyless: never key-conflicts, never applied
    assert bar.arg == (7, "x1")


# -- isolation: disjoint keys == N independent groups -------------------------


def test_disjoint_key_run_is_identical_to_standalone_groups():
    """Per-group delivered sequences match a standalone single group.

    The default network model is deterministic (no RNG draws with zero
    jitter/loss), so a group that never interacts with the others must
    produce, event for event, the trace it would produce alone: same
    commands, same instances, same delivery order at every learner.
    """
    n_groups = 3
    shard_map = ShardMap(n_groups)
    per_group = {
        gid: [
            Command(f"g{gid}c{j}", "put", key, j)
            for j, key in enumerate(
                keys_for_group(shard_map, gid, 3) * 4  # 12 commands on 3 keys
            )
        ]
        for gid in range(n_groups)
    }

    sim = Simulation(seed=7)
    deployment = ShardedDeployment.build(sim, n_groups).start()
    for cmds in per_group.values():
        for j, cmd in enumerate(cmds):
            deployment.router.propose(cmd, delay=5.0 + 1.5 * j)
    assert deployment.run_until_executed(
        [c for cmds in per_group.values() for c in cmds]
    )
    assert deployment.router.stats()["routed_cross"] == 0
    assert deployment.divergent_keys() == []

    for gid, cmds in per_group.items():
        alone = Simulation(seed=7)
        cluster = _build_group(alone, make_group_config(f"g{gid}"))
        rnd = cluster.config.schedule.make_round(coord=0, count=1, rtype=2)
        cluster.start_round(rnd)
        for j, cmd in enumerate(cmds):
            cluster.propose(cmd, delay=5.0 + 1.5 * j)
        assert alone.run_until(lambda: cluster.everyone_delivered(cmds))
        assert cluster.delivery_orders() == deployment.groups[gid].delivery_orders()


# -- convergence under faults -------------------------------------------------


def build_mixed_workload(shard_map: ShardMap, n_groups: int, per_group: int, cross: int):
    """Single-shard streams on keys *shared* with the cross commands.

    Sharing keys between the single-shard streams and the cross-shard
    commands is the strong test: the barrier splice must put the cross
    command at the same point of each shared key's order on every
    replica of every owning group.
    """
    cmds = []
    group_keys = {gid: keys_for_group(shard_map, gid, 2) for gid in range(n_groups)}
    for gid in range(n_groups):
        for j in range(per_group):
            key = group_keys[gid][j % 2]
            cmds.append(Command(f"g{gid}c{j}", "put", key, j))
    for x in range(cross):
        a, b = x % n_groups, (x + 1) % n_groups
        key = f"{group_keys[a][0]}|{group_keys[b][0]}"
        cmds.append(Command(f"x{x}", "put", key, x))
    return cmds


FAULTS = ["clean", "loss", "crash", "loss+crash"]


@pytest.mark.parametrize("n_groups", [2, 3])
@pytest.mark.parametrize("fault", FAULTS)
def test_cross_shard_convergence(n_groups, fault):
    """Zero per-key divergence across the 8-config fault matrix."""
    for seed in (3, 11):
        drop_rate = 0.1 if "loss" in fault else 0.0
        sim = Simulation(
            seed=seed,
            network=NetworkConfig(drop_rate=drop_rate),
            max_events=6_000_000,
        )
        retransmit = RetransmitConfig(
            retry_interval=6.0, gossip_interval=6.0, catchup_interval=5.0
        )
        deployment = ShardedDeployment.build(
            sim,
            n_groups,
            retransmit=retransmit,
            liveness=LivenessConfig() if drop_rate else None,
        ).start()
        cmds = build_mixed_workload(
            deployment.shard_map, n_groups, per_group=8, cross=4
        )
        for j, cmd in enumerate(cmds):
            deployment.router.propose(cmd, delay=5.0 + 2.0 * j)
        if "crash" in fault:
            # One acceptor down in every group (and the merge group):
            # below each quorum system's f, so progress must continue.
            def crash_everywhere():
                for gid in range(n_groups):
                    deployment.crash_group(gid, "acceptors", index=2)
                sim.crash(deployment.merge_config.topology.acceptors[2])

            sim.schedule(12.0, crash_everywhere)

        assert deployment.run_until_executed(cmds, timeout=40_000.0), (
            f"{fault} n_groups={n_groups} seed={seed}: commands not executed"
        )
        assert deployment.divergent_keys() == [], (
            f"{fault} n_groups={n_groups} seed={seed}: replicas diverged"
        )
        stats = deployment.router.stats()
        assert stats["routed_cross"] == 4
        for replicas in deployment.replicas:
            for replica in replicas:
                assert replica.barriers_crossed > 0


def test_cross_shard_key_orders_include_the_cross_command():
    """The splice lands the cross command inside each shared key's order."""
    sim = Simulation(seed=5)
    deployment = ShardedDeployment.build(sim, 2).start()
    ka = keys_for_group(deployment.shard_map, 0, 1)[0]
    kb = keys_for_group(deployment.shard_map, 1, 1)[0]
    before = [Command("a0", "put", ka, 0), Command("b0", "put", kb, 0)]
    cross = Command("x0", "put", f"{ka}|{kb}", 1)
    after = [Command("a1", "put", ka, 2), Command("b1", "put", kb, 2)]
    for j, cmd in enumerate([*before, cross, *after]):
        deployment.router.propose(cmd, delay=5.0 + 4.0 * j)
    assert deployment.run_until_executed([*before, cross, *after])
    assert deployment.divergent_keys() == []
    assert deployment.key_order(ka) == ("a0", "x0", "a1")
    assert deployment.key_order(kb) == ("b0", "x0", "b1")
    # Each owning group applied only its own key projection.
    for gid, key in ((0, ka), (1, kb)):
        for replica in deployment.replicas[gid]:
            assert replica.machine._data[key] == 2
            assert replica.results["x0"] == 1


def test_conflicting_cross_commands_execute_in_merge_order_everywhere():
    """Two conflicting cross commands splice in the same relative order."""
    sim = Simulation(seed=9)
    deployment = ShardedDeployment.build(sim, 3).start()
    shard_map = deployment.shard_map
    k0 = keys_for_group(shard_map, 0, 1)[0]
    k1 = keys_for_group(shard_map, 1, 1)[0]
    k2 = keys_for_group(shard_map, 2, 1)[0]
    # x0 and x1 share k1, so the merge history orders them; groups 0, 1
    # and 2 must all observe that order through their barriers.
    x0 = Command("x0", "put", f"{k0}|{k1}", 10)
    x1 = Command("x1", "put", f"{k1}|{k2}", 11)
    deployment.router.propose(x0, delay=5.0)
    deployment.router.propose(x1, delay=5.5)
    assert deployment.run_until_executed([x0, x1])
    assert deployment.divergent_keys() == []
    order = deployment.key_order(k1)
    assert sorted(order) == ["x0", "x1"]
    # The shared-key order is what the merge history decided -- identical
    # at every replica of the owning group (divergent_keys covers that),
    # and the non-shared keys saw exactly their own command.
    assert deployment.key_order(k0) == ("x0",)
    assert deployment.key_order(k2) == ("x1",)


def test_keyless_commands_ride_group_zero():
    sim = Simulation(seed=13)
    deployment = ShardedDeployment.build(sim, 3).start()
    noop = Command("n0", "put", "", None)
    deployment.router.propose(noop, delay=5.0)
    assert deployment.run_until_executed([noop])
    assert deployment.router.session_scope("") == "g0"
    assert all(r.has_executed(noop) for r in deployment.replicas[0])


def test_router_session_scopes():
    sim = Simulation(seed=1)
    deployment = ShardedDeployment.build(sim, 4)
    router = deployment.router
    shard_map = deployment.shard_map
    ka = keys_for_group(shard_map, 1, 1)[0]
    kb = keys_for_group(shard_map, 2, 1)[0]
    assert router.session_scope(ka) == "g1"
    assert router.session_scope(f"{ka}|{ka}") == "g1"
    assert router.session_scope(f"{ka}|{kb}") == "xs"


def test_single_group_sharding_degenerates_to_one_engine():
    """n_groups=1: everything is single-shard, no barriers, no merge load."""
    sim = Simulation(seed=21)
    deployment = ShardedDeployment.build(sim, 1).start()
    cmds = [Command(f"c{i}", "put", f"k{i % 3}", i) for i in range(9)]
    cmds.append(Command("m", "put", "k0|k1|k2", 99))  # multi-key, one group
    for j, cmd in enumerate(cmds):
        deployment.router.propose(cmd, delay=5.0 + j)
    assert deployment.run_until_executed(cmds)
    stats = deployment.router.stats()
    assert stats["routed_cross"] == 0 and stats["barriers"] == 0
    assert deployment.divergent_keys() == []
