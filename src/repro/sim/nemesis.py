"""Nemesis: composable adversarial fault schedules over the simulated network.

The base fault surface (:class:`~repro.sim.network.Network`) offers
primitives -- drop filters, latency shapers, crashes.  This module turns
them into *scenarios*: declarative, seedable scripts of timed fault
episodes that apply unchanged to the instances engine, the generalized
engine, and sharded deployments.

Structure:

* :class:`ClusterView` -- role-pid view over any deployment shape
  (``SMRCluster``, ``GeneralizedCluster``, ``ShardedDeployment``), so a
  scenario can say "the leader" or "a learner quorum" without naming
  pids.
* :class:`Fault` subclasses -- frozen-dataclass fault primitives:
  asymmetric/symmetric partitions, leader and learner-quorum isolation,
  flapping links, skewed per-link latency, crash storms.
* :class:`Episode`/:class:`Scenario` -- ``(at, duration, fault)``
  triples under a name; purely declarative data.
* :class:`Nemesis` -- the engine: schedules episode begin/heal on the
  sim clock, derives one ``random.Random`` per episode from
  ``(seed, scenario name, episode index)`` so the fault schedule is a
  deterministic function of the seed and independent of installation
  interleaving, keeps an append-only ``log`` of every begin/heal/crash
  (the determinism witness: same seed |rarr| identical log), and
  guarantees teardown -- every filter, shaper and crash installed by an
  episode is removed/recovered on heal.

Episode randomness never touches ``sim.rng``: installing a nemesis does
not perturb the seeded schedule of everything else beyond the faults it
injects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.scheduler import Simulation

Teardown = Callable[[], None]


# ---------------------------------------------------------------------------
# Cluster views
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterView:
    """Role-pid view of a deployment, for target selection by role.

    ``clusters`` holds the underlying cluster objects (each with
    ``.coordinators`` role instances) so faults that target "the current
    leader" can resolve it at episode-begin time, not at build time.
    """

    proposers: tuple = ()
    coordinators: tuple = ()
    acceptors: tuple = ()
    learners: tuple = ()
    clusters: tuple = ()

    @property
    def all_pids(self) -> tuple:
        return self.proposers + self.coordinators + self.acceptors + self.learners

    def leaders(self) -> tuple:
        """Current leader coordinator pid of every underlying cluster."""
        out = []
        for cluster in self.clusters:
            chosen = None
            for coord in cluster.coordinators:
                if coord.is_leader():
                    chosen = coord.pid
                    break
            out.append(chosen if chosen is not None else cluster.coordinators[0].pid)
        return tuple(out)

    def learner_quorums(self, count: int = 0) -> tuple:
        """Per-cluster learner majorities (or *count* learners), flattened."""
        out = []
        for cluster in self.clusters:
            pids = [l.pid for l in cluster.learners]
            k = count if count else len(pids) // 2 + 1
            out.extend(pids[: min(k, len(pids))])
        return tuple(out)

    @classmethod
    def of(cls, deployment) -> "ClusterView":
        """Build a view from any supported deployment shape.

        Accepts an ``SMRCluster``, a ``GeneralizedCluster``, or a
        ``ShardedDeployment`` (whose view is the union over its engine
        groups plus the merge group).
        """
        if hasattr(deployment, "groups") and hasattr(deployment, "merge"):
            clusters = list(deployment.groups) + [deployment.merge]
        else:
            clusters = [deployment]
        proposers: list = []
        coordinators: list = []
        acceptors: list = []
        learners: list = []
        for cluster in clusters:
            proposers.extend(p.pid for p in cluster.proposers)
            coordinators.extend(c.pid for c in cluster.coordinators)
            acceptors.extend(a.pid for a in cluster.acceptors)
            learners.extend(l.pid for l in cluster.learners)
        return cls(
            proposers=tuple(proposers),
            coordinators=tuple(coordinators),
            acceptors=tuple(acceptors),
            learners=tuple(learners),
            clusters=tuple(clusters),
        )


# ---------------------------------------------------------------------------
# Fault primitives
# ---------------------------------------------------------------------------


class Fault:
    """A fault primitive.  Subclasses are declarative frozen dataclasses.

    ``begin`` installs the fault and returns teardown callbacks; it may
    only draw randomness from the *rng* it is handed (the episode RNG),
    never from the simulation's.
    """

    def describe(self) -> str:
        return type(self).__name__

    def begin(
        self, nem: "Nemesis", idx: int, rng: random.Random, duration: float
    ) -> list[Teardown]:
        raise NotImplementedError


def _in(pid, group) -> bool:
    return pid in group


@dataclass(frozen=True)
class AsymmetricPartition(Fault):
    """Messages from *sources* to *dests* are dropped; the reverse lives."""

    sources: tuple
    dests: tuple

    def begin(self, nem, idx, rng, duration):
        sources, dests = frozenset(self.sources), frozenset(self.dests)

        def drop(src, dst, msg) -> bool:
            return _in(src, sources) and _in(dst, dests)

        nem.note(idx, f"asym {sorted(sources)} -> {sorted(dests)} dead")
        return [nem.install_drop(idx, drop)]


@dataclass(frozen=True)
class SymmetricPartition(Fault):
    """Both directions between *side_a* and *side_b* are dropped."""

    side_a: tuple
    side_b: tuple

    def begin(self, nem, idx, rng, duration):
        a, b = frozenset(self.side_a), frozenset(self.side_b)

        def drop(src, dst, msg) -> bool:
            return (_in(src, a) and _in(dst, b)) or (_in(src, b) and _in(dst, a))

        nem.note(idx, f"partition {sorted(a)} <x> {sorted(b)}")
        return [nem.install_drop(idx, drop)]


@dataclass(frozen=True)
class IsolateLeader(Fault):
    """Cut every link touching the *current* leader(s), resolved at begin."""

    def begin(self, nem, idx, rng, duration):
        targets = frozenset(nem.view.leaders())

        def drop(src, dst, msg) -> bool:
            return _in(src, targets) != _in(dst, targets)

        nem.note(idx, f"isolate leaders {sorted(targets)}")
        return [nem.install_drop(idx, drop)]


@dataclass(frozen=True)
class IsolateLearnerQuorum(Fault):
    """Cut every link touching a learner majority (or *count* learners)."""

    count: int = 0

    def begin(self, nem, idx, rng, duration):
        targets = frozenset(nem.view.learner_quorums(self.count))

        def drop(src, dst, msg) -> bool:
            return _in(src, targets) != _in(dst, targets)

        nem.note(idx, f"isolate learner quorum {sorted(targets)}")
        return [nem.install_drop(idx, drop)]


@dataclass(frozen=True)
class FlappingLinks(Fault):
    """Links that go up and down on a precomputed random schedule.

    ``pairs`` names concrete links; when empty, *picks* random pairs are
    drawn from the view.  The flap schedule (alternating up/down holds of
    ``U(0.5, 1.5) * mean_period``) is precomputed from the episode RNG at
    begin, so it is a pure function of the nemesis seed.
    """

    pairs: tuple = ()
    picks: int = 2
    mean_period: float = 4.0

    def begin(self, nem, idx, rng, duration):
        pairs = list(self.pairs)
        if not pairs:
            pids = sorted(nem.view.all_pids)
            for _ in range(self.picks):
                a, b = rng.sample(pids, 2)
                pairs.append((a, b))
        ends = {p for pair in pairs for p in pair}
        linkset = frozenset(frozenset(pair) for pair in pairs)
        state = {"down": False, "torn": False}
        horizon = duration if duration > 0 else 10.0 * self.mean_period

        def drop(src, dst, msg) -> bool:
            return (
                state["down"]
                and src in ends
                and dst in ends
                and frozenset((src, dst)) in linkset
            )

        nem.note(idx, f"flapping {sorted(sorted(pair) for pair in pairs)}")
        t = rng.uniform(0.5, 1.5) * self.mean_period / 2.0
        while t < horizon:
            def flip():
                if state["torn"]:
                    return
                state["down"] = not state["down"]
                nem.note(idx, f"flap {'down' if state['down'] else 'up'}")

            nem.sim.schedule(t, flip)
            t += rng.uniform(0.5, 1.5) * self.mean_period

        def tear() -> None:
            state["torn"] = True
            state["down"] = False

        return [nem.install_drop(idx, drop), tear]


@dataclass(frozen=True)
class LatencySkew(Fault):
    """Skew delay on links touching the targets: ``delay*factor + U(0, extra)``.

    When ``targets`` is empty, *picks* random pids are drawn from the
    view.  The per-message jitter comes from a shaper-private RNG seeded
    off the episode RNG, so the sim's own draw sequence is unmoved.
    """

    targets: tuple = ()
    picks: int = 1
    factor: float = 3.0
    extra: float = 2.0

    def begin(self, nem, idx, rng, duration):
        targets = list(self.targets)
        if not targets:
            targets = rng.sample(sorted(nem.view.all_pids), self.picks)
        chosen = frozenset(targets)
        srng = random.Random(rng.getrandbits(64))
        factor, extra = self.factor, self.extra

        def shape(src, dst, delay: float) -> float:
            if _in(src, chosen) or _in(dst, chosen):
                return delay * factor + srng.uniform(0.0, extra)
            return delay

        nem.note(idx, f"latency skew x{factor} on {sorted(chosen)}")
        return [nem.install_shaper(idx, shape)]


@dataclass(frozen=True)
class CrashStorm(Fault):
    """Crash a burst of processes (staggered), recover them on heal.

    Victims are ``victims`` when given, otherwise *picks* draws from the
    named role pools.  Only live processes are crashed; only processes
    this episode crashed (and that are still down) are recovered -- a
    storm composes safely with other storms and scripted crashes.
    """

    victims: tuple = ()
    picks: int = 2
    roles: tuple = ("coordinators", "acceptors", "learners")
    stagger: float = 0.5

    def begin(self, nem, idx, rng, duration):
        victims = list(self.victims)
        if not victims:
            pool = sorted(
                {pid for role in self.roles for pid in getattr(nem.view, role)}
            )
            victims = rng.sample(pool, min(self.picks, len(pool)))
        crashed: list = []
        nem.note(idx, f"crash storm {sorted(victims)}")
        for i, pid in enumerate(victims):
            def strike(pid=pid):
                if nem.sim.alive(pid):
                    crashed.append(pid)
                    nem.note(idx, f"crash {pid}")
                    nem.sim.crash(pid)

            nem.sim.schedule(i * self.stagger, strike)

        def tear() -> None:
            for pid in crashed:
                if not nem.sim.alive(pid):
                    nem.note(idx, f"recover {pid}")
                    nem.sim.recover(pid)

        return [tear]


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Episode:
    """One timed fault: begins at offset *at*, heals after *duration*.

    ``duration <= 0`` means "until the scenario-wide :meth:`Nemesis.heal`"
    (an open-ended fault).
    """

    at: float
    duration: float
    fault: Fault


@dataclass(frozen=True)
class Scenario:
    """A named, declarative schedule of fault episodes."""

    name: str
    episodes: tuple = ()

    def horizon(self) -> float:
        """Offset by which every finite episode has healed."""
        return max((e.at + max(e.duration, 0.0) for e in self.episodes), default=0.0)


@dataclass
class _Active:
    idx: int
    fault: Fault
    teardowns: list = field(default_factory=list)
    done: bool = False


class Nemesis:
    """Applies :class:`Scenario` schedules to one simulation + deployment."""

    def __init__(self, sim: "Simulation", view: ClusterView, seed: int = 0) -> None:
        self.sim = sim
        self.view = view
        self.seed = seed
        self.log: list[tuple[float, str]] = []
        self._open: dict[int, _Active] = {}
        self._next_idx = 0

    # -- plumbing used by faults ------------------------------------------

    def note(self, idx: int, text: str) -> None:
        self.log.append((round(self.sim.clock, 9), f"E{idx:03d} {text}"))

    def install_drop(self, idx: int, fn) -> Teardown:
        """Register a drop filter under this episode's label; returns remover."""
        net = self.sim.network
        net.add_drop_filter(fn, label=f"nem{idx:04d}")
        return lambda: net.remove_drop_filter(fn)

    def install_shaper(self, idx: int, fn) -> Teardown:
        net = self.sim.network
        net.add_latency_shaper(fn, label=f"nem{idx:04d}")
        return lambda: net.remove_latency_shaper(fn)

    # -- applying scenarios ------------------------------------------------

    def apply(self, scenario: Scenario) -> float:
        """Schedule every episode of *scenario* from the current sim clock.

        Returns the absolute sim time by which all finite episodes have
        healed (open-ended episodes heal only via :meth:`heal`).
        """
        base = self.sim.clock
        for episode in scenario.episodes:
            idx = self._next_idx
            self._next_idx += 1
            rng = random.Random(f"{self.seed}|{scenario.name}|{idx}")
            self.sim.schedule_at(
                base + episode.at,
                lambda episode=episode, idx=idx, rng=rng: self._begin(
                    episode, idx, rng
                ),
            )
        return base + scenario.horizon()

    def _begin(self, episode: Episode, idx: int, rng: random.Random) -> None:
        active = _Active(idx=idx, fault=episode.fault)
        self.note(idx, f"begin {episode.fault.describe()}")
        active.teardowns = episode.fault.begin(self, idx, rng, episode.duration)
        self._open[idx] = active
        if episode.duration > 0:
            self.sim.schedule(episode.duration, lambda: self._end(active))

    def _end(self, active: _Active) -> None:
        if active.done:
            return
        active.done = True
        for teardown in active.teardowns:
            teardown()
        self._open.pop(active.idx, None)
        self.note(active.idx, f"heal {active.fault.describe()}")

    # -- global heal -------------------------------------------------------

    def heal(self) -> None:
        """Tear down every still-open episode immediately."""
        for idx in sorted(self._open):
            self._end(self._open[idx])

    @property
    def open_episodes(self) -> int:
        return len(self._open)
