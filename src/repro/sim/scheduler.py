"""The :class:`Simulation` object: clock, event loop, RNG, network, agents.

Every run is a deterministic function of its seed.  A simulation advances by
popping events off the heap; protocol progress, timers and message delivery
are all events.  Invariant checkers (see :mod:`repro.core.invariants`) can
be registered and run after every event, turning randomized runs into
property checks against the paper's proof obligations.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Hashable

from repro.sim.events import Event, EventQueue
from repro.sim.metrics import Metrics
from repro.sim.network import Network, NetworkConfig
from repro.sim.storage import StableStorage


class SimulationError(RuntimeError):
    """Raised when the simulation is driven past its configured limits."""


class Simulation:
    """A deterministic discrete-event simulation."""

    def __init__(
        self,
        seed: int = 0,
        network: NetworkConfig | None = None,
        max_events: int = 1_000_000,
    ) -> None:
        self.clock = 0.0
        self.rng = random.Random(seed)
        self.queue = EventQueue()
        self.metrics = Metrics()
        self.network = Network(self, network)
        self.processes: dict[Hashable, Any] = {}
        self.max_events = max_events
        self.events_processed = 0
        self._invariant_checks: list[Callable[["Simulation"], None]] = []

    # -- registration -----------------------------------------------------

    def add_process(self, process: Any) -> None:
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process

    def add_invariant_check(self, check: Callable[["Simulation"], None]) -> None:
        """Run *check(sim)* after every processed event (safety oracle)."""
        self._invariant_checks.append(check)

    # -- Runtime protocol (see repro.core.runtime) -------------------------

    def send(self, src: Hashable, dst: Hashable, msg: Any) -> None:
        """Transport entry point: delegate to the simulated network."""
        self.network.send(src, dst, msg)

    def make_storage(self, owner: str) -> StableStorage:
        """Fresh stable storage for one process (in-memory, crash-proof)."""
        return StableStorage(owner=owner)

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule *action* to run *delay* time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.push(self.clock + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule *action* at absolute virtual time *time*."""
        if time < self.clock:
            raise ValueError(f"cannot schedule in the past ({time} < {self.clock})")
        return self.queue.push(time, action)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self.clock:  # pragma: no cover - defensive
            raise SimulationError("event heap yielded an event in the past")
        self.clock = event.time
        self.events_processed += 1
        if self.events_processed > self.max_events:
            raise SimulationError(f"exceeded max_events={self.max_events}")
        event.action()
        for check in self._invariant_checks:
            check(self)
        return True

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or the clock passes *until*."""
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.clock = until
                return
            self.step()

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float | None = None,
    ) -> bool:
        """Run until *predicate()* holds.  Returns whether it ever held."""
        if predicate():
            return True
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                return predicate()
            if timeout is not None and next_time > timeout:
                self.clock = timeout
                return predicate()
            self.step()
            if predicate():
                return True

    # -- fault injection helpers -------------------------------------------

    def crash(self, pid: Hashable) -> None:
        self.processes[pid].crash()

    def recover(self, pid: Hashable) -> None:
        self.processes[pid].recover()

    def alive(self, pid: Hashable) -> bool:
        return self.processes[pid].alive
