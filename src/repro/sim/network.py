"""Point-to-point network model.

The network delivers each message after ``latency + U(0, jitter)`` time
units, where the uniform jitter term is drawn from the simulation's seeded
RNG.  With ``jitter == 0`` all messages sent at the same instant arrive in
send order at every destination -- the "spontaneous ordering" of clustered
systems in Section 4.5.  Non-zero jitter produces message inversions, the
precondition for fast-round collisions.

Messages can also be dropped (``drop_rate``), duplicated
(``duplicate_rate``), or blocked by explicit partitions.  Local delivery
(``src == dst``) is instantaneous-but-asynchronous: it costs zero latency
and is never dropped, modelling a process handing a message to itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.scheduler import Simulation

DropFilter = Callable[[Hashable, Hashable, Any], bool]


@dataclass
class NetworkConfig:
    """Tunable network behaviour.

    Attributes:
        latency: Base one-way delay of every link (one communication step).
        jitter: Upper bound of the uniform extra delay; 0 means messages
            between any pair of processes are spontaneously ordered.
        drop_rate: Probability that a message is silently lost, in
            ``[0, 1]``; 1.0 models a fully lossy network (every non-local
            message dropped, like a total partition).
        duplicate_rate: Probability that a message is delivered twice, in
            ``[0, 1]``; 1.0 duplicates every non-local message.
    """

    latency: float = 1.0
    jitter: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ValueError("latency must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError("drop_rate must be in [0, 1]")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")


class Network:
    """Delivers messages between registered processes via the event queue."""

    def __init__(self, sim: "Simulation", config: NetworkConfig | None = None) -> None:
        self._sim = sim
        self.config = config or NetworkConfig()
        self._blocked: set[tuple[Hashable, Hashable]] = set()
        self._drop_filters: list[DropFilter] = []

    # -- targeted loss (deterministic fault injection) --------------------

    def add_drop_filter(self, filter_fn: DropFilter) -> DropFilter:
        """Drop every non-local message for which *filter_fn* returns True.

        ``filter_fn(src, dst, msg)`` runs before the random loss model and
        consumes no RNG itself, so with random loss/jitter/duplication
        disabled a filter injects targeted, deterministic loss (e.g. "drop
        all I2b to learner 1") without perturbing the seeded schedule of
        everything else.  (With ``drop_rate``/``jitter``/``duplicate_rate``
        active, a filtered message skips the draws it would have consumed,
        so later random decisions shift.)  Returns the filter for removal.
        """
        self._drop_filters.append(filter_fn)
        return filter_fn

    def remove_drop_filter(self, filter_fn: DropFilter) -> None:
        """Stop applying *filter_fn* (no-op if already removed)."""
        if filter_fn in self._drop_filters:
            self._drop_filters.remove(filter_fn)

    # -- partitions ------------------------------------------------------

    def block(self, a: Hashable, b: Hashable) -> None:
        """Drop all future messages between *a* and *b* (both directions)."""
        self._blocked.add((a, b))
        self._blocked.add((b, a))

    def unblock(self, a: Hashable, b: Hashable) -> None:
        """Heal the link between *a* and *b*."""
        self._blocked.discard((a, b))
        self._blocked.discard((b, a))

    def partition(self, group_a: set, group_b: set) -> None:
        """Block every link crossing the two groups."""
        for a in group_a:
            for b in group_b:
                self.block(a, b)

    def heal(self) -> None:
        """Remove all partitions."""
        self._blocked.clear()

    def is_blocked(self, src: Hashable, dst: Hashable) -> bool:
        return (src, dst) in self._blocked

    # -- sending ---------------------------------------------------------

    def send(self, src: Hashable, dst: Hashable, msg: Any) -> None:
        """Send *msg* from *src* to *dst*, applying the network model."""
        metrics = self._sim.metrics
        metrics.on_send(src, dst, msg)
        if src == dst:
            # Self-delivery: immediate, reliable, still asynchronous.
            self._schedule_delivery(src, dst, msg, delay=0.0)
            return
        if self.is_blocked(src, dst):
            metrics.on_drop()
            return
        if any(filter_fn(src, dst, msg) for filter_fn in self._drop_filters):
            metrics.on_drop()
            return
        rng = self._sim.rng
        if self.config.drop_rate and rng.random() < self.config.drop_rate:
            metrics.on_drop()
            return
        copies = 1
        if self.config.duplicate_rate and rng.random() < self.config.duplicate_rate:
            copies = 2
        for _ in range(copies):
            delay = self.config.latency
            if self.config.jitter:
                delay += rng.uniform(0.0, self.config.jitter)
            self._schedule_delivery(src, dst, msg, delay)

    def _schedule_delivery(self, src: Hashable, dst: Hashable, msg: Any, delay: float) -> None:
        def deliver() -> None:
            process = self._sim.processes.get(dst)
            if process is None or not process.alive:
                self._sim.metrics.on_drop()
                return
            self._sim.metrics.on_deliver(dst, msg)
            process.deliver(msg, src)

        self._sim.schedule(delay, deliver)
