"""Point-to-point network model.

The network delivers each message after ``latency + U(0, jitter)`` time
units, where the uniform jitter term is drawn from the simulation's seeded
RNG.  With ``jitter == 0`` all messages sent at the same instant arrive in
send order at every destination -- the "spontaneous ordering" of clustered
systems in Section 4.5.  Non-zero jitter produces message inversions, the
precondition for fast-round collisions.

Messages can also be dropped (``drop_rate``), duplicated
(``duplicate_rate``), or blocked by explicit partitions.  Local delivery
(``src == dst``) is instantaneous-but-asynchronous: it costs zero latency
and is never dropped, modelling a process handing a message to itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.scheduler import Simulation

DropFilter = Callable[[Hashable, Hashable, Any], bool]
LatencyShaper = Callable[[Hashable, Hashable, float], float]


@dataclass
class NetworkConfig:
    """Tunable network behaviour.

    Attributes:
        latency: Base one-way delay of every link (one communication step).
        jitter: Upper bound of the uniform extra delay; 0 means messages
            between any pair of processes are spontaneously ordered.
        drop_rate: Probability that a message is silently lost, in
            ``[0, 1]``; 1.0 models a fully lossy network (every non-local
            message dropped, like a total partition).
        duplicate_rate: Probability that a message is delivered twice, in
            ``[0, 1]``; 1.0 duplicates every non-local message.
    """

    latency: float = 1.0
    jitter: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ValueError("latency must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError("drop_rate must be in [0, 1]")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")


class Network:
    """Delivers messages between registered processes via the event queue."""

    def __init__(self, sim: "Simulation", config: NetworkConfig | None = None) -> None:
        self._sim = sim
        self.config = config or NetworkConfig()
        self._blocked: set[tuple[Hashable, Hashable]] = set()
        self._drop_filters: dict[tuple[str, int], DropFilter] = {}
        self._latency_shapers: dict[tuple[str, int], LatencyShaper] = {}
        self._hook_seq = 0

    # -- targeted loss (deterministic fault injection) --------------------

    def add_drop_filter(self, filter_fn: DropFilter, label: str = "") -> DropFilter:
        """Drop every non-local message for which *filter_fn* returns True.

        ``filter_fn(src, dst, msg)`` runs before the random loss model and
        consumes no sim RNG itself, so with random loss/jitter/duplication
        disabled a filter injects targeted, deterministic loss (e.g. "drop
        all I2b to learner 1") without perturbing the seeded schedule of
        everything else.  (With ``drop_rate``/``jitter``/``duplicate_rate``
        active, a filtered message skips the draws it would have consumed,
        so later random decisions shift.)  Returns the filter for removal.

        Composition semantics (stacked filters): filters are keyed by
        ``(label, registration seq)`` and evaluated in sorted key order;
        **every** registered filter sees **every** non-local, non-blocked
        message -- there is no short-circuit on the first match.  A message
        is dropped iff at least one filter returned True.  This makes
        stacked *stateful* filters (counting, flapping, burst schedules)
        deterministic and independent of what other faults happen to be
        installed: each filter's internal state advances over the same
        message sequence whether it is registered first, last, or alone.
        """
        self._drop_filters[(label, self._hook_seq)] = filter_fn
        self._hook_seq += 1
        return filter_fn

    def remove_drop_filter(self, filter_fn: DropFilter) -> None:
        """Stop applying *filter_fn* (no-op if already removed)."""
        for key, registered in list(self._drop_filters.items()):
            if registered is filter_fn:
                del self._drop_filters[key]

    # -- latency shaping (skewed per-link distributions) -------------------

    def add_latency_shaper(self, shaper: LatencyShaper, label: str = "") -> LatencyShaper:
        """Rewrite per-message delay: ``shaper(src, dst, delay) -> delay``.

        Shapers run after the base ``latency + U(0, jitter)`` computation,
        in sorted ``(label, registration seq)`` order, each receiving the
        previous shaper's output; the result is clamped to ``>= 0``.  A
        shaper must not touch the simulation's RNG -- if it needs
        randomness (skewed per-link distributions) it carries its own
        seeded ``random.Random`` so the rest of the schedule is unmoved.
        Local delivery (``src == dst``) is never shaped.  Returns the
        shaper for removal.
        """
        self._latency_shapers[(label, self._hook_seq)] = shaper
        self._hook_seq += 1
        return shaper

    def remove_latency_shaper(self, shaper: LatencyShaper) -> None:
        """Stop applying *shaper* (no-op if already removed)."""
        for key, registered in list(self._latency_shapers.items()):
            if registered is shaper:
                del self._latency_shapers[key]

    # -- partitions ------------------------------------------------------

    def block(self, a: Hashable, b: Hashable) -> None:
        """Drop all future messages between *a* and *b* (both directions)."""
        self._blocked.add((a, b))
        self._blocked.add((b, a))

    def unblock(self, a: Hashable, b: Hashable) -> None:
        """Heal the link between *a* and *b*."""
        self._blocked.discard((a, b))
        self._blocked.discard((b, a))

    def partition(self, group_a: set, group_b: set) -> None:
        """Block every link crossing the two groups."""
        for a in group_a:
            for b in group_b:
                self.block(a, b)

    def heal(self) -> None:
        """Remove all partitions."""
        self._blocked.clear()

    def is_blocked(self, src: Hashable, dst: Hashable) -> bool:
        return (src, dst) in self._blocked

    # -- sending ---------------------------------------------------------

    def send(self, src: Hashable, dst: Hashable, msg: Any) -> None:
        """Send *msg* from *src* to *dst*, applying the network model."""
        metrics = self._sim.metrics
        metrics.on_send(src, dst, msg)
        if src == dst:
            # Self-delivery: immediate, reliable, still asynchronous.
            self._schedule_delivery(src, dst, msg, delay=0.0)
            return
        if self.is_blocked(src, dst):
            metrics.on_drop()
            return
        dropped = False
        for key in sorted(self._drop_filters):
            # No short-circuit: every filter observes every message so
            # stateful filters stay deterministic under stacking (see
            # add_drop_filter).
            if self._drop_filters[key](src, dst, msg):
                dropped = True
        if dropped:
            metrics.on_drop()
            return
        rng = self._sim.rng
        if self.config.drop_rate and rng.random() < self.config.drop_rate:
            metrics.on_drop()
            return
        copies = 1
        if self.config.duplicate_rate and rng.random() < self.config.duplicate_rate:
            copies = 2
        for _ in range(copies):
            delay = self.config.latency
            if self.config.jitter:
                delay += rng.uniform(0.0, self.config.jitter)
            for key in sorted(self._latency_shapers):
                delay = self._latency_shapers[key](src, dst, delay)
            self._schedule_delivery(src, dst, msg, max(0.0, delay))

    def _schedule_delivery(self, src: Hashable, dst: Hashable, msg: Any, delay: float) -> None:
        def deliver() -> None:
            process = self._sim.processes.get(dst)
            if process is None or not process.alive:
                self._sim.metrics.on_drop()
                return
            self._sim.metrics.on_deliver(dst, msg)
            process.deliver(msg, src)

        self._sim.schedule(delay, deliver)
