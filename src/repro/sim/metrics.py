"""Run metrics: message counts, load distribution, latency, disk writes.

Every experiment in the paper is a statement about one of these quantities:

* E1/E7 -- propose-to-learn latency in communication steps;
* E4 -- the fraction of commands processed by each coordinator/acceptor;
* E5/E6 -- disk writes (total and wasted);
* message complexity for all protocols.

The :class:`Metrics` object is owned by the :class:`repro.sim.scheduler.
Simulation` and updated by the network and by protocol agents.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Hashable


@dataclass
class LatencySample:
    """Propose-to-learn record for one command."""

    command: Hashable
    proposed_at: float
    learned_at: float | None = None

    @property
    def latency(self) -> float | None:
        if self.learned_at is None:
            return None
        return self.learned_at - self.proposed_at


@dataclass
class Metrics:
    """Aggregated counters for a simulation run."""

    messages_sent: Counter = field(default_factory=Counter)
    messages_by_type: Counter = field(default_factory=Counter)
    messages_received: Counter = field(default_factory=Counter)
    messages_dropped: int = 0
    commands_handled: Counter = field(default_factory=Counter)
    custom: Counter = field(default_factory=Counter)
    #: sharded routing: commands dispatched per engine group ("g0"...,
    #: "xs" for the cross-shard merge group).
    commands_by_group: Counter = field(default_factory=Counter)
    #: optional ``msg -> int`` hook (e.g. the codec's encoded length);
    #: when set, every send is also accounted in bytes per message type
    #: and per directed link.  The net transport bypasses the hook and
    #: reports real frame lengths via :meth:`count_bytes` directly.
    sizer: Any = None
    bytes_by_type: Counter = field(default_factory=Counter)
    bytes_by_link: Counter = field(default_factory=Counter)
    _latency: dict[Hashable, LatencySample] = field(default_factory=dict)
    _learn_times: dict[Hashable, dict[Any, float]] = field(
        default_factory=lambda: defaultdict(dict)
    )

    # -- message accounting (called by the network) ---------------------

    def on_send(self, src: Any, dst: Any, msg: Any) -> None:
        self.messages_sent[src] += 1
        self.messages_by_type[type(msg).__name__] += 1
        if self.sizer is not None:
            self.count_bytes(src, dst, msg, self.sizer(msg))

    def count_bytes(self, src: Any, dst: Any, msg: Any, size: int) -> None:
        """Account *size* wire bytes for *msg* on the ``src -> dst`` link."""
        self.bytes_by_type[type(msg).__name__] += size
        self.bytes_by_link[(src, dst)] += size

    def on_deliver(self, dst: Any, msg: Any) -> None:
        self.messages_received[dst] += 1

    def on_drop(self) -> None:
        self.messages_dropped += 1

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_type.values())

    # -- per-command latency --------------------------------------------

    def record_propose(self, command: Hashable, time: float) -> None:
        """Record the first proposal time of *command* (idempotent)."""
        if command not in self._latency:
            self._latency[command] = LatencySample(command, proposed_at=time)

    def record_learn(self, command: Hashable, learner: Any, time: float) -> None:
        """Record that *learner* learned *command* at *time*.

        The sample's ``learned_at`` keeps the *first* learn time across all
        learners, matching the paper's "value is learned" instant.
        """
        self._learn_times[command][learner] = min(
            self._learn_times[command].get(learner, time), time
        )
        sample = self._latency.get(command)
        if sample is not None and (sample.learned_at is None or time < sample.learned_at):
            sample.learned_at = time

    def latency_of(self, command: Hashable) -> float | None:
        sample = self._latency.get(command)
        return sample.latency if sample else None

    def learned_commands(self) -> list[Hashable]:
        """Commands learned by at least one learner, by first-learn time."""
        learned = [s for s in self._latency.values() if s.learned_at is not None]
        learned.sort(key=lambda s: s.learned_at)
        return [s.command for s in learned]

    def unlearned_commands(self) -> list[Hashable]:
        return [c for c, s in self._latency.items() if s.learned_at is None]

    def latencies(self) -> list[float]:
        """All completed propose-to-learn latencies."""
        values = (s.latency for s in self._latency.values())
        return [v for v in values if v is not None]

    def mean_latency(self) -> float | None:
        samples = self.latencies()
        if not samples:
            return None
        return sum(samples) / len(samples)

    def learn_time(self, command: Hashable) -> float | None:
        sample = self._latency.get(command)
        return sample.learned_at if sample else None

    # -- sharded routing -------------------------------------------------

    def record_group(self, label: str) -> None:
        """Record a command routed to engine group *label*."""
        self.commands_by_group[label] += 1

    # -- load balance (E4) ----------------------------------------------

    def count_command_handled(self, process: Any) -> None:
        """Record that *process* did per-command protocol work."""
        self.commands_handled[process] += 1

    def load_fraction(self, process: Any, total_commands: int) -> float:
        """Fraction of commands in which *process* took part."""
        if total_commands == 0:
            return 0.0
        return self.commands_handled[process] / total_commands
