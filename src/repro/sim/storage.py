"""Stable storage with write accounting and log compaction.

Section 4.4 of the paper argues about the cost of the protocols in *disk
writes*: acceptors must persist every accepted value, while coordinators
never need stable storage.  :class:`StableStorage` models a per-process
durable key/value store whose contents survive crashes, and counts every
write so benchmarks (experiment E6) can report exact disk-write totals.

Prefix-keyed journals
---------------------

Per-instance protocol records (acceptor votes, most prominently) are kept
as *journals*: a key prefix plus an integer index, written with
:meth:`StableStorage.append` and read back in index order with
:meth:`StableStorage.prefix_items`.  Journals are the unit of log
compaction: once a checkpoint makes every record below some instance
redundant, :meth:`StableStorage.truncate_below` drops the whole prefix
range in a single (batched) disk write and durably records the new
*floor*, so a recovering process can distinguish "truncated because
snapshotted" from "never written".  :meth:`StableStorage.clear` is scoped
per prefix for the same reason -- a recovery path that needs one journal
wiped must not clobber unrelated keys.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterator

#: Separator between a journal prefix and its integer index.
PREFIX_SEP = ":"


class StableStorage:
    """Durable per-process key/value store with a write counter.

    The store survives :meth:`repro.sim.process.Process.crash`; volatile
    process state does not.  Values are expected to be immutable (the
    protocol implementations only store tuples, frozen dataclasses and
    c-structs), so no defensive copying is performed.
    """

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._data: dict[str, Any] = {}
        self._floors: dict[str, int] = {}  # journal prefix -> truncation floor
        self.write_count = 0
        self.read_count = 0
        self.truncate_count = 0
        self.write_counts: Counter = Counter()  # per-key write accounting

    def write(self, key: str, value: Any) -> None:
        """Persist *value* under *key*, counting one disk write."""
        self._data[key] = value
        self.write_count += 1
        self.write_counts[key] += 1

    def write_many(self, items: dict[str, Any]) -> None:
        """Persist several keys with a *single* disk write.

        Models the common implementation trick of batching the fields of a
        protocol state record (vrnd, vval) into one synchronous write.
        """
        self._data.update(items)
        self.write_count += 1
        for key in items:
            self.write_counts[key] += 1

    def read(self, key: str, default: Any = None) -> Any:
        """Return the value stored under *key*, or *default*."""
        self.read_count += 1
        return self._data.get(key, default)

    # -- prefix-keyed journals (compaction unit) ---------------------------

    @staticmethod
    def journal_key(prefix: str, index: int) -> str:
        return f"{prefix}{PREFIX_SEP}{index}"

    @staticmethod
    def _journal_index(key: str, head: str) -> int | None:
        """The entry index if *key* is a journal entry of *head*, else None.

        The single accept/reject rule for journal membership, shared by
        every prefix operation so they cannot drift apart.
        """
        if not key.startswith(head):
            return None
        try:
            return int(key[len(head):])
        except ValueError:
            return None

    def _journal_entries(self, prefix: str) -> list[tuple[int, str]]:
        """Unsorted ``(index, key)`` pairs of the *prefix* journal."""
        head = prefix + PREFIX_SEP
        entries = []
        for key in self._data:
            index = self._journal_index(key, head)
            if index is not None:
                entries.append((index, key))
        return entries

    def append(self, prefix: str, index: int, value: Any) -> None:
        """Journal *value* as entry *index* of the *prefix* journal.

        One disk write, like :meth:`write`; the entry is addressable as
        ``f"{prefix}:{index}"`` and participates in prefix truncation.
        """
        self.write(self.journal_key(prefix, index), value)

    def append_many(self, prefix: str, start_index: int, values) -> None:
        """Journal *values* as consecutive entries from *start_index* on.

        A single disk write for the whole group (the journal analogue of
        :meth:`write_many` -- real implementations group-commit one
        segment append).  The generalized engine uses it to journal a
        batch-accept's fresh command delta without paying one synchronous
        write per command.
        """
        values = list(values)
        if not values:
            return
        self.write_many(
            {
                self.journal_key(prefix, start_index + offset): value
                for offset, value in enumerate(values)
            }
        )

    def prefix_items(self, prefix: str) -> list[tuple[int, Any]]:
        """All ``(index, value)`` journal entries of *prefix*, index order."""
        self.read_count += 1
        return [
            (index, self._data[key])
            for index, key in sorted(self._journal_entries(prefix))
        ]

    def prefix_count(self, prefix: str) -> int:
        """Number of retained journal entries under *prefix* (no I/O cost:
        an in-memory index in a real implementation)."""
        return len(self._journal_entries(prefix))

    def truncate_below(self, prefix: str, bound: int) -> int:
        """Drop every *prefix* journal entry with index < *bound*.

        The whole compaction -- deleting the range and durably recording
        the new floor -- costs a single disk write (real implementations
        rewrite one segment header or advance a start offset).  Returns
        the number of entries removed.  The floor is monotone: truncating
        below a lower bound than the current floor is a no-op.
        """
        if bound <= self._floors.get(prefix, 0):
            return 0
        doomed = [
            key for index, key in self._journal_entries(prefix) if index < bound
        ]
        for key in doomed:
            del self._data[key]
        self._floors[prefix] = bound
        self.write_count += 1
        self.truncate_count += 1
        return len(doomed)

    def floor(self, prefix: str) -> int:
        """The durably recorded truncation floor of the *prefix* journal.

        Entries below the floor were compacted away *after* being covered
        by a checkpoint -- a recovering process must treat them as
        snapshotted, not lost.  0 if the journal was never truncated.
        """
        return self._floors.get(prefix, 0)

    # -- housekeeping ------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def delete(self, key: str) -> None:
        """Remove *key* (one disk write); missing keys are a no-op."""
        if key in self._data:
            del self._data[key]
            self.write_count += 1

    def clear(self, prefix: str | None = None) -> None:
        """Erase stored state, scoped to one journal *prefix* if given.

        ``clear()`` erases everything (used by tests modelling total disk
        loss); ``clear(prefix)`` erases only that journal's entries and its
        truncation floor, leaving unrelated keys intact -- recovery paths
        that need one journal wiped must not clobber the rest.
        """
        if prefix is None:
            self._data.clear()
            self._floors.clear()
            return
        for _, key in self._journal_entries(prefix):
            del self._data[key]
        self._floors.pop(prefix, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StableStorage(owner={self.owner!r}, keys={sorted(self._data)}, "
            f"writes={self.write_count})"
        )
