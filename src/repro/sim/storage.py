"""Stable storage with write accounting.

Section 4.4 of the paper argues about the cost of the protocols in *disk
writes*: acceptors must persist every accepted value, while coordinators
never need stable storage.  :class:`StableStorage` models a per-process
durable key/value store whose contents survive crashes, and counts every
write so benchmarks (experiment E6) can report exact disk-write totals.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterator


class StableStorage:
    """Durable per-process key/value store with a write counter.

    The store survives :meth:`repro.sim.process.Process.crash`; volatile
    process state does not.  Values are expected to be immutable (the
    protocol implementations only store tuples, frozen dataclasses and
    c-structs), so no defensive copying is performed.
    """

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._data: dict[str, Any] = {}
        self.write_count = 0
        self.read_count = 0
        self.write_counts: Counter = Counter()  # per-key write accounting

    def write(self, key: str, value: Any) -> None:
        """Persist *value* under *key*, counting one disk write."""
        self._data[key] = value
        self.write_count += 1
        self.write_counts[key] += 1

    def write_many(self, items: dict[str, Any]) -> None:
        """Persist several keys with a *single* disk write.

        Models the common implementation trick of batching the fields of a
        protocol state record (vrnd, vval) into one synchronous write.
        """
        self._data.update(items)
        self.write_count += 1
        for key in items:
            self.write_counts[key] += 1

    def read(self, key: str, default: Any = None) -> Any:
        """Return the value stored under *key*, or *default*."""
        self.read_count += 1
        return self._data.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def clear(self) -> None:
        """Erase the store (used only by tests; real crashes keep data)."""
        self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StableStorage(owner={self.owner!r}, keys={sorted(self._data)}, "
            f"writes={self.write_count})"
        )
