"""Event heap for the discrete-event simulator.

Events are ordered by ``(time, sequence_number)``.  The sequence number is a
monotonically increasing tie-breaker, so two events scheduled for the same
virtual time fire in scheduling order.  This makes every simulation run a
deterministic function of its seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Virtual time at which the event fires.
        seq: Tie-breaking sequence number (scheduling order).
        action: Zero-argument callable run when the event fires.
        cancelled: Set via :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects keyed by virtual time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule *action* at virtual time *time* and return its event."""
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time}")
        event = Event(time=time, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the fire time of the earliest pending event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
