"""Event heap for the discrete-event simulator.

Events are ordered by ``(time, sequence_number)``.  The sequence number is a
monotonically increasing tie-breaker, so two events scheduled for the same
virtual time fire in scheduling order.  This makes every simulation run a
deterministic function of its seed.

Cancelled events stay in the heap until popped or compacted; the queue
keeps a live-event counter so ``len``/``bool`` are O(1), and rebuilds the
heap (dropping cancelled entries) whenever cancelled events outnumber live
ones, so long-running simulations with many cancelled timers stay compact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

# Heaps smaller than this are never compacted: rebuilding a handful of
# entries costs more than skipping them at pop time.
_COMPACT_MIN_SIZE = 64


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Virtual time at which the event fires.
        seq: Tie-breaking sequence number (scheduling order).
        action: Zero-argument callable run when the event fires.
        cancelled: Set via :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: "EventQueue | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._on_cancel(self)


class EventQueue:
    """A min-heap of :class:`Event` objects keyed by virtual time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0  # non-cancelled events currently in the heap

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule *action* at virtual time *time* and return its event."""
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time}")
        event = Event(time=time, seq=self._seq, action=action, _queue=self)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._queue = None
            if not event.cancelled:
                self._live -= 1
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the fire time of the earliest pending event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._queue = None
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop all pending events."""
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._live = 0

    # -- internal accounting ----------------------------------------------

    def _on_cancel(self, event: Event) -> None:
        """Called by :meth:`Event.cancel` for events still in the heap."""
        self._live -= 1
        if (
            len(self._heap) >= _COMPACT_MIN_SIZE
            and len(self._heap) > 2 * self._live
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries."""
        for entry in self._heap:
            if entry.cancelled:
                entry._queue = None
        self._heap = [entry for entry in self._heap if not entry.cancelled]
        heapq.heapify(self._heap)
