"""Backward-compatible re-export of the agent runtime base classes.

:class:`Process` and :class:`Timer` historically lived here, coupled to
the simulator.  The runtime seam now lives in :mod:`repro.core.runtime`
(so the same role classes run on the asyncio transport in
:mod:`repro.net` too); this module remains the import path used by the
simulator-facing code and tests.
"""

from __future__ import annotations

from repro.core.runtime import Process, Timer

__all__ = ["Process", "Timer"]
