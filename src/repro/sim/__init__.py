"""Discrete-event simulation substrate.

The paper's quantitative claims are stated in communication steps, message
counts and disk writes.  This package provides a deterministic, seeded
discrete-event simulator in which those quantities are exactly measurable:

* :mod:`repro.sim.events` -- the event heap and virtual clock primitives.
* :mod:`repro.sim.network` -- a point-to-point network with configurable
  latency, jitter, loss, duplication and partitions.
* :mod:`repro.sim.process` -- the agent runtime: message handlers, timers,
  crash and recovery.
* :mod:`repro.sim.storage` -- write-counted stable storage that survives
  crashes (the disk model of Section 4.4).
* :mod:`repro.sim.scheduler` -- the :class:`Simulation` object tying the
  pieces together.
* :mod:`repro.sim.metrics` -- counters for messages, disk writes and
  propose-to-learn latency.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.metrics import Metrics
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import Process, Timer
from repro.sim.scheduler import Simulation
from repro.sim.storage import StableStorage

__all__ = [
    "Event",
    "EventQueue",
    "Metrics",
    "Network",
    "NetworkConfig",
    "Process",
    "Simulation",
    "StableStorage",
    "Timer",
]
