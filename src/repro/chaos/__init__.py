"""Chaos: the declarative adversarial-scenario library.

Named scenario constructors over the :mod:`repro.sim.nemesis`
primitives.  Every constructor returns a :class:`~repro.sim.nemesis.Scenario`
-- pure data -- that a :class:`~repro.sim.nemesis.Nemesis` applies to
any deployment shape (instances engine, generalized engine, sharded).
"""

from repro.chaos.scenarios import (
    flaky_fabric,
    leader_outage,
    learner_blackout,
    mixed_soak,
    molasses,
    one_way_blackout,
    rolling_crashes,
    split_brain,
)
from repro.sim.nemesis import ClusterView, Episode, Nemesis, Scenario

__all__ = [
    "ClusterView",
    "Episode",
    "Nemesis",
    "Scenario",
    "flaky_fabric",
    "leader_outage",
    "learner_blackout",
    "mixed_soak",
    "molasses",
    "one_way_blackout",
    "rolling_crashes",
    "split_brain",
]
