"""Named adversarial scenarios and the randomized mixed-soak generator.

Each constructor returns a declarative :class:`Scenario`; nothing here
touches a simulation.  Scenarios that need concrete pids (partitions)
take a :class:`ClusterView`; scenarios targeting roles resolved at fault
time (the leader, a learner quorum, random crash victims) stay
view-agnostic and resolve when the nemesis begins the episode.

``mixed_soak`` is the E17 workhorse: a seeded generator drawing episode
types, start offsets and durations from one ``random.Random`` -- the
same ``(view, seed)`` always yields the identical fault schedule, so a
failing soak run reproduces from its logged seed alone (see
``docs/testing.md``).
"""

from __future__ import annotations

import random

from repro.sim.nemesis import (
    AsymmetricPartition,
    ClusterView,
    CrashStorm,
    Episode,
    FlappingLinks,
    IsolateLeader,
    IsolateLearnerQuorum,
    LatencySkew,
    Scenario,
    SymmetricPartition,
)


def _halves(pids: tuple) -> tuple[tuple, tuple]:
    pids = tuple(sorted(pids))
    mid = len(pids) // 2
    return pids[:mid], pids[mid:]


def split_brain(view: ClusterView, at: float = 1.0, duration: float = 30.0) -> Scenario:
    """Cut the cluster in two across every role; heal after *duration*."""
    side_a, side_b = _halves(view.all_pids)
    return Scenario(
        "split-brain",
        (Episode(at, duration, SymmetricPartition(side_a, side_b)),),
    )


def one_way_blackout(
    view: ClusterView, at: float = 1.0, duration: float = 30.0
) -> Scenario:
    """Acceptors' replies to learners die; the request direction lives.

    The nastiest asymmetric case for a learner: its catch-up requests
    arrive, every answer is lost.
    """
    return Scenario(
        "one-way-blackout",
        (Episode(at, duration, AsymmetricPartition(view.acceptors, view.learners)),),
    )


def leader_outage(at: float = 1.0, duration: float = 30.0) -> Scenario:
    """Isolate whoever leads when the episode begins."""
    return Scenario("leader-outage", (Episode(at, duration, IsolateLeader()),))


def learner_blackout(
    at: float = 1.0, duration: float = 30.0, count: int = 0
) -> Scenario:
    """Isolate a learner majority (or *count* learners) per cluster."""
    return Scenario(
        "learner-blackout", (Episode(at, duration, IsolateLearnerQuorum(count)),)
    )


def flaky_fabric(
    at: float = 1.0, duration: float = 40.0, picks: int = 3, mean_period: float = 4.0
) -> Scenario:
    """Random links flap up and down on a seeded schedule."""
    return Scenario(
        "flaky-fabric",
        (Episode(at, duration, FlappingLinks(picks=picks, mean_period=mean_period)),),
    )


def molasses(
    at: float = 1.0, duration: float = 40.0, picks: int = 2, factor: float = 4.0
) -> Scenario:
    """Skew latency on links touching random processes."""
    return Scenario(
        "molasses", (Episode(at, duration, LatencySkew(picks=picks, factor=factor)),)
    )


def rolling_crashes(
    at: float = 1.0, duration: float = 20.0, picks: int = 2, stagger: float = 0.5
) -> Scenario:
    """A staggered crash storm; victims recover on heal."""
    return Scenario(
        "rolling-crashes",
        (Episode(at, duration, CrashStorm(picks=picks, stagger=stagger)),),
    )


# ---------------------------------------------------------------------------
# Randomized mixed soak
# ---------------------------------------------------------------------------


def _palette(view: ClusterView):
    """Episode builders for the mixed soak; each maps an rng to a Fault."""
    acc_a, acc_b = _halves(view.acceptors)
    all_a, all_b = _halves(view.all_pids)
    return (
        lambda rng: AsymmetricPartition(acc_a or view.acceptors, view.learners),
        lambda rng: AsymmetricPartition(view.coordinators, acc_b or view.acceptors),
        lambda rng: SymmetricPartition(all_a, all_b),
        lambda rng: IsolateLeader(),
        lambda rng: IsolateLearnerQuorum(),
        lambda rng: FlappingLinks(picks=rng.randint(1, 3)),
        lambda rng: LatencySkew(picks=rng.randint(1, 2), factor=rng.uniform(2.0, 5.0)),
        lambda rng: CrashStorm(picks=rng.randint(1, 2)),
    )


def mixed_soak(
    view: ClusterView,
    seed: int,
    episodes: int = 20,
    mean_gap: float = 6.0,
    mean_duration: float = 8.0,
) -> Scenario:
    """A randomized schedule of *episodes* mixed faults, then full heal.

    Episode types, offsets (gap ``U(0.3, 1.7) * mean_gap`` between
    starts) and durations (``U(0.5, 1.5) * mean_duration``) are all
    drawn from ``random.Random(f"mixed|{seed}")``: the scenario is a
    pure function of ``(view, seed)``.  Every episode is finite, so the
    scenario's :meth:`~repro.sim.nemesis.Scenario.horizon` bounds when
    the network is whole again and liveness must resume.
    """
    rng = random.Random(f"mixed|{seed}")
    palette = _palette(view)
    out: list[Episode] = []
    t = rng.uniform(0.3, 1.7) * mean_gap
    for _ in range(episodes):
        fault = palette[rng.randrange(len(palette))](rng)
        duration = rng.uniform(0.5, 1.5) * mean_duration
        out.append(Episode(at=t, duration=duration, fault=fault))
        t += rng.uniform(0.3, 1.7) * mean_gap
    return Scenario(f"mixed-{seed}", tuple(out))
