"""Multicoordinated Paxos: a faithful Python reproduction.

Reproduces *Multicoordinated Paxos* (Camargos, Schmidt & Pedone, University
of Lugano TR 2007/02 / PODC 2007), including the whole algorithm hierarchy
it builds on: Classic Paxos, Fast Paxos, Generalized Paxos, the c-struct
framework of Generalized Consensus, and a Generic Broadcast service with
replicated state machines -- all running on a deterministic discrete-event
simulator with crash-recovery, message loss and write-counted stable
storage.

Quickstart::

    from repro import Simulation, build_consensus
    from repro.cstruct import Command

    sim = Simulation(seed=1)
    cluster = build_consensus(sim, n_coordinators=3, n_acceptors=3)
    rnd = cluster.config.schedule.make_round(coord=0, count=1, rtype=2)
    cluster.start_round(rnd)                 # a multicoordinated round
    cluster.propose(Command("1", "put", "x", 1), delay=5.0)
    cluster.run_until_decided()
    print(cluster.decision())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim vs measured record of every experiment.
"""

from repro.core.broadcast import GenericBroadcast
from repro.core.generalized import GeneralizedCluster, build_generalized
from repro.core.liveness import LivenessConfig
from repro.core.multicoordinated import ConsensusCluster, build_consensus
from repro.core.quorums import QuorumSystem
from repro.core.rounds import ZERO, RoundId, RoundKind, RoundSchedule, RoundTypePolicy
from repro.cstruct import (
    AlwaysConflict,
    Command,
    CommandHistory,
    CommandSequence,
    CommandSet,
    KeyConflict,
    NeverConflict,
    ValueStruct,
)
from repro.protocols import build_classic_paxos, build_fast_paxos, build_generalized_paxos
from repro.sim import NetworkConfig, Simulation

__version__ = "1.0.0"

__all__ = [
    "ZERO",
    "AlwaysConflict",
    "Command",
    "CommandHistory",
    "CommandSequence",
    "CommandSet",
    "ConsensusCluster",
    "GeneralizedCluster",
    "GenericBroadcast",
    "KeyConflict",
    "LivenessConfig",
    "NetworkConfig",
    "NeverConflict",
    "QuorumSystem",
    "RoundId",
    "RoundKind",
    "RoundSchedule",
    "RoundTypePolicy",
    "Simulation",
    "ValueStruct",
    "build_classic_paxos",
    "build_consensus",
    "build_fast_paxos",
    "build_generalized",
    "build_generalized_paxos",
]
