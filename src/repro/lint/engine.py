"""protolint rule engine: module loading, suppressions, rule registry.

The analyzer is a thin driver over four protocol-aware rules (see the
sibling modules).  Everything is stdlib ``ast``: a :class:`Module` is one
parsed source file plus the per-line suppression table; a rule is a
callable taking the whole module list (rules like the message-taxonomy
check are inherently cross-module) and returning :class:`Finding`s.

Suppressions
------------

Two mechanisms, mirroring what the rules check:

* ``# protolint: ignore[rule]`` (comma-separated rule names, or bare
  ``ignore`` for all rules) on the flagged line or on a comment line
  directly above it silences findings anchored to that line;
* a class-level ``VOLATILE = {"attr", ...}`` declaration is consumed by
  the durability rule: the listed handler-mutated attributes are
  *deliberately* lost on crash (statistics counters, caches rebuilt by
  the retransmission layer, ...) and need neither journaling nor
  restoration.  It is a declaration, not an escape hatch -- the set is
  part of the class's documented crash-recovery contract.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

_SUPPRESS_RE = re.compile(r"#\s*protolint:\s*ignore(?:\[([a-z\-,\s]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Module:
    """A parsed source file plus its suppression table."""

    path: Path
    tree: ast.Module
    source: str
    # line number -> set of suppressed rule names ("*" = every rule)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Module":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            tree=tree,
            source=source,
            suppressions=_parse_suppressions(source),
        )

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether *rule* is silenced on *line* (or the line above it)."""
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules and ("*" in rules or rule in rules):
                # An ignore on the preceding line only reaches down from a
                # comment-only line -- a trailing ignore on a *code* line
                # suppresses that line alone.
                if candidate == line or self._comment_only(candidate):
                    return True
        return False

    def _comment_only(self, line: int) -> bool:
        if line < 1:
            return False
        lines = self.source.splitlines()
        if line > len(lines):
            return False
        return lines[line - 1].lstrip().startswith("#")


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    table: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        raw = match.group(1)
        if raw is None or not raw.strip():
            table[lineno] = {"*"}
        else:
            table[lineno] = {name.strip() for name in raw.split(",") if name.strip()}
    return table


@dataclass
class Context:
    """Cross-rule configuration shared by one analyzer run."""

    #: Path to the message-taxonomy document (``docs/messages.md``); None
    #: disables the doc-coverage direction of the taxonomy rule.
    docs_path: Path | None = None


Rule = Callable[[Sequence[Module], Context], list[Finding]]

#: name -> (rule callable, one-line description).  Populated by
#: :func:`register`; the import in ``__init__`` brings the rule modules in.
RULES: dict[str, tuple[Rule, str]] = {}


def register(name: str, description: str) -> Callable[[Rule], Rule]:
    def wrap(rule: Rule) -> Rule:
        RULES[name] = (rule, description)
        return rule

    return wrap


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Python files under *paths* (files are taken as-is), sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(files)


def discover_docs(paths: Iterable[Path]) -> Path | None:
    """Find ``docs/messages.md`` walking up from the first scanned path."""
    for path in paths:
        probe = path.resolve()
        if probe.is_file():
            probe = probe.parent
        while True:
            candidate = probe / "docs" / "messages.md"
            if candidate.is_file():
                return candidate
            if probe.parent == probe:
                break
            probe = probe.parent
    return None


def run_lint(
    paths: Sequence[Path | str],
    rules: Sequence[str] | None = None,
    docs: Path | str | None = None,
    auto_docs: bool = True,
) -> list[Finding]:
    """Run the analyzer; returns surviving (unsuppressed) findings.

    Args:
        paths: Files and/or directories to scan.
        rules: Rule names to run (default: all registered rules).
        docs: Path to the taxonomy document; auto-discovered from the
            scanned paths when omitted (unless *auto_docs* is False, which
            disables the doc-coverage checks entirely).
    """
    resolved = [Path(p) for p in paths]
    modules = [Module.load(f) for f in collect_files(resolved)]
    if docs is not None:
        docs_path = Path(docs)
    elif auto_docs:
        docs_path = discover_docs(resolved)
    else:
        docs_path = None
    context = Context(docs_path=docs_path)
    selected = list(RULES) if rules is None else list(rules)
    unknown = [name for name in selected if name not in RULES]
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
    by_path = {str(m.path): m for m in modules}
    findings: set[Finding] = set()
    for name in selected:
        rule, _ = RULES[name]
        for finding in rule(modules, context):
            module = by_path.get(finding.path)
            if module is not None and module.suppressed(finding.rule, finding.line):
                continue
            findings.add(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


# -- shared AST helpers (used by several rules) -------------------------------


def is_self_attr(node: ast.AST) -> str | None:
    """The attribute name if *node* is ``self.<name>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def self_attrs_in(node: ast.AST) -> set[str]:
    """Every ``self.<name>`` attribute referenced anywhere under *node*."""
    found: set[str] = set()
    for sub in ast.walk(node):
        name = is_self_attr(sub)
        if name is not None:
            found.add(name)
    return found


def decorator_is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    """True for ``@dataclass(frozen=True)`` (with or without module prefix)."""
    for dec in cls.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        func = dec.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "dataclass":
            continue
        for kw in dec.keywords:
            if (
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def is_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name == "dataclass":
            return True
    return False
