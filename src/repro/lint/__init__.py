"""protolint: protocol-aware static analysis for this repository.

Four rules, all driven off stdlib ``ast``:

* ``durability``   -- handler-mutated state in recoverable processes is
  journaled, restored on recovery, or declared ``VOLATILE``;
* ``determinism``  -- no unseeded randomness, wall-clock reads, ``id()``
  ordering, or unordered iteration feeding ordered sinks;
* ``taxonomy``     -- message classes, handlers, and ``docs/messages.md``
  agree in both directions;
* ``config``       -- ``*Config`` dataclasses validate numeric fields in
  ``__post_init__``.

Run via ``repro-lint`` (console script) or ``python -m repro.lint``;
programmatic entry point is :func:`run_lint`.  See ``docs/lint.md`` for
the rule catalog and suppression syntax.
"""

from repro.lint.engine import Finding, Module, RULES, run_lint

# Importing the rule modules populates the RULES registry.
from repro.lint import configs as _configs  # noqa: F401
from repro.lint import determinism as _determinism  # noqa: F401
from repro.lint import durability as _durability  # noqa: F401
from repro.lint import taxonomy as _taxonomy  # noqa: F401

__all__ = ["Finding", "Module", "RULES", "run_lint"]
