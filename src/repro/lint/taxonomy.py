"""Rule ``taxonomy``: the message vocabulary, the handlers and the docs agree.

``Process.deliver`` dispatches a message to ``on_<classname.lower()>``;
``docs/messages.md`` is the human-facing registry of that vocabulary.
Three artifacts -- frozen-dataclass message definitions, handler methods,
doc table entries -- drift independently unless something ties them
together.  This rule does:

* a frozen dataclass is recognized as a **message** when some
  ``Process`` subclass defines a matching ``on_<lowername>(self, msg,
  src)`` handler, or when an instance of it is passed to
  ``send``/``broadcast``;
* every message must have **>= 1 handler** (a sent-but-unhandled message
  hits ``on_unhandled`` and raises at runtime -- catch it at lint time);
* every message must be **constructed somewhere** (a handler for a
  message nothing ever sends is dead vocabulary);
* every message must have a row in the **taxonomy document**, and every
  documented name must still exist as a message in the code.

Value types that are frozen dataclasses but not messages (``Batch``,
``RoundId``, conflict relations, ...) are ignored automatically: nothing
handles or sends them directly.
"""

from __future__ import annotations

import ast
import re
from typing import Sequence

from repro.lint.engine import (
    Context,
    Finding,
    Module,
    decorator_is_frozen_dataclass,
    register,
)

_DOC_ROW_RE = re.compile(r"^\s*\|\s*`([A-Za-z_][A-Za-z0-9_]*)`")


def _process_subclasses(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes whose (direct) bases mention Process -- dispatch targets."""
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None
            )
            if name is not None and "Process" in name:
                out.append(node)
                break
    return out


def _documented_names(context: Context) -> set[str] | None:
    if context.docs_path is None or not context.docs_path.is_file():
        return None
    documented: set[str] = set()
    for line in context.docs_path.read_text().splitlines():
        match = _DOC_ROW_RE.match(line)
        if match and match.group(1) not in ("message",):
            documented.add(match.group(1))
    return documented


class MessageInventory:
    """Everything the rule learned about the message vocabulary.

    Built by :func:`collect_inventory`; also the machine-readable message
    registry other tooling keys off (the codec round-trip test suite
    enumerates ``messages`` so a new message class without wire support
    fails CI).
    """

    def __init__(self, modules: Sequence[Module]) -> None:
        self.frozen: dict[str, tuple[Module, ast.ClassDef]] = {}
        self.handlers: dict[str, list[tuple[Module, ast.FunctionDef]]] = {}
        self.constructed: set[str] = set()
        self.sent_names: set[str] = set()

        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and decorator_is_frozen_dataclass(
                    node
                ):
                    self.frozen[node.name] = (module, node)
            for cls in _process_subclasses(module.tree):
                for func in cls.body:
                    if (
                        isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and func.name.startswith("on_")
                        and func.name not in ("on_crash", "on_recover", "on_unhandled")
                        and len(func.args.args) == 3
                    ):
                        self.handlers.setdefault(func.name[3:], []).append(
                            (module, func)
                        )

        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Name) and node.func.id in self.frozen:
                    self.constructed.add(node.func.id)
                func = node.func
                is_send = isinstance(func, ast.Attribute) and func.attr in (
                    "send",
                    "broadcast",
                )
                if is_send:
                    for arg in node.args:
                        for sub in ast.walk(arg):
                            if (
                                isinstance(sub, ast.Call)
                                and isinstance(sub.func, ast.Name)
                                and sub.func.id in self.frozen
                            ):
                                self.sent_names.add(sub.func.id)

    @property
    def messages(self) -> set[str]:
        """message = frozen dataclass that is handled or directly sent."""
        return {
            name
            for name in self.frozen
            if name.lower() in self.handlers or name in self.sent_names
        }


def message_names(modules: Sequence[Module]) -> set[str]:
    """The taxonomy rule's notion of the message vocabulary of *modules*."""
    return MessageInventory(modules).messages


@register(
    "taxonomy",
    "every message has a handler, an emission site, and a docs/messages.md "
    "row (and vice versa)",
)
def check_taxonomy(modules: Sequence[Module], context: Context) -> list[Finding]:
    inventory = MessageInventory(modules)
    frozen = inventory.frozen
    handlers = inventory.handlers
    constructed = inventory.constructed
    messages = inventory.messages

    findings: list[Finding] = []
    for name in sorted(messages):
        module, cls = frozen[name]
        path = str(module.path)
        if module.suppressed("taxonomy", cls.lineno):
            # class-level suppression: exempt from every direction
            continue
        if name.lower() not in handlers:
            findings.append(
                Finding(
                    rule="taxonomy",
                    path=path,
                    line=cls.lineno,
                    message=(
                        f"message {name} is sent but no Process subclass "
                        f"defines on_{name.lower()}; delivery would raise "
                        f"on_unhandled"
                    ),
                )
            )
        if name not in constructed:
            findings.append(
                Finding(
                    rule="taxonomy",
                    path=path,
                    line=cls.lineno,
                    message=(
                        f"message {name} has a handler but is never "
                        f"constructed; dead vocabulary"
                    ),
                )
            )

    # stale handlers: on_<x> in a Process subclass with no message class
    lower_to_name = {name.lower(): name for name in frozen}
    for lowname, sites in sorted(handlers.items()):
        if lowname in lower_to_name:
            continue
        for module, func in sites:
            findings.append(
                Finding(
                    rule="taxonomy",
                    path=str(module.path),
                    line=func.lineno,
                    message=(
                        f"handler on_{lowname} matches no frozen-dataclass "
                        f"message class; stale handler or missing message"
                    ),
                )
            )

    documented = _documented_names(context)
    if documented is not None:
        for name in sorted(messages):
            module, cls = frozen[name]
            if module.suppressed("taxonomy", cls.lineno):
                continue
            if name not in documented:
                findings.append(
                    Finding(
                        rule="taxonomy",
                        path=str(module.path),
                        line=cls.lineno,
                        message=(
                            f"message {name} has no row in "
                            f"{context.docs_path.name}; document its "
                            f"sender/receiver/purpose and enabling config"
                        ),
                    )
                )
        for name in sorted(documented - messages):
            findings.append(
                Finding(
                    rule="taxonomy",
                    path=str(context.docs_path),
                    line=1,
                    message=(
                        f"documented message {name} does not exist as a "
                        f"handled/sent frozen-dataclass message; stale "
                        f"doc entry"
                    ),
                )
            )
    return findings
