"""``python -m repro.lint`` -- same interface as the ``repro-lint`` script."""

from repro.lint.cli import main

raise SystemExit(main())
