"""Rule ``durability``: handler-mutated state must survive recovery.

The crash-recovery model (Section 2.1.1, ``repro.sim.process``) makes a
process's volatile state vanish on crash; :meth:`on_recover` rebuilds it
from :class:`~repro.sim.storage.StableStorage`.  The PR 2 bug class this
rule re-detects statically: a message handler mutates an instance
attribute, nothing journals it, ``on_recover`` never restores it -- the
state silently evaporates at the first crash and the protocol limps on
with amnesia (``SMRCoordinator._observed`` lost its §4.3 progress
tracking exactly this way).

For every class that defines ``on_recover``, every instance attribute
mutated inside a message or timer handler must be at least one of:

* **journaled** -- referenced in the arguments of a
  ``self.storage.write/write_many/append/append_many`` call somewhere in
  the class (the write is what makes a later restore possible);
* **restored** -- assigned or mutated in ``on_recover`` or a method it
  (transitively) calls;
* **declared volatile** -- listed in a class-level ``VOLATILE = {...}``
  set: deliberately crash-lossy state (statistics counters, buffers
  re-filled by retransmission, failure-detector caches).

Handlers are the dispatch targets of ``Process.deliver`` -- methods named
``on_*`` taking ``(self, msg, src)`` -- plus every method referenced as a
callback (timer actions, failure-detector hooks), plus everything those
methods transitively call.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.lint.engine import Context, Finding, Module, is_self_attr, register

#: ``self.storage`` methods that persist state.
_STORAGE_WRITERS = {"write", "write_many", "append", "append_many"}

#: Method names whose call on ``self.<attr>`` counts as mutating the attr.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "difference_update",
    "discard",
    "extend",
    "insert",
    "intersection_update",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "setdefault",
    "symmetric_difference_update",
    "update",
}

#: Base-class infrastructure attributes outside the protocol state model.
_INFRA_ATTRS = {"storage", "sim", "pid", "alive", "crash_count", "_timers"}


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _volatile_names(cls: ast.ClassDef) -> set[str]:
    """The class-level ``VOLATILE = {...}`` declaration, if any."""
    for node in cls.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == "VOLATILE" for t in targets):
            continue
        if isinstance(value, ast.Call):  # frozenset({...})
            if value.args:
                value = value.args[0]
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            return {
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
    return set()


def _called_methods(func: ast.FunctionDef) -> set[str]:
    """Names of ``self.<m>(...)`` calls anywhere under *func* (incl. lambdas)."""
    called: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = is_self_attr(node.func)
            if name is not None:
                called.add(name)
    return called


def _referenced_methods(cls: ast.ClassDef, methods: dict[str, ast.FunctionDef]) -> set[str]:
    """Methods referenced as bare ``self.<m>`` (callback registrations)."""
    refs: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                name = is_self_attr(arg)
                if name is not None and name in methods:
                    refs.add(name)
    return refs


def _closure(
    roots: set[str], methods: dict[str, ast.FunctionDef]
) -> set[str]:
    """Transitive closure of *roots* under direct ``self.<m>()`` calls."""
    seen: set[str] = set()
    frontier = [name for name in roots if name in methods]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        for callee in _called_methods(methods[name]):
            if callee in methods and callee not in seen:
                frontier.append(callee)
    return seen


def _mutated_attrs(func: ast.FunctionDef) -> dict[str, int]:
    """``self.<attr>`` mutations in *func*: attr -> first line."""
    mutated: dict[str, int] = {}

    def record(name: str | None, line: int) -> None:
        if name is not None and name not in mutated:
            mutated[name] = line

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(_store_target(target), node.lineno)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            record(_store_target(node.target), node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                record(_store_target(target), node.lineno)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                record(is_self_attr(node.func.value), node.lineno)
    return mutated


def _store_target(target: ast.expr) -> str | None:
    """The self-attribute a store/delete target reaches, if any.

    Handles ``self.x``, ``self.x[k]`` and tuple targets are unpacked by
    the caller via ast.walk (Assign targets may be Tuple -- walk finds the
    inner nodes, so only direct shapes are handled here).
    """
    if isinstance(target, ast.Attribute):
        return is_self_attr(target)
    if isinstance(target, ast.Subscript):
        return _store_target(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            name = _store_target(elt)
            if name is not None:
                return name
    return None


def _journaled_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes referenced in the arguments of storage-writing calls."""
    journaled: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _STORAGE_WRITERS):
            continue
        receiver = func.value
        if is_self_attr(receiver) != "storage":
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                name = is_self_attr(sub)
                if name is not None:
                    journaled.add(name)
    return journaled


def _handler_roots(methods: dict[str, ast.FunctionDef], cls: ast.ClassDef) -> set[str]:
    roots: set[str] = set()
    for name, func in methods.items():
        if (
            name.startswith("on_")
            and name not in ("on_crash", "on_recover", "on_unhandled")
            and len(func.args.args) == 3
        ):
            roots.add(name)
    roots |= {
        name
        for name in _referenced_methods(cls, methods)
        if name not in ("on_crash", "on_recover")
    }
    return roots


@register(
    "durability",
    "handler-mutated state must be journaled, restored in on_recover, "
    "or declared VOLATILE",
)
def check_durability(modules: Sequence[Module], context: Context) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = _methods(cls)
            if "on_recover" not in methods:
                continue
            volatile = _volatile_names(cls)
            roots = _handler_roots(methods, cls)
            handler_methods = _closure(roots, methods)
            restored_methods = _closure({"on_recover"}, methods)
            restored: set[str] = set()
            for name in restored_methods:
                restored |= set(_mutated_attrs(methods[name]))
            journaled = _journaled_attrs(cls)
            for name in sorted(handler_methods):
                for attr, line in sorted(_mutated_attrs(methods[name]).items()):
                    if attr in _INFRA_ATTRS or attr in volatile:
                        continue
                    if attr in restored or attr in journaled:
                        continue
                    findings.append(
                        Finding(
                            rule="durability",
                            path=str(module.path),
                            line=line,
                            message=(
                                f"{cls.name}.{attr} is mutated in handler "
                                f"'{name}' but is neither journaled to "
                                f"stable storage, restored in on_recover, "
                                f"nor declared in VOLATILE"
                            ),
                        )
                    )
    # One finding per (class, attr): a second mutation site adds noise,
    # not information.  Keep the earliest line.
    unique: dict[tuple[str, str], Finding] = {}
    for finding in findings:
        key = (finding.path, finding.message.split(" is mutated", 1)[0])
        kept = unique.get(key)
        if kept is None or finding.line < kept.line:
            unique[key] = finding
    return list(unique.values())
