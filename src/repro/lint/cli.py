"""``repro-lint`` command line interface.

Usage::

    repro-lint src/repro                 # full scan, auto-found docs
    repro-lint --rule durability src/    # one rule
    repro-lint --docs docs/messages.md tests/lint_fixtures/violations
    repro-lint --list-rules

Exit status: 0 when no findings survive suppression, 1 otherwise (2 for
usage errors), so the command doubles as a CI gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint import RULES, run_lint


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Protocol-aware static analysis: durability of handler state, "
            "determinism of protocol paths, message-taxonomy/doc "
            "agreement, config validation."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (default: src/repro if present)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--docs",
        type=Path,
        default=None,
        help="taxonomy document (default: docs/messages.md found by "
        "walking up from the scanned paths)",
    )
    parser.add_argument(
        "--no-docs",
        action="store_true",
        help="skip the doc-coverage direction of the taxonomy rule",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(name) for name in RULES)
        for name, (_, description) in sorted(RULES.items()):
            print(f"{name:<{width}}  {description}")
        return 0

    paths = args.paths
    if not paths:
        default = Path("src/repro")
        if not default.is_dir():
            parser.error("no paths given and ./src/repro does not exist")
        paths = [default]

    if args.no_docs and args.docs is not None:
        parser.error("--docs and --no-docs are mutually exclusive")

    try:
        findings = run_lint(
            paths,
            rules=args.rules,
            docs=args.docs,
            auto_docs=not args.no_docs,
        )
    except (ValueError, FileNotFoundError, SyntaxError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.render())
    if findings:
        count = len(findings)
        print(
            f"repro-lint: {count} finding{'s' if count != 1 else ''}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
