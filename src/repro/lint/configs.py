"""Rule ``config``: numeric config knobs are validated at construction.

Every tuning dataclass in this repository is named ``*Config``, and every
numeric knob has a constraint that, violated, produces not an error but a
*silently wrong experiment*: a zero flush interval schedules a busy loop,
a negative drop rate never drops, a pipeline depth of 0 deadlocks the
proposer.  The convention (established by ``BatchingConfig``,
``NetworkConfig``, ``CheckpointConfig``, ...) is to range-check each
numeric field in ``__post_init__`` and raise ``ValueError``.

This rule enforces the convention structurally: a ``*Config`` dataclass
with int/float fields must define ``__post_init__``, and each numeric
field must be referenced there (the reference is the range check; the
rule does not second-guess the bounds).  A field whose full int range is
genuinely valid (an RNG seed, say) carries
``# protolint: ignore[config]`` on its line.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.lint.engine import (
    Context,
    Finding,
    Module,
    is_dataclass,
    register,
    self_attrs_in,
)


def _numeric_fields(cls: ast.ClassDef) -> list[tuple[str, int]]:
    """(name, line) of int/float annotated dataclass fields."""
    fields: list[tuple[str, int]] = []
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign) or not isinstance(node.target, ast.Name):
            continue
        text = ast.unparse(node.annotation)
        head = text.split("[", 1)[0]
        tokens = {part.strip() for part in text.replace("|", " ").split()}
        if "bool" in tokens or head in ("Callable", "ClassVar"):
            continue
        if tokens & {"int", "float"}:
            fields.append((node.target.id, node.lineno))
    return fields


@register(
    "config",
    "*Config dataclasses range-check every numeric field in __post_init__",
)
def check_configs(modules: Sequence[Module], context: Context) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        for cls in ast.walk(module.tree):
            if not (
                isinstance(cls, ast.ClassDef)
                and cls.name.endswith("Config")
                and is_dataclass(cls)
            ):
                continue
            fields = _numeric_fields(cls)
            if not fields:
                continue
            post_init = next(
                (
                    node
                    for node in cls.body
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == "__post_init__"
                ),
                None,
            )
            if post_init is None:
                findings.append(
                    Finding(
                        rule="config",
                        path=str(module.path),
                        line=cls.lineno,
                        message=(
                            f"{cls.name} has numeric fields "
                            f"({', '.join(name for name, _ in fields)}) but "
                            f"no __post_init__ validation"
                        ),
                    )
                )
                continue
            checked = self_attrs_in(post_init)
            for name, line in fields:
                if name in checked:
                    continue
                findings.append(
                    Finding(
                        rule="config",
                        path=str(module.path),
                        line=line,
                        message=(
                            f"{cls.name}.{name} is numeric but never "
                            f"referenced in __post_init__; add a range "
                            f"check (or ignore[config] if every value is "
                            f"valid)"
                        ),
                    )
                )
    return findings
