"""Rule ``determinism``: no nondeterminism on protocol-visible paths.

The whole test strategy of this repository -- seeded simulation, replayable
schedules, cross-engine parity oracles -- rests on runs being functions of
their seed.  Four hazard classes break that silently:

* **unseeded randomness** -- module-level ``random.random()`` etc. draw
  from interpreter-global state; every such call makes benchmark numbers
  unreproducible run-to-run.  ``random.Random(seed)`` instances are the
  sanctioned source.
* **wall-clock reads** -- ``time.time()`` and friends leak host time into
  virtual-time simulations.
* **``id()``-based ordering** -- CPython addresses vary per run; using
  them as sort keys turns iteration order into a coin flip.
* **unordered iteration feeding ordered sinks** -- iterating a ``set``
  (or ``dict.values()``) and appending/sending inside the loop bakes hash
  order into message emission or an order-sensitive accumulator.  Sets
  of strings/tuples hash differently across processes (PYTHONHASHSEED),
  so two replicas walking "the same" set can emit in different orders.
  Order-insensitive folds (``|=``, ``sum``, ``max``, membership tests)
  are fine and not flagged.

Scope note: ``dict`` key iteration is insertion-ordered in the language
spec and is not flagged; ``.values()`` iteration is flagged only when the
loop body feeds an ordered sink, because insertion order is usually
*arrival* order -- exactly what a canonical replica state must not depend
on.  Guarded singleton extractions (``next(iter(s))`` after a
``len(s) == 1`` check) are legitimate: suppress them with
``# protolint: ignore[determinism]`` and a justifying comment.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.lint.engine import Context, Finding, Module, is_self_attr, register

_RANDOM_MODULE_FNS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

#: Loop-body calls that make iteration order observable.
_ORDER_SINKS = {"append", "appendleft", "extend", "send", "broadcast"}


def _qualified(func: ast.expr) -> tuple[str, str] | None:
    """``mod.attr`` call target as a pair, for simple attribute calls."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute)
        and isinstance(func.value.value, ast.Name)
    ):
        # datetime.datetime.now -> ("datetime", "now")
        return (func.value.attr, func.attr)
    return None


class _SetTypes(ast.NodeVisitor):
    """Collects names/attributes that are (syntactically) set-valued."""

    def __init__(self) -> None:
        self.names: set[str] = set()  # bare local/param names
        self.attrs: set[str] = set()  # self.<attr> names

    def _record(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        else:
            name = is_self_attr(target)
            if name is not None:
                self.attrs.add(name)

    @staticmethod
    def _is_set_expr(value: ast.expr | None) -> bool:
        if value is None:
            return False
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in ("set", "frozenset")
        if isinstance(value, ast.BinOp) and isinstance(value.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return _SetTypes._is_set_expr(value.left) or _SetTypes._is_set_expr(value.right)
        return False

    @staticmethod
    def _is_set_annotation(annotation: ast.expr | None) -> bool:
        if annotation is None:
            return False
        text = ast.unparse(annotation)
        head = text.split("[", 1)[0].strip().lower()
        return head.endswith(("set", "frozenset"))

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                self._record(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._is_set_expr(node.value) or self._is_set_annotation(node.annotation):
            self._record(node.target)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if self._is_set_annotation(node.annotation):
            self.names.add(node.arg)


def _set_typed(expr: ast.expr, types: _SetTypes) -> bool:
    """Whether *expr* is statically recognizable as a set."""
    if _SetTypes._is_set_expr(expr):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in types.names
    name = is_self_attr(expr)
    if name is not None:
        return name in types.attrs
    return False


def _is_values_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "values"
        and not expr.args
        and not expr.keywords
    )


def _has_order_sink(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_SINKS
            ):
                return True
    return False


def _module_set_types(tree: ast.Module) -> dict[ast.AST, _SetTypes]:
    """Per-class set-type tables (self attrs) merged with per-function locals.

    Key: the FunctionDef node; value: the merged table in scope there.
    """
    tables: dict[ast.AST, _SetTypes] = {}
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        class_table = _SetTypes()
        for func in cls.body:
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                class_table.visit(func)
        for func in cls.body:
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                merged = _SetTypes()
                merged.attrs = set(class_table.attrs)
                merged.visit(func)
                tables[func] = merged
    for func in ast.walk(tree):
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)) and func not in tables:
            table = _SetTypes()
            table.visit(func)
            tables[func] = table
    return tables


@register(
    "determinism",
    "no unseeded random, wall-clock reads, id() ordering, or unordered "
    "iteration feeding ordered sinks",
)
def check_determinism(modules: Sequence[Module], context: Context) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        path = str(module.path)

        def flag(line: int, message: str) -> None:
            findings.append(
                Finding(rule="determinism", path=path, line=line, message=message)
            )

        from_random: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                from_random |= {
                    alias.asname or alias.name
                    for alias in node.names
                    if alias.name in _RANDOM_MODULE_FNS
                }

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = _qualified(node.func)
            # unseeded module-level random
            if qual is not None and qual[0] == "random" and qual[1] in _RANDOM_MODULE_FNS:
                flag(
                    node.lineno,
                    f"module-level random.{qual[1]}() draws from global, "
                    f"unseeded state; use a seeded random.Random instance",
                )
            if qual == ("random", "Random") and not node.args and not node.keywords:
                flag(
                    node.lineno,
                    "random.Random() without a seed is system-seeded; "
                    "pass an explicit seed",
                )
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in from_random
            ):
                flag(
                    node.lineno,
                    f"{node.func.id}() imported from random draws from "
                    f"global, unseeded state; use a seeded random.Random",
                )
            # wall clock
            if qual in _WALL_CLOCK:
                flag(
                    node.lineno,
                    f"wall-clock read {qual[0]}.{qual[1]}() on a "
                    f"virtual-time path; use the simulation clock",
                )
            # id() as an ordering key
            if isinstance(node.func, ast.Name) and node.func.id in (
                "sorted",
                "min",
                "max",
            ) or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
            ):
                for kw in node.keywords:
                    if kw.arg != "key":
                        continue
                    uses_id = (
                        isinstance(kw.value, ast.Name) and kw.value.id == "id"
                    ) or any(
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "id"
                        for sub in ast.walk(kw.value)
                    )
                    if uses_id:
                        flag(
                            node.lineno,
                            "id()-based ordering varies across runs and "
                            "processes; sort by a stable key",
                        )

        tables = _module_set_types(module.tree)
        default_table = _SetTypes()
        # map each For/call node to its enclosing function's table
        for func, table in tables.items():
            for node in ast.walk(func):
                _check_iteration(node, table, flag)
        # module-level statements outside any function
        in_funcs = {
            id(n) for f in tables for n in ast.walk(f)
        }
        for node in ast.walk(module.tree):
            if id(node) not in in_funcs:
                _check_iteration(node, default_table, flag)
    return findings


def _check_iteration(node: ast.AST, table: _SetTypes, flag) -> None:
    if isinstance(node, ast.For):
        iter_expr = node.iter
        if _set_typed(iter_expr, table) and _has_order_sink(node.body):
            flag(
                node.lineno,
                "iteration over a set feeds an ordered sink "
                "(append/extend/send/broadcast); iterate a sorted() or "
                "insertion-ordered copy instead",
            )
        elif _is_values_call(iter_expr) and _has_order_sink(node.body):
            flag(
                node.lineno,
                "iteration over .values() feeds an ordered sink; "
                "insertion order is arrival order -- iterate "
                "sorted(d.items()) for a canonical order",
            )
    # next(iter(<set>)): hash-order choice of a representative
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "next"
        and node.args
        and isinstance(node.args[0], ast.Call)
        and isinstance(node.args[0].func, ast.Name)
        and node.args[0].func.id == "iter"
        and node.args[0].args
        and _set_typed(node.args[0].args[0], table)
    ):
        flag(
            node.lineno,
            "next(iter(<set>)) picks a hash-order representative; "
            "guard with a singleton check and suppress, or use min()/max()",
        )
    # list/tuple materialization of a set bakes hash order into a sequence
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "tuple")
        and len(node.args) == 1
        and _set_typed(node.args[0], table)
    ):
        flag(
            node.lineno,
            f"{node.func.id}(<set>) materializes hash order into a "
            f"sequence; use sorted(...) for a canonical order",
        )
