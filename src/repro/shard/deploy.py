"""Sharded simulator deployment: N instance-engine groups + merge group.

``ShardedDeployment`` stamps out N independent multicoordinated
MultiPaxos groups (the total-order engine of :mod:`repro.smr.instances`,
role classes unchanged) plus one generalized merge group
(:mod:`repro.core.generalized`) for cross-shard commands, wires a
:class:`~repro.shard.replica.ShardReplica` per (group, site) and fronts
it all with a :class:`~repro.shard.router.ShardRouter`.

Every group gets its own prefixed pid namespace (``g0.acc1``,
``xs.coord0``...) so all groups coexist in one runtime -- the same
naming the net deployment uses for per-process placement.

Groups run without checkpointing here: a sharded replica's durable
state spans two learners (its group's log and the merge history), and
the single-learner snapshot carrier cannot capture that pair
atomically.  Bounded-memory sharded groups are follow-up work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.generalized import (
    GenAcceptor,
    GenBatchingConfig,
    GenCoordinator,
    GeneralizedCluster,
    GeneralizedConfig,
    GenLearner,
    GenProposer,
)
from repro.core.checkpoint import RetransmitConfig
from repro.core.liveness import LivenessConfig
from repro.core.quorums import QuorumSystem
from repro.core.rounds import RoundSchedule
from repro.core.runtime import Runtime
from repro.core.topology import Topology
from repro.cstruct.history import CommandHistory
from repro.cstruct.sharding import ShardKeyConflict, ShardMap
from repro.shard.replica import ShardReplica
from repro.shard.router import ShardRouter
from repro.smr.instances import (
    BatchingConfig,
    InstancesConfig,
    SMRAcceptor,
    SMRCluster,
    SMRCoordinator,
    SMRLearner,
    SMRProposer,
)

#: Pid prefix of the merge group.
MERGE_PREFIX = "xs"


def shard_topology(
    prefix: str,
    n_proposers: int,
    n_coordinators: int,
    n_acceptors: int,
    n_learners: int,
) -> Topology:
    """A :class:`Topology` whose pids live under ``<prefix>.``."""
    return Topology(
        proposers=tuple(f"{prefix}.prop{i}" for i in range(n_proposers)),
        coordinators=tuple(f"{prefix}.coord{i}" for i in range(n_coordinators)),
        acceptors=tuple(f"{prefix}.acc{i}" for i in range(n_acceptors)),
        learners=tuple(f"{prefix}.learn{i}" for i in range(n_learners)),
    )


def make_group_config(
    prefix: str,
    n_proposers: int = 1,
    n_coordinators: int = 2,
    n_acceptors: int = 3,
    n_learners: int = 2,
    batching: BatchingConfig | None = None,
    retransmit: RetransmitConfig | None = None,
    liveness: LivenessConfig | None = None,
    f: int | None = None,
) -> InstancesConfig:
    """One shard group's instances-engine config under *prefix*."""
    topology = shard_topology(
        prefix, n_proposers, n_coordinators, n_acceptors, n_learners
    )
    return InstancesConfig(
        topology=topology,
        quorums=QuorumSystem(topology.acceptors, f=f),
        schedule=RoundSchedule(range(n_coordinators), recovery_rtype=1),
        liveness=liveness,
        batching=batching,
        retransmit=retransmit,
    )


def make_merge_config(
    prefix: str = MERGE_PREFIX,
    n_proposers: int = 1,
    n_coordinators: int = 2,
    n_acceptors: int = 3,
    n_learners: int = 2,
    conflict: ShardKeyConflict | None = None,
    batching: GenBatchingConfig | None = None,
    retransmit: RetransmitConfig | None = None,
    liveness: LivenessConfig | None = None,
    f: int | None = None,
    e: int | None = None,
) -> GeneralizedConfig:
    """The merge group's generalized-engine config under *prefix*.

    The bottom c-struct carries :class:`ShardKeyConflict` -- key-set
    conflicts -- so the merge history's constraint digraph is exactly
    the per-key ordering obligations the owning groups must splice.
    """
    topology = shard_topology(
        prefix, n_proposers, n_coordinators, n_acceptors, n_learners
    )
    if conflict is None:
        conflict = ShardKeyConflict(read_ops=frozenset({"get"}))
    return GeneralizedConfig(
        topology=topology,
        quorums=QuorumSystem(topology.acceptors, f=f, e=e),
        schedule=RoundSchedule(range(n_coordinators), recovery_rtype=1),
        bottom=CommandHistory.bottom(conflict),
        liveness=liveness,
        batching=batching,
        retransmit=retransmit,
    )


def _build_group(sim: Runtime, config: InstancesConfig) -> SMRCluster:
    topology = config.topology
    return SMRCluster(
        sim=sim,
        config=config,
        proposers=[SMRProposer(pid, sim, config) for pid in topology.proposers],
        coordinators=[
            SMRCoordinator(pid, sim, config, index)
            for index, pid in enumerate(topology.coordinators)
        ],
        acceptors=[SMRAcceptor(pid, sim, config) for pid in topology.acceptors],
        learners=[SMRLearner(pid, sim, config) for pid in topology.learners],
    )


def _build_merge(sim: Runtime, config: GeneralizedConfig) -> GeneralizedCluster:
    topology = config.topology
    return GeneralizedCluster(
        sim=sim,
        config=config,
        proposers=[GenProposer(pid, sim, config) for pid in topology.proposers],
        coordinators=[
            GenCoordinator(pid, sim, config, index)
            for index, pid in enumerate(topology.coordinators)
        ],
        acceptors=[GenAcceptor(pid, sim, config) for pid in topology.acceptors],
        learners=[GenLearner(pid, sim, config) for pid in topology.learners],
    )


@dataclass
class ShardedDeployment:
    """N engine groups + merge group + replicas + router, on one sim."""

    sim: Runtime
    shard_map: ShardMap
    group_configs: list[InstancesConfig]
    merge_config: GeneralizedConfig
    groups: list[SMRCluster]
    merge: GeneralizedCluster
    replicas: list[list[ShardReplica]]  # [group][site]
    router: ShardRouter = field(init=False)

    def __post_init__(self) -> None:
        self.router = ShardRouter(self.sim, self.shard_map, self.groups, self.merge)

    @classmethod
    def build(
        cls,
        sim: Runtime,
        n_groups: int,
        n_proposers: int = 1,
        n_coordinators: int = 2,
        n_acceptors: int = 3,
        n_learners: int = 2,
        batching: BatchingConfig | None = None,
        merge_batching: GenBatchingConfig | None = None,
        retransmit: RetransmitConfig | None = None,
        liveness: LivenessConfig | None = None,
        machine_factory=None,
    ) -> "ShardedDeployment":
        shard_map = ShardMap(n_groups)
        group_configs = [
            make_group_config(
                f"g{gid}",
                n_proposers=n_proposers,
                n_coordinators=n_coordinators,
                n_acceptors=n_acceptors,
                n_learners=n_learners,
                batching=batching,
                retransmit=retransmit,
                liveness=liveness,
            )
            for gid in range(n_groups)
        ]
        merge_config = make_merge_config(
            n_proposers=n_proposers,
            n_coordinators=n_coordinators,
            n_acceptors=n_acceptors,
            n_learners=n_learners,
            batching=merge_batching,
            retransmit=retransmit,
            liveness=liveness,
        )
        groups = [_build_group(sim, config) for config in group_configs]
        merge = _build_merge(sim, merge_config)
        replicas = [
            [
                ShardReplica(
                    gid,
                    shard_map,
                    group.learners[site],
                    merge.learners[site],
                    machine=machine_factory() if machine_factory else None,
                )
                for site in range(n_learners)
            ]
            for gid, group in enumerate(groups)
        ]
        return cls(
            sim=sim,
            shard_map=shard_map,
            group_configs=group_configs,
            merge_config=merge_config,
            groups=groups,
            merge=merge,
            replicas=replicas,
        )

    def start(self, delay: float = 0.0) -> "ShardedDeployment":
        """Bootstrap a multicoordinated round in every group."""
        for group in self.groups:
            rnd = group.config.schedule.make_round(coord=0, count=1, rtype=2)
            group.start_round(rnd, delay=delay)
        rnd = self.merge.config.schedule.make_round(coord=0, count=1, rtype=2)
        self.merge.start_round(rnd, delay=delay)
        return self

    # -- driving -------------------------------------------------------------

    def everyone_executed(self, cmds) -> bool:
        for cmd in cmds:
            groups = self.shard_map.groups_of(cmd) or (0,)
            for gid in groups:
                if not all(r.has_executed(cmd) for r in self.replicas[gid]):
                    return False
        return True

    def run_until_executed(self, cmds, timeout: float = 20_000.0) -> bool:
        cmds = list(cmds)
        return self.sim.run_until(
            lambda: self.everyone_executed(cmds), timeout=timeout
        )

    # -- invariants ----------------------------------------------------------

    def divergent_keys(self) -> list[tuple[int, str]]:
        """(group, key) pairs whose replicas disagree on the key's order.

        The sharded correctness invariant: must be empty after any run.
        """
        out: list[tuple[int, str]] = []
        for gid, replicas in enumerate(self.replicas):
            keys = sorted({k for r in replicas for k in r.key_orders})
            for key in keys:
                orders = {tuple(r.key_orders.get(key, ())) for r in replicas}
                if len(orders) > 1:
                    out.append((gid, key))
        return out

    def key_order(self, key: str) -> tuple[str, ...]:
        """The agreed cid order on *key* (first replica of its group)."""
        gid = self.shard_map.group_of_key(key)
        return tuple(self.replicas[gid][0].key_orders.get(key, ()))

    def crash_group(self, gid: int, role: str, index: int = 0) -> str:
        """Crash one role process of group *gid*; returns its pid."""
        config = self.group_configs[gid]
        pid = getattr(config.topology, role)[index]
        self.sim.crash(pid)
        return pid
