"""Sharded replicas: per-group total order + merge-group barrier splices.

Each engine group delivers its own total order of single-shard commands.
A cross-shard command is *not* in that stream; instead the router plants
a **barrier** placeholder in every owning group and proposes the real
command to the merge group's generalized engine.  A replica executing
its group's stream stalls at a barrier until the merge group has learned
the barrier's command, then executes the command's *ancestor closure*
in the merge history -- the conflicting cross-shard commands ordered
before it -- restricted to commands touching this group, in a
deterministic topological order.

Why the ancestor closure and not a linear-extension prefix: replicas of
different groups (and laggard replicas of the same group) observe the
merge history at different sizes, so any "execute everything learned so
far" rule would splice *unrelated* cross-shard commands at different
barrier points on different replicas.  The closure of a learned command,
by contrast, is final and identical at every learner (learned histories
grow compatibly, and compatible histories agree on every shared
command's predecessor set), so every replica of every owning group
splices exactly the same conflicting commands in exactly the same
relative order -- the per-key order agrees everywhere.

A command pulled forward by one barrier's closure is skipped when its
own barrier later reaches the head of the group stream (the
``_executed_cids`` check), keeping execution exactly-once per replica.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable

from repro.cstruct.commands import Command
from repro.cstruct.sharding import ShardMap

#: The op of a barrier placeholder sequenced by an owning group.
BARRIER_OP = "__xbar__"


def barrier_command(bid: int, group: int, cmd: Command) -> Command:
    """The placeholder group *group* sequences for cross-shard *cmd*.

    Keyless on purpose: barriers must be totally ordered *within their
    group stream* (the instances engine already does that) but must not
    key-conflict with anything.  The cid embeds the barrier id and group
    so it is unique per (command, group) and -- containing no trailing
    ``:<digits>`` -- falls into the session layer's exact overflow set
    rather than a client window.
    """
    return Command(f"xb{bid}@g{group}", BARRIER_OP, "", (bid, cmd.cid))


class ShardReplica:
    """One site's state machine for one group of a sharded deployment.

    Subscribes to the group's learner (the total order of single-shard
    commands and barriers) and to the co-sited merge-group learner (the
    c-struct of cross-shard commands).  Applies to ``machine`` only the
    keys this group owns: a cross-shard command executes once per owning
    group, each group applying its own key projection.
    """

    def __init__(
        self,
        group: int,
        shard_map: ShardMap,
        learner,
        merge_learner,
        machine=None,
    ) -> None:
        if machine is None:
            from repro.smr.machine import KVStore

            machine = KVStore()
        self.group = group
        self.shard_map = shard_map
        self.machine = machine
        self.executed: list[Command] = []
        self.results: dict[str, Hashable] = {}
        self.key_orders: dict[str, list[str]] = {}
        self.barriers_crossed = 0
        self.pulled_forward = 0
        self._executed_cids: set[str] = set()
        self._pending: deque[Command] = deque()
        self._merge_index: dict[str, Command] = {}
        self._merge_history = None
        self._observers: list[Callable[[Command, Hashable], None]] = []
        learner.on_deliver(self._on_deliver)
        merge_learner.on_learn(self._on_merge_learn)

    def on_execute(self, observer: Callable[[Command, Hashable], None]) -> None:
        """Register ``observer(cmd, result)``, fired per executed command."""
        self._observers.append(observer)

    def has_executed(self, cmd: Command) -> bool:
        return cmd.cid in self._executed_cids

    def order_signature(self) -> tuple[str, ...]:
        """The executed cid sequence (for replica-agreement assertions)."""
        return tuple(cmd.cid for cmd in self.executed)

    # -- learner feeds -------------------------------------------------------

    def _on_deliver(self, instance: int, cmd: Command) -> None:
        self._pending.append(cmd)
        self._drain()

    def _on_merge_learn(self, new_cmds: tuple, learned) -> None:
        for cmd in new_cmds:
            self._merge_index[cmd.cid] = cmd
        self._merge_history = learned
        self._drain()

    # -- execution -----------------------------------------------------------

    def _drain(self) -> None:
        while self._pending:
            head = self._pending[0]
            if head.op != BARRIER_OP:
                self._pending.popleft()
                if head.cid not in self._executed_cids:
                    self._execute(head)
                continue
            _bid, cid = head.arg
            if cid in self._executed_cids:
                # Pulled forward by an earlier barrier's closure.
                self._pending.popleft()
                continue
            target = self._merge_index.get(cid)
            if target is None:
                return  # stall: the merge group has not learned it yet
            self._pending.popleft()
            self.barriers_crossed += 1
            self._execute_closure(target)

    def _execute_closure(self, target: Command) -> None:
        """Execute *target* and its unexecuted merge-history ancestors.

        The closure walk prunes at already-executed commands: their own
        ancestors were executed with them (closures are downward closed),
        so the frontier of new work stays O(new commands).
        """
        history = self._merge_history
        closure: dict[Command, frozenset] = {}
        stack = [target]
        while stack:
            cmd = stack.pop()
            if cmd in closure or cmd.cid in self._executed_cids:
                continue
            preds = history.predecessors(cmd)
            closure[cmd] = preds
            stack.extend(sorted(preds))
        # Deterministic Kahn order over the closure sub-digraph: always
        # take the minimum ready command, so every replica (whatever its
        # closure dict insertion order) executes the same sequence.
        remaining = {
            cmd: {p for p in preds if p in closure}
            for cmd, preds in closure.items()
        }
        while remaining:
            ready = min(c for c, ps in remaining.items() if not ps)
            del remaining[ready]
            for ps in remaining.values():
                ps.discard(ready)
            if ready is not target:
                self.pulled_forward += 1
            self._execute(ready)

    def _execute(self, cmd: Command) -> None:
        owned = self.shard_map.owned_keys(cmd, self.group)
        if not owned:
            # A cross-shard ancestor touching only other groups: record
            # it as executed (so its own barrier later skips) without
            # applying anything here.
            if self.shard_map.groups_of(cmd):
                self._executed_cids.add(cmd.cid)
                return
            # Keyless command routed to this group: apply as-is.
            result = self.machine.apply(cmd)
        elif owned == (cmd.key,):
            result = self.machine.apply(cmd)
        else:
            # Key projection of a multi-key command: apply per owned key,
            # in written order (the same at every replica).
            result = None
            for key in owned:
                result = self.machine.apply(Command(cmd.cid, cmd.op, key, cmd.arg))
        self.executed.append(cmd)
        self._executed_cids.add(cmd.cid)
        self.results[cmd.cid] = result
        for key in owned:
            self.key_orders.setdefault(key, []).append(cmd.cid)
        for observer in self._observers:
            observer(cmd, result)
