"""Sharded deployment on real loopback sockets.

Composes :mod:`repro.net.cluster`'s two placement plans -- the instances
plan per shard group and the generalized plan for the merge group -- on
**one** shared address book: every role of every group gets its own node
(``g0.acc1``, ``xs.coord0``...), all proposers ride the driver node, and
every inter-role message crosses a real UDP/TCP socket through the
codec.  The driver-side surface is the same
:class:`~repro.shard.router.ShardRouter` + replica wiring as the
simulator deployment (:mod:`repro.shard.deploy`), so tests and clients
drive both backends identically.
"""

from __future__ import annotations

from typing import Any

from repro.net.cluster import (
    DRIVER_NODE,
    GenNetCluster,
    NetCluster,
    bootstrap_round,
    codec_context_for,
    deploy_generalized_roles,
    deploy_roles,
    generalized_node_plan,
    node_plan,
    wall_clock_retransmit,
)
from repro.net.transport import DEFAULT_MTU, AddressBook, NetRuntime, loopback_book
from repro.shard.deploy import make_group_config, make_merge_config
from repro.shard.replica import ShardReplica
from repro.shard.router import ShardRouter
from repro.cstruct.sharding import ShardMap


class ShardedLoopbackDeployment:
    """N shard groups + merge group, one runtime per node, real sockets."""

    def __init__(
        self,
        n_groups: int,
        seed: int = 0,
        loss_rate: float = 0.0,
        n_proposers: int = 1,
        n_coordinators: int = 2,
        n_acceptors: int = 3,
        n_learners: int = 2,
        mtu: int = DEFAULT_MTU,
    ) -> None:
        self.shard_map = ShardMap(n_groups)
        self.n_learners = n_learners
        self.group_configs = [
            make_group_config(
                f"g{gid}",
                n_proposers=n_proposers,
                n_coordinators=n_coordinators,
                n_acceptors=n_acceptors,
                n_learners=n_learners,
                retransmit=wall_clock_retransmit(),
            )
            for gid in range(n_groups)
        ]
        self.merge_config = make_merge_config(
            n_proposers=n_proposers,
            n_coordinators=n_coordinators,
            n_acceptors=n_acceptors,
            n_learners=n_learners,
            retransmit=wall_clock_retransmit(),
        )
        placement: dict[str, str] = {}
        for config in self.group_configs:
            placement.update(node_plan(config))
        placement.update(generalized_node_plan(self.merge_config))
        book: AddressBook = loopback_book(sorted({*placement.values(), DRIVER_NODE}))
        book.placement.update(placement)
        self.book = book
        # One shared context: instances-engine payloads ignore it, and
        # the merge group's CommandHistory payloads rebuild against the
        # key-set conflict relation on every node.
        context = codec_context_for(self.merge_config)
        self.runtimes: dict[str, NetRuntime] = {
            node: NetRuntime(
                node,
                book,
                seed=seed + index,
                loss_rate=loss_rate,
                mtu=mtu,
                codec_context=context,
            )
            for index, node in enumerate(sorted(book.nodes))
        }
        self.roles: dict[str, Any] = {}
        self.groups: list[NetCluster] = []
        self.merge: GenNetCluster | None = None
        self.replicas: list[list[ShardReplica]] = []
        self.router: ShardRouter | None = None

    @property
    def driver(self) -> NetRuntime:
        return self.runtimes[DRIVER_NODE]

    async def start(self) -> "ShardedLoopbackDeployment":
        for runtime in self.runtimes.values():
            await runtime.start()
        for node, runtime in self.runtimes.items():
            if node == DRIVER_NODE:
                continue
            for config in self.group_configs:
                self.roles.update(deploy_roles(runtime, config))
            self.roles.update(
                deploy_generalized_roles(runtime, self.merge_config)
            )
        self.groups = [
            NetCluster(self.driver, config) for config in self.group_configs
        ]
        self.merge = GenNetCluster(self.driver, self.merge_config)
        for cluster in (*self.groups, self.merge):
            for proposer in cluster.proposers:
                self.roles[proposer.pid] = proposer
        self.replicas = [
            [
                ShardReplica(
                    gid,
                    self.shard_map,
                    self.roles[config.topology.learners[site]],
                    self.roles[self.merge_config.topology.learners[site]],
                )
                for site in range(self.n_learners)
            ]
            for gid, config in enumerate(self.group_configs)
        ]
        self.router = ShardRouter(
            self.driver, self.shard_map, self.groups, self.merge
        )
        for config in self.group_configs:
            self._start_round(config, bootstrap_round(config))
        self._start_round(self.merge_config, bootstrap_round(self.merge_config))
        return self

    def _start_round(self, config, rnd) -> None:
        pid = config.topology.coordinators[rnd.coord]
        coordinator = self.roles[pid]
        self.runtime_of(pid).schedule(0.0, lambda: coordinator.start_round(rnd))

    async def stop(self) -> None:
        for runtime in self.runtimes.values():
            await runtime.stop()

    def runtime_of(self, pid: str) -> NetRuntime:
        return self.runtimes[self.book.node_of(pid)]

    def everyone_executed(self, cmds) -> bool:
        for cmd in cmds:
            groups = self.shard_map.groups_of(cmd) or (0,)
            for gid in groups:
                if not all(r.has_executed(cmd) for r in self.replicas[gid]):
                    return False
        return True

    async def run_until_executed(self, cmds, timeout: float = 30.0) -> bool:
        cmds = list(cmds)
        return await self.driver.wait_until(
            lambda: self.everyone_executed(cmds), timeout=timeout
        )

    def divergent_keys(self) -> list[tuple[int, str]]:
        """(group, key) pairs whose replicas disagree on the key's order."""
        out: list[tuple[int, str]] = []
        for gid, replicas in enumerate(self.replicas):
            keys = sorted({k for r in replicas for k in r.key_orders})
            for key in keys:
                orders = {tuple(r.key_orders.get(key, ())) for r in replicas}
                if len(orders) > 1:
                    out.append((gid, key))
        return out

    def errors(self) -> list[BaseException]:
        return [err for runtime in self.runtimes.values() for err in runtime.errors]
