"""Sharded multi-group consensus: key-hashed engine groups + merge group.

The horizontal-scale layer: N independent consensus groups sequence
disjoint-key traffic in parallel (near-linear aggregate throughput in
group count), while cross-shard commands are ordered once by a
designated generalized *merge group* and spliced into every owning
group's stream at router-stamped barriers.  See the package modules:

* :mod:`repro.cstruct.sharding` -- the key→group hash and key-set
  conflict relation (deployment-independent).
* :mod:`repro.shard.router` -- driver-side dispatch, barrier stamping.
* :mod:`repro.shard.replica` -- per-site execution: group total order
  plus merge-closure splices at barriers.
* :mod:`repro.shard.deploy` -- simulator deployment.
* :mod:`repro.shard.net` -- loopback-socket deployment over
  :mod:`repro.net.cluster`'s placement plans.
"""

from repro.cstruct.sharding import ShardKeyConflict, ShardMap
from repro.shard.deploy import (
    ShardedDeployment,
    make_group_config,
    make_merge_config,
    shard_topology,
)
from repro.shard.replica import BARRIER_OP, ShardReplica, barrier_command
from repro.shard.router import ShardRouter

__all__ = [
    "BARRIER_OP",
    "ShardKeyConflict",
    "ShardMap",
    "ShardReplica",
    "ShardRouter",
    "ShardedDeployment",
    "barrier_command",
    "make_group_config",
    "make_merge_config",
    "shard_topology",
]
