"""The shard router: key-hashed dispatch over N engine groups.

The router is deployment-independent driver-side logic, not a protocol
role: it runs wherever proposals originate (the simulation driver, the
net cluster's driver node) and speaks to each group through its cluster
handle (``SMRCluster``/``NetCluster`` for the groups, a generalized
cluster for the merge group).  It adds **no wire messages** -- routing
is a client-side function of the deterministic key hash, so any router
instance anywhere makes the same decision.

Single-shard commands go straight to their group's proposer pipeline.
A cross-shard command is stamped with a monotone barrier id; the router
proposes the command itself to the merge group and a barrier
placeholder to every owning group (see :mod:`repro.shard.replica` for
how replicas splice the merge order at the barrier).
"""

from __future__ import annotations

from typing import Hashable

from repro.cstruct.commands import Command
from repro.cstruct.sharding import ShardMap, split_key
from repro.shard.replica import barrier_command

#: Metrics label of the merge group (cross-shard traffic).
MERGE_LABEL = "xs"


class ShardRouter:
    """Hashes commands to groups; stamps cross-shard barriers.

    Exposes the driving surface :class:`repro.smr.client.Client` expects
    of a cluster (``sim``, ``propose``, ``flush``) plus
    ``session_scope`` for the client's per-group session windows.
    """

    def __init__(self, sim, shard_map: ShardMap, groups, merge) -> None:
        self.sim = sim
        self.shard_map = shard_map
        self.groups = list(groups)
        self.merge = merge
        self.next_barrier = 0
        self.routed_single = 0
        self.routed_cross = 0

    def session_scope(self, key: str) -> str:
        """The session-window scope label for commands on *key*.

        One label per group (``g<N>``) plus one for cross-shard
        commands (``xs``): each scope is a distinct FIFO pipeline, so a
        session window's monotone-cid contract must hold per scope, not
        globally.
        """
        groups = sorted({self.shard_map.group_of_key(k) for k in split_key(key)})
        if len(groups) == 1:
            return f"g{groups[0]}"
        if not groups:
            return "g0"  # keyless commands ride group 0
        return MERGE_LABEL

    def propose(self, cmd: Command, delay: float = 0.0) -> None:
        groups = self.shard_map.groups_of(cmd)
        metrics = getattr(self.sim, "metrics", None)
        if len(groups) <= 1:
            gid = groups[0] if groups else 0
            self.routed_single += 1
            if metrics is not None:
                metrics.record_group(f"g{gid}")
            self.groups[gid].propose(cmd, delay=delay)
            return
        bid = self.next_barrier
        self.next_barrier += 1
        self.routed_cross += 1
        if metrics is not None:
            metrics.record_group(MERGE_LABEL)
        self.merge.propose(cmd, delay=delay)
        for gid in groups:
            self.groups[gid].propose(barrier_command(bid, gid, cmd), delay=delay)

    def flush(self) -> None:
        """Ship every group's (and the merge group's) partial batches."""
        for group in self.groups:
            group.flush()
        self.merge.flush()

    def stats(self) -> dict[str, Hashable]:
        return {
            "groups": len(self.groups),
            "routed_single": self.routed_single,
            "routed_cross": self.routed_cross,
            "barriers": self.next_barrier,
        }
