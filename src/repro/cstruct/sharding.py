"""Key→group partitioning: the sharding lever of the conflict relation.

:class:`~repro.cstruct.commands.KeyConflict` already states that commands
on disjoint keys commute, so disjoint-key traffic can be sequenced by N
independent consensus groups with no loss of the generalized-consensus
guarantees.  This module holds the deployment-independent half of that
idea:

* :func:`keys_of` -- a command's key *set*.  Single-key commands are the
  overwhelming common case; a multi-key command (e.g. a cross-record
  transaction) writes its keys joined with ``"|"`` into ``Command.key``.
* :class:`ShardMap` -- the deterministic key→group hash.  Hashing is
  ``blake2b`` (like :func:`repro.cstruct.digest.command_hash`), not
  Python's salted ``hash()``: every client, router and OS-process node
  must map a key to the same group.
* :class:`ShardKeyConflict` -- :class:`KeyConflict` lifted to key sets:
  two commands conflict iff their key sets intersect and at least one of
  them writes.  This is the merge group's conflict relation -- the
  designated generalized engine that sequences cross-shard commands.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import FrozenSet

from repro.cstruct.commands import Command, ConflictRelation

#: Separator joining the members of a multi-key ``Command.key``.
KEY_SEPARATOR = "|"


def split_key(key: str) -> tuple[str, ...]:
    """The member keys of a (possibly joined) ``Command.key`` field.

    A single key, or several joined with ``"|"`` (duplicates and empty
    segments are dropped; an empty field is the empty key set).
    """
    if not key:
        return ()
    if KEY_SEPARATOR not in key:
        return (key,)
    out: list[str] = []
    for member in key.split(KEY_SEPARATOR):
        if member and member not in out:
            out.append(member)
    return tuple(out)


def keys_of(cmd: Command) -> tuple[str, ...]:
    """The keys *cmd* touches, in their written order.

    A keyless command has an empty key set and conflicts with nothing
    key-based.
    """
    return split_key(cmd.key)


def key_group(key: str, n_groups: int) -> int:
    """The group owning *key*: a process-stable blake2b hash mod N.

    Stability across OS processes is load-bearing: the router, every
    replica and every test oracle must agree on ownership, and Python's
    builtin ``hash`` is salted per process.
    """
    raw = key.encode("utf-8", "surrogatepass")
    digest = hashlib.blake2b(raw, digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_groups


@dataclass(frozen=True)
class ShardMap:
    """The key→group partition of an N-group sharded deployment."""

    n_groups: int

    def __post_init__(self) -> None:
        if self.n_groups < 1:
            raise ValueError("n_groups must be at least 1")

    def group_of_key(self, key: str) -> int:
        return key_group(key, self.n_groups)

    def groups_of(self, cmd: Command) -> tuple[int, ...]:
        """The sorted distinct groups owning *cmd*'s keys."""
        return tuple(sorted({self.group_of_key(k) for k in keys_of(cmd)}))

    def is_cross_shard(self, cmd: Command) -> bool:
        return len(self.groups_of(cmd)) > 1

    def owned_keys(self, cmd: Command, group: int) -> tuple[str, ...]:
        """*cmd*'s keys owned by *group*, in written order."""
        return tuple(k for k in keys_of(cmd) if self.group_of_key(k) == group)

    def keys_in_group(self, candidates, group: int) -> list[str]:
        """Filter *candidates* down to the keys hashed to *group*."""
        return [k for k in candidates if self.group_of_key(k) == group]


@dataclass(frozen=True)
class ShardKeyConflict(ConflictRelation):
    """Key-set conflicts: shared key + at least one write.

    The merge group's relation.  No ``partition`` override: a multi-key
    command belongs to several per-key buckets at once, and the bucket
    index demands one bucket per command (``conflicts(a, b)`` must imply
    ``partition(a) == partition(b)``) -- so every command is checked
    against the whole history.  The merge group only ever carries the
    cross-shard fraction of traffic, where that O(n) scan is cheap.
    """

    read_ops: FrozenSet[str] = frozenset({"get", "read"})
    cache_limit = 1 << 16

    def conflicts(self, a: Command, b: Command) -> bool:
        if a == b:
            return False
        a_keys = keys_of(a)
        b_keys = set(keys_of(b))
        if not any(k in b_keys for k in a_keys):
            return False
        both_reads = a.op in self.read_ops and b.op in self.read_ops
        return not both_reads
