"""The consensus c-struct set.

Lamport shows (and the paper recalls in Section 2.3.2) that classic
consensus is the instance of Generalized Consensus whose c-structs are ⊥
plus single commands, with ``v • C = C`` if ``v = ⊥`` and ``v`` otherwise:
the first command appended "wins" and later appends are absorbed.

With this c-struct set, the generalized algorithms of Section 3.2 collapse
to the consensus algorithm of Section 3.1, which our tests exploit to
cross-validate the two implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cstruct.base import CStruct, IncompatibleError
from repro.cstruct.commands import Command


@dataclass(frozen=True)
class ValueStruct(CStruct):
    """⊥ (``value is None``) or a single decided command."""

    value: Command | None = None

    @classmethod
    def bottom(cls) -> "ValueStruct":
        return cls(None)

    def append(self, cmd: Command) -> "ValueStruct":
        if self.value is None:
            return ValueStruct(cmd)
        return self

    def leq(self, other: CStruct) -> bool:
        if not isinstance(other, ValueStruct):
            return NotImplemented
        return self.value is None or self.value == other.value

    def glb(self, other: "ValueStruct") -> "ValueStruct":
        if self.value is not None and self.value == other.value:
            return self
        return ValueStruct(None)

    def lub(self, other: "ValueStruct") -> "ValueStruct":
        if not self.is_compatible(other):
            raise IncompatibleError(f"no common upper bound of {self} and {other}")
        if self.value is not None:
            return self
        return other

    def is_compatible(self, other: CStruct) -> bool:
        if not isinstance(other, ValueStruct):
            return False
        return self.value is None or other.value is None or self.value == other.value

    def contains(self, cmd: Command) -> bool:
        return self.value == cmd

    def command_set(self) -> frozenset[Command]:
        if self.value is None:
            return frozenset()
        return frozenset({self.value})

    def __str__(self) -> str:
        return "⊥" if self.value is None else f"⟨{self.value}⟩"
