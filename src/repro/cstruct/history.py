"""Command histories: the c-struct set of generic broadcast (Section 3.3).

A command history is a partially ordered set of commands in which every
conflicting pair (under a :class:`repro.cstruct.commands.ConflictRelation`)
is ordered.  Following Section 3.3.1 we represent histories as command
sequences; a sequence denotes the poset in which ``a ≺ b`` iff ``a`` and
``b`` conflict and ``a`` occurs first.

Semantics of the representation
-------------------------------

Two sequences denote the same history iff they contain the same commands
and order every conflicting pair identically; ``CommandHistory``
canonicalizes its sequence (a deterministic minimal-key linear extension of
the conflict order) so that ``__eq__``/``__hash__`` are structural.

The extension order has a direct characterization which all operators are
built on.  ``h ⊑ g`` (``g = h • σ`` for some σ) iff:

1. ``set(h) ⊆ set(g)``;
2. every conflicting pair of ``h`` keeps its relative order in ``g``;
3. every command of ``g`` outside ``h`` that conflicts with a command of
   ``h`` occurs after it in ``g`` (appended commands follow all conflicting
   existing ones).

From this characterization:

* ``glb`` is computed by a greedy scan of one operand keeping exactly the
  commands whose conflicting context agrees in both histories;
* compatibility and ``lub`` are computed on the *conflict-constraint
  digraph* over the union of commands (edges force the order of every
  conflicting pair as dictated by conditions 2-3); the histories are
  compatible iff the digraph is acyclic, and the lub is any linear
  extension (they all denote the same history).

The paper's recursive ``Prefix``/``AreCompatible``/``⊔`` operators are kept
verbatim in :mod:`repro.cstruct.history_ops` and property-tested equivalent
to these direct implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cstruct.base import CStruct, IncompatibleError
from repro.cstruct.commands import Command, ConflictRelation


def _sort_key(cmd: Command) -> tuple:
    """Deterministic total order on commands used for canonicalization."""
    return (cmd.cid, cmd.op, cmd.key, repr(cmd.arg))


def _canonical(seq: Sequence[Command], conflict: ConflictRelation) -> tuple[Command, ...]:
    """Deterministic linear extension of the conflict order of *seq*.

    Repeatedly emits the minimal-key command among those all of whose
    conflicting predecessors (earlier conflicting commands in *seq*) have
    already been emitted.  Equivalent sequences (same commands, same order
    of conflicting pairs) canonicalize identically because the candidate
    sets depend only on the induced partial order.
    """
    remaining = list(dict.fromkeys(seq))  # dedupe, keep first occurrence
    placed: list[Command] = []
    while remaining:
        best_index = -1
        best_key: tuple | None = None
        for index, cmd in enumerate(remaining):
            blocked = any(conflict(prev, cmd) for prev in remaining[:index])
            if blocked:
                continue
            key = _sort_key(cmd)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        placed.append(remaining.pop(best_index))
    return tuple(placed)


@dataclass(frozen=True)
class CommandHistory(CStruct):
    """A command history represented by its canonical command sequence."""

    cmds: tuple[Command, ...]
    conflict: ConflictRelation
    _set: frozenset[Command] = field(
        init=False, repr=False, compare=False, default=frozenset()
    )

    def __post_init__(self) -> None:
        canonical = _canonical(self.cmds, self.conflict)
        object.__setattr__(self, "cmds", canonical)
        object.__setattr__(self, "_set", frozenset(canonical))

    # -- construction -------------------------------------------------------

    @classmethod
    def _trusted(
        cls, cmds: tuple[Command, ...], conflict: ConflictRelation
    ) -> "CommandHistory":
        """Build from an already-canonical sequence, skipping O(n^3) work.

        Used by :meth:`append`, :meth:`glb` and :meth:`lub`, whose outputs
        are canonical by construction: ``append`` performs a canonical
        insert; ``glb`` keeps a subsequence whose greedy candidate sets
        match the original's (any kept command has no dropped conflicting
        predecessor); ``lub`` emits a min-key Kahn order, which *is* the
        canonical greedy order.  Property tests verify each claim against
        full re-canonicalization.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "cmds", cmds)
        object.__setattr__(obj, "conflict", conflict)
        object.__setattr__(obj, "_set", frozenset(cmds))
        return obj

    @classmethod
    def bottom(cls, conflict: ConflictRelation) -> "CommandHistory":
        """The empty history ⊥ for the given conflict relation."""
        return cls((), conflict)

    @classmethod
    def of(cls, conflict: ConflictRelation, *cmds: Command) -> "CommandHistory":
        """``⊥ • ⟨cmds⟩``."""
        return cls.bottom(conflict).extend(cmds)

    def append(self, cmd: Command) -> "CommandHistory":
        """``self • cmd``: add *cmd* after every conflicting existing command."""
        if cmd in self._set:
            return self
        # Canonical insert: cmd must follow its last conflicting element;
        # after that point it precedes the first element with a larger key.
        last_conflict = -1
        for index, existing in enumerate(self.cmds):
            if self.conflict(existing, cmd):
                last_conflict = index
        position = len(self.cmds)
        key = _sort_key(cmd)
        for index in range(last_conflict + 1, len(self.cmds)):
            if key < _sort_key(self.cmds[index]):
                position = index
                break
        new_cmds = self.cmds[:position] + (cmd,) + self.cmds[position:]
        return CommandHistory._trusted(new_cmds, self.conflict)

    # -- order ----------------------------------------------------------------

    def leq(self, other: CStruct) -> bool:
        if not isinstance(other, CommandHistory):
            return NotImplemented
        self._require_same_relation(other)
        if not self._set <= other._set:
            return False
        position = {cmd: index for index, cmd in enumerate(other.cmds)}
        # Conflicting pairs of self keep their order in other.
        for i, a in enumerate(self.cmds):
            for b in self.cmds[i + 1 :]:
                if self.conflict(a, b) and position[a] > position[b]:
                    return False
        # Commands of other outside self follow every conflicting self command.
        for extra in other.cmds:
            if extra in self._set:
                continue
            for mine in self.cmds:
                if self.conflict(extra, mine) and position[extra] < position[mine]:
                    return False
        return True

    # -- lattice ----------------------------------------------------------------

    def glb(self, other: "CommandHistory") -> "CommandHistory":
        """Greatest lower bound: the longest common prefix history.

        Greedy scan of ``self``: a command is kept iff it appears in both
        histories, no conflicting earlier command of ``self`` was dropped,
        and all of its conflicting predecessors in ``other`` were kept.
        """
        self._require_same_relation(other)
        other_position = {cmd: index for index, cmd in enumerate(other.cmds)}
        kept: list[Command] = []
        kept_set: set[Command] = set()
        dropped: list[Command] = []
        for cmd in self.cmds:
            if cmd not in other._set:
                dropped.append(cmd)
                continue
            if any(self.conflict(cmd, d) for d in dropped):
                dropped.append(cmd)
                continue
            predecessors = (
                d
                for d in other.cmds[: other_position[cmd]]
                if self.conflict(d, cmd)
            )
            if any(d not in kept_set for d in predecessors):
                dropped.append(cmd)
                continue
            kept.append(cmd)
            kept_set.add(cmd)
        return CommandHistory._trusted(tuple(kept), self.conflict)

    def _constraint_edges(
        self, other: "CommandHistory"
    ) -> dict[Command, set[Command]] | None:
        """Edges u→v forcing u before v in any common upper bound.

        Returns ``None`` when two constraints contradict (a 2-cycle), which
        already implies incompatibility.
        """
        union = list(dict.fromkeys(self.cmds + other.cmds))
        pos_self = {cmd: index for index, cmd in enumerate(self.cmds)}
        pos_other = {cmd: index for index, cmd in enumerate(other.cmds)}
        edges: dict[Command, set[Command]] = {cmd: set() for cmd in union}

        def required_order(u: Command, v: Command, pos: dict) -> int:
            """-1: u before v; 1: v before u; 0: no constraint from this side."""
            u_in, v_in = u in pos, v in pos
            if u_in and v_in:
                return -1 if pos[u] < pos[v] else 1
            if u_in:
                return -1  # v is appended after conflicting u
            if v_in:
                return 1
            return 0

        for i, u in enumerate(union):
            for v in union[i + 1 :]:
                if not self.conflict(u, v):
                    continue
                order_a = required_order(u, v, pos_self)
                order_b = required_order(u, v, pos_other)
                if order_a and order_b and order_a != order_b:
                    return None
                order = order_a or order_b
                if order == -1:
                    edges[u].add(v)
                else:
                    edges[v].add(u)
        return edges

    def is_compatible(self, other: CStruct) -> bool:
        if not isinstance(other, CommandHistory):
            return False
        self._require_same_relation(other)
        edges = self._constraint_edges(other)
        if edges is None:
            return False
        return _topological_order(edges) is not None

    def lub(self, other: "CommandHistory") -> "CommandHistory":
        self._require_same_relation(other)
        edges = self._constraint_edges(other)
        order = _topological_order(edges) if edges is not None else None
        if order is None:
            raise IncompatibleError(f"histories are incompatible: {self} vs {other}")
        return CommandHistory._trusted(tuple(order), self.conflict)

    # -- contents ---------------------------------------------------------------

    def contains(self, cmd: Command) -> bool:
        return cmd in self._set

    def command_set(self) -> frozenset[Command]:
        return self._set

    def linear_extension(self) -> tuple[Command, ...]:
        """A sequential execution order consistent with the partial order."""
        return self.cmds

    def delta_after(self, prefix: "CommandHistory") -> tuple[Command, ...]:
        """Commands of ``self`` not in *prefix*, in execution order.

        With ``prefix ⊑ self`` the concatenation of *prefix*'s execution
        order and this delta is a linear extension of ``self`` -- the basis
        of incremental command execution in replicas.
        """
        return tuple(cmd for cmd in self.cmds if cmd not in prefix._set)

    # -- plumbing ---------------------------------------------------------------

    def _require_same_relation(self, other: "CommandHistory") -> None:
        if self.conflict != other.conflict:
            raise ValueError(
                "cannot combine histories under different conflict relations: "
                f"{self.conflict!r} vs {other.conflict!r}"
            )

    def __len__(self) -> int:
        return len(self.cmds)

    def __str__(self) -> str:
        if not self.cmds:
            return "⊥"
        return "⟨" + ", ".join(str(c) for c in self.cmds) + "⟩"


def _topological_order(
    edges: dict[Command, set[Command]]
) -> list[Command] | None:
    """Kahn's algorithm with deterministic tie-breaking; None on a cycle."""
    indegree = {node: 0 for node in edges}
    for successors in edges.values():
        for succ in successors:
            indegree[succ] += 1
    available = sorted(
        (node for node, deg in indegree.items() if deg == 0), key=_sort_key
    )
    order: list[Command] = []
    while available:
        node = available.pop(0)
        order.append(node)
        inserted = False
        for succ in sorted(edges[node], key=_sort_key):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                available.append(succ)
                inserted = True
        if inserted:
            available.sort(key=_sort_key)
    if len(order) != len(edges):
        return None
    return order


def history_from_commands(
    conflict: ConflictRelation, cmds: Iterable[Command]
) -> CommandHistory:
    """Convenience constructor: ``⊥ • ⟨cmds⟩``."""
    return CommandHistory.bottom(conflict).extend(cmds)
