"""Command histories: the c-struct set of generic broadcast (Section 3.3).

A command history is a partially ordered set of commands in which every
conflicting pair (under a :class:`repro.cstruct.commands.ConflictRelation`)
is ordered.  Following Section 3.3.1 we represent histories as command
sequences; a sequence denotes the poset in which ``a ≺ b`` iff ``a`` and
``b`` conflict and ``a`` occurs first.

Semantics of the representation
-------------------------------

Two sequences denote the same history iff they contain the same commands
and order every conflicting pair identically; ``CommandHistory``
canonicalizes its sequence (a deterministic minimal-key linear extension of
the conflict order) so that ``__eq__``/``__hash__`` are structural.

The extension order has a direct characterization which all operators are
built on.  ``h ⊑ g`` (``g = h • σ`` for some σ) iff:

1. ``set(h) ⊆ set(g)``;
2. every conflicting pair of ``h`` keeps its relative order in ``g``;
3. every command of ``g`` outside ``h`` that conflicts with a command of
   ``h`` occurs after it in ``g`` (appended commands follow all conflicting
   existing ones).

Incremental constraint digraph
------------------------------

Every history carries, next to its canonical sequence, its *constraint
digraph*: a map ``_preds`` from each command to the frozenset of
conflicting commands ordered before it.  The digraph is built once per
command -- on :meth:`append`/:meth:`extend`, by checking the new command
against the existing ones -- and every later operation reuses it instead of
re-deriving conflict pairs, so no lattice operation between already-built
histories calls the conflict relation on a pair of shared commands again:

* ``h ⊑ g``  ⟺  ``set(h) ⊆ set(g)`` and ``g``'s predecessor sets restricted
  to ``h``'s commands equal ``h``'s (conditions 2-3 above collapse to
  per-command frozenset equality).  Cost: O(|h| + conflicts(h)) set
  operations, *independent of the suffix g \\ h* -- a suffix-diff walk from
  the shared prefix frontier.
* ``glb`` is a single greedy scan of one operand keeping exactly the
  commands whose predecessor sets are already kept on both sides:
  O(|h| + conflicts) with the result digraph obtained by restriction.
* compatibility and ``lub`` merge the two digraphs in one pass:
  ``h`` and ``g`` are compatible iff (a) no conflicting pair has one
  command exclusive to each side and (b) every shared command has
  *identical* predecessor sets in both; when they are, the union digraph is
  acyclic and the lub is its canonical (min-key Kahn) linear extension.
  Only check (a) calls the conflict relation, and only on the
  O(|h \\ g| · |g \\ h|) cross-exclusive pairs -- the suffix diff -- never
  on the shared prefix.

Correctness of the digraph characterizations (equality of predecessor sets
⟺ conditions 2-3; cross-exclusive conflict ⟺ incompatibility; acyclicity
of the merged digraph when the checks pass) is argued in the method
docstrings and executed against the paper-verbatim recursive operators of
:mod:`repro.cstruct.history_ops` by the property tests in
``tests/test_history_digraph.py``.

The paper's recursive ``Prefix``/``AreCompatible``/``⊔`` operators are kept
verbatim in :mod:`repro.cstruct.history_ops` and property-tested equivalent
to these direct implementations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cstruct.base import CStruct, IncompatibleError
from repro.cstruct.commands import Command, ConflictRelation

Preds = dict[Command, frozenset[Command]]


def _sort_key(cmd: Command) -> tuple:
    """Deterministic total order on commands used for canonicalization.

    Memoized on the command (the ``repr`` of the argument is not free and
    canonical inserts consult keys repeatedly).
    """
    key = cmd.__dict__.get("_skey")
    if key is None:
        key = (cmd.cid, cmd.op, cmd.key, repr(cmd.arg))
        object.__setattr__(cmd, "_skey", key)
    return key


def _digraph_of(seq: Sequence[Command], conflict: ConflictRelation) -> Preds:
    """Per-command conflicting-predecessor sets of *seq*.

    Deduplicates (keeping first occurrences) and performs the one
    O(n·conflicts) pass over the sequence that every later lattice
    operation reuses.  The result depends only on the *history* denoted by
    *seq* (same commands, same order of conflicting pairs), not on the
    particular linear extension, because only conflicting pairs -- whose
    order is representation-invariant -- contribute edges.
    """
    preds: Preds = {}
    order: list[Command] = []
    for cmd in seq:
        if cmd in preds:
            continue
        preds[cmd] = frozenset(c for c in order if conflict(c, cmd))
        order.append(cmd)
    return preds


def _canonical_insert(
    seq, conflict: ConflictRelation, cmd: Command, key: tuple, buckets, bucket_key
) -> tuple[frozenset[Command], int]:
    """(predecessor set, canonical position) for inserting *cmd* into *seq*.

    With partition buckets the conflict checks touch only the command's
    bucket and the last-predecessor position is found by a backward scan
    (conflicting predecessors cluster near the tail of growing histories);
    without partition information the original full forward scan runs.
    """
    if bucket_key is None:
        plist: list[Command] = []
        last_conflict = -1
        for index, existing in enumerate(seq):
            if conflict(existing, cmd):
                plist.append(existing)
                last_conflict = index
        pset = frozenset(plist)
    else:
        pset = frozenset(c for c in buckets.get(bucket_key, ()) if conflict(c, cmd))
        last_conflict = -1
        if pset:
            for index in range(len(seq) - 1, -1, -1):
                if seq[index] in pset:
                    last_conflict = index
                    break
    position = len(seq)
    for index in range(last_conflict + 1, len(seq)):
        if key < _sort_key(seq[index]):
            position = index
            break
    return pset, position


def _kahn_min_key(preds: Preds) -> tuple[Command, ...]:
    """Canonical linear extension of a constraint digraph.

    Kahn's algorithm emitting, at every step, the minimal-``_sort_key``
    command among those whose conflicting predecessors have all been
    emitted; insertion order breaks exact key ties deterministically.
    O((V + E) log V).  Raises :class:`IncompatibleError` on a cycle (never
    for digraphs built from a sequence; defensively for merged digraphs).
    """
    indegree = {cmd: len(ps) for cmd, ps in preds.items()}
    succs: dict[Command, list[Command]] = {cmd: [] for cmd in preds}
    for cmd, ps in preds.items():
        for p in ps:
            succs[p].append(cmd)
    tie = {cmd: index for index, cmd in enumerate(preds)}
    heap = [
        (_sort_key(cmd), tie[cmd], cmd) for cmd, deg in indegree.items() if deg == 0
    ]
    heapq.heapify(heap)
    order: list[Command] = []
    while heap:
        _, _, node = heapq.heappop(heap)
        order.append(node)
        for succ in succs[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, (_sort_key(succ), tie[succ], succ))
    if len(order) != len(preds):
        raise IncompatibleError("constraint digraph has a cycle")
    return tuple(order)


def _canonical(seq: Sequence[Command], conflict: ConflictRelation) -> tuple[Command, ...]:
    """Deterministic linear extension of the conflict order of *seq*.

    Equivalent sequences (same commands, same order of conflicting pairs)
    canonicalize identically because the digraph -- and hence the min-key
    Kahn order -- depends only on the induced partial order.
    """
    return _kahn_min_key(_digraph_of(seq, conflict))


@dataclass(frozen=True)
class CommandHistory(CStruct):
    """A command history: canonical command sequence + constraint digraph.

    ``cmds`` is the canonical linear extension (the structural identity:
    ``__eq__``/``__hash__`` use it); ``_preds`` maps every command to the
    frozenset of conflicting commands ordered before it.  Both are built
    once in ``__post_init__`` (O(n²) conflict checks, untrusted input) or
    threaded through the ``_trusted`` fast paths (no conflict re-checks).
    """

    cmds: tuple[Command, ...]
    conflict: ConflictRelation
    _set: frozenset[Command] = field(
        init=False, repr=False, compare=False, default=frozenset()
    )
    _preds: Preds = field(init=False, repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        preds = _digraph_of(self.cmds, self.conflict)
        canonical = _kahn_min_key(preds)
        object.__setattr__(self, "cmds", canonical)
        object.__setattr__(self, "_set", frozenset(canonical))
        object.__setattr__(self, "_preds", preds)

    def _index(self) -> tuple[dict, tuple | None]:
        """Lazily built append index: (conflict buckets, max sort key).

        The buckets group commands by ``conflict.partition`` so a new
        command is checked against its own bucket only; the max key makes
        the common append (a fresh command with the largest sort key --
        e.g. monotonically increasing ids) an O(1) tail insert.  Built on
        first use so short-lived lattice results (quorum glbs, merge
        candidates) never pay for it.
        """
        buckets = getattr(self, "_buckets", None)
        if buckets is None:
            grouped: dict = {}
            partition = self.conflict.partition
            max_key: tuple | None = None
            for cmd in self.cmds:
                grouped.setdefault(partition(cmd), []).append(cmd)
                key = _sort_key(cmd)
                if max_key is None or key > max_key:
                    max_key = key
            buckets = {bucket: tuple(members) for bucket, members in grouped.items()}
            object.__setattr__(self, "_buckets", buckets)
            object.__setattr__(self, "_max_key", max_key)
        return buckets, getattr(self, "_max_key")

    # -- construction -------------------------------------------------------

    @classmethod
    def _trusted(
        cls,
        cmds: tuple[Command, ...],
        conflict: ConflictRelation,
        preds: Preds,
        buckets: dict | None = None,
        max_key: tuple | None = None,
    ) -> "CommandHistory":
        """Build from an already-canonical sequence and its digraph.

        Used by :meth:`append`, :meth:`extend`, :meth:`glb` and
        :meth:`lub`, whose outputs are canonical by construction:
        ``append``/``extend`` perform canonical inserts; ``glb`` keeps a
        subsequence whose greedy candidate sets match the original's (any
        kept command has no dropped conflicting predecessor); ``lub`` emits
        a min-key Kahn order, which *is* the canonical order.  Each caller
        also supplies the digraph of its result, so no conflict pair is
        ever re-derived.  Property tests verify every claim against full
        re-canonicalization.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "cmds", cmds)
        object.__setattr__(obj, "conflict", conflict)
        object.__setattr__(obj, "_set", frozenset(cmds))
        object.__setattr__(obj, "_preds", preds)
        if buckets is not None:
            object.__setattr__(obj, "_buckets", buckets)
            object.__setattr__(obj, "_max_key", max_key)
        return obj

    @classmethod
    def bottom(cls, conflict: ConflictRelation) -> "CommandHistory":
        """The empty history ⊥ for the given conflict relation."""
        return cls((), conflict)

    @classmethod
    def of(cls, conflict: ConflictRelation, *cmds: Command) -> "CommandHistory":
        """``⊥ • ⟨cmds⟩``."""
        return cls.bottom(conflict).extend(cmds)

    def predecessors(self, cmd: Command) -> frozenset:
        """The conflicting commands ordered before *cmd* (∅ if absent).

        This is the constraint digraph's in-edge set -- final once *cmd*
        is in a learned history: histories only grow compatibly, and
        compatible histories agree on the predecessor set of every shared
        command, so any consumer (e.g. the shard layer's cross-group
        barrier execution) may act on it without waiting for more.
        """
        return self._preds.get(cmd, frozenset())

    def append(self, cmd: Command) -> "CommandHistory":
        """``self • cmd``: add *cmd* after every conflicting existing command.

        One O(n) conflict scan computes both the canonical insert position
        and the new command's predecessor set; existing commands' sets are
        unchanged (the new command is a successor of everything it
        conflicts with), so the digraph extends by a single entry.
        """
        if cmd in self._set:
            return self
        conflict = self.conflict
        buckets, max_key = self._index()
        key = _sort_key(cmd)
        bucket_key = conflict.partition(cmd)
        if max_key is None or key > max_key:
            # Tail insert: no existing command has a larger sort key, so
            # the canonical position is the end; conflicting predecessors
            # come from the command's bucket alone.
            candidates = (
                self.cmds if bucket_key is None else buckets.get(bucket_key, ())
            )
            pset = frozenset(c for c in candidates if conflict(c, cmd))
            new_cmds = self.cmds + (cmd,)
            new_max = key
        else:
            pset, position = _canonical_insert(
                self.cmds, conflict, cmd, key, buckets, bucket_key
            )
            new_cmds = self.cmds[:position] + (cmd,) + self.cmds[position:]
            new_max = max_key
        preds = dict(self._preds)
        preds[cmd] = pset
        new_buckets = dict(buckets)
        new_buckets[bucket_key] = new_buckets.get(bucket_key, ()) + (cmd,)
        return CommandHistory._trusted(
            new_cmds, self.conflict, preds, buckets=new_buckets, max_key=new_max
        )

    def extend(self, cmds: Iterable[Command]) -> "CommandHistory":
        """``self • ⟨c1, ..., cm⟩``, batched.

        Performs the canonical inserts on one working list and copies the
        digraph once, so extending by *m* commands costs O(m·n) conflict
        checks plus a single O(n + m) rebuild instead of *m* tuple/dict
        copies.
        """
        conflict = self.conflict
        seq: list[Command] | None = None
        preds: Preds | None = None
        seen: set[Command] | None = None
        buckets: dict | None = None
        max_key: tuple | None = None
        for cmd in cmds:
            if seq is None:
                if cmd in self._set:
                    continue
                seq = list(self.cmds)
                preds = dict(self._preds)
                seen = set(self._set)
                base_buckets, max_key = self._index()
                buckets = dict(base_buckets)
            if cmd in seen:
                continue
            key = _sort_key(cmd)
            bucket_key = conflict.partition(cmd)
            if max_key is None or key > max_key:
                candidates = seq if bucket_key is None else buckets.get(bucket_key, ())
                pset = frozenset(c for c in candidates if conflict(c, cmd))
                seq.append(cmd)
                max_key = key
            else:
                pset, position = _canonical_insert(
                    seq, conflict, cmd, key, buckets, bucket_key
                )
                seq.insert(position, cmd)
            seen.add(cmd)
            preds[cmd] = pset
            # Touched buckets become lists (O(1) appends across the batch)
            # and are tuple-ized once below -- not per command.
            members = buckets.get(bucket_key, ())
            if type(members) is not list:
                members = list(members)
                buckets[bucket_key] = members
            members.append(cmd)
        if seq is None:
            return self
        final_buckets = {
            bucket: tuple(members) if type(members) is list else members
            for bucket, members in buckets.items()
        }
        return CommandHistory._trusted(
            tuple(seq), conflict, preds, buckets=final_buckets, max_key=max_key
        )

    # -- order ----------------------------------------------------------------

    def _pred_counts(self) -> tuple[int, ...]:
        """Per-position predecessor-set sizes, computed once per instance."""
        counts = getattr(self, "_counts", None)
        if counts is None:
            preds = self._preds
            counts = tuple(len(preds[cmd]) for cmd in self.cmds)
            object.__setattr__(self, "_counts", counts)
        return counts

    def leq(self, other: CStruct) -> bool:
        """``self ⊑ other`` as one pointer walk over the two sequences.

        ``self ⊑ other`` iff ``self.cmds`` occurs as a subsequence of
        ``other.cmds`` with equal predecessor-set *sizes* at every matched
        position:

        * a canonical sequence orders every conflicting pair by position,
          and extending a history never changes an existing command's
          predecessor set, so ``self ⊑ other`` forces ``self``'s canonical
          sequence to appear as the restriction of ``other``'s (condition 2
          of the extension order ⟺ the subsequence match succeeds);
        * given the match, every predecessor of ``c`` in ``self`` is one in
          ``other`` (``preds_self[c] ⊆ preds_other[c]``), so size equality
          ⟺ set equality ⟺ no command outside ``self`` was ordered
          *before* ``c`` (condition 3).

        Cost: O(|other|) identity comparisons and integer compares -- no
        hashing, no set operations, no conflict-relation calls.
        """
        if not isinstance(other, CommandHistory):
            return NotImplemented
        self._require_same_relation(other)
        if self is other:
            return True
        n = len(self.cmds)
        if n > len(other.cmds):
            return False
        if other.cmds[:n] == self.cmds:
            # Literal prefix: conditions 2-3 hold outright (every appended
            # command sits after every conflicting prefix command), and no
            # count check is needed -- extras only follow.
            return True
        sc = self.cmds
        scounts = self._pred_counts()
        ocounts = other._pred_counts()
        i = 0
        expected = sc[0]
        for j, cmd in enumerate(other.cmds):
            if cmd is expected or cmd == expected:
                if scounts[i] != ocounts[j]:
                    return False
                i += 1
                if i == n:
                    return True
                expected = sc[i]
        return False

    # -- lattice ----------------------------------------------------------------

    def glb(self, other: "CommandHistory") -> "CommandHistory":
        """Greatest lower bound: the longest common prefix history.

        Greedy scan of ``self``: a command is kept iff it appears in both
        histories and *all* of its conflicting predecessors -- on either
        side -- were kept.  (A dropped predecessor on the ``self`` side is
        exactly a member of ``_preds[cmd]`` not kept; the predecessors on
        the ``other`` side are ``other._preds[cmd]``.)  The result digraph
        is the restriction of ``self``'s: a kept command's predecessors
        were all required kept.  O(|self| + conflicts) set operations, no
        conflict-relation calls.
        """
        self._require_same_relation(other)
        if self is other or self.cmds == other.cmds:
            return self
        # Directional fast paths: when one history extends the other (the
        # steady-state shape of quorum glbs, where peers lag on a shared
        # growth path), the glb is the smaller history -- decided by one
        # suffix-diff leq, no scan.
        if len(self.cmds) <= len(other.cmds):
            if self.leq(other):
                return self
        elif other.leq(self):
            return other
        kept: list[Command] = []
        kept_set: set[Command] = set()
        preds: Preds = {}
        other_set = other._set
        other_preds = other._preds
        for cmd in self.cmds:
            if cmd not in other_set:
                continue
            mine = self._preds[cmd]
            if not mine <= kept_set or not other_preds[cmd] <= kept_set:
                continue
            kept.append(cmd)
            kept_set.add(cmd)
            preds[cmd] = mine
        return CommandHistory._trusted(tuple(kept), self.conflict, preds)

    def _merged_digraph(self, other: "CommandHistory") -> Preds | None:
        """Union constraint digraph, or ``None`` when incompatible.

        Compatibility needs exactly two checks:

        * no conflicting pair with one command exclusive to each side --
          such a pair would have to be appended after the other on both
          sides at once (the only conflict-relation calls, on the
          cross-exclusive suffix diff);
        * every shared command has identical predecessor sets in both
          histories -- a predecessor present on one side only is either a
          shared command ordered oppositely (condition 2 violated) or a
          command the other side must append *after* the shared one
          (condition 3 violated).

        When both hold the union digraph is acyclic: any predecessor of a
        shared command is itself shared (its membership in the equal sets
        forces it into both histories), so a constraint path between
        shared commands stays inside the shared commands and is ordered
        identically by both operands; a cycle would therefore have to
        increase one operand's position monotonically all the way around.
        """
        self._require_same_relation(other)
        conflict = self.conflict
        other_set = other._set
        self_only = [c for c in self.cmds if c not in other_set]
        other_only = [c for c in other.cmds if c not in self._set]
        for u in self_only:
            for v in other_only:
                if conflict(u, v):
                    return None
        other_preds = other._preds
        if len(self_only) < len(self.cmds):  # the intersection is non-empty
            for cmd, ps in self._preds.items():
                if cmd not in other_set:
                    continue
                theirs = other_preds[cmd]
                if theirs is not ps and theirs != ps:
                    return None
        merged = dict(self._preds)
        for cmd in other_only:
            merged[cmd] = other_preds[cmd]
        return merged

    def is_compatible(self, other: CStruct) -> bool:
        if not isinstance(other, CommandHistory):
            return False
        self._require_same_relation(other)
        if self is other:
            return True
        # Containment (the steady-state case) implies compatibility and is
        # decidable by the O(n) suffix-diff leq, skipping the merge.
        smaller, larger = (
            (self, other) if len(self.cmds) <= len(other.cmds) else (other, self)
        )
        if smaller.leq(larger):
            return True
        return self._merged_digraph(other) is not None

    def lub(self, other: "CommandHistory") -> "CommandHistory":
        """Least upper bound: canonical linear extension of the merged digraph.

        Directional fast paths (one operand extends the other -- the
        steady-state shape of acceptor and learner merges) resolve with a
        single suffix-diff ``leq`` and no digraph rebuild; only genuinely
        diverging histories pay for the merge and the Kahn pass.
        """
        self._require_same_relation(other)
        if self is other:
            return self
        if not other.cmds:
            return self
        if not self.cmds:
            return other
        if len(self.cmds) >= len(other.cmds):
            if other.leq(self):
                return self
        elif self.leq(other):
            return other
        merged = self._merged_digraph(other)
        if merged is None:
            raise IncompatibleError(f"histories are incompatible: {self} vs {other}")
        return CommandHistory._trusted(_kahn_min_key(merged), self.conflict, merged)

    # -- contents ---------------------------------------------------------------

    def contains(self, cmd: Command) -> bool:
        return cmd in self._set

    def command_set(self) -> frozenset[Command]:
        return self._set

    def linear_extension(self) -> tuple[Command, ...]:
        """A sequential execution order consistent with the partial order."""
        return self.cmds

    def delta_after(self, prefix: "CommandHistory") -> tuple[Command, ...]:
        """Commands of ``self`` not in *prefix*, in execution order.

        With ``prefix ⊑ self`` the concatenation of *prefix*'s execution
        order and this delta is a linear extension of ``self`` -- the basis
        of incremental command execution in replicas.
        """
        return tuple(cmd for cmd in self.cmds if cmd not in prefix._set)

    # -- stable-prefix truncation (checkpointing support) -----------------------

    def stable_split(self, members) -> tuple["CommandHistory", "CommandHistory"]:
        """Split into ``(prefix, tail)`` at the largest prefix inside *members*.

        ``prefix`` is the largest *downward-closed* sub-history whose
        commands all belong to *members*: a command is taken iff it is a
        member and every conflicting predecessor was taken.  That makes
        ``prefix ⊑ self`` by construction (conditions 2-3 of the extension
        order hold outright: kept commands keep their relative order, and a
        dropped command conflicting with a kept one can only be a
        *successor* -- a conflicting predecessor would have blocked the
        keep).  ``tail`` holds the remaining commands with the digraph
        edges into ``prefix`` dropped; those edges are implicit in the
        split (a genuine prefix orders every cross-conflicting pair
        prefix-first), so ``prefix • tail-order`` reconstructs ``self``
        exactly -- the invariant the checkpointing layer relies on, proven
        against the paper operators in ``tests/test_history_digraph.py``.

        ``prefix``'s canonical sequence is the restriction of ``self``'s
        (availability of prefix commands depends only on prefix commands,
        so the min-key Kahn order is preserved under restriction);
        ``tail``'s is re-derived by one Kahn pass because dropping the
        cross edges can *relax* its canonical order.  O(n) set operations
        plus O(|tail| log |tail|); no conflict-relation calls.
        """
        if not hasattr(members, "isdisjoint"):
            # Plain iterables are materialized; set-likes (including the
            # compact SessionMembers claims) are used through membership.
            members = frozenset(members)
        if not members or not self.cmds:
            return CommandHistory.bottom(self.conflict), self
        taken: list[Command] = []
        taken_set: set[Command] = set()
        for cmd in self.cmds:
            if cmd in members and self._preds[cmd] <= taken_set:
                taken.append(cmd)
                taken_set.add(cmd)
        if not taken:
            return CommandHistory.bottom(self.conflict), self
        if len(taken) == len(self.cmds):
            return self, CommandHistory.bottom(self.conflict)
        prefix_preds = {cmd: self._preds[cmd] for cmd in taken}
        prefix = CommandHistory._trusted(tuple(taken), self.conflict, prefix_preds)
        tail_preds: Preds = {
            cmd: self._preds[cmd] - taken_set
            for cmd in self.cmds
            if cmd not in taken_set
        }
        tail = CommandHistory._trusted(
            _kahn_min_key(tail_preds), self.conflict, tail_preds
        )
        return prefix, tail

    def without(self, members) -> "CommandHistory":
        """``self`` with its largest *members*-prefix truncated away.

        The tail of :meth:`stable_split`: exactly the commands that are
        not part of a downward-closed *members* prefix.  Identity when no
        member occurs at the history's frontier.  This is the per-message
        normalization of the checkpointing layer -- receivers strip their
        own stable base from incoming c-structs before comparing/merging.
        """
        if not hasattr(members, "isdisjoint"):
            members = frozenset(members)
        if not members or members.isdisjoint(self._set):
            return self
        return self.stable_split(members)[1]

    # -- plumbing ---------------------------------------------------------------

    def _require_same_relation(self, other: "CommandHistory") -> None:
        if self.conflict != other.conflict:
            raise ValueError(
                "cannot combine histories under different conflict relations: "
                f"{self.conflict!r} vs {other.conflict!r}"
            )

    def __len__(self) -> int:
        return len(self.cmds)

    def __str__(self) -> str:
        if not self.cmds:
            return "⊥"
        return "⟨" + ", ".join(str(c) for c in self.cmds) + "⟩"


def history_from_commands(
    conflict: ConflictRelation, cmds: Iterable[Command]
) -> CommandHistory:
    """Convenience constructor: ``⊥ • ⟨cmds⟩``."""
    return CommandHistory.bottom(conflict).extend(cmds)
