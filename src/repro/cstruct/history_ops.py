"""The paper's command-history operators, implemented verbatim (Section 3.3.1).

The paper defines recursive operators over sequence representations of
command histories:

* ``Prefix(H, I)`` -- the longest common prefix of two histories (their ⊓);
* ``AreCompatible(H, I, A)`` -- whether two histories have a common upper
  bound (``A`` accumulates the "ancestors" removed from ``H``);
* ``H ⊔ I`` -- the least upper bound of two *compatible* histories;
* set-level ``⊓ S`` and ``⊔ S`` by pairwise iteration.

These functions operate on raw command sequences plus a conflict relation,
exactly as written in the paper (with its obvious typos fixed: ``A``/``B``
in the ⊔ definition read ``H``/``I``).  They exist to validate the direct
implementations in :mod:`repro.cstruct.history`: the property-based tests
assert that both formulations agree on randomized inputs.
"""

from __future__ import annotations

from typing import Sequence

from repro.cstruct.commands import Command, ConflictRelation

Seq = tuple[Command, ...]


def _remove(seq: Sequence[Command], cmd: Command) -> Seq:
    """``seq \\ cmd``: drop the (single) occurrence of *cmd*."""
    return tuple(c for c in seq if c != cmd)


def descendants(
    cmd: Command, seq: Sequence[Command], conflict: ConflictRelation
) -> Seq:
    """``Descendants(cmd, seq)``: commands of *seq* transitively ordered after *cmd*.

    A command of *seq* is a descendant if it conflicts with *cmd* or with an
    earlier descendant.
    """
    anchors: list[Command] = [cmd]
    result: list[Command] = []
    for candidate in seq:
        if any(conflict(candidate, anchor) for anchor in anchors):
            anchors.append(candidate)
            result.append(candidate)
    return tuple(result)


def prefix(h: Sequence[Command], i: Sequence[Command], conflict: ConflictRelation) -> Seq:
    """``Prefix(H, I)``: the longest common prefix (glb) of two histories."""
    h = tuple(h)
    i = tuple(i)
    result: list[Command] = []
    while h and i:
        head, tail = h[0], h[1:]
        head_positions = [j for j, c in enumerate(i) if c == head]
        in_common_prefix = any(
            not any(conflict(head, i[k]) for k in range(j)) for j in head_positions
        )
        if in_common_prefix:
            result.append(head)
            h = tail
            i = _remove(i, head)
        else:
            survivors = set(tail) - set(descendants(head, tail, conflict))
            h = tuple(c for c in tail if c in survivors)
    return tuple(result)


def are_compatible(
    h: Sequence[Command],
    i: Sequence[Command],
    conflict: ConflictRelation,
    ancestors: frozenset[Command] = frozenset(),
) -> bool:
    """``AreCompatible(H, I, A)``: whether a common upper bound exists."""
    h = tuple(h)
    i = tuple(i)
    while True:
        if not h or not i:
            return True
        head, tail = h[0], h[1:]
        conflicting_before_head = any(
            conflict(head, i[j]) and not any(head == i[k] for k in range(j))
            for j in range(len(i))
        )
        if conflicting_before_head:
            return False
        if head in i:
            if any(conflict(head, ancestor) for ancestor in ancestors):
                return False
            h = tail
            i = _remove(i, head)
        else:
            h = tail
            ancestors = ancestors | {head}


def lub(h: Sequence[Command], i: Sequence[Command]) -> Seq:
    """``H ⊔ I`` for compatible histories (callers check compatibility)."""
    h = tuple(h)
    i = tuple(i)
    result: list[Command] = []
    while h:
        head, tail = h[0], h[1:]
        result.append(head)
        h = tail
        if head in i:
            i = _remove(i, head)
    result.extend(i)
    return tuple(result)


def glb_many(seqs: Sequence[Sequence[Command]], conflict: ConflictRelation) -> Seq:
    """``⊓ S`` by pairwise iteration, as in the paper."""
    if not seqs:
        raise ValueError("glb of an empty set is undefined")
    result = tuple(seqs[0])
    for seq in seqs[1:]:
        result = prefix(result, tuple(seq), conflict)
    return result


def lub_many(seqs: Sequence[Sequence[Command]]) -> Seq:
    """``⊔ S`` by pairwise iteration for a compatible set, as in the paper."""
    if not seqs:
        raise ValueError("lub of an empty set is undefined")
    result = tuple(seqs[0])
    for seq in seqs[1:]:
        result = lub(result, tuple(seq))
    return result
