"""Rolling digests, delta trails and id-interval runs.

The delta wire protocol replaces "re-send the whole c-struct" with
"send the unsent suffix against a stamped base".  A *stamp* is the pair
``(size, digest)`` of a command set: ``size`` orders states on one
monotone stream, and ``digest`` (an XOR of per-command 64-bit hashes,
order-independent because the underlying object is a *set*) detects
divergence -- two honest peers whose stamps match hold the same command
set except with probability ~2^-64 per comparison.  On mismatch the
protocol falls back to a full cumulative message (fetch-on-mismatch
repair), so a hash collision can cost a redundant transfer but never
correctness: learners still run the quorum/glb machinery on the
reconstructed values.

Three building blocks live here, engine-agnostic:

* :func:`command_hash` / :func:`digest_of` / :func:`digest_add` -- the
  rolling set digest.  Hashing is ``blake2b(repr(cmd))`` rather than
  Python's ``hash()``: the latter is salted per process and would make
  stamps meaningless across OS-process nodes (``net/``).
* :class:`DeltaTrail` -- a bounded ring of recent extensions addressable
  by base stamp, so a responder can answer a stamped catch-up poll with
  exactly the suffix the poller is missing (or a cheap "you're current"
  ack) instead of its full vote.
* ``runs_*`` -- sorted disjoint inclusive integer intervals, the compact
  representation behind per-client session windows
  (:mod:`repro.core.sessions`): a client's delivered sequence numbers
  collapse to O(gaps) interval cells instead of O(history) set entries.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Iterable

_DIGEST_BYTES = 8


def command_hash(cmd: object) -> int:
    """A deterministic 64-bit hash of *cmd*, stable across processes.

    Commands are frozen dataclasses whose ``repr`` shows exactly their
    fields (cached non-field state is excluded), so the repr is a
    canonical byte string wherever the command travels.
    """
    raw = repr(cmd).encode("utf-8", "surrogatepass")
    return int.from_bytes(
        hashlib.blake2b(raw, digest_size=_DIGEST_BYTES).digest(), "big"
    )


def digest_of(cmds: Iterable) -> int:
    """The XOR set digest of *cmds* (order-independent)."""
    digest = 0
    for cmd in cmds:
        digest ^= command_hash(cmd)
    return digest


def digest_add(digest: int, cmds: Iterable) -> int:
    """*digest* rolled forward by the (disjoint) additions *cmds*."""
    for cmd in cmds:
        digest ^= command_hash(cmd)
    return digest


class DeltaTrail:
    """A bounded ring of recent extensions, addressable by base stamp.

    ``append`` records each extension together with the (size, digest)
    stamp of the state it extended; ``suffix_from(size, digest)``
    reassembles the concatenation of every extension after a matching
    stamp -- exactly the delta a peer holding that state is missing.
    ``None`` means the stamp is unknown (too old, or a diverged peer):
    the caller falls back to a full transfer.
    """

    def __init__(self, limit: int = 128) -> None:
        self.limit = limit
        self.size = 0
        self.digest = 0
        self._entries: deque = deque()

    def reset(self, size: int, digest: int) -> None:
        """Forget the trail and restart from the state stamped here."""
        self._entries.clear()
        self.size = size
        self.digest = digest

    def append(self, cmds: Iterable) -> None:
        cmds = tuple(cmds)
        if not cmds:
            return
        self._entries.append((self.size, self.digest, cmds))
        self.size += len(cmds)
        self.digest = digest_add(self.digest, cmds)
        while len(self._entries) > self.limit:
            self._entries.popleft()

    def suffix_from(self, size: int, digest: int) -> tuple | None:
        if size == self.size and digest == self.digest:
            return ()
        out: list = []
        found = False
        for base_size, base_digest, cmds in self._entries:
            if found:
                out.extend(cmds)
            elif base_size == size and base_digest == digest:
                found = True
                out.extend(cmds)
        return tuple(out) if found else None


# -- integer interval runs -----------------------------------------------------
#
# A *runs* value is a sequence of inclusive (lo, hi) pairs, sorted and
# disjoint with gaps of at least one between consecutive runs.  The
# mutating helpers (`runs_add`, `runs_clamp`) work on lists of [lo, hi]
# lists; the pure helpers accept any normalized pair sequence and return
# tuples of tuples (the canonical wire/snapshot form).


def runs_add(runs: list, value: int) -> bool:
    """Insert *value*; True if it was new.  Amortized O(1) for in-order
    arrivals (the common case: sequence numbers), O(log n) otherwise."""
    if not runs:
        runs.append([value, value])
        return True
    last = runs[-1]
    if value == last[1] + 1:
        last[1] = value
        return True
    if last[0] <= value <= last[1]:
        return False
    if value > last[1] + 1:
        runs.append([value, value])
        return True
    lo, hi = 0, len(runs) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        run = runs[mid]
        if value < run[0] - 1:
            hi = mid - 1
        elif value > run[1] + 1:
            lo = mid + 1
        else:
            if run[0] <= value <= run[1]:
                return False
            if value == run[0] - 1:
                run[0] = value
                if mid > 0 and runs[mid - 1][1] + 1 == value:
                    run[0] = runs[mid - 1][0]
                    del runs[mid - 1]
            else:  # value == run[1] + 1
                run[1] = value
                if mid + 1 < len(runs) and runs[mid + 1][0] - 1 == value:
                    run[1] = runs[mid + 1][1]
                    del runs[mid + 1]
            return True
    runs.insert(lo, [value, value])
    return True


def runs_contains(runs, value: int) -> bool:
    lo, hi = 0, len(runs) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        run = runs[mid]
        if value < run[0]:
            hi = mid - 1
        elif value > run[1]:
            lo = mid + 1
        else:
            return True
    return False


def runs_count(runs) -> int:
    return sum(hi - lo + 1 for lo, hi in runs)


def runs_clamp(runs: list, floor: int) -> None:
    """Drop every value <= *floor* (window compaction)."""
    while runs and runs[0][1] <= floor:
        del runs[0]
    if runs and runs[0][0] <= floor:
        runs[0][0] = floor + 1


def runs_merge(a, b) -> tuple:
    """The union of two runs values, normalized."""
    out: list = []
    for lo, hi in sorted([tuple(r) for r in a] + [tuple(r) for r in b]):
        if out and lo <= out[-1][1] + 1:
            if hi > out[-1][1]:
                out[-1][1] = hi
        else:
            out.append([lo, hi])
    return tuple((lo, hi) for lo, hi in out)


def runs_intersect(a, b) -> tuple:
    out: list = []
    a = [tuple(r) for r in a]
    b = [tuple(r) for r in b]
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo <= hi:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return tuple(out)


def runs_issubset(a, b) -> bool:
    return runs_intersect(a, b) == tuple(tuple(r) for r in a)
