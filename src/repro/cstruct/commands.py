"""Commands and conflict relations.

Commands are the elements proposed to the agreement protocols.  A conflict
relation (Section 3.3: the symmetric relation ``≍``) states which pairs of
commands must be ordered; commuting pairs may be learned in either order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet


@dataclass(frozen=True, order=True)
class Command:
    """An application command.

    Attributes:
        cid: Unique command identifier (ties break deterministically on it).
        op: Operation name, e.g. ``"put"``, ``"get"``, ``"inc"``.
        key: The datum the operation touches (used by key-based conflicts).
        arg: Optional hashable operation argument.
    """

    cid: str
    op: str = "put"
    key: str = ""
    arg: Any = None

    def __str__(self) -> str:
        suffix = f"={self.arg}" if self.arg is not None else ""
        target = f"({self.key}){suffix}" if self.key else suffix
        return f"{self.op}{target}#{self.cid}"


class ConflictRelation:
    """Base class for symmetric conflict relations over commands."""

    def conflicts(self, a: Command, b: Command) -> bool:
        raise NotImplementedError

    def __call__(self, a: Command, b: Command) -> bool:
        return self.conflicts(a, b)


@dataclass(frozen=True)
class AlwaysConflict(ConflictRelation):
    """Every pair of distinct commands conflicts (total order / consensus)."""

    def conflicts(self, a: Command, b: Command) -> bool:
        return a != b


@dataclass(frozen=True)
class NeverConflict(ConflictRelation):
    """No commands conflict (command-set semantics)."""

    def conflicts(self, a: Command, b: Command) -> bool:
        return False


@dataclass(frozen=True)
class KeyConflict(ConflictRelation):
    """Commands conflict iff they touch the same key and one of them writes.

    Read-only operations (``op`` in :attr:`read_ops`) commute with each
    other; everything else on the same key conflicts.  This is the classic
    generic-broadcast conflict relation for a replicated key-value store.
    """

    read_ops: FrozenSet[str] = frozenset({"get", "read"})

    def conflicts(self, a: Command, b: Command) -> bool:
        if a == b:
            return False
        if a.key != b.key:
            return False
        both_reads = a.op in self.read_ops and b.op in self.read_ops
        return not both_reads


@dataclass(frozen=True)
class CustomConflict(ConflictRelation):
    """Conflict relation defined by an arbitrary symmetric predicate.

    The predicate is symmetrized defensively (``fn(a, b) or fn(b, a)``), so
    callers may pass one-sided definitions.  Equality of two
    ``CustomConflict`` instances is identity of the predicate.
    """

    fn: Callable[[Command, Command], bool] = field(compare=True)

    def conflicts(self, a: Command, b: Command) -> bool:
        if a == b:
            return False
        return bool(self.fn(a, b) or self.fn(b, a))
