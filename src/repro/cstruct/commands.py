"""Commands and conflict relations.

Commands are the elements proposed to the agreement protocols.  A conflict
relation (Section 3.3: the symmetric relation ``≍``) states which pairs of
commands must be ordered; commuting pairs may be learned in either order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet


@dataclass(frozen=True, order=True)
class Command:
    """An application command.

    Attributes:
        cid: Unique command identifier (ties break deterministically on it).
        op: Operation name, e.g. ``"put"``, ``"get"``, ``"inc"``.
        key: The datum the operation touches (used by key-based conflicts).
        arg: Optional hashable operation argument.
    """

    cid: str
    op: str = "put"
    key: str = ""
    arg: Any = None

    def __str__(self) -> str:
        suffix = f"={self.arg}" if self.arg is not None else ""
        target = f"({self.key}){suffix}" if self.key else suffix
        return f"{self.op}{target}#{self.cid}"

    def __hash__(self) -> int:
        # Commands live in the frozensets and dicts of every constraint
        # digraph; the generated dataclass hash would rebuild and hash the
        # field tuple on each lookup, which dominates lattice-op profiles.
        # Cache it once per instance (all fields are immutable).
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.cid, self.op, self.key, self.arg))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        # Same semantics as the generated dataclass __eq__, but with
        # identity and cached-hash prechecks: sequence walks compare many
        # unequal commands, and an integer compare rejects those without
        # building field tuples.
        if self is other:
            return True
        if other.__class__ is not Command:
            return NotImplemented
        if self.__hash__() != other.__hash__():
            return False
        return (self.cid, self.op, self.key, self.arg) == (
            other.cid, other.op, other.key, other.arg
        )


class ConflictRelation:
    """Base class for symmetric conflict relations over commands.

    Subclasses whose :meth:`conflicts` does non-trivial work may opt into a
    bounded per-relation memo of pair lookups by setting ``cache_limit`` to
    a positive bound: ``__call__`` then caches ``conflicts(a, b)`` under
    both argument orders (the relation is symmetric) and clears the memo
    wholesale when it reaches the bound.  The predicate must be pure --
    cached relations may never observe a changed answer for a pair.
    """

    cache_limit: int = 0  # pairs memoized; 0 disables caching

    def conflicts(self, a: Command, b: Command) -> bool:
        raise NotImplementedError

    def partition(self, cmd: Command) -> Any | None:
        """A bucket key such that commands in different buckets never conflict.

        Histories index their commands by bucket so a new command is
        checked only against its own bucket (O(conflict candidates))
        instead of the whole history.  ``None`` means "no partition
        information": every existing command must be checked.  Soundness
        requirement: ``conflicts(a, b)`` implies
        ``partition(a) == partition(b)`` (completeness is not required --
        a bucket may contain non-conflicting commands).
        """
        return None

    def __call__(self, a: Command, b: Command) -> bool:
        if not self.cache_limit:
            return self.conflicts(a, b)
        cache: dict | None = getattr(self, "_pair_cache", None)
        if cache is None:
            cache = {}
            # Works for frozen-dataclass subclasses too; the memo is not a
            # dataclass field, so equality and hashing ignore it.
            object.__setattr__(self, "_pair_cache", cache)
        answer = cache.get((a, b))
        if answer is None:
            answer = self.conflicts(a, b)
            if len(cache) >= self.cache_limit:
                cache.clear()
            cache[(a, b)] = answer
            cache[(b, a)] = answer
        return answer


@dataclass(frozen=True)
class AlwaysConflict(ConflictRelation):
    """Every pair of distinct commands conflicts (total order / consensus)."""

    def conflicts(self, a: Command, b: Command) -> bool:
        return a != b

    def partition(self, cmd: Command) -> Any:
        return ""  # one bucket: everything conflicts with everything


@dataclass(frozen=True)
class NeverConflict(ConflictRelation):
    """No commands conflict (command-set semantics)."""

    def conflicts(self, a: Command, b: Command) -> bool:
        return False

    def partition(self, cmd: Command) -> Any:
        return cmd  # every command its own bucket: nothing conflicts


@dataclass(frozen=True)
class KeyConflict(ConflictRelation):
    """Commands conflict iff they touch the same key and one of them writes.

    Read-only operations (``op`` in :attr:`read_ops`) commute with each
    other; everything else on the same key conflicts.  This is the classic
    generic-broadcast conflict relation for a replicated key-value store.
    """

    read_ops: FrozenSet[str] = frozenset({"get", "read"})
    cache_limit = 1 << 16

    def conflicts(self, a: Command, b: Command) -> bool:
        if a == b:
            return False
        if a.key != b.key:
            return False
        both_reads = a.op in self.read_ops and b.op in self.read_ops
        return not both_reads

    def partition(self, cmd: Command) -> Any:
        return cmd.key  # conflicts require equal keys


@dataclass(frozen=True)
class CustomConflict(ConflictRelation):
    """Conflict relation defined by an arbitrary symmetric predicate.

    The predicate is symmetrized defensively (``fn(a, b) or fn(b, a)``), so
    callers may pass one-sided definitions.  Equality of two
    ``CustomConflict`` instances is identity of the predicate.  The
    predicate must be pure: pair answers are memoized (``cache_limit``).
    """

    fn: Callable[[Command, Command], bool] = field(compare=True)
    cache_limit = 1 << 16

    def conflicts(self, a: Command, b: Command) -> bool:
        if a == b:
            return False
        return bool(self.fn(a, b) or self.fn(b, a))
