"""Sequence c-structs: total-order broadcast.

C-structs are duplicate-free command sequences; ``v • C`` appends ``C``
unless already present; the extension order is the prefix order.  This is
the c-struct set that makes Generalized Consensus equal to total-order
broadcast (Section 2.3.2), and it coincides with
:class:`repro.cstruct.history.CommandHistory` under
:class:`repro.cstruct.commands.AlwaysConflict` -- a correspondence the
property tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cstruct.base import CStruct, IncompatibleError
from repro.cstruct.commands import Command


@dataclass(frozen=True)
class CommandSequence(CStruct):
    """A duplicate-free sequence of commands under the prefix order."""

    cmds: tuple[Command, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(set(self.cmds)) != len(self.cmds):
            raise ValueError(f"duplicate commands in sequence {self.cmds!r}")

    @classmethod
    def bottom(cls) -> "CommandSequence":
        return cls(())

    @classmethod
    def of(cls, *cmds: Command) -> "CommandSequence":
        return cls(tuple(cmds))

    def append(self, cmd: Command) -> "CommandSequence":
        if cmd in self.cmds:
            return self
        return CommandSequence(self.cmds + (cmd,))

    def leq(self, other: CStruct) -> bool:
        if not isinstance(other, CommandSequence):
            return NotImplemented
        return other.cmds[: len(self.cmds)] == self.cmds

    def glb(self, other: "CommandSequence") -> "CommandSequence":
        common: list[Command] = []
        for a, b in zip(self.cmds, other.cmds):
            if a != b:
                break
            common.append(a)
        return CommandSequence(tuple(common))

    def lub(self, other: "CommandSequence") -> "CommandSequence":
        if not self.is_compatible(other):
            raise IncompatibleError(f"sequences diverge: {self} vs {other}")
        return self if len(self.cmds) >= len(other.cmds) else other

    def is_compatible(self, other: CStruct) -> bool:
        if not isinstance(other, CommandSequence):
            return False
        # One prefix comparison suffices: only the shorter sequence can be
        # a prefix of the longer (leq in the other direction is impossible).
        shorter, longer = (
            (self, other) if len(self.cmds) <= len(other.cmds) else (other, self)
        )
        return longer.cmds[: len(shorter.cmds)] == shorter.cmds

    def contains(self, cmd: Command) -> bool:
        return cmd in self.cmds

    def command_set(self) -> frozenset[Command]:
        return frozenset(self.cmds)

    def linear_extension(self) -> tuple[Command, ...]:
        """The sequence itself: its total order is the execution order."""
        return self.cmds

    def __len__(self) -> int:
        return len(self.cmds)

    def __str__(self) -> str:
        if not self.cmds:
            return "⊥"
        return "⟨" + ", ".join(str(c) for c in self.cmds) + "⟩"
