"""C-structs: the data structures of Generalized Consensus (paper Section 2.3.1).

A c-struct set is defined by a bottom element, a set of commands, an append
operator ``•`` and axioms CS0-CS4.  This package provides:

* :mod:`repro.cstruct.commands` -- commands and conflict relations;
* :mod:`repro.cstruct.base` -- the abstract :class:`CStruct` interface,
  set-level glb/lub helpers and an executable axiom checker;
* :mod:`repro.cstruct.value` -- the consensus c-struct set (single values);
* :mod:`repro.cstruct.cset` -- command sets (all commands commute);
* :mod:`repro.cstruct.seq` -- command sequences (total-order broadcast);
* :mod:`repro.cstruct.history` -- command histories under a conflict
  relation (generic broadcast, Section 3.3), with direct glb/lub
  implementations;
* :mod:`repro.cstruct.history_ops` -- the paper's recursive ``Prefix``,
  ``AreCompatible`` and ``⊔`` operators (Section 3.3.1), kept verbatim and
  property-tested equivalent to the direct implementations.
"""

from repro.cstruct.base import (
    CStruct,
    IncompatibleError,
    check_axioms,
    glb_set,
    is_compatible_set,
    lub_set,
)
from repro.cstruct.commands import (
    AlwaysConflict,
    Command,
    ConflictRelation,
    CustomConflict,
    KeyConflict,
    NeverConflict,
)
from repro.cstruct.cset import CommandSet
from repro.cstruct.history import CommandHistory
from repro.cstruct.seq import CommandSequence
from repro.cstruct.value import ValueStruct

__all__ = [
    "AlwaysConflict",
    "CStruct",
    "Command",
    "CommandHistory",
    "CommandSequence",
    "CommandSet",
    "ConflictRelation",
    "CustomConflict",
    "IncompatibleError",
    "KeyConflict",
    "NeverConflict",
    "ValueStruct",
    "check_axioms",
    "glb_set",
    "is_compatible_set",
    "lub_set",
]
