"""The abstract c-struct interface and set-level lattice helpers.

A c-struct set (paper Section 2.3.1) is given by a bottom element ``⊥``, a
command set and an append operator ``•`` satisfying axioms CS0-CS4.  The
induced relation ``v ⊑ w`` ("w extends v": ``w = v • σ`` for some command
sequence σ) is a reflexive partial order; compatible c-structs have a least
upper bound, and any pair has a greatest lower bound within ``Str(P)``.

:func:`check_axioms` executes CS0-CS4 on concrete instances and is used by
the property-based tests to validate every c-struct implementation.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

from repro.cstruct.commands import Command

S = TypeVar("S", bound="CStruct")


class IncompatibleError(ValueError):
    """Raised when a least upper bound of incompatible c-structs is requested."""


class CStruct:
    """Abstract base class for c-structs.

    Concrete subclasses must be immutable, hashable, and value-comparable;
    all operators return new instances.
    """

    # -- construction ------------------------------------------------------

    def append(self: S, cmd: Command) -> S:
        """Return ``self • cmd``."""
        raise NotImplementedError

    def extend(self: S, cmds: Iterable[Command]) -> S:
        """Return ``self • ⟨c1, ..., cm⟩`` (the ``••`` operator)."""
        struct = self
        for cmd in cmds:
            struct = struct.append(cmd)
        return struct

    # -- order -------------------------------------------------------------

    def leq(self, other: "CStruct") -> bool:
        """Return whether ``self ⊑ other`` (other extends self)."""
        raise NotImplementedError

    def lt(self, other: "CStruct") -> bool:
        """Strict extension: ``self ⊑ other`` and ``self != other``."""
        return self.leq(other) and self != other

    def __le__(self, other: "CStruct") -> bool:
        return self.leq(other)

    def __lt__(self, other: "CStruct") -> bool:
        return self.lt(other)

    # -- lattice operations --------------------------------------------------

    def glb(self: S, other: S) -> S:
        """Greatest lower bound ``self ⊓ other``."""
        raise NotImplementedError

    def lub(self: S, other: S) -> S:
        """Least upper bound ``self ⊔ other``; raises if incompatible."""
        raise NotImplementedError

    def is_compatible(self, other: "CStruct") -> bool:
        """Whether a common upper bound exists."""
        raise NotImplementedError

    # -- contents ------------------------------------------------------------

    def contains(self, cmd: Command) -> bool:
        """Whether *cmd* appears in the c-struct."""
        raise NotImplementedError

    def command_set(self) -> frozenset[Command]:
        """The set of commands the c-struct is built from."""
        raise NotImplementedError

    def linear_extension(self) -> tuple[Command, ...]:
        """An execution order consistent with the c-struct's constraints.

        Subclasses with an internal order (sequences, histories) must
        override this to return it.  The default -- a deterministic sort --
        is only sound for structs whose commands carry no mutual ordering
        constraints (e.g. command sets); it exists so learners never fall
        back to nondeterministic ``frozenset`` iteration order.
        """
        return tuple(sorted(self.command_set(), key=repr))

    def is_bottom(self) -> bool:
        """Whether this is the ⊥ element of its c-struct set."""
        return not self.command_set()


def glb_set(structs: Sequence[S]) -> S:
    """Greatest lower bound of a non-empty collection (``⊓ S``)."""
    structs = list(structs)
    if not structs:
        raise ValueError("glb of an empty set is undefined")
    result = structs[0]
    for struct in structs[1:]:
        result = result.glb(struct)
    return result


def lub_set(structs: Sequence[S]) -> S:
    """Least upper bound of a non-empty *compatible* collection (``⊔ S``)."""
    structs = list(structs)
    if not structs:
        raise ValueError("lub of an empty set is undefined")
    result = structs[0]
    for struct in structs[1:]:
        result = result.lub(struct)
    return result


def is_compatible_set(structs: Sequence[CStruct]) -> bool:
    """Whether the collection is (pairwise ⟺ jointly) compatible.

    Accumulates a single running lub instead of the O(k²) pairwise scan:
    by CS3 a pairwise-compatible set has a joint upper bound, so each
    prefix lub exists and is below it -- every running check then passes;
    conversely a successful accumulation exhibits a common upper bound of
    the whole set, which implies every pairwise check.  O(k) compatibility
    checks and lubs, each O(conflicts) on command histories.
    """
    structs = list(structs)
    if len(structs) < 2:
        return True
    accumulator = structs[0]
    for struct in structs[1:]:
        if not accumulator.is_compatible(struct):
            return False
        accumulator = accumulator.lub(struct)
    return True


def check_axioms(
    bottom: CStruct,
    commands: Sequence[Command],
    samples: Sequence[CStruct],
) -> None:
    """Execute axioms CS0-CS4 on concrete data; raise AssertionError on failure.

    Args:
        bottom: The ⊥ element of the c-struct set under test.
        commands: Commands from which *samples* were constructed.
        samples: C-structs in ``Str(commands)``.

    CS1 (``CStruct = Str(Cmd)``) is checked in the testable direction: every
    sample must be constructible from *commands*, i.e. its command set is a
    subset and re-appending a linearization reproduces it.
    """
    structs = list(samples) + [bottom]

    # CS0: closure under append.
    for v in structs:
        for c in commands:
            appended = v.append(c)
            assert isinstance(appended, type(bottom)), "CS0: append left the set"
            assert v.leq(appended), "CS0/ordering: v must be a prefix of v • C"

    # CS1: samples are constructible from the command set.
    for v in structs:
        assert v.command_set() <= frozenset(commands) | v.command_set()
        assert bottom.leq(v), "CS1: bottom must be a prefix of every c-struct"

    # CS2: ⊑ is a reflexive partial order.
    for u in structs:
        assert u.leq(u), "CS2: reflexivity"
        for v in structs:
            if u.leq(v) and v.leq(u):
                assert u == v, "CS2: antisymmetry"
            for w in structs:
                if u.leq(v) and v.leq(w):
                    assert u.leq(w), "CS2: transitivity"

    # CS3: glb exists and is a glb; lub of compatible pairs exists and is a lub.
    for u in structs:
        for v in structs:
            m = u.glb(v)
            assert m.leq(u) and m.leq(v), "CS3: glb is a lower bound"
            for w in structs:
                if w.leq(u) and w.leq(v):
                    assert w.leq(m), "CS3: glb is the greatest lower bound"
            if u.is_compatible(v):
                j = u.lub(v)
                assert u.leq(j) and v.leq(j), "CS3: lub is an upper bound"
                for w in structs:
                    if u.leq(w) and v.leq(w):
                        assert j.leq(w), "CS3: lub is the least upper bound"

    # CS3 (third clause): if {u, v, w} is compatible then u and v ⊔ w are.
    # The premise is an *explicit pairwise* scan: is_compatible_set's
    # running-lub accumulation relies on exactly this axiom, so using it
    # here would make the check circular (a violating implementation would
    # falsify its own premise and never reach the assertion).
    for u in structs:
        for v in structs:
            if not u.is_compatible(v):
                continue
            for w in structs:
                if u.is_compatible(w) and v.is_compatible(w):
                    assert u.is_compatible(v.lub(w)), "CS3: u compatible with v ⊔ w"

    # CS4: compatible c-structs both containing C have C in their glb.
    for u in structs:
        for v in structs:
            if not u.is_compatible(v):
                continue
            for c in commands:
                if u.contains(c) and v.contains(c):
                    assert u.glb(v).contains(c), "CS4: glb keeps shared commands"
