"""Command-set c-structs: every pair of commands commutes.

The simplest non-trivial c-struct set from Section 2.3.1: c-structs are
finite subsets of ``Cmd``, ``⊥`` is the empty set and ``v • C`` adds ``C``.
The extension order is subset inclusion; all c-structs are compatible,
``⊓`` is intersection and ``⊔`` is union.  Equivalent to
:class:`repro.cstruct.history.CommandHistory` under
:class:`repro.cstruct.commands.NeverConflict`, but kept as an independent,
obviously-correct implementation for cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cstruct.base import CStruct
from repro.cstruct.commands import Command


@dataclass(frozen=True)
class CommandSet(CStruct):
    """An unordered set of commands."""

    cmds: frozenset[Command] = field(default_factory=frozenset)

    @classmethod
    def bottom(cls) -> "CommandSet":
        return cls(frozenset())

    @classmethod
    def of(cls, *cmds: Command) -> "CommandSet":
        return cls(frozenset(cmds))

    def append(self, cmd: Command) -> "CommandSet":
        if cmd in self.cmds:
            return self
        return CommandSet(self.cmds | {cmd})

    def leq(self, other: CStruct) -> bool:
        if not isinstance(other, CommandSet):
            return NotImplemented
        return self.cmds <= other.cmds

    def glb(self, other: "CommandSet") -> "CommandSet":
        return CommandSet(self.cmds & other.cmds)

    def lub(self, other: "CommandSet") -> "CommandSet":
        return CommandSet(self.cmds | other.cmds)

    def is_compatible(self, other: CStruct) -> bool:
        return isinstance(other, CommandSet)

    def contains(self, cmd: Command) -> bool:
        return cmd in self.cmds

    def command_set(self) -> frozenset[Command]:
        return self.cmds

    def linear_extension(self) -> tuple[Command, ...]:
        """The base class's deterministic sort, computed once per instance.

        Command sets impose no mutual order, but learners replay the
        extension on every learn event; caching keeps that O(n) instead of
        re-sorting (O(n log n) plus a repr per command) each time.
        """
        cached = getattr(self, "_linear", None)
        if cached is None:
            cached = super().linear_extension()
            object.__setattr__(self, "_linear", cached)
        return cached

    def __str__(self) -> str:
        if not self.cmds:
            return "⊥"
        return "{" + ", ".join(sorted(str(c) for c in self.cmds)) + "}"
