"""Generalized Paxos (Section 2.3) as a configuration of the core engine.

Generalized Paxos is Fast Paxos lifted to c-structs: single-coordinated
classic rounds plus fast rounds, no multicoordinated rounds.  Section 3.2's
algorithm strictly generalizes it, so the baseline is deployed as the core
engine restricted to a :class:`repro.core.rounds.RoundSchedule` whose RType
space contains no multicoordinated rounds.  (The paper makes the same
observation in reverse: Multicoordinated Paxos with singleton coordinator
quorums *is* the earlier algorithm.)
"""

from __future__ import annotations

from repro.core.generalized import GeneralizedCluster, build_generalized
from repro.core.liveness import LivenessConfig
from repro.core.rounds import RoundSchedule, RoundTypePolicy
from repro.cstruct.base import CStruct
from repro.sim.scheduler import Simulation


def generalized_paxos_schedule(
    n_coordinators: int, recovery_rtype: int = 1
) -> RoundSchedule:
    """A round schedule with fast (RType 0) and single-coordinated rounds only."""
    policy = RoundTypePolicy(fast_rtypes=frozenset({0}), multi_rtypes=frozenset())
    return RoundSchedule(
        range(n_coordinators), policy=policy, recovery_rtype=recovery_rtype
    )


def build_generalized_paxos(
    sim: Simulation,
    bottom: CStruct,
    n_proposers: int = 2,
    n_coordinators: int = 2,
    n_acceptors: int = 4,
    n_learners: int = 2,
    f: int | None = None,
    e: int | None = None,
    liveness: LivenessConfig | None = None,
) -> GeneralizedCluster:
    """Deploy the Generalized Paxos baseline (no multicoordinated rounds)."""
    return build_generalized(
        sim,
        bottom=bottom,
        n_proposers=n_proposers,
        n_coordinators=n_coordinators,
        n_acceptors=n_acceptors,
        n_learners=n_learners,
        schedule=generalized_paxos_schedule(n_coordinators),
        f=f,
        e=e,
        liveness=liveness,
    )
