"""Fast Paxos (Section 2.2), single-instance consensus baseline.

Extends Classic Paxos with *fast* rounds: after phase 1 of a fast round,
the coordinator sends the special ``Any`` value and acceptors then accept
proposals arriving directly from proposers -- two communication steps from
proposal to learning, at the price of bigger (fast) quorums and possible
*collisions* when concurrent proposals are accepted in different orders.

Both collision-recovery variants of Section 2.2 are implemented:

* **coordinated recovery** -- the coordinator of round i monitors phase
  "2b" messages; once no value can reach a fast quorum it reinterprets
  them as phase "1b" messages for round i+1 (which it also owns) and jumps
  straight to phase 2a: two communication steps to recover;
* **uncoordinated recovery** -- acceptors additionally exchange their "2b"
  messages; on a collision each acceptor runs the coordinator's picking
  rule over the "2b" messages (read as "1b" messages for round i+1) and
  accepts directly in the *fast* round i+1: one communication step, but
  acceptors may pick different values and collide again.

Round numbers are positive integers owned round-robin by the coordinators;
the ``fast_rounds`` predicate classifies them (Section 4.5's RType ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.core.topology import Topology
from repro.sim.process import Process
from repro.sim.scheduler import Simulation


class _FAny:
    _instance: "_FAny | None" = None

    def __new__(cls) -> "_FAny":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "F_ANY"


F_ANY = _FAny()


@dataclass(frozen=True)
class FPropose:
    cmd: Hashable


@dataclass(frozen=True)
class F1a:
    rnd: int


@dataclass(frozen=True)
class F1b:
    rnd: int
    vrnd: int
    vval: Hashable
    acceptor: str


@dataclass(frozen=True)
class F2a:
    rnd: int
    val: Hashable


@dataclass(frozen=True)
class F2b:
    rnd: int
    val: Hashable
    acceptor: str


@dataclass
class FastConfig:
    topology: Topology
    n_acceptors: int
    f: int
    e: int
    fast_rounds: Callable[[int], bool]
    uncoordinated: bool = False
    recovery: str = "coordinated"  # "coordinated" | "restart" | "none"

    def __post_init__(self) -> None:
        if self.n_acceptors < 1:
            raise ValueError("n_acceptors must be at least 1")
        if not 0 <= self.f < self.n_acceptors:
            raise ValueError("f must be in [0, n_acceptors)")
        if not 0 <= self.e < self.n_acceptors:
            raise ValueError("e must be in [0, n_acceptors)")
        if self.rounds_per_owner < 1:
            raise ValueError("rounds_per_owner must be at least 1")

    @property
    def classic_quorum_size(self) -> int:
        return self.n_acceptors - self.f

    @property
    def fast_quorum_size(self) -> int:
        return self.n_acceptors - self.e

    def quorum_size(self, rnd: int) -> int:
        return self.fast_quorum_size if self.fast_rounds(rnd) else self.classic_quorum_size

    rounds_per_owner: int = 2

    def owner(self, rnd: int) -> int:
        """Round ownership in blocks of ``rounds_per_owner`` consecutive rounds.

        Coordinated recovery needs the coordinator of a collided round i to
        also coordinate round i+1 (Section 2.2), so consecutive rounds share
        an owner by default.
        """
        block = (rnd - 1) // self.rounds_per_owner
        return block % len(self.topology.coordinators)


@dataclass(frozen=True)
class _FPick:
    free: bool
    value: Hashable = None


def _pick(config: FastConfig, msgs: dict[str, F1b]) -> _FPick:
    """The Fast Paxos picking rule over integer rounds (Section 2.2)."""
    k = max(msg.vrnd for msg in msgs.values())
    if k == 0:
        return _FPick(free=True)
    q_k = config.quorum_size(k)
    min_inter = len(msgs) + q_k - config.n_acceptors
    if min_inter <= 0:
        raise ValueError("quorum requirement violated: k-quorum may miss Q")
    counts: dict[Hashable, int] = {}
    for msg in msgs.values():
        if msg.vrnd == k:
            counts[msg.vval] = counts.get(msg.vval, 0) + 1
    candidates = [value for value, count in counts.items() if count >= min_inter]
    if len(candidates) > 1:
        raise ValueError(f"Fast Quorum Requirement violated: {candidates}")
    if not candidates:
        return _FPick(free=True)
    return _FPick(free=False, value=candidates[0])


class FastProposer(Process):
    """Sends proposals to coordinators *and* acceptors (Section 2.2)."""

    def __init__(self, pid: str, sim: Simulation, config: FastConfig) -> None:
        super().__init__(pid, sim)
        self.config = config

    def propose(self, cmd: Hashable) -> None:
        self.metrics.record_propose(cmd, self.now)
        msg = FPropose(cmd)
        self.broadcast(self.config.topology.coordinators, msg)
        self.broadcast(self.config.topology.acceptors, msg)


class FastCoordinator(Process):
    def __init__(self, pid: str, sim: Simulation, config: FastConfig, index: int) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.index = index
        self.crnd = 0
        self.sent = False
        self.ready = False
        self.pending: list[Hashable] = []
        self.collisions_recovered = 0
        self._p1b: dict[int, dict[str, F1b]] = {}
        self._p2b: dict[int, dict[str, F2b]] = {}

    def start_round(self, rnd: int) -> None:
        if self.config.owner(rnd) != self.index:
            raise ValueError(f"coordinator {self.index} does not own round {rnd}")
        if rnd <= self.crnd:
            raise ValueError(f"round {rnd} not above {self.crnd}")
        self.crnd = rnd
        self.sent = False
        self.ready = False
        self.broadcast(self.config.topology.acceptors, F1a(rnd))

    def on_f1b(self, msg: F1b, src: Hashable) -> None:
        if msg.rnd != self.crnd or self.sent or self.ready:
            return
        self._p1b.setdefault(msg.rnd, {})[msg.acceptor] = msg
        msgs = self._p1b[msg.rnd]
        if len(msgs) < self.config.classic_quorum_size:
            return
        self._phase2(msgs)

    def _phase2(self, msgs: dict[str, F1b]) -> None:
        pick = _pick(self.config, msgs)
        if not pick.free:
            self._send_value(pick.value)
        elif self.config.fast_rounds(self.crnd):
            self._send_value(F_ANY)
        else:
            self.ready = True
            self._drain()

    def on_fpropose(self, msg: FPropose, src: Hashable) -> None:
        if msg.cmd not in self.pending:
            self.pending.append(msg.cmd)
        self._drain()

    def _drain(self) -> None:
        if self.ready and not self.sent and self.pending:
            self._send_value(self.pending[0])

    def _send_value(self, value: Hashable) -> None:
        self.sent = True
        self.ready = False
        self.broadcast(self.config.topology.acceptors, F2a(self.crnd, value))

    # -- coordinated recovery (Section 2.2) ---------------------------------

    def on_f2b(self, msg: F2b, src: Hashable) -> None:
        self._p2b.setdefault(msg.rnd, {})[msg.acceptor] = msg
        if msg.rnd != self.crnd:
            return
        votes = self._p2b[msg.rnd]
        if not self._collided(msg.rnd, votes):
            return
        next_rnd = msg.rnd + 1
        if self.config.owner(next_rnd) != self.index:
            return
        if self.config.recovery == "none":
            return
        self.collisions_recovered += 1
        if self.config.recovery == "restart":
            # Naive recovery: run round i+1 from the very beginning
            # (four communication steps, Section 2.2).
            self.start_round(next_rnd)
            return
        # Coordinated recovery: reinterpret round-i "2b" messages as
        # round-(i+1) "1b" messages and jump to phase 2a (two steps).
        as_1b = {
            acc: F1b(next_rnd, vrnd=msg.rnd, vval=vote.val, acceptor=acc)
            for acc, vote in votes.items()
        }
        self.crnd = next_rnd
        self.sent = False
        self.ready = False
        self._phase2(as_1b)

    def _collided(self, rnd: int, votes: dict[str, F2b]) -> bool:
        if len(votes) < self.config.classic_quorum_size:
            return False
        counts: dict[Hashable, int] = {}
        for vote in votes.values():
            counts[vote.val] = counts.get(vote.val, 0) + 1
        missing = self.config.n_acceptors - len(votes)
        return max(counts.values()) + missing < self.config.quorum_size(rnd)


class FastAcceptor(Process):
    # Lost on crash by design: ANY windows and peer votes are re-opened /
    # re-collected under the next round, pending proposals are resent by
    # the proposer, accept_log mirrors the vote journal, the rest are
    # statistics.  Stable state is rnd/vrnd/vval.
    VOLATILE = {
        "_any_open",
        "_peer_votes",
        "_recovered",
        "accept_log",
        "pending",
        "wasted_disk_writes",
    }

    def __init__(self, pid: str, sim: Simulation, config: FastConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.rnd = 0
        self.vrnd = 0
        self.vval: Hashable = None
        self.pending: list[Hashable] = []
        self.wasted_disk_writes = 0
        self.accept_log: list[tuple[int, Hashable]] = []  # one disk write each
        self._any_open: set[int] = set()
        self._peer_votes: dict[int, dict[str, Hashable]] = {}
        self._recovered: set[int] = set()

    def on_f1a(self, msg: F1a, src: Hashable) -> None:
        if msg.rnd <= self.rnd:
            return
        self.rnd = msg.rnd
        self.storage.write("rnd", self.rnd)
        owner = self.config.topology.coordinators[self.config.owner(msg.rnd)]
        self.send(owner, F1b(msg.rnd, self.vrnd, self.vval, self.pid))

    def on_f2a(self, msg: F2a, src: Hashable) -> None:
        if msg.rnd < self.rnd:
            return
        if msg.val is F_ANY:
            self._any_open.add(msg.rnd)
            self.rnd = max(self.rnd, msg.rnd)
            self._try_fast()
        else:
            self._accept(msg.rnd, msg.val)

    def on_fpropose(self, msg: FPropose, src: Hashable) -> None:
        if msg.cmd not in self.pending:
            self.pending.append(msg.cmd)
        self._try_fast()

    def _try_fast(self) -> None:
        if self.rnd in self._any_open and self.vrnd < self.rnd and self.pending:
            self._accept(self.rnd, self.pending[0])

    def _accept(self, rnd: int, value: Hashable) -> None:
        if rnd < self.rnd or self.vrnd >= rnd:
            return
        self.rnd = rnd
        self.vrnd = rnd
        self.vval = value
        self.accept_log.append((rnd, value))
        self.storage.write_many({"vrnd": rnd, "vval": value})
        vote = F2b(rnd, value, self.pid)
        self.broadcast(self.config.topology.learners, vote)
        owner = self.config.topology.coordinators[self.config.owner(rnd)]
        self.send(owner, vote)
        if self.config.uncoordinated:
            self.broadcast(self.config.topology.acceptors, vote)

    # -- uncoordinated recovery (Section 2.2) -----------------------------------

    def on_f2b(self, msg: F2b, src: Hashable) -> None:
        if not self.config.uncoordinated:
            return
        votes = self._peer_votes.setdefault(msg.rnd, {})
        votes[msg.acceptor] = msg.val
        rnd = msg.rnd
        if rnd in self._recovered or rnd != self.vrnd:
            return
        if len(votes) < self.config.classic_quorum_size:
            return
        counts: dict[Hashable, int] = {}
        for value in votes.values():
            counts[value] = counts.get(value, 0) + 1
        missing = self.config.n_acceptors - len(votes)
        if max(counts.values()) + missing >= self.config.quorum_size(rnd):
            return  # no collision (yet)
        next_rnd = rnd + 1
        if not self.config.fast_rounds(next_rnd):
            return  # uncoordinated recovery requires a fast successor round
        self._recovered.add(rnd)
        as_1b = {
            acc: F1b(next_rnd, vrnd=rnd, vval=value, acceptor=acc)
            for acc, value in votes.items()
        }
        pick = _pick(self.config, as_1b)
        if pick.free:
            # All picks are safe; converge by choosing the most-voted value
            # with a deterministic tie-break (one of the strategies alluded
            # to in Section 2.2 for making acceptors pick the same value).
            value = max(counts.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]
        else:
            value = pick.value
        # The round-i acceptance is a wasted disk write: the value was
        # accepted but will never be learned (experiment E5's key metric).
        self.wasted_disk_writes += 1
        self._any_open.add(next_rnd)
        self._accept(next_rnd, value)

    def on_crash(self) -> None:
        self.rnd = 0
        self.vrnd = 0
        self.vval = None
        self.pending = []
        self._any_open = set()
        self._peer_votes = {}

    def on_recover(self) -> None:
        self.rnd = self.storage.read("rnd", 0)
        self.vrnd = self.storage.read("vrnd", 0)
        self.vval = self.storage.read("vval", None)


class FastLearner(Process):
    def __init__(self, pid: str, sim: Simulation, config: FastConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.learned: Hashable = None
        self.learned_at: float | None = None
        self._votes: dict[int, dict[str, Hashable]] = {}

    def on_f2b(self, msg: F2b, src: Hashable) -> None:
        votes = self._votes.setdefault(msg.rnd, {})
        votes[msg.acceptor] = msg.val
        count = sum(1 for v in votes.values() if v == msg.val)
        if count < self.config.quorum_size(msg.rnd):
            return
        if self.learned is not None:
            if self.learned != msg.val:
                raise AssertionError(
                    f"consistency violation: {self.learned!r} vs {msg.val!r}"
                )
            return
        self.learned = msg.val
        self.learned_at = self.now
        self.metrics.record_learn(msg.val, self.pid, self.now)


@dataclass
class FastCluster:
    sim: Simulation
    config: FastConfig
    proposers: list[FastProposer]
    coordinators: list[FastCoordinator]
    acceptors: list[FastAcceptor]
    learners: list[FastLearner]
    _proposal_index: int = field(default=0)

    def propose(self, cmd: Hashable, delay: float = 0.0, proposer: int | None = None) -> None:
        if proposer is None:
            proposer = self._proposal_index % len(self.proposers)
            self._proposal_index += 1
        agent = self.proposers[proposer]
        self.sim.schedule(delay, lambda: agent.propose(cmd))

    def start_round(self, rnd: int, delay: float = 0.0) -> None:
        coordinator = self.coordinators[self.config.owner(rnd)]
        self.sim.schedule(delay, lambda: coordinator.start_round(rnd))

    def all_learned(self) -> bool:
        return all(l.learned is not None for l in self.learners)

    def decision(self) -> Hashable:
        values = [l.learned for l in self.learners if l.learned is not None]
        return values[0] if values else None

    def run_until_decided(self, timeout: float = 1_000.0) -> bool:
        return self.sim.run_until(self.all_learned, timeout=timeout)


def build_fast_paxos(
    sim: Simulation,
    n_proposers: int = 2,
    n_coordinators: int = 2,
    n_acceptors: int = 4,
    n_learners: int = 1,
    f: int | None = None,
    e: int | None = None,
    fast_rounds: Callable[[int], bool] | None = None,
    uncoordinated: bool = False,
    recovery: str = "coordinated",
) -> FastCluster:
    """Deploy a Fast Paxos instance on *sim*.

    By default every round is fast except none -- i.e. ``fast_rounds``
    classifies all rounds as fast, matching the "clustered system"
    configuration of Section 4.5 where uncoordinated recovery chains fast
    rounds.  Pass e.g. ``lambda r: r % 2 == 1`` for alternating fast and
    classic rounds (coordinated recovery into a classic round).
    """
    topology = Topology.build(n_proposers, n_coordinators, n_acceptors, n_learners)
    if f is None:
        f = (n_acceptors - 1) // 2
    if e is None:
        e = max((n_acceptors - f - 1) // 2, 0)
    config = FastConfig(
        topology=topology,
        n_acceptors=n_acceptors,
        f=f,
        e=e,
        fast_rounds=fast_rounds or (lambda rnd: True),
        uncoordinated=uncoordinated,
        recovery=recovery,
    )
    return FastCluster(
        sim=sim,
        config=config,
        proposers=[FastProposer(pid, sim, config) for pid in topology.proposers],
        coordinators=[
            FastCoordinator(pid, sim, config, index)
            for index, pid in enumerate(topology.coordinators)
        ],
        acceptors=[FastAcceptor(pid, sim, config) for pid in topology.acceptors],
        learners=[FastLearner(pid, sim, config) for pid in topology.learners],
    )
