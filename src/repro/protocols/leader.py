"""Leader election utilities (Section 4.3).

The failure detector and leadership logic live in
:mod:`repro.core.liveness` because the core protocols embed them; this
module re-exports them under the protocols namespace and adds a small
stand-alone election helper for tests and examples.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.liveness import FailureDetector, Heartbeat, LivenessConfig

__all__ = ["FailureDetector", "Heartbeat", "LivenessConfig", "expected_leader"]


def expected_leader(indices: Iterable[int], crashed: Iterable[int]) -> int | None:
    """The index Ω converges to: the smallest non-crashed coordinator."""
    alive = sorted(set(indices) - set(crashed))
    return alive[0] if alive else None
