"""Baseline protocols of the Paxos hierarchy (Section 2).

Coded directly from the paper's Section 2 descriptions, independently of
the generalized engine in :mod:`repro.core`, so that benchmarks compare
genuinely distinct implementations and tests can cross-validate:

* :mod:`repro.protocols.classic` -- Classic Paxos (Section 2.1) as a
  multi-instance state-machine-replication protocol with a leader;
* :mod:`repro.protocols.fast` -- Fast Paxos (Section 2.2) with fast and
  classic rounds, collision detection, and both coordinated and
  uncoordinated recovery;
* :mod:`repro.protocols.generalized` -- Generalized Paxos (Section 2.3) as
  the single-coordinated configuration of the generalized engine;
* :mod:`repro.protocols.leader` -- leader election utilities (re-exported
  from :mod:`repro.core.liveness`).
"""

from repro.protocols.classic import ClassicCluster, build_classic_paxos
from repro.protocols.fast import FastCluster, build_fast_paxos
from repro.protocols.generalized import build_generalized_paxos

__all__ = [
    "ClassicCluster",
    "FastCluster",
    "build_classic_paxos",
    "build_fast_paxos",
    "build_generalized_paxos",
]
