"""Classic Paxos (Section 2.1) as a multi-instance replication protocol.

This is the "original Paxos" baseline: every command goes through the
current leader, which runs one consensus instance per command.  The
implementation follows the paper's practical notes:

* rounds are positive integers owned round-robin by the coordinators
  (round ``r`` is coordinated by coordinator ``(r - 1) % n_coordinators``);
* the leader executes **phase 1 "a priori" for all instances at once**
  (Section 2.1.2): a single ⟨1a⟩ message covers every instance, and
  acceptors answer with all their accepted (instance, vrnd, vval) triples,
  so the steady-state latency is three communication steps per command;
* on leader failure, the failure detector elects the next coordinator,
  which starts a higher round, re-proposes possibly chosen values found in
  the ⟨1b⟩ answers and fills gaps with no-ops.

Learners deliver commands in instance order, which makes this module a
total-order broadcast / SMR substrate and the single-coordinated
availability baseline of experiment E3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.core.liveness import FailureDetector, Heartbeat, LivenessConfig
from repro.core.topology import Topology
from repro.sim.process import Process
from repro.sim.scheduler import Simulation

NOOP = "__noop__"
"""Filler command used to close instance gaps after a leader change."""


# -- messages (independent of the core vocabulary on purpose) -----------------


@dataclass(frozen=True)
class CPropose:
    cmd: Hashable


@dataclass(frozen=True)
class C1a:
    rnd: int


@dataclass(frozen=True)
class C1b:
    rnd: int
    acceptor: str
    accepted: tuple[tuple[int, int, Hashable], ...]  # (instance, vrnd, vval)


@dataclass(frozen=True)
class C2a:
    rnd: int
    instance: int
    val: Hashable


@dataclass(frozen=True)
class C2b:
    rnd: int
    instance: int
    val: Hashable
    acceptor: str


@dataclass(frozen=True)
class CNack:
    rnd: int
    higher: int


@dataclass
class ClassicConfig:
    topology: Topology
    quorum_size: int
    liveness: LivenessConfig | None = None

    def __post_init__(self) -> None:
        n = len(self.topology.acceptors)
        if not 1 <= self.quorum_size <= n:
            raise ValueError(f"quorum_size must be in [1, {n}]")
        if 2 * self.quorum_size <= n:
            # Two disjoint quorums could choose different values.
            raise ValueError("quorums must intersect: need 2 * quorum_size > n")


class ClassicProposer(Process):
    """Sends proposals to every coordinator (the leader picks them up)."""

    def __init__(self, pid: str, sim: Simulation, config: ClassicConfig) -> None:
        super().__init__(pid, sim)
        self.config = config

    def propose(self, cmd: Hashable) -> None:
        self.metrics.record_propose(cmd, self.now)
        self.broadcast(self.config.topology.coordinators, CPropose(cmd))


class ClassicCoordinator(Process):
    """A coordinator; at most one believes itself leader at a time."""

    # Coordinators keep no stable state: a recovered coordinator restarts
    # its failure detector and, if it still believes itself leader, runs a
    # fresh phase 1 under a higher round -- which rebuilds everything here.
    VOLATILE = {
        "_p1b",
        "_p2b",
        "assigned",
        "chosen",
        "crnd",
        "highest_seen",
        "next_instance",
        "pending",
        "phase1_done",
    }

    def __init__(self, pid: str, sim: Simulation, config: ClassicConfig, index: int) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.index = index
        self.crnd = 0  # current round (0 = none)
        self.phase1_done = False
        self.next_instance = 0
        self.pending: list[Hashable] = []
        self.assigned: dict[int, Hashable] = {}  # instance -> value sent
        self.chosen: dict[int, Hashable] = {}
        self.highest_seen = 0
        self._p1b: dict[int, dict[str, C1b]] = {}
        self._p2b: dict[tuple[int, int], set[str]] = {}
        self._fd: FailureDetector | None = None
        if config.liveness is not None:
            peers = list(enumerate(config.topology.coordinators))
            self._fd = FailureDetector(
                self, index, peers, config.liveness, on_check=self._progress_check
            )
            self._fd.start()

    # -- round ownership -------------------------------------------------------

    def owns(self, rnd: int) -> bool:
        n = len(self.config.topology.coordinators)
        return rnd >= 1 and (rnd - 1) % n == self.index

    def my_round_above(self, rnd: int) -> int:
        """The smallest round > *rnd* owned by this coordinator."""
        candidate = rnd + 1
        while not self.owns(candidate):
            candidate += 1
        return candidate

    def is_leader(self) -> bool:
        return self._fd.is_leader() if self._fd is not None else self.index == 0

    # -- phase 1 ------------------------------------------------------------------

    def start_round(self, rnd: int) -> None:
        """Phase1a for *all* instances at once (Section 2.1.2)."""
        if not self.owns(rnd):
            raise ValueError(f"coordinator {self.index} does not own round {rnd}")
        if rnd <= self.crnd:
            raise ValueError(f"round {rnd} not above {self.crnd}")
        self.crnd = rnd
        self.highest_seen = max(self.highest_seen, rnd)
        self.phase1_done = False
        self.assigned = {}
        self.broadcast(self.config.topology.acceptors, C1a(rnd))

    def on_c1b(self, msg: C1b, src: Hashable) -> None:
        if msg.rnd != self.crnd or self.phase1_done:
            return
        self._p1b.setdefault(msg.rnd, {})[msg.acceptor] = msg
        msgs = self._p1b[msg.rnd]
        if len(msgs) < self.config.quorum_size:
            return
        self._finish_phase1(msgs)

    def _finish_phase1(self, msgs: dict[str, C1b]) -> None:
        """Re-propose possibly chosen values, fill gaps, resume service."""
        self.phase1_done = True
        by_instance: dict[int, tuple[int, Hashable]] = {}
        for reply in msgs.values():
            for instance, vrnd, vval in reply.accepted:
                best = by_instance.get(instance)
                if best is None or vrnd > best[0]:
                    by_instance[instance] = (vrnd, vval)
        if by_instance:
            top = max(by_instance)
            for instance in range(top + 1):
                if instance in by_instance:
                    value = by_instance[instance][1]
                else:
                    value = NOOP  # gap: close it so later instances can execute
                self._send_2a(instance, value)
            self.next_instance = max(self.next_instance, top + 1)
        self._drain_pending()

    # -- phase 2 -------------------------------------------------------------------

    def on_cpropose(self, msg: CPropose, src: Hashable) -> None:
        if msg.cmd in self.pending or msg.cmd in self.assigned.values():
            return
        if msg.cmd in self.chosen.values():
            return
        self.pending.append(msg.cmd)
        self._drain_pending()

    def _drain_pending(self) -> None:
        if not self.phase1_done or not self.is_leader():
            return
        while self.pending:
            cmd = self.pending.pop(0)
            if cmd in self.assigned.values() or cmd in self.chosen.values():
                continue
            instance = self.next_instance
            self.next_instance += 1
            self._send_2a(instance, cmd)

    def _send_2a(self, instance: int, value: Hashable) -> None:
        self.assigned[instance] = value
        self.metrics.count_command_handled(self.pid)
        self.broadcast(self.config.topology.acceptors, C2a(self.crnd, instance, value))

    def on_c2b(self, msg: C2b, src: Hashable) -> None:
        key = (msg.instance, msg.rnd)
        acks = self._p2b.setdefault(key, set())
        acks.add(msg.acceptor)
        if len(acks) >= self.config.quorum_size:
            self.chosen[msg.instance] = msg.val

    def on_cnack(self, msg: CNack, src: Hashable) -> None:
        self.highest_seen = max(self.highest_seen, msg.higher)

    def on_heartbeat(self, msg: Heartbeat, src: Hashable) -> None:
        if self._fd is not None:
            self._fd.on_heartbeat(msg)

    # -- liveness ---------------------------------------------------------------------

    def _progress_check(self) -> None:
        """Become the active leader if Ω points here and we lack a round."""
        if not self.is_leader():
            return
        if self.owns(self.crnd) and self.phase1_done:
            self._drain_pending()
            return
        if self.crnd > 0 and self.owns(self.crnd) and not self.phase1_done:
            return  # phase 1 in flight
        self.start_round(self.my_round_above(max(self.highest_seen, self.crnd)))

    # -- crash-recovery -----------------------------------------------------------------

    def on_crash(self) -> None:
        self.crnd = 0
        self.phase1_done = False
        self.pending = []
        self.assigned = {}
        self.chosen = {}
        self._p1b = {}
        self._p2b = {}

    def on_recover(self) -> None:
        if self._fd is not None:
            self._fd.start()


class ClassicAcceptor(Process):
    """Per-instance acceptor state under a single round number."""

    def __init__(self, pid: str, sim: Simulation, config: ClassicConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.rnd = 0
        self.votes: dict[int, tuple[int, Hashable]] = {}  # instance -> (vrnd, vval)

    def on_c1a(self, msg: C1a, src: Hashable) -> None:
        if msg.rnd <= self.rnd:
            if msg.rnd < self.rnd:
                self.send(src, CNack(msg.rnd, self.rnd))
            return
        self.rnd = msg.rnd
        self.storage.write("rnd", self.rnd)
        accepted = tuple(
            (instance, vrnd, vval)
            for instance, (vrnd, vval) in sorted(self.votes.items())
        )
        self.send(src, C1b(msg.rnd, self.pid, accepted))

    def on_c2a(self, msg: C2a, src: Hashable) -> None:
        if msg.rnd < self.rnd:
            self.send(src, CNack(msg.rnd, self.rnd))
            return
        self.rnd = msg.rnd
        self.votes[msg.instance] = (msg.rnd, msg.val)
        self.storage.write_many(
            {"rnd": self.rnd, f"vote:{msg.instance}": (msg.rnd, msg.val)}
        )
        vote = C2b(msg.rnd, msg.instance, msg.val, self.pid)
        self.broadcast(self.config.topology.learners, vote)
        self.send(src, vote)

    def on_crash(self) -> None:
        self.rnd = 0
        self.votes = {}

    def on_recover(self) -> None:
        self.rnd = self.storage.read("rnd", 0)
        for key in list(self.storage.keys()):
            if key.startswith("vote:"):
                instance = int(key.split(":", 1)[1])
                self.votes[instance] = self.storage.read(key)


class ClassicLearner(Process):
    """Learns per-instance decisions; delivers them in instance order."""

    def __init__(self, pid: str, sim: Simulation, config: ClassicConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.decided: dict[int, Hashable] = {}
        self.delivered: list[Hashable] = []
        self._delivered_set: set[Hashable] = set()
        self._next_delivery = 0
        self._votes: dict[tuple[int, int], dict[str, Hashable]] = {}
        self._callbacks: list[Callable[[int, Hashable], None]] = []

    def on_deliver(self, callback: Callable[[int, Hashable], None]) -> None:
        self._callbacks.append(callback)

    def has_delivered(self, cmd: Hashable) -> bool:
        """O(1) membership test on the delivered sequence."""
        return cmd in self._delivered_set

    def on_c2b(self, msg: C2b, src: Hashable) -> None:
        votes = self._votes.setdefault((msg.instance, msg.rnd), {})
        votes[msg.acceptor] = msg.val
        count = sum(1 for v in votes.values() if v == msg.val)
        if count < self.config.quorum_size:
            return
        existing = self.decided.get(msg.instance)
        if existing is not None:
            if existing != msg.val:
                raise AssertionError(
                    f"consistency violation in instance {msg.instance}: "
                    f"{existing!r} vs {msg.val!r}"
                )
            return
        self.decided[msg.instance] = msg.val
        if msg.val != NOOP:
            self.metrics.record_learn(msg.val, self.pid, self.now)
        self._deliver_ready()

    def _deliver_ready(self) -> None:
        while self._next_delivery in self.decided:
            instance = self._next_delivery
            value = self.decided[instance]
            self._next_delivery += 1
            if value == NOOP:
                continue
            self.delivered.append(value)
            self._delivered_set.add(value)
            for callback in self._callbacks:
                callback(instance, value)


@dataclass
class ClassicCluster:
    """A deployed Classic Paxos group plus driving helpers."""

    sim: Simulation
    config: ClassicConfig
    proposers: list[ClassicProposer]
    coordinators: list[ClassicCoordinator]
    acceptors: list[ClassicAcceptor]
    learners: list[ClassicLearner]
    _proposal_index: int = field(default=0)

    def propose(self, cmd: Hashable, delay: float = 0.0) -> None:
        proposer = self.proposers[self._proposal_index % len(self.proposers)]
        self._proposal_index += 1
        self.sim.schedule(delay, lambda: proposer.propose(cmd))

    def start_round(self, rnd: int, delay: float = 0.0) -> None:
        n = len(self.coordinators)
        coordinator = self.coordinators[(rnd - 1) % n]
        self.sim.schedule(delay, lambda: coordinator.start_round(rnd))

    def everyone_delivered(self, cmds) -> bool:
        cmds = list(cmds)
        return all(
            all(learner.has_delivered(cmd) for cmd in cmds)
            for learner in self.learners
        )

    def run_until_delivered(self, cmds, timeout: float = 2_000.0) -> bool:
        cmds = list(cmds)
        return self.sim.run_until(lambda: self.everyone_delivered(cmds), timeout=timeout)


def build_classic_paxos(
    sim: Simulation,
    n_proposers: int = 1,
    n_coordinators: int = 3,
    n_acceptors: int = 3,
    n_learners: int = 1,
    liveness: LivenessConfig | None = None,
) -> ClassicCluster:
    """Deploy a Classic Paxos group on *sim*."""
    topology = Topology.build(n_proposers, n_coordinators, n_acceptors, n_learners)
    config = ClassicConfig(
        topology=topology,
        quorum_size=n_acceptors // 2 + 1,
        liveness=liveness,
    )
    return ClassicCluster(
        sim=sim,
        config=config,
        proposers=[ClassicProposer(pid, sim, config) for pid in topology.proposers],
        coordinators=[
            ClassicCoordinator(pid, sim, config, index)
            for index, pid in enumerate(topology.coordinators)
        ],
        acceptors=[ClassicAcceptor(pid, sim, config) for pid in topology.acceptors],
        learners=[ClassicLearner(pid, sim, config) for pid in topology.learners],
    )
