"""Versioned wire serialization for every protocol message.

The codec round-trips every frozen-dataclass message in the taxonomy
(``docs/messages.md``) plus the value types they carry (``Command``,
``RoundId``, ``Batch``, c-structs, tuples/sets/dicts).  The encoding is
tagged JSON under a fixed binary header:

    2 bytes magic ``RP`` | 1 byte wire version | UTF-8 JSON payload

A decoder refuses a frame whose magic or version it does not understand
(:class:`CodecError`), so incompatible deployments fail loudly instead of
mis-parsing each other's traffic.  Framing (length prefixes, datagram
boundaries) is the transport's job (:mod:`repro.net.transport`); the
codec maps one message object to one payload.

Registration is automatic: :func:`register_module` scans a module for
frozen dataclasses (exactly the protolint taxonomy rule's notion of a
message class) and registers each by class name.  All message-bearing
modules of the repository are scanned at import time, so a *new* message
dataclass is wire-ready the moment it exists -- and the round-trip test
suite (auto-enumerated from the same taxonomy scan) fails if a message
ever needs codec support the scan cannot provide.

Two non-dataclass cases are handled specially:

* the distinguished phase-2a sentinels ``ANY`` and ``F_ANY`` encode by
  identity;
* :class:`~repro.cstruct.history.CommandHistory` encodes as its linear
  extension and is rebuilt at decode time against the *receiver's*
  conflict relation (passed via ``context``): the relation is engine
  configuration, identical on every node, and never shipped.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass
from typing import Any

from repro.core import checkpoint as _checkpoint
from repro.core import liveness as _liveness
from repro.core import messages as _messages
from repro.core import rounds as _rounds
from repro.core import sessions as _sessions
from repro.core.messages import ANY
from repro.cstruct import commands as _commands
from repro.cstruct import cset as _cset
from repro.cstruct import seq as _seq
from repro.cstruct.commands import ConflictRelation
from repro.cstruct.history import CommandHistory
from repro.protocols import classic as _classic
from repro.protocols import fast as _fast
from repro.protocols.fast import F_ANY
from repro.smr import instances as _instances

MAGIC = b"RP"
WIRE_VERSION = 1
HEADER_LEN = len(MAGIC) + 1


class CodecError(ValueError):
    """Unknown type, unknown tag, or incompatible wire header."""


class CodecContext:
    """Receiver-side configuration the wire cannot carry.

    ``conflict`` rebuilds :class:`CommandHistory` payloads (the
    generalized engine's c-structs are canonical orders *under a
    relation*; every node is configured with the same relation, so only
    the linear extension travels).
    """

    def __init__(self, conflict: ConflictRelation | None = None) -> None:
        self.conflict = conflict


_REGISTRY: dict[str, type] = {}


def register_message(cls: type) -> type:
    """Register one frozen dataclass for wire transport (by class name)."""
    name = cls.__name__
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise CodecError(f"codec name collision: {name} ({existing} vs {cls})")
    _REGISTRY[name] = cls
    return cls


def register_module(module: Any) -> list[str]:
    """Register every frozen dataclass *defined* in *module*."""
    registered = []
    for _name, obj in sorted(vars(module).items()):
        if (
            isinstance(obj, type)
            and obj.__module__ == module.__name__
            and is_dataclass(obj)
            and obj.__dataclass_params__.frozen
        ):
            register_message(obj)
            registered.append(obj.__name__)
    return registered


def registered_names() -> frozenset[str]:
    """Every type name the codec can put on the wire."""
    return frozenset(_REGISTRY)


for _module in (
    _messages,
    _liveness,
    _checkpoint,
    _rounds,
    _sessions,
    _instances,
    _classic,
    _fast,
    _commands,
    _seq,
    _cset,
):
    register_module(_module)


# -- value packing -------------------------------------------------------------


def _pack(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if obj is ANY:
        return {"t": "@", "v": "ANY"}
    if obj is F_ANY:
        return {"t": "@", "v": "F_ANY"}
    if isinstance(obj, tuple):
        return {"t": "tuple", "v": [_pack(item) for item in obj]}
    if isinstance(obj, list):
        return {"t": "list", "v": [_pack(item) for item in obj]}
    if isinstance(obj, (frozenset, set)):
        # Canonical order on the wire: the codec must not leak set
        # iteration order into bytes (two encodings of equal sets are
        # byte-identical).
        tag = "frozenset" if isinstance(obj, frozenset) else "set"
        items = sorted(obj, key=repr)  # protolint: ignore[determinism]
        return {"t": tag, "v": [_pack(item) for item in items]}
    if isinstance(obj, dict):
        pairs = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        return {"t": "dict", "v": [[_pack(k), _pack(v)] for k, v in pairs]}
    if isinstance(obj, CommandHistory):
        return {"t": "hist", "v": [_pack(cmd) for cmd in obj.linear_extension()]}
    cls = type(obj)
    registered = _REGISTRY.get(cls.__name__)
    if registered is cls:
        return {
            "t": cls.__name__,
            "v": {f.name: _pack(getattr(obj, f.name)) for f in fields(cls)},
        }
    raise CodecError(f"no codec for {cls.__module__}.{cls.__name__}: {obj!r}")


def _unpack(data: Any, context: CodecContext) -> Any:
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if not isinstance(data, dict) or "t" not in data:
        raise CodecError(f"malformed wire value: {data!r}")
    tag, value = data["t"], data.get("v")
    if tag == "@":
        if value == "ANY":
            return ANY
        if value == "F_ANY":
            return F_ANY
        raise CodecError(f"unknown sentinel {value!r}")
    if tag == "tuple":
        return tuple(_unpack(item, context) for item in value)
    if tag == "list":
        return [_unpack(item, context) for item in value]
    if tag == "frozenset":
        return frozenset(_unpack(item, context) for item in value)
    if tag == "set":
        return {_unpack(item, context) for item in value}
    if tag == "dict":
        return {_unpack(k, context): _unpack(v, context) for k, v in value}
    if tag == "hist":
        if context.conflict is None:
            raise CodecError(
                "CommandHistory on the wire needs a CodecContext with the "
                "receiver's conflict relation"
            )
        return CommandHistory.of(
            context.conflict, *(_unpack(item, context) for item in value)
        )
    cls = _REGISTRY.get(tag)
    if cls is None:
        raise CodecError(f"unknown wire tag {tag!r}")
    kwargs = {name: _unpack(item, context) for name, item in value.items()}
    return cls(**kwargs)


# -- framing-free encode/decode ------------------------------------------------


def encode(obj: Any) -> bytes:
    """One message object -> one versioned wire payload."""
    payload = json.dumps(_pack(obj), separators=(",", ":")).encode("utf-8")
    return MAGIC + bytes([WIRE_VERSION]) + payload


def decode(data: bytes, context: CodecContext | None = None) -> Any:
    """One wire payload -> the message object (checks magic + version)."""
    if len(data) < HEADER_LEN or data[: len(MAGIC)] != MAGIC:
        raise CodecError("bad magic: not a repro wire frame")
    version = data[len(MAGIC)]
    if version != WIRE_VERSION:
        raise CodecError(f"wire version {version} != supported {WIRE_VERSION}")
    try:
        parsed = json.loads(data[HEADER_LEN:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable payload: {exc}") from exc
    return _unpack(parsed, context or CodecContext())


def roundtrips(obj: Any, context: CodecContext | None = None) -> bool:
    """Whether *obj* survives encode -> decode unchanged (test helper)."""
    return decode(encode(obj), context) == obj
