"""Deploying the engine roles across networked runtimes.

The role classes (:mod:`repro.smr.instances`) are deployment-agnostic:
they see only the Runtime surface.  This module adds the deployment
story for the :class:`~repro.net.transport.NetRuntime` backend:

* :func:`node_plan` -- the canonical placement (every coordinator,
  acceptor and learner on its own node; all proposers on the *driver*
  node next to the client, as a real client-facing frontend would be);
* :func:`deploy_roles` -- instantiate on one runtime exactly the roles
  its node hosts, from the same :class:`InstancesConfig` every other
  node builds (nodes never exchange configuration, only messages);
* :class:`NetCluster` -- the driver-side handle with the
  ``propose``/``flush``/``sim`` surface :class:`repro.smr.client.Client`
  expects, observing completions via the learners' ``IAck`` broadcasts
  (the driver hosts the proposers, so acks arrive on its runtime);
* :class:`LoopbackDeployment` -- the whole cluster in one OS process,
  one runtime per node over real loopback sockets: the workhorse of the
  transport conformance suite and the E14 wall-clock benchmark.  The
  subprocess deployment (real OS processes) lives in
  :mod:`repro.net.node` and ``examples/cluster_launcher.py``.

The same plan exists for the *generalized* engine
(:mod:`repro.core.generalized`): :func:`generalized_node_plan`,
:func:`deploy_generalized_roles`, :class:`GenNetCluster` (completion via
the learners' ``Learned`` progress reports, which retransmission already
broadcasts to the driver-hosted proposers) and
:class:`GeneralizedLoopbackDeployment` -- promoted here from E15c's
hand-built benchmark deployment.  The sharded net deployment
(:mod:`repro.shard.net`) composes both plans on one address book.

Wall-clock tuning: the engines' reliability timers default to simulator
time scales (seconds that cost nothing).  :func:`wall_clock_retransmit`
/ :func:`wall_clock_checkpoint` provide sub-second periods so a lossy
loopback run converges in human time.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from repro.core.checkpoint import CheckpointConfig, RetransmitConfig
from repro.core.generalized import (
    GenAcceptor,
    GenCoordinator,
    GeneralizedConfig,
    GenLearner,
    GenProposer,
)
from repro.core.liveness import LivenessConfig
from repro.core.messages import Learned
from repro.core.rounds import RoundId
from repro.net.codec import CodecContext
from repro.net.transport import DEFAULT_MTU, AddressBook, NetRuntime, loopback_book
from repro.smr.instances import (
    Batch,
    IAck,
    InstancesConfig,
    SMRAcceptor,
    SMRCoordinator,
    SMRLearner,
    SMRProposer,
    make_instances_config,
)

DRIVER_NODE = "driver"


def wall_clock_retransmit() -> RetransmitConfig:
    """Reliability periods in real sub-second time (vs simulator units)."""
    return RetransmitConfig(
        retry_interval=0.3,
        backoff=1.5,
        max_interval=2.0,
        gossip_interval=0.4,
        catchup_interval=0.25,
        max_resend=64,
    )


def wall_clock_liveness() -> LivenessConfig:
    """Failure detection / stuck-round recovery at wall-clock periods.

    Lossy runs need it for the same reason the simulator's lossy tests
    enable it: a multicoordinated collision leaves an instance no round
    can decide, and only the leader's stuck-command check (starting a
    single-coordinated recovery round) restores progress.
    """
    return LivenessConfig(
        heartbeat_period=0.3,
        suspect_timeout=1.2,
        check_period=0.3,
        stuck_timeout=1.0,
        recovery_rtype=1,
    )


def wall_clock_checkpoint(
    interval: int = 16, chunk_size: int = 8, gc_quorum: int | None = None
) -> CheckpointConfig:
    """Checkpointing with a wall-clock advertise period (and small chunks,
    so snapshot state transfer exercises the TCP path)."""
    return CheckpointConfig(
        interval=interval,
        gc_quorum=gc_quorum,
        chunk_size=chunk_size,
        advertise_interval=0.5,
    )


def node_plan(config: InstancesConfig) -> dict[str, str]:
    """pid -> node for the canonical deployment.

    Proposers ride on the driver node (they front for the client);
    every coordinator, acceptor and learner gets its own node named
    after its pid, so crashing a node crashes exactly one role.
    """
    topology = config.topology
    placement = {pid: DRIVER_NODE for pid in topology.proposers}
    for pid in (*topology.coordinators, *topology.acceptors, *topology.learners):
        placement[pid] = pid
    return placement


def deploy_roles(runtime: NetRuntime, config: InstancesConfig) -> dict[str, Any]:
    """Instantiate on *runtime* exactly the roles placed on its node.

    Every node calls this with the identical config; the union over all
    nodes is the same cluster :func:`repro.smr.instances.build_smr`
    deploys on a simulator.
    """
    topology = config.topology
    local = {}

    def hosted(pid: str) -> bool:
        return runtime.book.node_of(pid) == runtime.node

    for pid in topology.proposers:
        if hosted(pid):
            local[pid] = SMRProposer(pid, runtime, config)
    for index, pid in enumerate(topology.coordinators):
        if hosted(pid):
            local[pid] = SMRCoordinator(pid, runtime, config, index)
    for pid in topology.acceptors:
        if hosted(pid):
            local[pid] = SMRAcceptor(pid, runtime, config)
    for pid in topology.learners:
        if hosted(pid):
            local[pid] = SMRLearner(pid, runtime, config)
    return local


def bootstrap_round(config) -> RoundId:
    """The multicoordinated round a fresh cluster starts with.

    Works for both engine configs (``InstancesConfig`` /
    ``GeneralizedConfig``): only the round schedule is consulted.
    """
    return config.schedule.make_round(coord=0, count=1, rtype=2)


class NetCluster:
    """Driver-side cluster handle over a :class:`NetRuntime`.

    Exposes the subset of :class:`repro.smr.instances.SMRCluster` that
    clients use (``sim``, ``propose``, ``flush``) plus completion
    observation: learners broadcast ``IAck(value, instance)`` to all
    proposers when retransmission is on, and the proposers live here --
    a delivery tap unpacks each acked value (a ``Batch`` or a bare
    command) and notifies attached clients.  ``acked`` counts acks per
    command, so "every learner confirmed delivery" is observable from
    the driver without any extra protocol.
    """

    def __init__(self, runtime: NetRuntime, config: InstancesConfig) -> None:
        self.sim = runtime
        self.config = config
        self.proposers = [
            SMRProposer(pid, runtime, config)
            for pid in config.topology.proposers
            if runtime.book.node_of(pid) == runtime.node
        ]
        if not self.proposers:
            raise ValueError(f"no proposer placed on driver node {runtime.node!r}")
        self._proposal_index = 0
        self._clients: list[Any] = []
        self.acked: dict[Hashable, set[Hashable]] = {}
        runtime.add_delivery_tap(self._tap)

    def propose(self, cmd: Hashable, delay: float = 0.0, proposer: int | None = None) -> None:
        if proposer is None:
            proposer = self._proposal_index % len(self.proposers)
            self._proposal_index += 1
        agent = self.proposers[proposer]
        self.sim.schedule(delay, lambda: agent.propose(cmd))

    def flush(self) -> None:
        for proposer in self.proposers:
            proposer.flush()

    def attach_client(self, client: Any) -> None:
        """Complete *client*'s commands when any learner acks them."""
        self._clients.append(client)

    def ack_count(self, cmd: Hashable) -> int:
        """Distinct learners that confirmed delivery of *cmd*."""
        return len(self.acked.get(cmd, ()))

    def all_acked(self, cmds: Iterable[Hashable], by: int | None = None) -> bool:
        """Every command acked by *by* learners (default: all of them)."""
        need = len(self.config.topology.learners) if by is None else by
        return all(self.ack_count(cmd) >= need for cmd in cmds)

    def _tap(self, src: Hashable, dst: Hashable, msg: Any) -> None:
        if not isinstance(msg, IAck):
            return
        cmds = tuple(msg.value) if isinstance(msg.value, Batch) else (msg.value,)
        for cmd in cmds:
            self.acked.setdefault(cmd, set()).add(src)
            for client in self._clients:
                client._note_complete(cmd)


class LoopbackDeployment:
    """A full cluster in one OS process: one runtime per node, real sockets.

    All runtimes share one :class:`AddressBook` and one asyncio loop, so
    ephemeral ports resolve once at :meth:`start` and every node sees
    them -- but every inter-role message still crosses a real UDP (or
    TCP) loopback socket through the codec.  Used by the transport
    conformance suite and the E14 benchmark; the subprocess launcher
    replaces this with one :class:`~repro.net.node.NodeMain` per OS
    process.
    """

    def __init__(
        self,
        config: InstancesConfig | None = None,
        seed: int = 0,
        loss_rate: float = 0.0,
        mtu: int = DEFAULT_MTU,
    ) -> None:
        if config is None:
            config = make_instances_config(retransmit=wall_clock_retransmit())
        self.config = config
        placement = node_plan(config)
        book: AddressBook = loopback_book(sorted({*placement.values(), DRIVER_NODE}))
        book.placement.update(placement)
        self.book = book
        self.runtimes: dict[str, NetRuntime] = {
            node: NetRuntime(
                node, book, seed=seed + index, loss_rate=loss_rate, mtu=mtu
            )
            for index, node in enumerate(sorted(book.nodes))
        }
        self.roles: dict[str, Any] = {}
        self.cluster: NetCluster | None = None

    @property
    def driver(self) -> NetRuntime:
        return self.runtimes[DRIVER_NODE]

    async def start(self, start_round: bool = True) -> "LoopbackDeployment":
        for runtime in self.runtimes.values():
            await runtime.start()
        for node, runtime in self.runtimes.items():
            if node != DRIVER_NODE:
                self.roles.update(deploy_roles(runtime, self.config))
        self.cluster = NetCluster(self.driver, self.config)
        for proposer in self.cluster.proposers:
            self.roles[proposer.pid] = proposer
        if start_round:
            self.start_round(bootstrap_round(self.config))
        return self

    async def stop(self) -> None:
        for runtime in self.runtimes.values():
            await runtime.stop()

    def start_round(self, rnd: RoundId) -> None:
        pid = self.config.topology.coordinators[rnd.coord]
        coordinator = self.roles[pid]
        self.runtime_of(pid).schedule(0.0, lambda: coordinator.start_round(rnd))

    def runtime_of(self, pid: str) -> NetRuntime:
        return self.runtimes[self.book.node_of(pid)]

    def crash(self, pid: str) -> None:
        self.runtime_of(pid).crash(pid)

    def recover(self, pid: str) -> None:
        self.runtime_of(pid).recover(pid)

    @property
    def learners(self) -> list[SMRLearner]:
        return [self.roles[pid] for pid in self.config.topology.learners]

    def everyone_delivered(self, cmds: Iterable[Hashable]) -> bool:
        cmds = list(cmds)
        return all(
            all(learner.has_delivered(cmd) for cmd in cmds)
            for learner in self.learners
        )

    def delivery_orders(self) -> list[tuple]:
        return [tuple(learner.delivered) for learner in self.learners]

    async def run_until_delivered(self, cmds: Iterable[Hashable], timeout: float = 30.0) -> bool:
        cmds = list(cmds)
        return await self.driver.wait_until(
            lambda: self.everyone_delivered(cmds), timeout=timeout
        )

    def errors(self) -> list[BaseException]:
        return [err for runtime in self.runtimes.values() for err in runtime.errors]


# -- generalized engine deployment -------------------------------------------


def generalized_node_plan(config: GeneralizedConfig) -> dict[str, str]:
    """pid -> node for a generalized-engine deployment.

    Same canonical shape as :func:`node_plan`: proposers front for the
    client on the driver node, every other role on its own node.
    """
    topology = config.topology
    placement = {pid: DRIVER_NODE for pid in topology.proposers}
    for pid in (*topology.coordinators, *topology.acceptors, *topology.learners):
        placement[pid] = pid
    return placement


def deploy_generalized_roles(
    runtime: NetRuntime, config: GeneralizedConfig
) -> dict[str, Any]:
    """Instantiate on *runtime* the generalized roles placed on its node."""
    topology = config.topology
    local = {}

    def hosted(pid: str) -> bool:
        return runtime.book.node_of(pid) == runtime.node

    for pid in topology.proposers:
        if hosted(pid):
            local[pid] = GenProposer(pid, runtime, config)
    for index, pid in enumerate(topology.coordinators):
        if hosted(pid):
            local[pid] = GenCoordinator(pid, runtime, config, index)
    for pid in topology.acceptors:
        if hosted(pid):
            local[pid] = GenAcceptor(pid, runtime, config)
    for pid in topology.learners:
        if hosted(pid):
            local[pid] = GenLearner(pid, runtime, config)
    return local


def codec_context_for(config: GeneralizedConfig) -> CodecContext:
    """The codec context a generalized deployment's nodes must share.

    ``CommandHistory`` payloads travel as linear extensions and are
    rebuilt receiver-side against the deployment's conflict relation, so
    every runtime decodes with the relation of the config's bottom.
    """
    return CodecContext(config.bottom.conflict)


class GenNetCluster:
    """Driver-side generalized cluster handle over a :class:`NetRuntime`.

    The ``sim``/``propose``/``flush`` surface of
    :class:`repro.core.generalized.GeneralizedCluster`, plus completion
    observation: with retransmission on, learners broadcast their
    ``Learned`` progress reports to the proposers -- which live here --
    so a delivery tap sees every (learner, command) pair without extra
    protocol.
    """

    def __init__(self, runtime: NetRuntime, config: GeneralizedConfig) -> None:
        self.sim = runtime
        self.config = config
        self.proposers = [
            GenProposer(pid, runtime, config)
            for pid in config.topology.proposers
            if runtime.book.node_of(pid) == runtime.node
        ]
        if not self.proposers:
            raise ValueError(f"no proposer placed on driver node {runtime.node!r}")
        self._proposal_index = 0
        self._clients: list[Any] = []
        self.learned_by: dict[Hashable, set[Hashable]] = {}
        runtime.add_delivery_tap(self._tap)

    def propose(self, cmd: Hashable, delay: float = 0.0, proposer: int | None = None) -> None:
        if proposer is None:
            proposer = self._proposal_index % len(self.proposers)
            self._proposal_index += 1
        agent = self.proposers[proposer]
        self.sim.schedule(delay, lambda: agent.propose(cmd))

    def flush(self) -> None:
        for proposer in self.proposers:
            proposer.flush()

    def attach_client(self, client: Any) -> None:
        """Complete *client*'s commands when any learner reports them."""
        self._clients.append(client)

    def learner_count(self, cmd: Hashable) -> int:
        """Distinct learners that reported learning *cmd*."""
        return len(self.learned_by.get(cmd, ()))

    def all_learned(self, cmds: Iterable[Hashable], by: int | None = None) -> bool:
        """Every command reported by *by* learners (default: all)."""
        need = len(self.config.topology.learners) if by is None else by
        return all(self.learner_count(cmd) >= need for cmd in cmds)

    def _tap(self, src: Hashable, dst: Hashable, msg: Any) -> None:
        if not isinstance(msg, Learned):
            return
        for cmd in msg.cmds:
            self.learned_by.setdefault(cmd, set()).add(msg.learner)
            for client in self._clients:
                client._note_complete(cmd)


class GeneralizedLoopbackDeployment:
    """A generalized-engine cluster on loopback sockets, one OS process.

    The generalized twin of :class:`LoopbackDeployment` -- promoted from
    the E15c benchmark's hand-built deployment: one runtime per node,
    every message through the codec and a real UDP/TCP socket, with the
    shared :func:`codec_context_for` so ``CommandHistory`` payloads
    rebuild against the right conflict relation on every node.
    """

    def __init__(
        self,
        config: GeneralizedConfig,
        seed: int = 0,
        loss_rate: float = 0.0,
        mtu: int = DEFAULT_MTU,
    ) -> None:
        self.config = config
        placement = generalized_node_plan(config)
        book: AddressBook = loopback_book(sorted({*placement.values(), DRIVER_NODE}))
        book.placement.update(placement)
        self.book = book
        context = codec_context_for(config)
        self.runtimes: dict[str, NetRuntime] = {
            node: NetRuntime(
                node,
                book,
                seed=seed + index,
                loss_rate=loss_rate,
                mtu=mtu,
                codec_context=context,
            )
            for index, node in enumerate(sorted(book.nodes))
        }
        self.roles: dict[str, Any] = {}
        self.cluster: GenNetCluster | None = None

    @property
    def driver(self) -> NetRuntime:
        return self.runtimes[DRIVER_NODE]

    async def start(self, start_round: bool = True) -> "GeneralizedLoopbackDeployment":
        for runtime in self.runtimes.values():
            await runtime.start()
        for node, runtime in self.runtimes.items():
            if node != DRIVER_NODE:
                self.roles.update(deploy_generalized_roles(runtime, self.config))
        self.cluster = GenNetCluster(self.driver, self.config)
        for proposer in self.cluster.proposers:
            self.roles[proposer.pid] = proposer
        if start_round:
            self.start_round(bootstrap_round(self.config))
        return self

    async def stop(self) -> None:
        for runtime in self.runtimes.values():
            await runtime.stop()

    def start_round(self, rnd: RoundId) -> None:
        pid = self.config.topology.coordinators[rnd.coord]
        coordinator = self.roles[pid]
        self.runtime_of(pid).schedule(0.0, lambda: coordinator.start_round(rnd))

    def runtime_of(self, pid: str) -> NetRuntime:
        return self.runtimes[self.book.node_of(pid)]

    def crash(self, pid: str) -> None:
        self.runtime_of(pid).crash(pid)

    def recover(self, pid: str) -> None:
        self.runtime_of(pid).recover(pid)

    @property
    def learners(self) -> list[GenLearner]:
        return [self.roles[pid] for pid in self.config.topology.learners]

    def everyone_learned(self, cmds: Iterable[Hashable]) -> bool:
        cmds = list(cmds)
        return all(
            all(learner.has_learned(cmd) for cmd in cmds)
            for learner in self.learners
        )

    async def run_until_learned(self, cmds: Iterable[Hashable], timeout: float = 30.0) -> bool:
        cmds = list(cmds)
        return await self.driver.wait_until(
            lambda: self.everyone_learned(cmds), timeout=timeout
        )

    def total_wire_bytes(self) -> int:
        return sum(r.metrics.total_bytes for r in self.runtimes.values())

    def errors(self) -> list[BaseException]:
        return [err for runtime in self.runtimes.values() for err in runtime.errors]
