"""One cluster node as an OS process: ``python -m repro.net.node '<spec>'``.

A *node spec* is a JSON object (one argv element, or on stdin when the
argument is ``-``) that tells the process who it is and who everyone
else is::

    {
      "node": "acc0",                    # this node's name
      "seed": 3,                         # runtime RNG seed
      "nodes": {"acc0": ["127.0.0.1", 40001], ...},
      "placement": {"acc0": "acc0", "prop0": "driver", ...},
      "shape": {"n_proposers": 2, "n_coordinators": 2,
                "n_acceptors": 3, "n_learners": 2, "f": 1},
      "retransmit": {...} | null,        # dataclass field dicts
      "checkpoint": {...} | null,
      "liveness": {...} | null,
      "mtu": 1400, "loss_rate": 0.0,
      "lifetime": 120.0                  # hard exit deadline (orphan cap)
    }

Every node builds the **identical** :class:`InstancesConfig` from
``shape`` (nodes never exchange configuration -- only wire messages) and
instantiates exactly the roles its placement hosts, via
:func:`repro.net.cluster.deploy_roles`.  The role classes are byte-for-
byte the ones the simulator runs.

A spec may instead describe one node of a **sharded** deployment by
adding ``"sharded": {"n_groups": N}``: the node then derives every
group's instances-engine config (pid prefixes ``g0.``, ``g1.``...) plus
the generalized merge group (``xs.``) from the same ``shape``, deploys
whichever of those roles its placement hosts, and wires a
:class:`~repro.shard.replica.ShardReplica` for every (group, site) whose
group learner and merge learner are both local --
:func:`sharded_node_plan` co-sites them for exactly that reason.

Control plane
-------------

Each node also hosts a :class:`ControlAgent` (pid ``ctl@<node>``), and
the driver hosts a :class:`ControlClient` (pid ``ctl@driver``).  The
``Ctl*`` messages ride the same runtime, codec and wire as the protocol
itself -- readiness, round bootstrap, order audits and shutdown are just
more messages (see ``docs/messages.md`` / ``docs/transport.md``):

* ``CtlHello`` -- node -> driver, re-sent periodically until the driver's
  ``CtlWelcome`` confirms the handshake (boot-order independence);
* ``CtlStart`` -- driver -> the round-zero coordinator's node, once every
  node said hello: start the bootstrap round.  Gating the round on the
  handshake means phase 1 is never shouted at unbound ports;
* ``CtlOrders`` / ``CtlOrdersReply`` -- order audit: a learner node
  replies with each local learner's delivered sequence, so the driver
  can assert all learners delivered the identical order;
* ``CtlShutdown`` -- node exits cleanly; a node whose learner has a
  snapshot install in flight first *drains* it (polling every
  ``DRAIN_POLL`` seconds, at most ``DRAIN_GRACE``), so a shutdown
  racing a state transfer does not orphan a half-installed laggard.
  The ``lifetime`` deadline is the backstop for orphaned nodes when a
  driver dies.
"""

from __future__ import annotations

import asyncio
import json
import sys
from dataclasses import dataclass
from typing import Any, Hashable

from repro.core.checkpoint import CheckpointConfig, RetransmitConfig
from repro.core.liveness import LivenessConfig
from repro.core.rounds import ZERO
from repro.core.runtime import Process
from repro.cstruct.sharding import ShardMap
from repro.net import codec
from repro.net.cluster import (
    DRIVER_NODE,
    bootstrap_round,
    codec_context_for,
    deploy_generalized_roles,
    deploy_roles,
)
from repro.net.transport import DEFAULT_MTU, AddressBook, NetRuntime
from repro.shard.deploy import make_group_config, make_merge_config
from repro.shard.replica import ShardReplica
from repro.smr.instances import InstancesConfig, make_instances_config

HELLO_INTERVAL = 0.25
DRAIN_POLL = 0.1
DRAIN_GRACE = 5.0


def control_pid(node: str) -> str:
    """The pid of *node*'s control agent (``ctl@<node>``)."""
    return f"ctl@{node}"


# -- control messages ----------------------------------------------------------


@dataclass(frozen=True)
class CtlHello:
    """Node -> driver: my runtime is bound and my roles are deployed."""

    node: str


@dataclass(frozen=True)
class CtlWelcome:
    """Driver -> node: hello received, stop re-sending it."""


@dataclass(frozen=True)
class CtlStart:
    """Driver -> one coordinator's node: start the bootstrap round."""

    coord: int


@dataclass(frozen=True)
class CtlOrders:
    """Driver -> node: report every local learner's delivered order."""


@dataclass(frozen=True)
class CtlOrdersReply:
    """Node -> driver: ``orders`` is a tuple of (learner pid, delivered)."""

    node: str
    orders: tuple


@dataclass(frozen=True)
class CtlShutdown:
    """Driver -> node: exit cleanly."""


@dataclass(frozen=True)
class CtlKeyOrders:
    """Driver -> node: report every local shard replica's per-key order."""


@dataclass(frozen=True)
class CtlKeyOrdersReply:
    """Node -> driver: ``orders`` is a tuple of (group, site, key orders).

    Each entry is ``(gid, site, ((key, (cid, ...)), ...))`` -- one local
    :class:`~repro.shard.replica.ShardReplica`'s executed cid sequence
    per owned key, the raw material of the driver's zero-divergence
    audit.
    """

    node: str
    orders: tuple


class ControlAgent(Process):
    """The node-side management endpoint (one per OS process).

    ``configs`` is every engine config the deployment runs -- one
    :class:`InstancesConfig` on the classic path, the N group configs
    plus the merge config on the sharded path; the agent only ever acts
    on the roles of those configs its own node hosts.
    """

    def __init__(
        self,
        pid: str,
        sim: NetRuntime,
        roles: dict[str, Any],
        configs: list,
        driver: str,
        replicas: tuple = (),
    ) -> None:
        super().__init__(pid, sim)
        self.roles = roles
        self.configs = list(configs)
        self.driver = driver
        self.replicas = tuple(replicas)  # (gid, site, ShardReplica)
        self.shutdown_requested = False
        self._drain_deadline = 0.0
        self._hello_timer = self.set_periodic_timer(HELLO_INTERVAL, self._hello)
        self._hello()

    def _hello(self) -> None:
        self.send(self.driver, CtlHello(node=self.sim.node))

    def on_ctlwelcome(self, msg: CtlWelcome, src: Hashable) -> None:
        if self._hello_timer is not None:
            self.drop_timer(self._hello_timer)
            self._hello_timer = None

    def on_ctlstart(self, msg: CtlStart, src: Hashable) -> None:
        for config in self.configs:
            pid = config.topology.coordinators[msg.coord]
            coordinator = self.roles.get(pid)
            if coordinator is not None and coordinator.crnd == ZERO:
                coordinator.start_round(bootstrap_round(config))

    def on_ctlorders(self, msg: CtlOrders, src: Hashable) -> None:
        orders = tuple(
            (pid, tuple(self.roles[pid].delivered))
            for config in self.configs
            for pid in config.topology.learners
            if pid in self.roles
        )
        self.send(src, CtlOrdersReply(node=self.sim.node, orders=orders))

    def on_ctlkeyorders(self, msg: CtlKeyOrders, src: Hashable) -> None:
        orders = tuple(
            (
                gid,
                site,
                tuple(
                    (key, tuple(cids))
                    for key, cids in sorted(replica.key_orders.items())
                ),
            )
            for gid, site, replica in self.replicas
        )
        self.send(src, CtlKeyOrdersReply(node=self.sim.node, orders=orders))

    def on_ctlshutdown(self, msg: CtlShutdown, src: Hashable) -> None:
        self._drain_deadline = self.sim.clock + DRAIN_GRACE
        self._drain()

    def _installs_in_flight(self) -> bool:
        """Any hosted learner mid-way through a snapshot install?"""
        for role in self.roles.values():
            installer = getattr(role, "_installer", None)
            if installer is not None and installer.pending is not None:
                return True
        return False

    def _drain(self) -> None:
        """Poll until in-flight snapshot installs finish (grace-capped)."""
        if self._installs_in_flight() and self.sim.clock < self._drain_deadline:
            self.set_timer(DRAIN_POLL, self._drain)
            return
        self.shutdown_requested = True


class ControlClient(Process):
    """The driver-side management endpoint."""

    def __init__(self, pid: str, sim: NetRuntime, expected: set[str]) -> None:
        super().__init__(pid, sim)
        self.expected = set(expected)
        self.hellos: set[str] = set()
        self.orders: dict[str, tuple] = {}
        self.key_orders: dict[str, tuple] = {}

    def on_ctlhello(self, msg: CtlHello, src: Hashable) -> None:
        self.hellos.add(msg.node)
        self.send(src, CtlWelcome())

    def on_ctlordersreply(self, msg: CtlOrdersReply, src: Hashable) -> None:
        self.orders[msg.node] = msg.orders

    def on_ctlkeyordersreply(self, msg: CtlKeyOrdersReply, src: Hashable) -> None:
        self.key_orders[msg.node] = msg.orders

    def all_ready(self) -> bool:
        return self.expected <= self.hellos

    def start_cluster(self, coord: int = 0) -> None:
        node = self.sim.book.node_of(self.config_coordinator_pid(coord))
        self.send(control_pid(node), CtlStart(coord=coord))

    def start_nodes(self, nodes: list[str], coord: int = 0) -> None:
        """Bootstrap rounds on *nodes* (every config hosted there starts)."""
        for node in nodes:
            self.send(control_pid(node), CtlStart(coord=coord))

    def config_coordinator_pid(self, coord: int) -> str:
        # The driver knows the topology only through the address book:
        # coordinator pids are the placement keys named by Topology.build.
        return f"coord{coord}"

    def audit_orders(self, nodes: list[str]) -> None:
        self.orders = {}
        for node in nodes:
            self.send(control_pid(node), CtlOrders())

    def learner_orders(self) -> dict[str, tuple]:
        """Learner pid -> delivered order, over all audited nodes."""
        return {
            pid: order
            for reply in self.orders.values()
            for pid, order in reply
        }

    def audit_key_orders(self, nodes: list[str]) -> None:
        self.key_orders = {}
        for node in nodes:
            self.send(control_pid(node), CtlKeyOrders())

    def replica_key_orders(self) -> dict[tuple[int, int], dict[str, tuple]]:
        """(group, site) -> {key: executed cid order}, over audited nodes."""
        return {
            (gid, site): {key: tuple(cids) for key, cids in orders}
            for reply in self.key_orders.values()
            for gid, site, orders in reply
        }

    def shutdown_cluster(self, nodes: list[str]) -> None:
        for node in nodes:
            self.send(control_pid(node), CtlShutdown())


codec.register_module(sys.modules[__name__])


# -- spec handling -------------------------------------------------------------


def _cfg(cls: type, data: dict | None) -> Any:
    return None if data is None else cls(**data)


def config_from_spec(spec: dict) -> InstancesConfig:
    """The engine config every node derives from the shared ``shape``."""
    return make_instances_config(
        **spec["shape"],
        retransmit=_cfg(RetransmitConfig, spec.get("retransmit")),
        checkpoint=_cfg(CheckpointConfig, spec.get("checkpoint")),
        liveness=_cfg(LivenessConfig, spec.get("liveness")),
    )


def sharded_configs_from_spec(spec: dict):
    """``(shard_map, group_configs, merge_config)`` from a sharded spec.

    Every node (and the driver) derives the identical configs from
    ``shape`` + ``sharded.n_groups``.  Sharded groups run without
    checkpointing (see :mod:`repro.shard.deploy`), so a ``checkpoint``
    entry is ignored here.
    """
    shape = dict(spec["shape"])
    shape.pop("f", None)
    n_groups = spec["sharded"]["n_groups"]
    retransmit = _cfg(RetransmitConfig, spec.get("retransmit"))
    liveness = _cfg(LivenessConfig, spec.get("liveness"))
    group_configs = [
        make_group_config(
            f"g{gid}", **shape, retransmit=retransmit, liveness=liveness,
            f=spec["shape"].get("f"),
        )
        for gid in range(n_groups)
    ]
    merge_config = make_merge_config(
        **shape, retransmit=retransmit, liveness=liveness,
        f=spec["shape"].get("f"),
    )
    return ShardMap(n_groups), group_configs, merge_config


def sharded_node_plan(group_configs, merge_config) -> dict[str, str]:
    """pid -> node for a sharded subprocess deployment.

    Proposers ride the driver (they front for the router); each group's
    coordinators and acceptors share one node named after the group
    prefix; and site *i*'s learners of **every** group are co-sited on
    node ``site<i>`` -- a :class:`~repro.shard.replica.ShardReplica`
    subscribes to its group learner and the merge learner in the same
    process, exactly as on the simulator.
    """
    placement: dict[str, str] = {}
    for config in (*group_configs, merge_config):
        topology = config.topology
        prefix = topology.coordinators[0].split(".", 1)[0]
        for pid in topology.proposers:
            placement[pid] = DRIVER_NODE
        for pid in (*topology.coordinators, *topology.acceptors):
            placement[pid] = prefix
        for site, pid in enumerate(topology.learners):
            placement[pid] = f"site{site}"
    return placement


def local_shard_replicas(
    runtime: NetRuntime, shard_map: ShardMap, group_configs, merge_config, roles
) -> tuple:
    """The (gid, site, replica) triples this node can host locally."""
    replicas = []
    for gid, config in enumerate(group_configs):
        for site, pid in enumerate(config.topology.learners):
            merge_pid = merge_config.topology.learners[site]
            if pid in roles and merge_pid in roles:
                replicas.append(
                    (gid, site, ShardReplica(gid, shard_map, roles[pid], roles[merge_pid]))
                )
    return tuple(replicas)


async def run_node(spec: dict) -> None:
    """Serve one node until shutdown (or the ``lifetime`` deadline)."""
    book = AddressBook.from_json(spec)
    sharded = "sharded" in spec
    if sharded:
        shard_map, group_configs, merge_config = sharded_configs_from_spec(spec)
        configs: list = [*group_configs, merge_config]
        context = codec_context_for(merge_config)
    else:
        configs = [config_from_spec(spec)]
        context = None
    runtime = NetRuntime(
        spec["node"],
        book,
        seed=spec.get("seed", 0),
        mtu=spec.get("mtu", DEFAULT_MTU),
        loss_rate=spec.get("loss_rate", 0.0),
        codec_context=context,
    )
    await runtime.start()
    roles: dict[str, Any] = {}
    replicas: tuple = ()
    if sharded:
        for config in group_configs:
            roles.update(deploy_roles(runtime, config))
        roles.update(deploy_generalized_roles(runtime, merge_config))
        replicas = local_shard_replicas(
            runtime, shard_map, group_configs, merge_config, roles
        )
    else:
        roles.update(deploy_roles(runtime, configs[0]))
    agent = ControlAgent(
        control_pid(runtime.node),
        runtime,
        roles,
        configs,
        driver=control_pid(spec.get("driver", "driver")),
        replicas=replicas,
    )
    try:
        await runtime.wait_until(
            lambda: agent.shutdown_requested, timeout=spec.get("lifetime", 120.0)
        )
    finally:
        await runtime.stop()


def main(argv: list[str]) -> int:
    raw = argv[1] if len(argv) > 1 else "-"
    spec = json.loads(sys.stdin.read() if raw == "-" else raw)
    asyncio.run(run_node(spec))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
