"""One cluster node as an OS process: ``python -m repro.net.node '<spec>'``.

A *node spec* is a JSON object (one argv element, or on stdin when the
argument is ``-``) that tells the process who it is and who everyone
else is::

    {
      "node": "acc0",                    # this node's name
      "seed": 3,                         # runtime RNG seed
      "nodes": {"acc0": ["127.0.0.1", 40001], ...},
      "placement": {"acc0": "acc0", "prop0": "driver", ...},
      "shape": {"n_proposers": 2, "n_coordinators": 2,
                "n_acceptors": 3, "n_learners": 2, "f": 1},
      "retransmit": {...} | null,        # dataclass field dicts
      "checkpoint": {...} | null,
      "liveness": {...} | null,
      "mtu": 1400, "loss_rate": 0.0,
      "lifetime": 120.0                  # hard exit deadline (orphan cap)
    }

Every node builds the **identical** :class:`InstancesConfig` from
``shape`` (nodes never exchange configuration -- only wire messages) and
instantiates exactly the roles its placement hosts, via
:func:`repro.net.cluster.deploy_roles`.  The role classes are byte-for-
byte the ones the simulator runs.

Control plane
-------------

Each node also hosts a :class:`ControlAgent` (pid ``ctl@<node>``), and
the driver hosts a :class:`ControlClient` (pid ``ctl@driver``).  The
``Ctl*`` messages ride the same runtime, codec and wire as the protocol
itself -- readiness, round bootstrap, order audits and shutdown are just
more messages (see ``docs/messages.md`` / ``docs/transport.md``):

* ``CtlHello`` -- node -> driver, re-sent periodically until the driver's
  ``CtlWelcome`` confirms the handshake (boot-order independence);
* ``CtlStart`` -- driver -> the round-zero coordinator's node, once every
  node said hello: start the bootstrap round.  Gating the round on the
  handshake means phase 1 is never shouted at unbound ports;
* ``CtlOrders`` / ``CtlOrdersReply`` -- order audit: a learner node
  replies with each local learner's delivered sequence, so the driver
  can assert all learners delivered the identical order;
* ``CtlShutdown`` -- node exits cleanly; a node whose learner has a
  snapshot install in flight first *drains* it (polling every
  ``DRAIN_POLL`` seconds, at most ``DRAIN_GRACE``), so a shutdown
  racing a state transfer does not orphan a half-installed laggard.
  The ``lifetime`` deadline is the backstop for orphaned nodes when a
  driver dies.
"""

from __future__ import annotations

import asyncio
import json
import sys
from dataclasses import dataclass
from typing import Any, Hashable

from repro.core.checkpoint import CheckpointConfig, RetransmitConfig
from repro.core.liveness import LivenessConfig
from repro.core.rounds import ZERO
from repro.core.runtime import Process
from repro.net import codec
from repro.net.cluster import bootstrap_round, deploy_roles
from repro.net.transport import DEFAULT_MTU, AddressBook, NetRuntime
from repro.smr.instances import InstancesConfig, make_instances_config

HELLO_INTERVAL = 0.25
DRAIN_POLL = 0.1
DRAIN_GRACE = 5.0


def control_pid(node: str) -> str:
    """The pid of *node*'s control agent (``ctl@<node>``)."""
    return f"ctl@{node}"


# -- control messages ----------------------------------------------------------


@dataclass(frozen=True)
class CtlHello:
    """Node -> driver: my runtime is bound and my roles are deployed."""

    node: str


@dataclass(frozen=True)
class CtlWelcome:
    """Driver -> node: hello received, stop re-sending it."""


@dataclass(frozen=True)
class CtlStart:
    """Driver -> one coordinator's node: start the bootstrap round."""

    coord: int


@dataclass(frozen=True)
class CtlOrders:
    """Driver -> node: report every local learner's delivered order."""


@dataclass(frozen=True)
class CtlOrdersReply:
    """Node -> driver: ``orders`` is a tuple of (learner pid, delivered)."""

    node: str
    orders: tuple


@dataclass(frozen=True)
class CtlShutdown:
    """Driver -> node: exit cleanly."""


class ControlAgent(Process):
    """The node-side management endpoint (one per OS process)."""

    def __init__(
        self,
        pid: str,
        sim: NetRuntime,
        roles: dict[str, Any],
        config: InstancesConfig,
        driver: str,
    ) -> None:
        super().__init__(pid, sim)
        self.roles = roles
        self.config = config
        self.driver = driver
        self.shutdown_requested = False
        self._drain_deadline = 0.0
        self._hello_timer = self.set_periodic_timer(HELLO_INTERVAL, self._hello)
        self._hello()

    def _hello(self) -> None:
        self.send(self.driver, CtlHello(node=self.sim.node))

    def on_ctlwelcome(self, msg: CtlWelcome, src: Hashable) -> None:
        if self._hello_timer is not None:
            self.drop_timer(self._hello_timer)
            self._hello_timer = None

    def on_ctlstart(self, msg: CtlStart, src: Hashable) -> None:
        pid = self.config.topology.coordinators[msg.coord]
        coordinator = self.roles.get(pid)
        if coordinator is not None and coordinator.crnd == ZERO:
            coordinator.start_round(bootstrap_round(self.config))

    def on_ctlorders(self, msg: CtlOrders, src: Hashable) -> None:
        orders = tuple(
            (pid, tuple(self.roles[pid].delivered))
            for pid in self.config.topology.learners
            if pid in self.roles
        )
        self.send(src, CtlOrdersReply(node=self.sim.node, orders=orders))

    def on_ctlshutdown(self, msg: CtlShutdown, src: Hashable) -> None:
        self._drain_deadline = self.sim.clock + DRAIN_GRACE
        self._drain()

    def _installs_in_flight(self) -> bool:
        """Any hosted learner mid-way through a snapshot install?"""
        for role in self.roles.values():
            installer = getattr(role, "_installer", None)
            if installer is not None and installer.pending is not None:
                return True
        return False

    def _drain(self) -> None:
        """Poll until in-flight snapshot installs finish (grace-capped)."""
        if self._installs_in_flight() and self.sim.clock < self._drain_deadline:
            self.set_timer(DRAIN_POLL, self._drain)
            return
        self.shutdown_requested = True


class ControlClient(Process):
    """The driver-side management endpoint."""

    def __init__(self, pid: str, sim: NetRuntime, expected: set[str]) -> None:
        super().__init__(pid, sim)
        self.expected = set(expected)
        self.hellos: set[str] = set()
        self.orders: dict[str, tuple] = {}

    def on_ctlhello(self, msg: CtlHello, src: Hashable) -> None:
        self.hellos.add(msg.node)
        self.send(src, CtlWelcome())

    def on_ctlordersreply(self, msg: CtlOrdersReply, src: Hashable) -> None:
        self.orders[msg.node] = msg.orders

    def all_ready(self) -> bool:
        return self.expected <= self.hellos

    def start_cluster(self, coord: int = 0) -> None:
        node = self.sim.book.node_of(self.config_coordinator_pid(coord))
        self.send(control_pid(node), CtlStart(coord=coord))

    def config_coordinator_pid(self, coord: int) -> str:
        # The driver knows the topology only through the address book:
        # coordinator pids are the placement keys named by Topology.build.
        return f"coord{coord}"

    def audit_orders(self, nodes: list[str]) -> None:
        self.orders = {}
        for node in nodes:
            self.send(control_pid(node), CtlOrders())

    def learner_orders(self) -> dict[str, tuple]:
        """Learner pid -> delivered order, over all audited nodes."""
        return {
            pid: order
            for reply in self.orders.values()
            for pid, order in reply
        }

    def shutdown_cluster(self, nodes: list[str]) -> None:
        for node in nodes:
            self.send(control_pid(node), CtlShutdown())


codec.register_module(sys.modules[__name__])


# -- spec handling -------------------------------------------------------------


def _cfg(cls: type, data: dict | None) -> Any:
    return None if data is None else cls(**data)


def config_from_spec(spec: dict) -> InstancesConfig:
    """The engine config every node derives from the shared ``shape``."""
    return make_instances_config(
        **spec["shape"],
        retransmit=_cfg(RetransmitConfig, spec.get("retransmit")),
        checkpoint=_cfg(CheckpointConfig, spec.get("checkpoint")),
        liveness=_cfg(LivenessConfig, spec.get("liveness")),
    )


async def run_node(spec: dict) -> None:
    """Serve one node until shutdown (or the ``lifetime`` deadline)."""
    book = AddressBook.from_json(spec)
    runtime = NetRuntime(
        spec["node"],
        book,
        seed=spec.get("seed", 0),
        mtu=spec.get("mtu", DEFAULT_MTU),
        loss_rate=spec.get("loss_rate", 0.0),
    )
    await runtime.start()
    config = config_from_spec(spec)
    roles = deploy_roles(runtime, config)
    agent = ControlAgent(
        control_pid(runtime.node),
        runtime,
        roles,
        config,
        driver=control_pid(spec.get("driver", "driver")),
    )
    try:
        await runtime.wait_until(
            lambda: agent.shutdown_requested, timeout=spec.get("lifetime", 120.0)
        )
    finally:
        await runtime.stop()


def main(argv: list[str]) -> int:
    raw = argv[1] if len(argv) > 1 else "-"
    spec = json.loads(sys.stdin.read() if raw == "-" else raw)
    asyncio.run(run_node(spec))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
