"""Real-network backend: asyncio UDP/TCP transport behind the Runtime seam.

``repro.net.codec`` serializes every taxonomy message; ``repro.net.transport``
is the asyncio :class:`~repro.core.runtime.Runtime` implementation;
``repro.net.cluster`` deploys engine roles across runtimes (in-process
loopback or OS subprocesses via ``repro.net.node``).
"""
