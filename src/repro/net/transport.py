"""`NetRuntime`: the asyncio UDP/TCP implementation of the Runtime seam.

One :class:`NetRuntime` is one *node*: an OS process bound to one
UDP+TCP port pair, hosting any number of protocol roles (the
:class:`~repro.core.runtime.Process` subclasses of either engine).  The
same role classes that run on the deterministic simulator run here
unchanged -- the runtime provides the identical surface
(``send``/``schedule``/``clock``/``rng``/``metrics``/``make_storage``,
see :class:`repro.core.runtime.Runtime`).

Transport model (documented in ``docs/transport.md``):

* **UDP datagrams** carry every frame that fits ``mtu`` bytes -- one
  encoded envelope ``(src, dst, msg)`` per datagram, no fragmentation,
  fire-and-forget.  The engines' retransmission layer is what turns this
  fair-lossy service into liveness, exactly as it does under the
  simulator's ``drop_rate``.
* **TCP fallback** carries frames larger than ``mtu`` (snapshot chunks,
  large batches): a per-destination connection with 4-byte big-endian
  length-prefixed framing, (re)established lazily.  A connection error
  keeps the frame and reconnects with exponential backoff under a
  capped retry budget; only an exhausted budget loses the frame, and it
  never blocks the node or other destinations.
* A message between two pids hosted on the *same* node short-circuits
  the socket (scheduled on the loop, still asynchronous -- never a
  reentrant call), mirroring the simulator's reliable self-delivery.

Loss injection (``loss_rate``, ``add_drop_filter``) mirrors the
simulator's network hooks so the transport conformance suite can run the
same lossy scenarios against both backends.

The wall clock and the runtime's RNG live *behind* the Runtime protocol:
role code never reads ``time.*`` or seeds randomness itself, which is
what keeps the simulator bit-deterministic (the protolint ``determinism``
rule enforces it).  ``clock`` is the loop's monotonic time re-based to 0
at :meth:`NetRuntime.start`, so timestamps look like the simulator's.
"""

from __future__ import annotations

import asyncio
import random
import struct
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.net.codec import CodecContext, CodecError, decode, encode
from repro.sim.metrics import Metrics
from repro.sim.storage import StableStorage

_LEN = struct.Struct("!I")

#: payload bytes above which a frame travels over TCP instead of UDP
DEFAULT_MTU = 1400

DropFilter = Callable[[Hashable, Hashable, Any], bool]


@dataclass
class AddressBook:
    """Where every node listens and which node hosts every pid.

    ``nodes`` maps node name -> ``(host, port)`` (one UDP socket and one
    TCP listener per node, same port number); ``placement`` maps process
    id -> node name.  The book is plain data so a launcher can ship it to
    subprocesses as JSON.
    """

    nodes: dict[str, tuple[str, int]] = field(default_factory=dict)
    placement: dict[str, str] = field(default_factory=dict)

    def node_of(self, pid: Hashable) -> str | None:
        return self.placement.get(str(pid))

    def addr_of(self, node: str) -> tuple[str, int]:
        host, port = self.nodes[node]
        return host, port

    def pids_on(self, node: str) -> list[str]:
        return [pid for pid, where in self.placement.items() if where == node]

    def to_json(self) -> dict:
        return {
            "nodes": {name: list(addr) for name, addr in self.nodes.items()},
            "placement": dict(self.placement),
        }

    @classmethod
    def from_json(cls, data: dict) -> "AddressBook":
        return cls(
            nodes={name: (host, port) for name, (host, port) in data["nodes"].items()},
            placement=dict(data["placement"]),
        )


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, runtime: "NetRuntime") -> None:
        self.runtime = runtime

    def datagram_received(self, data: bytes, addr) -> None:
        self.runtime._on_frame(data)

    def error_received(self, exc) -> None:  # pragma: no cover - platform noise
        pass


class NetRuntime:
    """One network node: an asyncio loop serving hosted protocol roles.

    Implements :class:`repro.core.runtime.Runtime`.  Lifecycle::

        runtime = NetRuntime("acc0", book, seed=3)
        await runtime.start()          # bind sockets (resolves port 0)
        SMRAcceptor("acc0", runtime, config)   # roles attach themselves
        ...
        await runtime.wait_until(lambda: ..., timeout=10.0)
        await runtime.stop()

    Processes must be constructed after :meth:`start` -- their timers
    need the running loop.
    """

    def __init__(
        self,
        node: str,
        book: AddressBook,
        seed: int = 0,
        mtu: int = DEFAULT_MTU,
        loss_rate: float = 0.0,
        codec_context: CodecContext | None = None,
        tcp_retry_limit: int = 4,
        tcp_backoff_base: float = 0.05,
        tcp_backoff_cap: float = 1.0,
    ) -> None:
        self.node = node
        self.book = book
        self.mtu = mtu
        self.loss_rate = loss_rate
        self.tcp_retry_limit = tcp_retry_limit
        self.tcp_backoff_base = tcp_backoff_base
        self.tcp_backoff_cap = tcp_backoff_cap
        self.tcp_reconnects = 0
        self.rng = random.Random(seed)
        self.metrics = Metrics()
        self.processes: dict[Hashable, Any] = {}
        self.port: int | None = None
        self.errors: list[BaseException] = []
        self.codec_context = codec_context or CodecContext()
        self.frames_udp = 0
        self.frames_tcp = 0
        self._taps: list[Callable[[Hashable, Hashable, Any], None]] = []
        self._drop_filters: list[DropFilter] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._t0 = 0.0
        self._udp: asyncio.DatagramTransport | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self._tcp_queues: dict[str, asyncio.Queue] = {}
        self._tasks: list[asyncio.Task] = []

    # -- Runtime protocol --------------------------------------------------

    @property
    def clock(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._t0

    def add_process(self, process: Any) -> None:
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process

    def schedule(self, delay: float, action: Callable[[], None]):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if self._loop is None:
            raise RuntimeError("NetRuntime.start() must run before scheduling")
        return self._loop.call_later(delay, self._guarded, action)

    def make_storage(self, owner: str) -> StableStorage:
        return StableStorage(owner=owner)

    def send(self, src: Hashable, dst: Hashable, msg: Any) -> None:
        self.metrics.on_send(src, dst, msg)
        if src != dst:  # self-sends are reliable, as on the simulator
            for drop in self._drop_filters:
                if drop(src, dst, msg):
                    self.metrics.on_drop()
                    return
            if self.loss_rate and self.rng.random() < self.loss_rate:
                self.metrics.on_drop()
                return
        dst_node = self.book.node_of(dst)
        if dst_node == self.node or dst_node is None:
            # Local (or unknown -- stale book) destination: stay off the
            # socket but remain asynchronous, like the simulator's
            # self-delivery.  Unknown pids are dropped at dispatch.
            if self._loop is None:
                raise RuntimeError("NetRuntime.start() must run before sending")
            self._loop.call_soon(self._guarded, lambda: self._deliver(src, dst, msg))
            return
        data = encode((str(src), str(dst), msg))
        self.metrics.count_bytes(src, dst, msg, len(data))
        if len(data) <= self.mtu:
            self.frames_udp += 1
            assert self._udp is not None
            self._udp.sendto(data, self.book.addr_of(dst_node))
        else:
            self.frames_tcp += 1
            self._send_tcp(dst_node, data)

    # -- fault injection / observation (conformance-test hooks) ------------

    def add_drop_filter(self, drop: DropFilter) -> DropFilter:
        self._drop_filters.append(drop)
        return drop

    def remove_drop_filter(self, drop: DropFilter) -> None:
        self._drop_filters.remove(drop)

    def add_delivery_tap(self, tap: Callable[[Hashable, Hashable, Any], None]) -> None:
        """Observe every delivered ``(src, dst, msg)`` without touching roles."""
        self._taps.append(tap)

    def crash(self, pid: Hashable) -> None:
        self.processes[pid].crash()

    def recover(self, pid: Hashable) -> None:
        self.processes[pid].recover()

    def alive(self, pid: Hashable) -> bool:
        return self.processes[pid].alive

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the UDP socket and TCP listener; resolve port 0."""
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        host, port = self.book.addr_of(self.node)
        for _attempt in range(32):
            udp, _ = await self._loop.create_datagram_endpoint(
                lambda: _UdpProtocol(self), local_addr=(host, port)
            )
            actual = udp.get_extra_info("sockname")[1]
            try:
                server = await asyncio.start_server(self._serve_tcp, host, actual)
            except OSError:
                udp.close()
                if port != 0:
                    raise
                continue  # ephemeral UDP port taken on the TCP side: retry
            break
        else:  # pragma: no cover - 32 collisions in a row
            raise OSError(f"could not bind a UDP+TCP port pair for {self.node}")
        self._udp = udp
        self._tcp_server = server
        self.port = actual
        self.book.nodes[self.node] = (host, actual)

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        if self._udp is not None:
            self._udp.close()
            self._udp = None

    async def wait_until(
        self, predicate: Callable[[], bool], timeout: float
    ) -> bool:
        """Poll *predicate* until it holds or *timeout* wall seconds pass."""
        assert self._loop is not None
        deadline = self._loop.time() + timeout
        while not predicate():
            if self.errors:
                raise self.errors[0]
            if self._loop.time() >= deadline:
                return predicate()
            await asyncio.sleep(0.02)
        return True

    # -- internals ---------------------------------------------------------

    def _guarded(self, action: Callable[[], None]) -> None:
        try:
            action()
        except Exception as exc:  # noqa: BLE001 - surfaced via wait_until
            self.errors.append(exc)

    def _deliver(self, src: Hashable, dst: Hashable, msg: Any) -> None:
        self.metrics.on_deliver(dst, msg)
        for tap in self._taps:
            tap(src, dst, msg)
        process = self.processes.get(dst)
        if process is not None:
            process.deliver(msg, src)

    def _on_frame(self, data: bytes) -> None:
        try:
            src, dst, msg = decode(data, self.codec_context)
        except (CodecError, ValueError, TypeError) as exc:
            self.errors.append(exc)
            return
        self._guarded(lambda: self._deliver(src, dst, msg))

    def _send_tcp(self, node: str, data: bytes) -> None:
        queue = self._tcp_queues.get(node)
        if queue is None:
            queue = self._tcp_queues[node] = asyncio.Queue()
            assert self._loop is not None
            task = self._loop.create_task(self._tcp_pump(node, queue))
            self._tasks.append(task)
        queue.put_nowait(data)

    async def _tcp_pump(self, node: str, queue: asyncio.Queue) -> None:
        """Drain one destination's oversized frames over a lazy connection.

        A connection error keeps the frame and reconnects with
        exponential backoff (``tcp_backoff_base`` doubling per attempt,
        capped at ``tcp_backoff_cap`` seconds), retrying the same frame
        at most ``tcp_retry_limit`` extra times.  Past that budget the
        frame is dropped and the pump moves on -- a dead peer stalls
        only its own queue, and only for the bounded backoff sum; the
        loss is fair-lossy, healed by the engines' retransmission layer
        like any dropped datagram.
        """
        writer: asyncio.StreamWriter | None = None
        try:
            while True:
                data = await queue.get()
                for attempt in range(self.tcp_retry_limit + 1):
                    try:
                        if writer is None:
                            host, port = self.book.addr_of(node)
                            _, writer = await asyncio.open_connection(host, port)
                        writer.write(_LEN.pack(len(data)) + data)
                        await writer.drain()
                        break
                    except OSError:
                        if writer is not None:
                            writer.close()
                            writer = None
                        if attempt >= self.tcp_retry_limit:
                            self.metrics.on_drop()
                            break
                        self.tcp_reconnects += 1
                        await asyncio.sleep(
                            min(
                                self.tcp_backoff_base * (2**attempt),
                                self.tcp_backoff_cap,
                            )
                        )
        finally:
            if writer is not None:
                writer.close()

    async def _serve_tcp(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                header = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                self._on_frame(await reader.readexactly(length))
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except asyncio.CancelledError:  # server shutdown
            pass
        finally:
            writer.close()


def loopback_book(node_names, host: str = "127.0.0.1") -> AddressBook:
    """An address book with every node on an ephemeral loopback port."""
    return AddressBook(nodes={name: (host, 0) for name in node_names})
