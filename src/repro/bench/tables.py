"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], title: str = "") -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    parts = []
    if title:
        parts.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    parts.append(header)
    parts.append("-+-".join("-" * w for w in widths))
    for line in rendered:
        parts.append(" | ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(parts)
