"""Benchmark harness: workloads, experiment runners and table formatting.

One experiment function per quantitative claim of the paper (E1-E8, see
DESIGN.md section 4); the pytest-benchmark files under ``benchmarks/`` are
thin wrappers that execute these functions and print the regenerated
tables.
"""

from repro.bench.tables import format_table
from repro.bench.workload import Workload, WorkloadConfig

__all__ = ["Workload", "WorkloadConfig", "format_table"]
