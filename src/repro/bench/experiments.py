"""Experiment runners E1-E8: one function per quantitative claim.

The paper (a theory TR) contains no empirical tables or figures; its
evaluation is the set of quantitative claims analysed in Sections 1-4.
DESIGN.md numbers them E1-E8; every function here regenerates the
corresponding rows on the simulator, and EXPERIMENTS.md records the
paper-claim vs measured outcome.  The ``benchmarks/`` directory wraps these
functions with pytest-benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.bench.workload import Workload, WorkloadConfig
from repro.core.generalized import GeneralizedCluster, build_generalized
from repro.core.liveness import LivenessConfig
from repro.core.multicoordinated import build_consensus
from repro.core.quorums import QuorumSystem, paper_quorum_sizes
from repro.core.rounds import RoundSchedule, RoundTypePolicy
from repro.cstruct.commands import Command
from repro.cstruct.history import CommandHistory
from repro.protocols.classic import build_classic_paxos
from repro.protocols.fast import build_fast_paxos
from repro.protocols.generalized import build_generalized_paxos
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import Simulation
from repro.smr.machine import kv_conflict

Row = dict


# ---------------------------------------------------------------------------
# E1 -- learning latency in communication steps (Sections 1, 2.1-2.2, 3.1)
# ---------------------------------------------------------------------------


def _e1_classic() -> tuple[float, int]:
    sim = Simulation(seed=1)
    cluster = build_classic_paxos(sim, n_coordinators=3, n_acceptors=3)
    cluster.start_round(1)
    sim.run(until=15)
    before = sim.metrics.total_messages
    cmd = Command("e1", "put", "x", 1)
    cluster.propose(cmd, delay=1.0)
    cluster.run_until_delivered([cmd], timeout=200)
    return sim.metrics.latency_of(cmd), sim.metrics.total_messages - before


def _e1_consensus(rtype: int, n_coordinators: int = 3, n_acceptors: int = 3) -> tuple[float, int]:
    sim = Simulation(seed=1)
    cluster = build_consensus(
        sim, n_coordinators=n_coordinators, n_acceptors=n_acceptors
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype))
    sim.run(until=15)
    before = sim.metrics.total_messages
    cmd = Command("e1", "put", "x", 1)
    cluster.propose(cmd, delay=1.0)
    cluster.run_until_decided(timeout=200)
    return sim.metrics.latency_of(cmd), sim.metrics.total_messages - before


def _e1_fast_baseline() -> tuple[float, int]:
    sim = Simulation(seed=1)
    cluster = build_fast_paxos(sim, n_acceptors=4)
    cluster.start_round(1)
    sim.run(until=15)
    before = sim.metrics.total_messages
    cmd = Command("e1", "put", "x", 1)
    cluster.propose(cmd, delay=1.0)
    cluster.run_until_decided(timeout=200)
    return sim.metrics.latency_of(cmd), sim.metrics.total_messages - before


def _e1_generalized(rtype: int) -> tuple[float, int]:
    sim = Simulation(seed=1)
    cluster = build_generalized(
        sim, bottom=CommandHistory.bottom(kv_conflict()), n_coordinators=3, n_acceptors=3
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype))
    sim.run(until=15)
    before = sim.metrics.total_messages
    cmd = Command("e1", "put", "x", 1)
    cluster.propose(cmd, delay=1.0)
    cluster.run_until_learned([cmd], timeout=200)
    return sim.metrics.latency_of(cmd), sim.metrics.total_messages - before


def experiment_e1() -> list[Row]:
    """Steady-state propose-to-learn latency, unit-latency network."""
    rows: list[Row] = []
    latency, msgs = _e1_classic()
    rows.append(
        {"protocol": "Classic Paxos (baseline)", "steps": latency, "messages": msgs, "paper": 3}
    )
    latency, msgs = _e1_consensus(rtype=1)
    rows.append(
        {"protocol": "MC Paxos, single-coordinated round", "steps": latency, "messages": msgs, "paper": 3}
    )
    latency, msgs = _e1_consensus(rtype=2)
    rows.append(
        {"protocol": "MC Paxos, multicoordinated round", "steps": latency, "messages": msgs, "paper": 3}
    )
    latency, msgs = _e1_consensus(rtype=0, n_acceptors=4)
    rows.append(
        {"protocol": "MC Paxos, fast round", "steps": latency, "messages": msgs, "paper": 2}
    )
    latency, msgs = _e1_fast_baseline()
    rows.append(
        {"protocol": "Fast Paxos (baseline)", "steps": latency, "messages": msgs, "paper": 2}
    )
    latency, msgs = _e1_generalized(rtype=2)
    rows.append(
        {"protocol": "MC Generalized Paxos, multicoordinated", "steps": latency, "messages": msgs, "paper": 3}
    )
    latency, msgs = _e1_generalized(rtype=0)
    rows.append(
        {"protocol": "Generalized Paxos, fast round", "steps": latency, "messages": msgs, "paper": 2}
    )
    return rows


# ---------------------------------------------------------------------------
# E2 -- quorum-size requirements (Section 2.2, abstract)
# ---------------------------------------------------------------------------


def experiment_e2(n_range: range = range(3, 14)) -> list[Row]:
    """Quorum sizes for n acceptors under n > 2E + F."""
    rows: list[Row] = []
    for n in n_range:
        sizes = paper_quorum_sizes(n)
        system = QuorumSystem(range(n))
        system.check_assumptions(exhaustive=n <= 7)
        rows.append(
            {
                "n": n,
                "F (classic failures)": sizes["F"],
                "E (fast failures)": sizes["E"],
                "classic/multicoord quorum": sizes["classic_quorum"],
                "fast quorum": sizes["fast_quorum"],
                "ceil(3n/4)": math.ceil(3 * n / 4),
                "balanced ceil((2n+1)/3)": sizes["balanced_quorum"],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E3 -- availability under a coordinator crash (Sections 1, 4.1)
# ---------------------------------------------------------------------------


def _availability_run(
    rtype: int,
    seed: int = 5,
    crash_at: float = 60.0,
    n_commands: int = 40,
    period: float = 4.0,
) -> Row:
    cluster_kind = {0: "fast", 1: "single-coordinated", 2: "multicoordinated"}[rtype]
    sim = Simulation(seed=seed)
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_coordinators=3,
        n_acceptors=3 if rtype != 0 else 4,
        liveness=LivenessConfig(),
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype))
    workload = Workload.generate(
        WorkloadConfig(n_commands=n_commands, period=period, seed=seed)
    )
    workload.schedule_on(cluster)
    sim.schedule(crash_at, lambda: cluster.coordinators[0].crash())
    cluster.run_until_learned(workload.commands, timeout=5_000)
    times = sorted(
        t
        for t in (sim.metrics.learn_time(c) for c in workload.commands)
        if t is not None
    )
    gaps = [b - a for a, b in zip(times, times[1:])]
    unlearned = sum(
        1 for c in workload.commands if sim.metrics.learn_time(c) is None
    )
    return {
        "round kind": cluster_kind,
        "max learning gap": max(gaps) if gaps else float("nan"),
        "baseline period": period,
        "interruption": (max(gaps) if gaps else 0.0) - period,
        "unlearned": unlearned,
    }


def experiment_e3(seed: int = 5) -> list[Row]:
    """Crash one coordinator mid-run; measure the learning interruption."""
    return [
        _availability_run(rtype=1, seed=seed),
        _availability_run(rtype=2, seed=seed),
        _availability_run(rtype=0, seed=seed),
    ]


# ---------------------------------------------------------------------------
# E4 -- load balance (Section 4.1)
# ---------------------------------------------------------------------------


def _e4_classic_leader(n_commands: int = 40) -> list[Row]:
    sim = Simulation(seed=3)
    cluster = build_classic_paxos(sim, n_coordinators=3, n_acceptors=5)
    cluster.start_round(1)
    workload = Workload.generate(WorkloadConfig(n_commands=n_commands, seed=3))
    workload.schedule_on(cluster)
    cluster.run_until_delivered(workload.commands, timeout=5_000)
    loads = [
        sim.metrics.commands_handled[c.pid] / n_commands for c in cluster.coordinators
    ]
    return [
        {
            "mode": "classic (leader)",
            "process": "coordinator",
            "max load": max(loads),
            "paper bound": 1.0,
            "source": "measured end-to-end",
        }
    ]


def _e4_multicoord_coordinators(n_commands: int = 40) -> list[Row]:
    sim = Simulation(seed=3)
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_coordinators=3,
        n_acceptors=5,
    )
    cluster.set_load_balancing(True)
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    workload = Workload.generate(WorkloadConfig(n_commands=n_commands, seed=3))
    workload.schedule_on(cluster)
    cluster.run_until_learned(workload.commands, timeout=5_000)
    nc = len(cluster.coordinators)
    loads = [
        sim.metrics.commands_handled[c.pid] / n_commands for c in cluster.coordinators
    ]
    return [
        {
            "mode": "multicoordinated",
            "process": "coordinator",
            "max load": max(loads),
            "paper bound": 0.5 + 1.0 / nc,
            "source": "measured end-to-end",
        }
    ]


def _e4_assignment_model(n_commands: int = 20_000) -> list[Row]:
    """Per-command quorum assignment (the paper's probabilistic claim).

    C-structs are cumulative, so in the single-instance generalized engine
    every acceptor eventually stores every command; the paper's per-command
    acceptor-load claim lives in the one-instance-per-command world, which
    this sampling model reproduces exactly.
    """
    import random

    rng = random.Random(42)
    rows: list[Row] = []
    nc, n = 3, 5
    quorums = QuorumSystem(range(n))
    coord_counts = [0] * nc
    acc_counts = [0] * n
    c_size = nc // 2 + 1
    for _ in range(n_commands):
        for c in rng.sample(range(nc), c_size):
            coord_counts[c] += 1
        for a in rng.sample(range(n), quorums.classic_quorum_size):
            acc_counts[a] += 1
    rows.append(
        {
            "mode": "multicoordinated",
            "process": "coordinator",
            "max load": max(coord_counts) / n_commands,
            "paper bound": 0.5 + 1.0 / nc,
            "source": "assignment model",
        }
    )
    rows.append(
        {
            "mode": "multicoordinated",
            "process": "acceptor",
            "max load": max(acc_counts) / n_commands,
            "paper bound": 0.5 + 1.0 / n,
            "source": "assignment model",
        }
    )
    fast_counts = [0] * n
    for _ in range(n_commands):
        for a in rng.sample(range(n), quorums.fast_quorum_size):
            fast_counts[a] += 1
    rows.append(
        {
            "mode": "fast",
            "process": "acceptor",
            "max load": max(fast_counts) / n_commands,
            "paper bound": 0.75,  # lower bound: every acceptor sees > 3/4
            "source": "assignment model",
        }
    )
    return rows


def _e4_multicoord_instances(n_commands: int = 30) -> list[Row]:
    """End-to-end acceptor load on the instance-per-command SMR engine."""
    from repro.smr.instances import build_smr

    sim = Simulation(seed=3)
    cluster = build_smr(
        sim,
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=5,
        liveness=LivenessConfig(),
    )
    cluster.set_load_balancing(True)
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    workload = Workload.generate(WorkloadConfig(n_commands=n_commands, seed=3))
    workload.schedule_on(cluster)
    cluster.run_until_delivered(workload.commands, timeout=10_000)
    loads = [a.commands_accepted / n_commands for a in cluster.acceptors]
    return [
        {
            "mode": "multicoordinated",
            "process": "acceptor",
            "max load": max(loads),
            "paper bound": 0.5 + 1.0 / 5,
            "source": "measured end-to-end (SMR instances)",
        }
    ]


def experiment_e4() -> list[Row]:
    """Per-process load under random quorum selection."""
    rows = _e4_classic_leader()
    rows += _e4_multicoord_coordinators()
    rows += _e4_multicoord_instances()
    rows += _e4_assignment_model()
    return rows


# ---------------------------------------------------------------------------
# E5 -- collisions and wasted disk writes vs conflict rate (Sections 2.2, 4.2)
# ---------------------------------------------------------------------------


def _fast_generalized_cluster(sim: Simulation) -> GeneralizedCluster:
    return build_generalized_paxos(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_coordinators=2,
        n_acceptors=4,
        liveness=LivenessConfig(),
    )


def _multicoord_cluster(sim: Simulation) -> GeneralizedCluster:
    return build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_coordinators=3,
        n_acceptors=3,
        liveness=LivenessConfig(),
    )


def _e5_run(mode: str, conflict_rate: float, seed: int) -> Row:
    jitter = 1.2
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter))
    if mode == "fast":
        cluster = _fast_generalized_cluster(sim)
        rtype = 0
    else:
        cluster = _multicoord_cluster(sim)
        rtype = 2
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype))
    workload = Workload.generate(
        WorkloadConfig(
            n_commands=30,
            conflict_rate=conflict_rate,
            arrival="burst",
            burst_size=2,
            period=8.0,
            seed=seed,
        )
    )
    workload.schedule_on(cluster)
    cluster.run_until_learned(workload.commands, timeout=20_000)
    learned = [
        c for c in workload.commands if sim.metrics.learn_time(c) is not None
    ]
    vote_writes = sum(a.storage.write_counts["vval"] for a in cluster.acceptors)
    latencies = [sim.metrics.latency_of(c) for c in learned]
    mean_hop = 1.0 + jitter / 2
    return {
        "mode": mode,
        "conflict rate": conflict_rate,
        "collisions": sum(a.collisions_detected for a in cluster.acceptors),
        "extra rounds": sum(c.rounds_started for c in cluster.coordinators) - 1,
        "writes / cmd / acceptor": vote_writes
        / max(len(learned), 1)
        / len(cluster.acceptors),
        "mean latency (steps)": sum(latencies)
        / max(len(latencies), 1)
        / mean_hop,
        "unlearned": len(workload.commands) - len(learned),
    }


def experiment_e5(
    conflict_rates: tuple[float, ...] = (0.0, 0.3, 0.6, 1.0), seed: int = 2
) -> list[Row]:
    """Collision behaviour of fast vs multicoordinated rounds."""
    rows: list[Row] = []
    for mode in ("fast", "multicoordinated"):
        for rate in conflict_rates:
            rows.append(_e5_run(mode, rate, seed))
    return rows


def _e5_waste_fast(seed: int) -> tuple[int, int]:
    """(collided?, wasted acceptor disk writes) for one fast-round run."""
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=0.9))
    cluster = build_fast_paxos(
        sim, n_acceptors=4, n_proposers=2, fast_rounds=lambda r: r == 1
    )
    cluster.start_round(1)
    a = Command("a", "put", "x", 1)
    b = Command("b", "put", "x", 2)
    cluster.propose(a, delay=6.0, proposer=0)
    cluster.propose(b, delay=6.0, proposer=1)
    cluster.run_until_decided(timeout=500)
    decision = cluster.decision()
    collided = sum(c.collisions_recovered for c in cluster.coordinators) > 0
    wasted = sum(
        sum(1 for _, val in acc.accept_log if val != decision)
        for acc in cluster.acceptors
    )
    return int(collided), wasted


def _e5_waste_multicoord(seed: int) -> tuple[int, int]:
    """(collided?, wasted acceptor disk writes) for a multicoordinated run."""
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=0.9))
    cluster = build_consensus(sim, n_proposers=2, n_coordinators=3, n_acceptors=3)
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    a = Command("a", "put", "x", 1)
    b = Command("b", "put", "x", 2)
    cluster.propose(a, delay=6.0, proposer=0)
    cluster.propose(b, delay=6.0, proposer=1)
    cluster.run_until_decided(timeout=500)
    decision = cluster.decision()
    collided = sum(acc.collisions_detected for acc in cluster.acceptors) > 0
    wasted = sum(
        sum(1 for _, val in acc.accept_log if val != decision)
        for acc in cluster.acceptors
    )
    return int(collided), wasted


def experiment_e5_waste(n_seeds: int = 40) -> list[Row]:
    """Section 4.2's key asymmetry, at the consensus level.

    Fast-round collisions happen *after* acceptance: the losing value was
    written to disk.  Multicoordinated collisions are detected before
    acceptance: no disk write is wasted.
    """
    rows: list[Row] = []
    for mode, run in (("fast", _e5_waste_fast), ("multicoordinated", _e5_waste_multicoord)):
        collided_runs = 0
        wasted_total = 0
        for seed in range(n_seeds):
            collided, wasted = run(seed)
            if collided:
                collided_runs += 1
                wasted_total += wasted
        rows.append(
            {
                "mode": mode,
                "collided runs": collided_runs,
                "wasted disk writes / collision": wasted_total / max(collided_runs, 1),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E6 -- disk writes (Sections 4.1, 4.4)
# ---------------------------------------------------------------------------


def _e6_run(reduce_disk_writes: bool, with_recovery: bool, seed: int = 4) -> Row:
    sim = Simulation(seed=seed)
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_coordinators=3,
        n_acceptors=3,
        liveness=LivenessConfig(),
        reduce_disk_writes=reduce_disk_writes,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    workload = Workload.generate(WorkloadConfig(n_commands=30, period=4.0, seed=seed))
    workload.schedule_on(cluster)
    if with_recovery:
        sim.schedule(50, lambda: cluster.acceptors[0].crash())
        sim.schedule(70, lambda: cluster.acceptors[0].recover())
    cluster.run_until_learned(workload.commands, timeout=20_000)
    n_cmds = len(workload.commands)
    coord_writes = sum(c.storage.write_count for c in cluster.coordinators)
    vote_writes = sum(a.storage.write_counts["vval"] for a in cluster.acceptors)
    round_writes = sum(
        a.storage.write_counts["rnd"] + a.storage.write_counts["mcount"]
        for a in cluster.acceptors
    )
    return {
        "config": ("§4.4 reduced" if reduce_disk_writes else "naive rnd-on-disk")
        + (" + recovery" if with_recovery else ""),
        "coordinator writes": coord_writes,
        "vote writes (total)": vote_writes,
        "rnd/mcount writes": round_writes,
        "vote writes / cmd / acceptor": vote_writes / n_cmds / len(cluster.acceptors),
        "unlearned": sum(
            1 for c in workload.commands if sim.metrics.learn_time(c) is None
        ),
    }


def experiment_e6() -> list[Row]:
    """Disk writes: coordinators never write; §4.4 removes phase-1b writes."""
    return [
        _e6_run(reduce_disk_writes=True, with_recovery=False),
        _e6_run(reduce_disk_writes=False, with_recovery=False),
        _e6_run(reduce_disk_writes=True, with_recovery=True),
    ]


# ---------------------------------------------------------------------------
# E7 -- collision recovery cost (Sections 2.2, 4.2)
# ---------------------------------------------------------------------------


def _e7_run(strategy: str, seed: int) -> tuple[bool, float | None]:
    """One forced-concurrency fast-round run; returns (collided, latency)."""
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=0.9))
    uncoordinated = strategy == "uncoordinated"
    recovery = {
        "restart": "restart",
        "coordinated": "coordinated",
        "uncoordinated": "none",
    }[strategy]
    cluster = build_fast_paxos(
        sim,
        n_acceptors=4,
        n_proposers=2,
        fast_rounds=(lambda r: True) if uncoordinated else (lambda r: r == 1),
        uncoordinated=uncoordinated,
        recovery=recovery,
    )
    cluster.start_round(1)
    a = Command("a", "put", "x", 1)
    b = Command("b", "put", "x", 2)
    cluster.propose(a, delay=6.0, proposer=0)
    cluster.propose(b, delay=6.0, proposer=1)
    decided = cluster.run_until_decided(timeout=500)
    collided = (
        sum(c.collisions_recovered for c in cluster.coordinators) > 0
        or sum(acc.wasted_disk_writes for acc in cluster.acceptors) > 0
    )
    if not decided:
        return collided, None
    decision = cluster.decision()
    return collided, sim.metrics.latency_of(decision)


def experiment_e7(n_seeds: int = 40) -> list[Row]:
    """Decision latency of collided fast rounds per recovery strategy."""
    expectations = {"restart": 4, "coordinated": 2, "uncoordinated": 1}
    rows: list[Row] = []
    for strategy, extra in expectations.items():
        latencies = []
        collided_runs = 0
        for seed in range(n_seeds):
            collided, latency = _e7_run(strategy, seed)
            if collided and latency is not None:
                collided_runs += 1
                latencies.append(latency)
        rows.append(
            {
                "strategy": strategy,
                "collided runs": collided_runs,
                "mean latency (collided)": sum(latencies) / max(len(latencies), 1),
                "paper extra steps": extra,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E8 -- round-type crossover (Section 4.5)
# ---------------------------------------------------------------------------


def _e8_run(mode: str, jitter: float, conflict_rate: float, seed: int = 6) -> Row:
    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter))
    if mode == "fast":
        cluster = _fast_generalized_cluster(sim)
        rtype = 0
    elif mode == "multicoordinated":
        cluster = _multicoord_cluster(sim)
        rtype = 2
    else:
        cluster = _multicoord_cluster(sim)
        rtype = 1
    cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype))
    workload = Workload.generate(
        WorkloadConfig(
            n_commands=24,
            conflict_rate=conflict_rate,
            arrival="burst",
            burst_size=2,
            period=8.0,
            seed=seed,
        )
    )
    workload.schedule_on(cluster)
    cluster.run_until_learned(workload.commands, timeout=20_000)
    learned = [c for c in workload.commands if sim.metrics.latency_of(c) is not None]
    latencies = [sim.metrics.latency_of(c) for c in learned]
    mean_hop = 1.0 + jitter / 2
    return {
        "round kind": mode,
        "jitter": jitter,
        "conflict rate": conflict_rate,
        "mean latency (steps)": sum(latencies) / max(len(latencies), 1) / mean_hop,
        "unlearned": len(workload.commands) - len(learned),
    }


def experiment_e8(
    jitters: tuple[float, ...] = (0.0, 1.5),
    conflict_rates: tuple[float, ...] = (0.0, 1.0),
    seed: int = 6,
) -> list[Row]:
    """Clustered vs conflict-prone settings (Section 4.5)."""
    rows: list[Row] = []
    for mode in ("fast", "multicoordinated", "single-coordinated"):
        for jitter in jitters:
            for rate in conflict_rates:
                rows.append(_e8_run(mode, jitter, rate, seed))
    return rows


# ---------------------------------------------------------------------------
# E9 -- batching and pipelining throughput (Section 4.1's "heavy traffic")
# ---------------------------------------------------------------------------


def _e9_run(
    label: str,
    batching: "BatchingConfig | None",
    jitter: float,
    n_commands: int = 60,
    seed: int = 7,
) -> Row:
    from repro.smr.instances import BatchingConfig, build_smr  # noqa: F401

    sim = Simulation(seed=seed, network=NetworkConfig(jitter=jitter))
    cluster = build_smr(
        sim,
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=3,
        liveness=LivenessConfig(),
        batching=batching,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    workload = Workload.generate(
        WorkloadConfig(
            n_commands=n_commands,
            arrival="burst",
            burst_size=4,
            period=2.0,
            seed=seed,
        )
    )
    workload.schedule_on(cluster)
    delivered = cluster.run_until_delivered(workload.commands, timeout=30_000)
    learn_times = [
        t
        for t in (sim.metrics.learn_time(c) for c in workload.commands)
        if t is not None
    ]
    makespan = (max(learn_times) - workload.config.start) if learn_times else float("nan")
    events = sim.events_processed
    return {
        "engine": label,
        "jitter": jitter,
        "makespan": makespan,
        "events": events,
        "messages": sim.metrics.total_messages,
        "cmds / 100 events": 100.0 * n_commands / events,
        "cmds / step": n_commands / makespan if makespan else float("nan"),
        "collisions": sum(a.collisions_detected for a in cluster.acceptors),
        "unlearned": 0 if delivered else len(workload.commands) - len(learn_times),
    }


def experiment_e9(
    jitters: tuple[float, ...] = (0.0, 0.8), seed: int = 7
) -> list[Row]:
    """Throughput of the instance-per-command engine with batching/pipelining.

    Sweeps batch size x pipeline depth x collision pressure (network jitter
    makes concurrently proposed commands race for instances).  The batched,
    pipelined engine must beat the unbatched engine on commands delivered
    per simulation event -- the protocol does less work per command -- at
    equal command counts.
    """
    from repro.smr.instances import BatchingConfig

    grid: list[tuple[str, "BatchingConfig | None"]] = [
        ("unbatched", None),
        ("batch 4 / depth 1", BatchingConfig(max_batch=4, flush_interval=2.0, pipeline_depth=1)),
        ("batch 4 / depth 2", BatchingConfig(max_batch=4, flush_interval=2.0, pipeline_depth=2)),
        ("batch 8 / depth 4", BatchingConfig(max_batch=8, flush_interval=2.0, pipeline_depth=4)),
    ]
    rows: list[Row] = []
    for jitter in jitters:
        for label, batching in grid:
            rows.append(_e9_run(label, batching, jitter, seed=seed))
    return rows


# ---------------------------------------------------------------------------
# E10 -- liveness under message loss (Section 2.1.1's fair-lossy model)
# ---------------------------------------------------------------------------


def _e10_run(
    label: str,
    drop_rate: float,
    batching: "BatchingConfig | None",
    retransmit: "RetransmitConfig | None",
    n_commands: int = 48,
    seed: int = 11,
    timeout: float = 20_000.0,
) -> Row:
    from repro.smr.instances import build_smr
    from repro.smr.machine import KVStore
    from repro.smr.replica import OrderedReplica

    sim = Simulation(
        seed=seed,
        network=NetworkConfig(drop_rate=drop_rate),
        max_events=4_000_000,
    )
    cluster = build_smr(
        sim,
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=3,
        n_learners=2,
        liveness=LivenessConfig(),
        batching=batching,
        retransmit=retransmit,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    replicas = [OrderedReplica(learner, KVStore()) for learner in cluster.learners]
    workload = Workload.generate(
        WorkloadConfig(
            n_commands=n_commands,
            arrival="burst",
            burst_size=4,
            period=3.0,
            seed=seed,
        )
    )
    workload.schedule_on(cluster)
    all_delivered = cluster.run_until_delivered(workload.commands, timeout=timeout)
    undelivered = sum(
        1
        for c in workload.commands
        if not all(learner.has_delivered(c) for learner in cluster.learners)
    )
    stats = cluster.retransmission_stats()
    learn_times = [
        t
        for t in (sim.metrics.learn_time(c) for c in workload.commands)
        if t is not None
    ]
    return {
        "engine": label,
        "drop rate": drop_rate,
        "delivered %": 100.0 * (n_commands - undelivered) / n_commands,
        "orders agree": len({r.order_signature() for r in replicas}) == 1,
        "makespan": (max(learn_times) - workload.config.start)
        if all_delivered
        else float("inf"),
        "msgs / cmd": sim.metrics.total_messages / n_commands,
        "retransmissions": stats["retransmissions"],
        "catch-ups": stats["catchup_requests"],
        "gossip": stats["gossip_rounds"],
    }


def experiment_e10(
    drop_rates: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5), seed: int = 11
) -> list[Row]:
    """Delivery under a fair-lossy network, with and without retransmission.

    A 48-command bursty workload is pushed through the multi-instance
    engine at increasing drop rates.  The seed engine (no retransmission)
    strands commands as soon as an ``IPropose`` can be lost on every link;
    the reliability layer (proposer retransmission + coordinator gossip +
    learner catch-up) must deliver 100% at every drop rate < 1 with all
    replicas applying the same total order, at a bounded messages-per-
    command overhead versus the loss-free baseline.
    """
    from repro.smr.instances import BatchingConfig, RetransmitConfig

    rows: list[Row] = []
    for drop_rate in drop_rates:
        rows.append(
            _e10_run("seed (no retransmit)", drop_rate, None, None, seed=seed)
        )
        rows.append(
            _e10_run("reliable", drop_rate, None, RetransmitConfig(), seed=seed)
        )
        rows.append(
            _e10_run(
                "reliable + batch 8/4",
                drop_rate,
                BatchingConfig(max_batch=8, flush_interval=2.0, pipeline_depth=4),
                RetransmitConfig(),
                seed=seed,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# E11 -- lattice-operation scaling of the generalized engine (ROADMAP item)
# ---------------------------------------------------------------------------


def _e11_run(
    mode: str,
    n_commands: int,
    conflict_rate: float,
    seed: int = 13,
    window: int = 8,
    bottom_factory: "Callable[[], object] | None" = None,
    read_fraction: float = 0.2,
) -> Row:
    """One closed-loop saturation run; wall time isolates lattice-op cost.

    A :class:`repro.smr.client.PipelinedClient` keeps *window* commands in
    flight, so the engines run at arrival pressure rather than timer pace.
    ``bottom_factory`` lets callers swap the c-struct implementation under
    the *same* protocol (the E11 benchmark uses it to race the incremental
    digraph history against the pre-digraph pairwise-scan implementation).
    """
    import time as _time

    from repro.smr.client import PipelinedClient

    sim = Simulation(seed=seed, max_events=20_000_000)
    if mode == "classic (instances)":
        from repro.smr.instances import BatchingConfig, build_smr
        from repro.smr.machine import KVStore
        from repro.smr.replica import OrderedReplica

        cluster = build_smr(
            sim,
            n_proposers=2,
            n_coordinators=3,
            n_acceptors=3,
            n_learners=2,
            liveness=LivenessConfig(),
            batching=BatchingConfig(max_batch=4, flush_interval=2.0, pipeline_depth=4),
        )
        cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
        client = PipelinedClient("e11", cluster, window=window)
        replica = OrderedReplica(cluster.learners[0], KVStore())
        client.watch_replica(replica)
    else:
        bottom = (
            bottom_factory() if bottom_factory is not None
            else CommandHistory.bottom(kv_conflict())
        )
        rtype = 1 if mode.startswith("generalized") else 2
        cluster = build_generalized(
            sim, bottom=bottom, n_coordinators=3, n_acceptors=3, n_learners=2
        )
        cluster.start_round(cluster.config.schedule.make_round(0, 1, rtype))
        client = PipelinedClient("e11", cluster, window=window)
        client.watch_learner(cluster.learners[0])
    workload = Workload.generate(
        WorkloadConfig(
            n_commands=n_commands,
            conflict_rate=conflict_rate,
            read_fraction=read_fraction,
            seed=seed,
        )
    )
    sim.run(until=5.0)  # let the round establish before loading it
    client.submit(workload.commands)
    target = len(workload.commands)
    start = _time.perf_counter()
    completed = sim.run_until(
        lambda: len(client.completed) >= target, timeout=200.0 * n_commands
    )
    wall = _time.perf_counter() - start
    return {
        "mode": mode,
        "commands": n_commands,
        "conflict rate": conflict_rate,
        "wall s": wall,
        "events": sim.events_processed,
        "makespan": sim.clock,
        "cmds / wall s": n_commands / wall if wall else float("inf"),
        "uncompleted": 0 if completed else target - len(client.completed),
    }


def experiment_e11(
    n_grid: tuple[int, ...] = (50, 100, 200),
    conflict_rates: tuple[float, ...] = (0.1, 0.5),
    seed: int = 13,
) -> list[Row]:
    """Scaling sweep: commands x conflict density x engine.

    The generalized/multicoordinated engines decide one ever-growing
    command history, so their per-event lattice work is the scaling
    bottleneck this PR's incremental constraint digraph removes; the
    instance-per-command engine (constant-size values) is the baseline
    whose scaling was never lattice-bound.  Near-linear wall-time growth
    of the generalized modes at low conflict density is the headline
    claim, asserted by ``benchmarks/bench_e11_lattice.py``.
    """
    rows: list[Row] = []
    for mode in ("classic (instances)", "generalized (single-coord)", "multicoordinated"):
        for rate in conflict_rates:
            for n in n_grid:
                rows.append(_e11_run(mode, n, rate, seed=seed))
    return rows


# ---------------------------------------------------------------------------
# E12 -- checkpointing / log truncation: bounded retained state (ROADMAP item)
# ---------------------------------------------------------------------------


def _e12_run(
    label: str,
    checkpoint: "CheckpointConfig | None",
    n_commands: int = 2400,
    seed: int = 17,
    crash_learner: bool = False,
    sample_period: float = 10.0,
    timeout: float = 100_000.0,
) -> Row:
    """One long-run workload; peak retained per-instance state is sampled.

    With ``crash_learner`` the third learner goes down mid-run, the
    cluster truncates past its durable checkpoint, and the learner is
    restarted -- it must converge through snapshot install + suffix
    replay to the identical replica order.
    """
    from repro.smr.instances import BatchingConfig, RetransmitConfig, build_smr
    from repro.smr.machine import KVStore
    from repro.smr.replica import OrderedReplica

    sim = Simulation(seed=seed, max_events=30_000_000)
    cluster = build_smr(
        sim,
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=3,
        n_learners=3,
        liveness=LivenessConfig(),
        batching=BatchingConfig(max_batch=8, flush_interval=1.0, pipeline_depth=8),
        retransmit=RetransmitConfig(),
        checkpoint=checkpoint,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    replicas = [OrderedReplica(learner, KVStore()) for learner in cluster.learners]
    workload = Workload.generate(
        WorkloadConfig(
            n_commands=n_commands, arrival="burst", burst_size=6, period=1.0, seed=seed
        )
    )
    workload.schedule_on(cluster)

    peaks: dict[str, int] = {}

    def sample() -> None:
        for key, value in cluster.retained_state().items():
            peaks[key] = max(peaks.get(key, 0), value)
        sim.schedule(sample_period, sample)

    sim.schedule(sample_period, sample)

    victim = cluster.learners[2]
    span = workload.span
    if crash_learner:
        sim.schedule(span / 3, victim.crash)
        sim.schedule(2 * span / 3, victim.recover)
    all_delivered = cluster.run_until_delivered(workload.commands, timeout=timeout)
    signatures = {r.order_signature() for r in replicas}
    stats = cluster.checkpoint_stats() if checkpoint is not None else {}
    return {
        "engine": label,
        "commands": n_commands,
        "delivered": all_delivered,
        "orders agree": len(signatures) == 1,
        "peak acceptor journal": peaks.get("acceptor journal", 0),
        "peak acceptor votes": peaks.get("acceptor votes", 0),
        "peak coord decided": peaks.get("coordinator decided", 0),
        "peak learner decided": peaks.get("learner decided", 0),
        "snapshots": stats.get("snapshots", 0),
        "installs": stats.get("installs", 0),
        "final floor": stats.get("acceptor_floor", 0),
    }


def experiment_e12(
    n_commands: int = 2400,
    intervals: tuple[int, ...] = (50, 200),
    seed: int = 17,
) -> list[Row]:
    """Retained state vs checkpoint interval on a multi-thousand-command run.

    The seed engine retains every acceptor vote and decision forever, so
    its peak per-process journal is O(total commands).  With a
    ``CheckpointConfig`` the peak must track the checkpoint *window*
    (interval + in-flight slack) -- flat in the total run length -- and a
    learner restarted from below the truncation frontier must converge by
    snapshot install to the identical order (``bench_e12_checkpoint.py``
    asserts both).
    """
    from repro.smr.instances import CheckpointConfig

    rows = [_e12_run("unbounded (no checkpoint)", None, n_commands, seed=seed)]
    for interval in intervals:
        rows.append(
            _e12_run(
                f"checkpoint every {interval}",
                CheckpointConfig(interval=interval, gc_quorum=2),
                n_commands,
                seed=seed,
            )
        )
    rows.append(
        _e12_run(
            f"checkpoint {intervals[0]} + laggard restart",
            CheckpointConfig(interval=intervals[0], gc_quorum=2, chunk_size=128),
            n_commands,
            seed=seed,
            crash_learner=True,
        )
    )
    return rows


# ---------------------------------------------------------------------------
# E13 -- generalized-engine parity: c-struct batching + stable-prefix GC
# ---------------------------------------------------------------------------


def _e13_run(
    label: str,
    n_commands: int,
    conflict_rate: float,
    batching: "GenBatchingConfig | None" = None,
    retransmit: "RetransmitConfig | None" = None,
    checkpoint: "CheckpointConfig | None" = None,
    seed: int = 19,
    window: int = 16,
    sample_period: float = 10.0,
    crash_learner: bool = False,
    n_learners: int = 2,
) -> Row:
    """One closed-loop saturation run on the generalized engine.

    A :class:`repro.smr.client.PipelinedClient` keeps *window* commands in
    flight so batches fill on arrival pressure; peak retained
    history-lattice state is sampled periodically.  With ``crash_learner``
    the last learner goes down mid-run, the cluster truncates past its
    durable checkpoint, and the learner is restarted -- it must converge
    through snapshot install to a compatible replica.
    """
    import time as _time

    from repro.core.generalized import build_generalized
    from repro.smr.client import PipelinedClient
    from repro.smr.machine import KVStore
    from repro.smr.replica import BroadcastReplica

    sim = Simulation(seed=seed, max_events=30_000_000)
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        n_coordinators=3,
        n_acceptors=3,
        n_learners=n_learners,
        batching=batching,
        retransmit=retransmit,
        checkpoint=checkpoint,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    replicas = [BroadcastReplica(learner, KVStore()) for learner in cluster.learners]
    client = PipelinedClient("e13", cluster, window=window)
    client.watch_learner(cluster.learners[0])
    workload = Workload.generate(
        WorkloadConfig(
            n_commands=n_commands,
            conflict_rate=conflict_rate,
            read_fraction=0.2,
            seed=seed,
        )
    )
    sim.run(until=5.0)  # let the round establish before loading it
    client.submit(workload.commands)

    peaks: dict[str, int] = {}

    def sample() -> None:
        for key, value in cluster.retained_history().items():
            peaks[key] = max(peaks.get(key, 0), value)
        sim.schedule(sample_period, sample)

    sim.schedule(sample_period, sample)

    victim = cluster.learners[-1]
    if crash_learner:
        # Crash once a third of the run is delivered; restart at two
        # thirds, after the cluster has truncated past the victim.
        sim.run_until(
            lambda: len(cluster.learners[0].delivered) >= n_commands // 3,
            timeout=200.0 * n_commands,
        )
        victim.crash()
        sim.run_until(
            lambda: len(cluster.learners[0].delivered) >= 2 * n_commands // 3,
            timeout=200.0 * n_commands,
        )
        victim.recover()
    start = _time.perf_counter()
    completed = sim.run_until(
        lambda: cluster.everyone_learned(workload.commands),
        timeout=200.0 * n_commands,
    )
    wall = _time.perf_counter() - start
    sample()
    hot_orders = {
        tuple(c for c in replica.executed if c.key == workload.config.hot_key)
        for replica in replicas
    }
    stats = cluster.checkpoint_stats() if checkpoint is not None else {}
    return {
        "engine": label,
        "commands": n_commands,
        "conflict rate": conflict_rate,
        "completed": completed,
        "wall s": wall,
        "events": sim.events_processed,
        "msgs / cmd": sim.metrics.total_messages / n_commands,
        "cmds / wall s": n_commands / wall if wall else float("inf"),
        "peak retained history": max(
            peaks.get("acceptor vval", 0),
            peaks.get("learner learned", 0),
            peaks.get("coordinator cval", 0),
        ),
        "peak acceptor journal": peaks.get("acceptor journal", 0),
        "orders agree": len(hot_orders) == 1,
        "states agree": len({r.machine.snapshot() for r in replicas}) == 1,
        "snapshots": stats.get("snapshots", 0),
        "installs": stats.get("installs", 0),
        "final floor": stats.get("acceptor_floor", 0),
    }


def experiment_e13(
    n_commands: int = 200,
    conflict_rates: tuple[float, ...] = (0.1, 0.3),
    seed: int = 19,
) -> list[Row]:
    """Batch size x conflict density on the generalized engine.

    Without batching every proposal costs one ``extend`` plus one 2a/2b
    round trip of its own; with a :class:`GenBatchingConfig` whole command
    groups ride one phase "2a" (one ``CommandHistory.extend`` per batch),
    so events and messages per command drop by ~the batch size and
    end-to-end throughput rises well over the 2x acceptance bar
    (``benchmarks/bench_e13_gen_parity.py`` asserts it at moderate
    conflict density).
    """
    from repro.core.generalized import GenBatchingConfig

    grid: list[tuple[str, "GenBatchingConfig | None"]] = [
        ("unbatched", None),
        ("batch 4", GenBatchingConfig(max_batch=4, flush_interval=2.0)),
        ("batch 8", GenBatchingConfig(max_batch=8, flush_interval=2.0)),
    ]
    rows: list[Row] = []
    for rate in conflict_rates:
        for label, batching in grid:
            rows.append(
                _e13_run(label, n_commands, rate, batching=batching, seed=seed)
            )
    return rows


def experiment_e13_memory(
    n_grid: tuple[int, ...] = (400, 800, 1200),
    interval: int = 50,
    conflict_rate: float = 0.3,
    seed: int = 19,
) -> list[Row]:
    """Retained history vs run length: window-bounded vs unbounded.

    The unbounded engine's peak retained history (acceptor ``vval``,
    learner ``learned``, coordinator ``cval``) grows linearly with the
    run; with stable-prefix checkpointing it must track the checkpoint
    *window* -- flat across run lengths.  The final row restarts a laggard
    learner below the truncation floor: it must converge through chunked
    snapshot install to a compatible replica.
    """
    from repro.core.checkpoint import CheckpointConfig, RetransmitConfig
    from repro.core.generalized import GenBatchingConfig

    batching = GenBatchingConfig(max_batch=8, flush_interval=1.0)
    rows: list[Row] = []
    for n in n_grid:
        rows.append(
            _e13_run(f"unbounded, {n} cmds", n, conflict_rate, batching=batching, seed=seed)
        )
        rows.append(
            _e13_run(
                f"checkpoint {interval}, {n} cmds",
                n,
                conflict_rate,
                batching=batching,
                retransmit=RetransmitConfig(),
                checkpoint=CheckpointConfig(interval=interval, gc_quorum=2),
                seed=seed,
            )
        )
    rows.append(
        _e13_run(
            f"checkpoint {interval} + laggard restart",
            n_grid[0],
            conflict_rate,
            batching=batching,
            retransmit=RetransmitConfig(),
            checkpoint=CheckpointConfig(interval=interval, gc_quorum=2, chunk_size=64),
            seed=seed,
            crash_learner=True,
            n_learners=3,
        )
    )
    return rows


# ---------------------------------------------------------------------------
# E14 -- wall-clock throughput/latency over the real asyncio transport
# ---------------------------------------------------------------------------


def experiment_e14(
    n_commands: int = 200,
    window: int = 8,
    seed: int = 23,
) -> list[Row]:
    """The engines on real sockets: msgs/sec and latency percentiles.

    Unlike E1-E13 (deterministic simulations; latency in virtual units),
    E14 deploys the **identical role classes** on the asyncio
    :class:`~repro.net.transport.NetRuntime` -- one runtime per node over
    loopback UDP/TCP, every message through the versioned codec -- and
    measures wall-clock time.  Three conditions: clean UDP, 5%% injected
    loss (reliability layer + liveness recovery pay real milliseconds),
    and a tiny MTU forcing every frame onto the TCP fallback path.

    The numbers are hardware-dependent; the CI-gated claims are only
    that every condition completes with all learners in agreement.
    """
    import asyncio

    from repro.net.transport import DEFAULT_MTU

    grid = [
        ("udp", 0.0, DEFAULT_MTU, n_commands),
        ("udp, 5% loss", 0.05, DEFAULT_MTU, max(40, n_commands // 2)),
        ("tcp (mtu 200)", 0.0, 200, max(40, n_commands // 2)),
    ]
    return [
        asyncio.run(_e14_run(label, count, loss, mtu, window, seed))
        for label, loss, mtu, count in grid
    ]


async def _e14_run(
    label: str, n_commands: int, loss: float, mtu: int, window: int, seed: int
) -> Row:
    from repro.net.cluster import (
        LoopbackDeployment,
        wall_clock_liveness,
        wall_clock_retransmit,
    )
    from repro.smr.client import PipelinedClient
    from repro.smr.instances import make_instances_config

    config = make_instances_config(
        n_proposers=2,
        n_coordinators=3,
        n_acceptors=3,
        n_learners=2,
        retransmit=wall_clock_retransmit(),
        liveness=wall_clock_liveness(),
    )
    deployment = LoopbackDeployment(config, seed=seed, loss_rate=loss, mtu=mtu)
    await deployment.start()
    client = PipelinedClient("e14", deployment.cluster, window=window)
    deployment.cluster.attach_client(client)
    cmds = [Command(f"e14-{i}", "put", f"k{i % 8}", i) for i in range(n_commands)]
    started = deployment.driver.clock
    client.submit(cmds)
    completed = await deployment.driver.wait_until(
        client.all_completed, timeout=60.0 + 3.0 * n_commands * (loss + 0.02)
    )
    elapsed = deployment.driver.clock - started
    agree = len(set(deployment.delivery_orders())) == 1
    messages = sum(
        r.metrics.total_messages for r in deployment.runtimes.values()
    )
    udp = sum(r.frames_udp for r in deployment.runtimes.values())
    tcp = sum(r.frames_tcp for r in deployment.runtimes.values())
    latencies = sorted(
        lat for lat in (client.latency(c) for c in cmds) if lat is not None
    )
    await deployment.stop()

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "condition": label,
        "commands": n_commands,
        "completed": completed,
        "orders agree": agree,
        "wall s": round(elapsed, 2),
        "cmds/s": round(n_commands / elapsed, 1),
        "msgs/s": round(messages / elapsed, 1),
        "p50 ms": round(1e3 * pct(0.50), 1),
        "p99 ms": round(1e3 * pct(0.99), 1),
        "udp frames": udp,
        "tcp frames": tcp,
    }


# ---------------------------------------------------------------------------
# E15 -- delta wire protocol: O(delta) hot paths, digest catch-up, sessions
# ---------------------------------------------------------------------------

_E15_HOT = ("Phase2a", "Phase2b", "Phase2aDelta", "Phase2bDelta")


def _e15_sizer():
    """Real codec frame lengths, memoized per unique c-struct payload.

    Cumulative senders re-ship the *same* ``vval``/``cval`` object on
    every poll answer and re-announce until their next accept, so caching
    by payload identity keeps the byte accounting exact while avoiding
    re-encoding hundreds of megabytes of repeated history.  The cache
    holds a reference to each payload so an ``id`` is never reused.
    """
    from repro.net.codec import encode

    cache: dict = {}

    def size(msg) -> int:
        payload = getattr(msg, "val", None)
        if payload is None:
            return len(encode(msg))
        key = (type(msg).__name__, id(payload))
        hit = cache.get(key)
        if hit is None:
            hit = cache[key] = (len(encode(msg)), payload)
        return hit[0]

    return size


def _e15_conflicting_orders(learners, commands, key: str) -> set[tuple]:
    """Per-learner delivered order restricted to *key* (the agreed part)."""
    wanted = {c for c in commands if c.key == key}
    orders = set()
    for learner in learners:
        seen: set = set()
        order = []
        for cmd in learner.delivered:
            if cmd in wanted and cmd not in seen:
                seen.add(cmd)
                order.append(cmd)
        orders.add(tuple(order))
    return orders


def _e15_run(
    label: str,
    n_commands: int,
    delta: "DeltaConfig | None" = None,
    sessions: "SessionConfig | None" = None,
    checkpoint: "CheckpointConfig | None" = None,
    seed: int = 31,
    spacing: float = 24.0,
    idle_span: float = 120.0,
) -> Row:
    """One trickle-load-then-idle run with every wire byte accounted.

    Commands arrive *spacing* time units apart -- slow enough that the
    reliability layer's periodic chatter (catch-up polls, 2a re-announce)
    runs between arrivals, exactly the regime where the cumulative
    protocol's O(history) payloads dominate.  After the load completes
    the cluster sits idle for *idle_span* and the per-tick idle bytes are
    measured: O(history) cumulative vs O(1) stamped under a
    ``DeltaConfig``.  Wire bytes use the real codec length of every
    simulator send (``Metrics.sizer``), so the numbers are the ones the
    ``repro.net`` transport would put on loopback sockets.
    """
    from repro.core.checkpoint import RetransmitConfig

    sim = Simulation(seed=seed, max_events=30_000_000)
    sim.metrics.sizer = _e15_sizer()
    retransmit = RetransmitConfig(catchup_interval=2.0)
    cluster = build_generalized(
        sim,
        bottom=CommandHistory.bottom(kv_conflict()),
        retransmit=retransmit,
        checkpoint=checkpoint,
        delta=delta,
        sessions=sessions,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 1, 2))
    commands = [
        Command(f"e15c{i % 4}:{i // 4}", "put", f"k{i % 8}", i)
        for i in range(n_commands)
    ]
    for i, cmd in enumerate(commands):
        cluster.propose(cmd, delay=5.0 + i * spacing)
    completed = cluster.run_until_learned(
        commands, timeout=60.0 + 4.0 * spacing * n_commands
    )

    load_events = sim.events_processed
    load_hot = sum(sim.metrics.bytes_by_type[t] for t in _E15_HOT)
    idle_start = sim.metrics.total_bytes
    sim.run(until=sim.clock + idle_span)
    idle_bytes = sim.metrics.total_bytes - idle_start
    ticks = (idle_span / retransmit.catchup_interval) * len(cluster.learners)
    stats = cluster.delta_stats()
    return {
        "mode": label,
        "commands": n_commands,
        "completed": completed,
        "orders agree": len(
            _e15_conflicting_orders(cluster.learners, commands, "k0")
        )
        == 1,
        "events / cmd": round(load_events / n_commands, 1),
        "2a/2b B / cmd": round(load_hot / n_commands),
        "idle B / tick": round(idle_bytes / ticks, 1),
        "wire MB": round(sim.metrics.total_bytes / 1e6, 2),
        "delta 2b": stats["delta_2b"],
        "stamps": stats["stamps_confirmed"] + stats["acceptor_stamps_sent"],
        "resyncs": stats["resyncs_sent"] + stats["acceptor_resyncs"],
        "retained dedup": cluster.retained_dedup(),
    }


def experiment_e15(
    n_grid: tuple[int, ...] = (100, 200, 400),
    seed: int = 31,
) -> list[Row]:
    """Bytes-on-wire and events/command vs history length.

    Cumulative mode re-ships the full c-struct on every accept, every 2a
    re-announce and every catch-up answer, so per-command wire bytes and
    idle-tick bytes grow linearly with history length.  Delta mode
    (``DeltaConfig``) ships only unsent suffixes and answers matching
    stamped polls with an O(1) ``VoteStamp`` -- both curves must go flat
    (``benchmarks/bench_e15_delta.py`` asserts it).
    """
    from repro.core.generalized import DeltaConfig

    rows: list[Row] = []
    for n in n_grid:
        rows.append(_e15_run(f"cumulative, {n} cmds", n, seed=seed))
        rows.append(
            _e15_run(
                f"delta, {n} cmds",
                n,
                delta=DeltaConfig(idle_poll_every=8),
                seed=seed,
            )
        )
    return rows


def experiment_e15_sessions(
    base: int = 120,
    interval: int = 40,
    seed: int = 33,
) -> list[Row]:
    """Learner dedup memory: seen-*set* vs bounded session windows.

    Both conditions run delta + checkpointing; the only difference is
    ``SessionConfig``.  The legacy seen-set's retained cells grow with
    the run (checkpointing bounds the *history lattice*, not the dedup
    set), while the session windows stay ~flat across a 3x-longer run.
    """
    from repro.core.checkpoint import CheckpointConfig
    from repro.core.generalized import DeltaConfig
    from repro.core.sessions import SessionConfig

    rows: list[Row] = []
    for n in (base, 3 * base):
        for label, sessions in (
            ("seen-set", None),
            ("sessions", SessionConfig(window=32)),
        ):
            rows.append(
                _e15_run(
                    f"{label}, {n} cmds",
                    n,
                    delta=DeltaConfig(),
                    sessions=sessions,
                    checkpoint=CheckpointConfig(interval=interval, gc_quorum=2),
                    seed=seed,
                    spacing=3.0,
                    idle_span=60.0,
                )
            )
    return rows


def experiment_e15_net(
    n_commands: int = 40,
    seed: int = 29,
) -> list[Row]:
    """The delta protocol on real loopback sockets, one node per role.

    The identical generalized-engine role classes run on per-role
    :class:`~repro.net.transport.NetRuntime` nodes (every message through
    the codec and a real UDP/TCP socket); wire bytes are the actual
    encoded frame lengths counted by the transport.  The claim mirrors
    the simulator rows: delta mode completes with agreeing learners and
    puts fewer bytes on the wire, flat while idle.
    """
    import asyncio

    return [
        asyncio.run(_e15_net_run("cumulative", n_commands, False, seed)),
        asyncio.run(_e15_net_run("delta", n_commands, True, seed)),
    ]


async def _e15_net_run(label: str, n_commands: int, use_delta: bool, seed: int) -> Row:
    import asyncio

    from repro.core.generalized import DeltaConfig, GeneralizedConfig
    from repro.core.quorums import QuorumSystem as _QS
    from repro.core.topology import Topology
    from repro.net.cluster import GeneralizedLoopbackDeployment, wall_clock_retransmit

    topology = Topology.build(1, 2, 3, 2)
    schedule = RoundSchedule(range(2), recovery_rtype=1)
    config = GeneralizedConfig(
        topology=topology,
        quorums=_QS(topology.acceptors, f=1),
        schedule=schedule,
        bottom=CommandHistory.bottom(kv_conflict()),
        retransmit=wall_clock_retransmit(),
        delta=DeltaConfig() if use_delta else None,
    )
    deployment = GeneralizedLoopbackDeployment(config, seed=seed)
    await deployment.start()
    commands = [Command(f"net:{i}", "put", "k0", i) for i in range(n_commands)]
    for i, cmd in enumerate(commands):
        deployment.cluster.propose(cmd, delay=0.3 + i * 0.02)

    completed = await deployment.run_until_learned(commands, timeout=30.0)
    idle_start = deployment.total_wire_bytes()
    t0 = deployment.driver.clock
    await asyncio.sleep(2.0)
    idle_span = deployment.driver.clock - t0
    total = deployment.total_wire_bytes()
    orders = _e15_conflicting_orders(deployment.learners, commands, "k0")
    await deployment.stop()
    return {
        "mode": label,
        "commands": n_commands,
        "completed": completed,
        "orders agree": len(orders) == 1,
        "wire KB": round(total / 1e3, 1),
        "idle B / s": round((total - idle_start) / idle_span),
    }


# ---------------------------------------------------------------------------
# E16 -- sharded multi-group consensus: throughput scaling (repro.shard)
# ---------------------------------------------------------------------------


def _e16_group_keys(shard_map, gid: int, count: int, prefix: str = "k") -> list[str]:
    """The first *count* ``<prefix><i>`` keys hashing to group *gid*.

    Key placement is the deterministic blake2b hash, so workload keys
    must be *searched*, not assumed: ``k0..k3`` may all land in one
    group.  The search is deterministic and cheap (expected
    ``count * n_groups`` probes).
    """
    keys: list[str] = []
    i = 0
    while len(keys) < count:
        key = f"{prefix}{i}"
        if shard_map.group_of_key(key) == gid:
            keys.append(key)
        i += 1
    return keys


def _e16_run(
    n_groups: int,
    clients_per_group: int,
    cmds_per_client: int,
    cross_fraction: float = 0.0,
    seed: int = 41,
) -> Row:
    """One closed-loop sharded run; aggregate throughput in virtual time.

    *clients_per_group* pipelined clients drive each group on keys owned
    by that group (weak scaling: per-group load is constant, aggregate
    load grows with the group count).  With *cross_fraction* > 0 a
    dedicated cross client issues that fraction (of the single-shard
    total) as two-key commands spanning adjacent groups, exercising the
    merge group + barrier path under the same load.
    """
    from repro.shard import ShardedDeployment
    from repro.smr.client import PipelinedClient
    from repro.smr.instances import BatchingConfig

    sim = Simulation(seed=seed, max_events=30_000_000)
    deployment = ShardedDeployment.build(
        sim,
        n_groups,
        batching=BatchingConfig(max_batch=4, flush_interval=1.0, pipeline_depth=4),
    )
    deployment.start()
    sim.run(until=5.0)  # bootstrap rounds settle before load

    all_cmds: list[Command] = []
    clients: list[PipelinedClient] = []
    for gid in range(n_groups):
        keys = _e16_group_keys(deployment.shard_map, gid, 4)
        for c in range(clients_per_group):
            client = PipelinedClient(
                f"c{gid}.{c}", deployment.router, window=8
            )
            client.watch_replica(deployment.replicas[gid][0])
            cmds = [
                client.make_command("put", keys[i % len(keys)], i)
                for i in range(cmds_per_client)
            ]
            all_cmds.extend(cmds)
            client.submit(cmds)
            clients.append(client)

    n_cross = round(cross_fraction * len(all_cmds))
    if n_cross:
        cross = PipelinedClient("cx", deployment.router, window=4)
        for gid in range(n_groups):
            cross.watch_replica(deployment.replicas[gid][0])
        cross_keys = [
            _e16_group_keys(deployment.shard_map, gid, 1, prefix="x")[0]
            for gid in range(n_groups)
        ]
        cmds = [
            cross.make_command(
                "put",
                f"{cross_keys[i % n_groups]}|{cross_keys[(i + 1) % n_groups]}",
                i,
            )
            for i in range(n_cross)
        ]
        all_cmds.extend(cmds)
        cross.submit(cmds)
        clients.append(cross)

    start = sim.clock
    completed = deployment.run_until_executed(
        all_cmds, timeout=2_000.0 * max(1, cmds_per_client)
    )
    span = sim.clock - start
    return {
        "groups": n_groups,
        "clients": len(clients),
        "commands": len(all_cmds),
        "cross": n_cross,
        "completed": completed and all(c.all_completed() for c in clients),
        "divergent keys": len(deployment.divergent_keys()),
        "barriers": deployment.router.next_barrier,
        "span": round(span, 1),
        "throughput / ktime": round(1000.0 * len(all_cmds) / span, 1),
    }


def experiment_e16(
    groups_grid: tuple[int, ...] = (1, 2, 4),
    clients_per_group: int = 3,
    cmds_per_client: int = 40,
    seed: int = 41,
) -> list[Row]:
    """Aggregate throughput vs group count on a disjoint-key workload.

    The tentpole scaling claim: groups share no keys and no roles, so
    each group's coordinator pipeline -- the single-group bottleneck --
    is replicated N times and aggregate throughput scales near-linearly
    (``benchmarks/bench_e16_shard.py`` asserts >= 3x at 4 groups, and
    the CI quick mode >= 1.8x).  Weak scaling: per-group load is held
    constant while the group count grows.
    """
    rows: list[Row] = []
    for n_groups in groups_grid:
        rows.append(
            _e16_run(n_groups, clients_per_group, cmds_per_client, seed=seed)
        )
    base = rows[0]["throughput / ktime"]
    for row in rows:
        row["speedup vs 1 group"] = round(row["throughput / ktime"] / base, 2)
    return rows


def experiment_e16_cross(
    fractions: tuple[float, ...] = (0.0, 0.01, 0.10),
    n_groups: int = 4,
    clients_per_group: int = 3,
    cmds_per_client: int = 40,
    seed: int = 43,
) -> list[Row]:
    """Throughput vs cross-shard fraction at a fixed group count.

    Cross-shard commands cost a merge-group decision plus a barrier
    placeholder in every owning group, and replicas stall their local
    log at the barrier until the merge order arrives -- so throughput
    degrades gracefully with the cross fraction instead of collapsing.
    Every row must finish with zero per-key divergence across replicas.
    """
    rows: list[Row] = []
    for fraction in fractions:
        row = _e16_run(
            n_groups,
            clients_per_group,
            cmds_per_client,
            cross_fraction=fraction,
            seed=seed,
        )
        row["cross %"] = round(100.0 * fraction, 1)
        rows.append(row)
    base = rows[0]["throughput / ktime"]
    for row in rows:
        row["throughput vs 0%"] = round(row["throughput / ktime"] / base, 2)
    return rows


# ---------------------------------------------------------------------------
# E17 -- randomized fault soak: nemesis episodes + trace-checked consistency
# ---------------------------------------------------------------------------


def _e17_fault_configs():
    """Shared reliability/liveness tuning for the soak deployments."""
    from repro.core.checkpoint import CheckpointConfig, RetransmitConfig

    retransmit = RetransmitConfig(retry_interval=4.0)
    liveness = LivenessConfig(
        heartbeat_period=2.0,
        suspect_timeout=8.0,
        check_period=2.0,
        stuck_timeout=10.0,
    )
    checkpoint = CheckpointConfig(interval=32, chunk_size=16)
    return retransmit, liveness, checkpoint


def _e17_workload(make_command, n_cmds: int, n_keys: int = 5) -> list:
    """A mixed put/inc/get/cas stream over a small key set.

    Reads and CAS make the checker's witness replay meaningful: a
    divergent order almost surely changes some recorded result.
    """
    cmds = []
    for i in range(n_cmds):
        key = f"k{i % n_keys}"
        kind = i % 4
        if kind == 0:
            cmds.append(make_command("put", key, i))
        elif kind == 1:
            cmds.append(make_command("inc", key, None))
        elif kind == 2:
            cmds.append(make_command("get", key, None))
        else:
            cmds.append(make_command("cas", key, (i - 4, i)))
    return cmds


def _e17_row(
    engine: str,
    seed: int,
    episodes: int,
    cmds,
    completed: bool,
    report,
    nem,
    horizon: float,
    done_clock: float,
    retained: int | None,
) -> Row:
    return {
        "engine": engine,
        "seed": seed,
        "episodes": episodes,
        "commands": len(cmds),
        "completed after heal": completed,
        "violations": len(report.violations),
        "checker events": report.events,
        "nemesis lines": len(nem.log),
        "heal horizon": round(horizon, 1),
        "done clock": round(done_clock, 1),
        "heal-to-done": round(max(0.0, done_clock - horizon), 1),
        "peak retained": retained if retained is not None else "",
    }


def _e17_smr_run(
    seed: int,
    episodes: int,
    n_cmds: int,
    mean_gap: float = 5.0,
    mean_duration: float = 6.0,
) -> Row:
    """One nemesis soak on the instances engine, trace-checked."""
    from repro.chaos import mixed_soak
    from repro.core.checker import TraceRecorder, check_trace
    from repro.sim.nemesis import ClusterView, Nemesis
    from repro.smr.client import PipelinedClient
    from repro.smr.instances import build_smr
    from repro.smr.machine import KVStore
    from repro.smr.replica import OrderedReplica

    retransmit, liveness, checkpoint = _e17_fault_configs()
    sim = Simulation(
        seed=seed,
        network=NetworkConfig(latency=1.0, jitter=0.5),
        max_events=30_000_000,
    )
    cluster = build_smr(
        sim,
        n_proposers=1,
        n_coordinators=2,
        n_acceptors=3,
        n_learners=2,
        retransmit=retransmit,
        liveness=liveness,
        checkpoint=checkpoint,
    )
    cluster.start_round(cluster.config.schedule.make_round(coord=0, count=2, rtype=2))
    replicas = [OrderedReplica(l, KVStore()) for l in cluster.learners]

    recorder = TraceRecorder(sim)
    recorder.attach_smr(cluster, replicas=replicas)

    client = PipelinedClient("c0", cluster, window=4, retry_interval=16.0)
    client.watch_replica(replicas[0])
    cmds = _e17_workload(client.make_command, n_cmds)
    for cmd in cmds:
        recorder.note_propose(cmd)
        recorder.note_invoke(cmd)
    client.submit(cmds)

    view = ClusterView.of(cluster)
    nem = Nemesis(sim, view, seed=seed)
    horizon = nem.apply(
        mixed_soak(view, seed=seed, episodes=episodes,
                   mean_gap=mean_gap, mean_duration=mean_duration)
    )
    sim.run_until(lambda: sim.clock >= horizon, timeout=horizon + 1)
    nem.heal()
    completed = sim.run_until(
        lambda: client.all_completed(), timeout=sim.clock + 8_000.0
    )
    for cmd in cmds:
        recorder.note_complete(cmd.cid)

    report = check_trace(recorder.events)
    retained = max(cluster.retained_state().values())
    return _e17_row(
        "instances", seed, episodes, cmds, completed, report, nem,
        horizon, sim.clock, retained,
    )


def _e17_generalized_run(
    seed: int,
    episodes: int,
    n_cmds: int,
    mean_gap: float = 5.0,
    mean_duration: float = 6.0,
) -> Row:
    """One nemesis soak on the generalized engine, trace-checked."""
    from repro.chaos import mixed_soak
    from repro.core.checker import TraceRecorder, check_trace
    from repro.sim.nemesis import ClusterView, Nemesis
    from repro.smr.client import PipelinedClient
    from repro.smr.machine import KVStore
    from repro.smr.replica import BroadcastReplica

    retransmit, liveness, checkpoint = _e17_fault_configs()
    sim = Simulation(
        seed=seed,
        network=NetworkConfig(latency=1.0, jitter=0.5),
        max_events=30_000_000,
    )
    cluster = build_generalized(
        sim,
        CommandHistory.bottom(kv_conflict()),
        n_proposers=1,
        n_coordinators=2,
        n_acceptors=3,
        n_learners=2,
        retransmit=retransmit,
        liveness=liveness,
        checkpoint=checkpoint,
    )
    cluster.start_round(cluster.config.schedule.make_round(0, 2, 2))
    replicas = [BroadcastReplica(l, KVStore()) for l in cluster.learners]

    recorder = TraceRecorder(sim)
    recorder.attach_generalized(cluster, replicas=replicas)

    client = PipelinedClient("c0", cluster, window=4, retry_interval=16.0)
    client.watch_learner(cluster.learners[0])
    cmds = _e17_workload(client.make_command, n_cmds)
    for cmd in cmds:
        recorder.note_propose(cmd)
        recorder.note_invoke(cmd)
    client.submit(cmds)

    view = ClusterView.of(cluster)
    nem = Nemesis(sim, view, seed=seed)
    horizon = nem.apply(
        mixed_soak(view, seed=seed, episodes=episodes,
                   mean_gap=mean_gap, mean_duration=mean_duration)
    )
    sim.run_until(lambda: sim.clock >= horizon, timeout=horizon + 1)
    nem.heal()
    completed = sim.run_until(
        lambda: client.all_completed(), timeout=sim.clock + 8_000.0
    )
    for cmd in cmds:
        recorder.note_complete(cmd.cid)

    report = check_trace(recorder.events)
    retained = max(cluster.retained_history().values())
    return _e17_row(
        "generalized", seed, episodes, cmds, completed, report, nem,
        horizon, sim.clock, retained,
    )


def _e17_sharded_run(
    seed: int,
    episodes: int,
    n_cmds: int,
    n_groups: int = 2,
    cross_every: int = 10,
    mean_gap: float = 5.0,
    mean_duration: float = 6.0,
) -> Row:
    """One nemesis soak on a sharded deployment, trace-checked.

    Faults hit group and merge roles alike; cross-shard commands keep
    the merge path exercised while partitions and crash storms land.
    The sharded groups run without checkpointing (see
    ``repro.shard.deploy``), so no retained-state bound is claimed here.
    """
    from repro.chaos import mixed_soak
    from repro.core.checker import TraceRecorder, check_trace
    from repro.shard import ShardedDeployment
    from repro.sim.nemesis import ClusterView, Nemesis

    retransmit, liveness, _ = _e17_fault_configs()
    sim = Simulation(
        seed=seed,
        network=NetworkConfig(latency=1.0, jitter=0.5),
        max_events=30_000_000,
    )
    deployment = ShardedDeployment.build(
        sim, n_groups, retransmit=retransmit, liveness=liveness
    ).start()

    recorder = TraceRecorder(sim)
    recorder.attach_sharded(deployment)

    def keys_for_group(gid: int, count: int) -> list[str]:
        keys: list[str] = []
        i = 0
        while len(keys) < count:
            key = f"k{i}"
            if deployment.shard_map.group_of_key(key) == gid:
                keys.append(key)
            i += 1
        return keys

    per_group = [keys_for_group(gid, 2) for gid in range(n_groups)]
    flat = [key for keys in per_group for key in keys]
    cmds = []
    for i in range(n_cmds):
        if cross_every and i % cross_every == cross_every - 1:
            a = per_group[i % n_groups][0]
            b = per_group[(i + 1) % n_groups][0]
            cmds.append(Command(f"x{i}", "put", f"{a}|{b}", i))
        else:
            cmds.append(Command(f"c{i}", "put", flat[i % len(flat)], i))
    for cmd in cmds:
        recorder.note_propose(cmd)

    view = ClusterView.of(deployment)
    nem = Nemesis(sim, view, seed=seed)
    horizon = nem.apply(
        mixed_soak(view, seed=seed, episodes=episodes,
                   mean_gap=mean_gap, mean_duration=mean_duration)
    )
    spacing = max(0.5, horizon / max(1, len(cmds)))
    for j, cmd in enumerate(cmds):
        deployment.router.propose(cmd, delay=2.0 + spacing * j)

    sim.run_until(lambda: sim.clock >= horizon, timeout=horizon + 1)
    nem.heal()
    completed = deployment.run_until_executed(cmds, timeout=sim.clock + 8_000.0)

    report = check_trace(recorder.events)
    row = _e17_row(
        "sharded", seed, episodes, cmds, completed, report, nem,
        horizon, sim.clock, None,
    )
    row["divergent keys"] = len(deployment.divergent_keys())
    return row


def experiment_e17(
    runs_per_engine: int = 2,
    episodes_per_run: int = 8,
    n_cmds: int = 48,
    base_seed: int = 23,
) -> list[Row]:
    """Randomized nemesis soak across all three deployment shapes.

    Every run drives a mixed workload while a seeded :class:`Nemesis`
    composes partitions, flapping links, latency skew and crash storms,
    then heals and requires (1) every command completes -- liveness
    restored, (2) the offline trace checker finds zero violations, and
    (3) retained per-process state stays bounded by the checkpoint
    window on the checkpointing engines.  ``benchmarks/bench_e17_soak.py``
    scales this to >= 1000 episodes; the defaults here are the unit-smoke
    parameterization.
    """
    rows: list[Row] = []
    for i in range(runs_per_engine):
        rows.append(_e17_smr_run(base_seed + i, episodes_per_run, n_cmds))
    for i in range(runs_per_engine):
        rows.append(
            _e17_generalized_run(base_seed + 100 + i, episodes_per_run, n_cmds)
        )
    for i in range(runs_per_engine):
        rows.append(
            _e17_sharded_run(base_seed + 200 + i, episodes_per_run, n_cmds)
        )
    return rows


ALL_EXPERIMENTS: dict[str, Callable[[], list[Row]]] = {
    "E1 latency (steps)": experiment_e1,
    "E2 quorum sizes": experiment_e2,
    "E3 availability": experiment_e3,
    "E4 load balance": experiment_e4,
    "E5 collisions": experiment_e5,
    "E5b wasted writes": experiment_e5_waste,
    "E6 disk writes": experiment_e6,
    "E7 recovery cost": experiment_e7,
    "E8 crossover": experiment_e8,
    "E9 batching": experiment_e9,
    "E10 loss liveness": experiment_e10,
    "E11 lattice scaling": experiment_e11,
    "E12 checkpointing": experiment_e12,
    "E13 generalized parity (batching)": experiment_e13,
    "E13 generalized parity (memory)": experiment_e13_memory,
    "E14 real-transport wall clock": experiment_e14,
    "E15 delta wire protocol": experiment_e15,
    "E15 sessions (bounded dedup)": experiment_e15_sessions,
    "E15 delta on real sockets": experiment_e15_net,
    "E16 sharded throughput": experiment_e16,
    "E16 cross-shard fraction": experiment_e16_cross,
    "E17 randomized fault soak": experiment_e17,
}
