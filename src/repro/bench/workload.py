"""Synthetic workload generation.

The paper's motivating application is state-machine replication where some
commands commute and some conflict.  A :class:`Workload` generates a timed
command stream with:

* a tunable **conflict rate** -- the probability that a command targets the
  shared hot key (commands on the hot key conflict with each other under
  :func:`repro.smr.machine.kv_conflict`; commands on private keys commute);
* a tunable **read fraction** -- reads commute even on the hot key;
* uniform or Poisson arrivals at a configurable rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cstruct.commands import Command


@dataclass
class WorkloadConfig:
    """Workload parameters.

    Attributes:
        n_commands: Number of commands to generate.
        conflict_rate: Probability a command targets the shared hot key.
        read_fraction: Probability a command is a (commuting) read.
        arrival: ``"uniform"`` (fixed period), ``"poisson"``, or ``"burst"``
            (groups of ``burst_size`` simultaneous commands every *period*;
            concurrency is what makes conflicting commands actually collide).
        period: Mean inter-arrival (or inter-burst) time.
        burst_size: Commands per burst when ``arrival == "burst"``.
        start: Virtual time of the first arrival.
        hot_key: Name of the shared key.
        seed: RNG seed for reproducibility.
    """

    n_commands: int = 50
    conflict_rate: float = 0.0
    read_fraction: float = 0.0
    arrival: str = "uniform"
    period: float = 4.0
    burst_size: int = 2
    start: float = 10.0
    hot_key: str = "hot"
    seed: int = 0  # protolint: ignore[config] -- every int is a valid seed

    def __post_init__(self) -> None:
        if self.n_commands < 0:
            raise ValueError("n_commands must be non-negative")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if not 0.0 <= self.conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be in [0, 1]")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.arrival not in ("uniform", "poisson", "burst"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.burst_size < 1:
            raise ValueError("burst_size must be positive")


@dataclass
class Workload:
    """A generated, timed command stream."""

    config: WorkloadConfig
    commands: list[Command] = field(default_factory=list)
    arrival_times: dict[Command, float] = field(default_factory=dict)

    @classmethod
    def generate(cls, config: WorkloadConfig) -> "Workload":
        rng = random.Random(config.seed)
        workload = cls(config=config)
        clock = config.start
        for index in range(config.n_commands):
            if config.arrival == "poisson":
                clock += rng.expovariate(1.0 / config.period)
            elif config.arrival == "burst":
                if index % config.burst_size == 0 and index > 0:
                    clock += config.period
            else:
                clock += config.period
            hot = rng.random() < config.conflict_rate
            key = config.hot_key if hot else f"key{index}"
            read = rng.random() < config.read_fraction
            if read:
                cmd = Command(cid=f"w{index}", op="get", key=key)
            else:
                cmd = Command(cid=f"w{index}", op="put", key=key, arg=index)
            workload.commands.append(cmd)
            workload.arrival_times[cmd] = clock
        return workload

    def schedule_on(self, cluster) -> None:
        """Propose every command on *cluster* at its arrival time."""
        for cmd in self.commands:
            cluster.propose(cmd, delay=self.arrival_times[cmd])

    @property
    def span(self) -> float:
        """Time of the last arrival."""
        if not self.arrival_times:
            return self.config.start
        return max(self.arrival_times.values())
