"""Offline trace checker: linearizability + c-struct invariants.

:mod:`repro.core.invariants` asserts spec-level safety *inside* a run
(decisions per round, chosen c-structs).  This module promotes those
obligations to **trace level**: roles record append-only event traces
(proposes, deliveries, checkpoint adoptions, client invoke/complete),
and :func:`check_trace` validates the client-visible claims after the
fact:

* **per-key total order** -- every site's per-key sequence of
  conflicting (non-read) commands is prefix-compatible with every
  other's, across replicas, engines, groups, crashes and checkpoint
  adoptions (prefix-compatibility is checked against the longest
  sequence, which two-way-covers pairwise compatibility);
* **read anchoring** -- a read conflicts with writes, so the number of
  writes ordered before it must agree wherever it executes;
* **no decision regression** -- recovery replays and snapshot installs
  open new *epochs*; every epoch joins the same pool and must stay
  prefix-compatible, so an order that "comes back different" after a
  crash is a reported divergence;
* **result agreement + linearizability of results** -- all sites report
  the same result per command, and replaying the agreed per-key witness
  order (writes in agreed order, reads at their anchors) through the KV
  semantics must reproduce every recorded result;
* **real-time order** -- if a command completed before another was
  invoked (client-side timestamps) the witness must order them that
  way;
* **nontriviality** -- only proposed commands are delivered.

On violation the checker reports a minimal counterexample window: the
key, the two sites, and the sequences around the first divergent
position.

The module doubles as a CLI for CI's must-be-red self-test::

    PYTHONPATH=src python -m repro.core.checker trace.json

exits 1 iff the trace violates an invariant.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Iterable, Sequence

#: Sentinel for "no result was recorded" (``None`` is a real KV result).
UNRECORDED = "__unrecorded__"

_READ_OPS = frozenset({"get"})
_KNOWN_OPS = frozenset({"put", "get", "inc", "cas"})


def _plain(value: Any) -> Any:
    """Normalize tuples to lists so in-memory and JSON traces compare equal."""
    if isinstance(value, (tuple, list)):
        return [_plain(v) for v in value]
    return value


@dataclass(frozen=True)
class TraceEvent:
    """One append-only trace record.

    Kinds: ``propose`` (a command entered the system), ``deliver`` (a
    site delivered/executed a command under one key), ``adopt`` (a site
    replaced its delivered sequence with a checkpoint's -- ``seq`` holds
    ``(cid, op, key, arg)`` rows), ``invoke``/``complete`` (client-side
    real-time interval of a command).
    """

    t: float
    site: str
    kind: str
    cid: str = ""
    op: str = ""
    key: str = ""
    arg: Any = None
    result: Any = UNRECORDED
    incarnation: int = 0
    seq: tuple = ()


def trace_to_json(events: Sequence[TraceEvent]) -> str:
    return json.dumps([asdict(e) for e in events], default=str)


def trace_from_json(text: str) -> list[TraceEvent]:
    out = []
    for row in json.loads(text):
        row["seq"] = tuple(tuple(entry) for entry in row.get("seq", ()))
        out.append(TraceEvent(**row))
    return out


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------


class TraceRecorder:
    """Subscribes to role hooks and accumulates an append-only trace.

    One recorder can watch several deployments at once (sites are named
    by pid / replica label, already namespaced per engine and group).
    Client-side real-time stamps come from :meth:`note_invoke` /
    :meth:`note_complete`; the driving harness calls them because only
    it knows when a command left the client and when its ack landed.
    """

    def __init__(self, sim=None) -> None:
        self.events: list[TraceEvent] = []
        self._sim = sim

    @property
    def _now(self) -> float:
        return float(self._sim.clock) if self._sim is not None else 0.0

    def record(self, **kw) -> None:
        self.events.append(TraceEvent(t=self._now, **kw))

    # -- client / harness side --------------------------------------------

    def note_propose(self, cmd) -> None:
        self.record(
            site="client", kind="propose", cid=cmd.cid, op=cmd.op, key=cmd.key,
            arg=_plain(cmd.arg),
        )

    def note_invoke(self, cmd) -> None:
        self.record(
            site="client", kind="invoke", cid=cmd.cid, op=cmd.op, key=cmd.key,
            arg=_plain(cmd.arg),
        )

    def note_complete(self, cid: str, result: Any = UNRECORDED) -> None:
        self.record(site="client", kind="complete", cid=cid, result=_plain(result))

    # -- role side ---------------------------------------------------------

    def _record_deliver(self, site: str, cmd, incarnation: int = 0, result=UNRECORDED) -> None:
        if getattr(cmd, "cid", None) is None:
            return
        self.record(
            site=site, kind="deliver", cid=cmd.cid, op=cmd.op, key=cmd.key,
            arg=_plain(cmd.arg), incarnation=incarnation, result=result,
        )

    def _watch_adopt(self, learner, site: str) -> None:
        """Record checkpoint adoptions as the recording site's new prefix.

        Both the learner's own delivered sequence and its attached
        replica's executed sequence are replaced wholesale by
        ``_adopt_checkpoint`` (the replica via ``install_snapshot``), so
        one adopt event covers whichever of the two feeds *site*.
        """

        def on_adopt(frontier: int, delivered: tuple) -> None:
            seq = tuple(
                (c.cid, c.op, c.key, _plain(c.arg))
                for c in delivered
                if getattr(c, "cid", None) is not None
            )
            self.record(
                site=site, kind="adopt",
                incarnation=learner.crash_count, seq=seq,
            )

        learner.on_adopt(on_adopt)

    def attach_smr(self, cluster, replicas: Sequence | None = None) -> None:
        """Watch every learner of an ``SMRCluster`` (instances engine).

        With *replicas* (``OrderedReplica`` per learner, in learner
        order) deliveries are recorded at the replica's execution point
        and carry machine results; otherwise at the learner's delivery
        callback, order-only.
        """
        for index, learner in enumerate(cluster.learners):
            replica = replicas[index] if replicas is not None else None
            if replica is None:
                site = learner.pid

                def on_deliver(instance: int, cmd, l=learner, s=site) -> None:
                    self._record_deliver(s, cmd, incarnation=l.crash_count)

                learner.on_deliver(on_deliver)
            else:
                site = f"{learner.pid}.replica"

                def on_execute(cmd, result, l=learner, s=site) -> None:
                    self._record_deliver(
                        s, cmd, incarnation=l.crash_count, result=_plain(result)
                    )

                replica.on_execute(on_execute)
            self._watch_adopt(learner, site)

    def attach_generalized(self, cluster, replicas: Sequence | None = None) -> None:
        """Watch every learner of a ``GeneralizedCluster``.

        With *replicas* (``BroadcastReplica`` per learner) deliveries are
        recorded at execution with results; otherwise at learn time.
        """
        for index, learner in enumerate(cluster.learners):
            replica = replicas[index] if replicas is not None else None
            if replica is None:
                site = learner.pid

                def on_learn(new_cmds: tuple, learned, l=learner, s=site) -> None:
                    for cmd in new_cmds:
                        self._record_deliver(s, cmd, incarnation=l.crash_count)

                learner.on_learn(on_learn)
            else:
                site = f"{learner.pid}.replica"

                def on_execute(cmd, result, l=learner, s=site) -> None:
                    self._record_deliver(
                        s, cmd, incarnation=l.crash_count, result=_plain(result)
                    )

                replica.on_execute(on_execute)
            self._watch_adopt(learner, site)

    def attach_sharded(self, deployment) -> None:
        """Watch every replica of a ``ShardedDeployment``.

        Cross-shard commands are recorded once per owned key; results of
        multi-key projections are not recorded (their machine result is
        the last projection's, not a client-meaningful value).
        """
        shard_map = deployment.shard_map
        for gid, replicas in enumerate(deployment.replicas):
            for site, replica in enumerate(replicas):
                label = f"g{gid}.replica{site}"

                def on_execute(cmd, result, gid=gid, label=label) -> None:
                    keys = shard_map.owned_keys(cmd, gid)
                    if not keys:
                        return
                    recorded = _plain(result) if len(keys) == 1 else UNRECORDED
                    for key in keys:
                        self.record(
                            site=label, kind="deliver", cid=cmd.cid, op=cmd.op,
                            key=key, arg=_plain(cmd.arg), result=recorded,
                        )

                replica.on_execute(on_execute)


# ---------------------------------------------------------------------------
# Checking
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    kind: str
    detail: str
    window: tuple = ()

    def render(self) -> str:
        lines = [f"[{self.kind}] {self.detail}"]
        lines.extend(f"    {w}" for w in self.window)
        return "\n".join(lines)


@dataclass
class CheckReport:
    violations: list[Violation] = field(default_factory=list)
    events: int = 0
    sites: int = 0
    keys: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        head = (
            f"trace: {self.events} events, {self.sites} sites, "
            f"{self.keys} keys -> "
            f"{'OK' if self.ok else f'{len(self.violations)} violation(s)'}"
        )
        return "\n".join([head] + [v.render() for v in self.violations])


@dataclass
class _Epoch:
    """One contiguous delivery regime at one site.

    A new epoch opens when a site re-delivers a command it already
    delivered (replay-from-scratch recovery) or adopts a checkpoint
    (its sequence is replaced wholesale).  Every closed epoch joins the
    pool and is checked against every other -- which is exactly the
    no-regression-across-recovery obligation.
    """

    tag: str
    seen: set = field(default_factory=set)  # (cid, key) pairs
    perkey: dict = field(default_factory=dict)  # key -> list[(cid, is_write)]

    def add(self, cid: str, key: str, is_write: bool) -> None:
        self.seen.add((cid, key))
        self.perkey.setdefault(key, []).append((cid, is_write))


def _window(
    key: str, tag_a: str, seq_a: list, tag_b: str, seq_b: list, pos: int
) -> tuple:
    lo = max(0, pos - 3)
    return (
        f"key {key!r} first divergence at position {pos}",
        f"{tag_a}: ... {seq_a[lo:pos + 4]}",
        f"{tag_b}: ... {seq_b[lo:pos + 4]}",
    )


def _apply_kv(state: dict, key: str, op: str, arg: Any) -> Any:
    """Replay one op with the KVStore semantics; returns its result."""
    if op == "put":
        state[key] = arg
        return arg
    if op == "get":
        return state.get(key)
    if op == "inc":
        state[key] = state.get(key, 0) + (arg if arg is not None else 1)
        return state[key]
    if op == "cas":
        expected, new = arg
        if _plain(state.get(key)) == _plain(expected):
            state[key] = new
            return True
        return False
    return UNRECORDED  # unknown op: no expectation


def check_trace(
    events: Iterable[TraceEvent], read_ops: frozenset = _READ_OPS
) -> CheckReport:
    """Validate a trace; returns a report with all violations found."""
    events = list(events)
    report = CheckReport(events=len(events))

    # -- phase 1: fold events into per-site epochs ------------------------
    current: dict[str, _Epoch] = {}
    epoch_counter: dict[str, int] = {}
    pool: list[_Epoch] = []
    info: dict[str, tuple] = {}  # cid -> (op, arg) for replay
    results: dict[str, dict[str, Any]] = {}  # cid -> site -> recorded result
    proposed: set = set()
    delivered_cids: set = set()
    invoke_t: dict[str, float] = {}
    complete_t: dict[str, float] = {}

    def fresh(site: str) -> _Epoch:
        n = epoch_counter.get(site, 0)
        epoch_counter[site] = n + 1
        epoch = _Epoch(tag=f"{site}#e{n}")
        current[site] = epoch
        return epoch

    def close(site: str) -> None:
        epoch = current.get(site)
        if epoch is not None and epoch.perkey:
            pool.append(epoch)

    for ev in events:
        if ev.kind == "propose":
            proposed.add(ev.cid)
            info.setdefault(ev.cid, (ev.op, ev.arg))
        elif ev.kind == "invoke":
            proposed.add(ev.cid)
            info.setdefault(ev.cid, (ev.op, ev.arg))
            invoke_t.setdefault(ev.cid, ev.t)
        elif ev.kind == "complete":
            complete_t.setdefault(ev.cid, ev.t)
        elif ev.kind == "deliver":
            delivered_cids.add(ev.cid)
            info.setdefault(ev.cid, (ev.op, ev.arg))
            if ev.result != UNRECORDED:
                results.setdefault(ev.cid, {})[ev.site] = _plain(ev.result)
            epoch = current.get(ev.site)
            if epoch is None:
                epoch = fresh(ev.site)
            elif (ev.cid, ev.key) in epoch.seen:
                # Re-delivery: a recovery replayed history from (or back
                # past) this command -- open a new epoch.
                close(ev.site)
                epoch = fresh(ev.site)
            epoch.add(ev.cid, ev.key, ev.op not in read_ops)
        elif ev.kind == "adopt":
            close(ev.site)
            epoch = fresh(ev.site)
            for row in ev.seq:
                cid, op, key = row[0], row[1], row[2]
                if len(row) > 3:
                    info.setdefault(cid, (op, row[3]))
                delivered_cids.add(cid)
                if key:
                    epoch.add(cid, key, op not in read_ops)
    for site in sorted(current):
        close(site)

    report.sites = len(epoch_counter)
    all_keys = sorted({key for epoch in pool for key in epoch.perkey})
    report.keys = len(all_keys)

    # -- phase 2: nontriviality -------------------------------------------
    if proposed:
        ghosts = sorted(delivered_cids - proposed)
        for cid in ghosts[:5]:
            report.violations.append(
                Violation("nontriviality", f"delivered cid {cid!r} was never proposed")
            )

    # -- phase 3: per-key order agreement ---------------------------------
    witnesses: dict[str, list] = {}  # key -> agreed write order (cids)
    anchors: dict[str, dict[str, int]] = {}  # key -> read cid -> #writes before
    for key in all_keys:
        entries = []  # (epoch tag, write seq, read anchors)
        for epoch in pool:
            seq = epoch.perkey.get(key)
            if not seq:
                continue
            writes = [cid for cid, is_write in seq if is_write]
            reads = {}
            wcount = 0
            for cid, is_write in seq:
                if is_write:
                    wcount += 1
                else:
                    reads[cid] = wcount
            entries.append((epoch.tag, writes, reads))
        longest = max(entries, key=lambda e: len(e[1]))
        witnesses[key] = longest[1]
        # Every write sequence must be a prefix of the longest (prefix-
        # compatibility against the longest covers pairwise: two prefixes
        # of one sequence are comparable).
        for tag, writes, _reads in entries:
            for pos, cid in enumerate(writes):
                if longest[1][pos] != cid:
                    report.violations.append(
                        Violation(
                            "order-divergence",
                            f"sites {tag} and {longest[0]} disagree on the "
                            f"write order of key {key!r}",
                            _window(key, tag, writes, longest[0], longest[1], pos),
                        )
                    )
                    break
        # Read anchors: the number of writes ordered before a read is
        # fixed by the conflict relation; all sites must agree.
        agreed: dict[str, tuple[int, str]] = {}
        for tag, _writes, reads in entries:
            for cid, anchor in reads.items():
                prior = agreed.get(cid)
                if prior is None:
                    agreed[cid] = (anchor, tag)
                elif prior[0] != anchor:
                    report.violations.append(
                        Violation(
                            "read-anchor",
                            f"read {cid!r} on key {key!r} executes after "
                            f"{prior[0]} writes at {prior[1]} but after "
                            f"{anchor} writes at {tag}",
                        )
                    )
        anchors[key] = {cid: anchor for cid, (anchor, _tag) in agreed.items()}

    # -- phase 4: result agreement + replay -------------------------------
    for cid in sorted(results):
        values = results[cid]
        distinct = {json.dumps(v, sort_keys=True, default=str) for v in values.values()}
        if len(distinct) > 1:
            report.violations.append(
                Violation(
                    "result-divergence",
                    f"sites report different results for {cid!r}: "
                    f"{sorted((s, values[s]) for s in values)}",
                )
            )
    for key in all_keys:
        state: dict = {}
        poisoned = False
        reads_at: dict[int, list[str]] = {}
        for cid, anchor in anchors[key].items():
            reads_at.setdefault(anchor, []).append(cid)
        for pos in range(len(witnesses[key]) + 1):
            for cid in sorted(reads_at.get(pos, ())):
                if poisoned or cid not in info:
                    continue
                expected = state.get(key)
                _check_result(report, results, cid, key, expected)
            if pos == len(witnesses[key]):
                break
            cid = witnesses[key][pos]
            if cid not in info or info[cid][0] not in _KNOWN_OPS:
                poisoned = True  # unknown op/arg: later values undefined
                continue
            if poisoned:
                continue
            op, arg = info[cid]
            expected = _apply_kv(state, key, op, arg)
            if expected != UNRECORDED:
                _check_result(report, results, cid, key, expected)

    # -- phase 5: real-time order -----------------------------------------
    inf = float("inf")
    for key in all_keys:
        writes = witnesses[key]
        n = len(writes)
        invokes = [invoke_t.get(cid, -inf) for cid in writes]
        completes = [complete_t.get(cid, inf) for cid in writes]
        # sufmin[i] = (min completion among writes at positions >= i, pos)
        sufmin: list[tuple[float, int]] = [(inf, -1)] * (n + 1)
        for i in range(n - 1, -1, -1):
            sufmin[i] = min(sufmin[i + 1], (completes[i], i))
        premax: list[tuple[float, int]] = [(-inf, -1)] * (n + 1)
        for i in range(n):
            premax[i + 1] = max(premax[i], (invokes[i], i))
        for i in range(n):
            later_min, later_pos = sufmin[i + 1]
            if later_min < invokes[i]:
                report.violations.append(
                    Violation(
                        "real-time",
                        f"key {key!r}: write {writes[later_pos]!r} completed "
                        f"at {later_min} before write {writes[i]!r} was "
                        f"invoked at {invokes[i]}, yet the agreed order "
                        f"puts it after",
                    )
                )
        for cid, anchor in sorted(anchors[key].items()):
            r_invoke = invoke_t.get(cid, -inf)
            r_complete = complete_t.get(cid, inf)
            later_min, later_pos = sufmin[anchor]
            if later_min < r_invoke:
                report.violations.append(
                    Violation(
                        "real-time",
                        f"key {key!r}: write {writes[later_pos]!r} completed "
                        f"before read {cid!r} was invoked, yet the agreed "
                        f"order puts the write after the read",
                    )
                )
            earlier_max, earlier_pos = premax[anchor]
            if r_complete < earlier_max:
                report.violations.append(
                    Violation(
                        "real-time",
                        f"key {key!r}: read {cid!r} completed before write "
                        f"{writes[earlier_pos]!r} was invoked, yet the "
                        f"agreed order puts the read after the write",
                    )
                )
    return report


def _check_result(
    report: CheckReport, results: dict, cid: str, key: str, expected: Any
) -> None:
    for site, observed in sorted(results.get(cid, {}).items()):
        if _plain(observed) != _plain(expected):
            report.violations.append(
                Violation(
                    "result-mismatch",
                    f"{site} recorded result {observed!r} for {cid!r} on key "
                    f"{key!r}; replaying the agreed order yields "
                    f"{expected!r}",
                )
            )


# ---------------------------------------------------------------------------
# CLI (CI must-be-red self-test entry point)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.checker",
        description="Validate a recorded trace against the consistency "
        "invariants; exits 1 on violation.",
    )
    parser.add_argument("trace", help="path to a trace JSON file")
    args = parser.parse_args(argv)
    with open(args.trace) as fh:
        events = trace_from_json(fh.read())
    report = check_trace(events)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
