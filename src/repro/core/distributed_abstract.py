"""Distributed Abstract Multicoordinated Paxos (Appendix A.3 / B.3).

The middle layer of the paper's refinement proof: the abstract algorithm's
single ``maxTried`` array is distributed into per-coordinator
``dMaxTried[c][m]`` values, and interaction happens through an explicit
message set (``msgs``).  Proposition 6 states that this algorithm
implements Abstract Multicoordinated Paxos under the refinement mapping

    ``Tried(Q, m)   = ⊓ { dMaxTried[c][m] : c ∈ Q }``  (None if any is None)
    ``AllTried(m)   = { Tried(Q, m) : Q an m-coordquorum } \\ {None}``
    ``maxTried[m]   = ⊔ AllTried(m)``  (None if AllTried(m) is empty)

This module is a direct executable translation.  :meth:`DistAbstractMCPaxos.
mapped_max_tried` computes the refinement mapping, and
:meth:`check_refinement` asserts the abstract invariants (maxTried, bA,
learned -- Appendix A.2) on the *mapped* state, which is exactly the proof
obligation of Proposition 6.  The randomized tests drive long schedules of
distributed actions and check the obligation after every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.abstract import AbstractQuorums, ActionNotEnabled, BallotArray
from repro.cstruct.base import CStruct, glb_set, lub_set
from repro.cstruct.commands import Command


@dataclass(frozen=True)
class M1a:
    balnum: int


@dataclass(frozen=True)
class M1b:
    balnum: int
    acceptor: Hashable
    votes: tuple[tuple[int, CStruct], ...]  # the acceptor's vote vector


@dataclass(frozen=True)
class M2a:
    balnum: int
    coord: Hashable
    val: CStruct


@dataclass(frozen=True)
class M2b:
    balnum: int
    acceptor: Hashable
    val: CStruct


@dataclass
class DistAbstractMCPaxos:
    """State and actions of the distributed abstract algorithm."""

    quorums: AbstractQuorums
    coordinators: tuple[Hashable, ...]
    coord_quorums: dict[int, tuple[frozenset, ...]]  # balnum -> quorums
    bottom: CStruct
    learners: tuple[Hashable, ...]
    max_balnum: int
    prop_cmd: set[Command] = field(default_factory=set)
    msgs: set = field(default_factory=set)
    ballot_array: BallotArray = field(init=False)
    d_max_tried: dict[Hashable, dict[int, CStruct | None]] = field(init=False)
    learned: dict[Hashable, CStruct] = field(init=False)
    _learned_witnesses: dict[Hashable, list[CStruct]] = field(init=False)

    def __post_init__(self) -> None:
        # The formal CoordQuorumAssumption (Appendix B.1.3) requires
        # same-balnum coordinator quorums to intersect for *every* balnum
        # (the prose relaxes this for fast rounds, but the refinement
        # mapping ⊔AllTried(m) is only total under intersection).
        for balnum, quorums in self.coord_quorums.items():
            for p in quorums:
                for q in quorums:
                    if not p & q:
                        raise ValueError(
                            f"coordinator quorums of balnum {balnum} must "
                            f"intersect (B.1.3): {set(p)} ∩ {set(q)} = ∅"
                        )
        self.ballot_array = BallotArray(self.quorums.acceptors, self.bottom)
        self.d_max_tried = {
            c: {m: (self.bottom if m == 0 else None) for m in range(self.max_balnum + 1)}
            for c in self.coordinators
        }
        self.learned = {l: self.bottom for l in self.learners}
        self._learned_witnesses = {l: [self.bottom] for l in self.learners}

    # -- actions (Appendix A.3) -------------------------------------------------

    def propose(self, cmd: Command) -> None:
        if cmd in self.prop_cmd:
            raise ActionNotEnabled(f"{cmd} already proposed")
        self.prop_cmd.add(cmd)

    def phase1a(self, coord: Hashable, balnum: int) -> None:
        if self.d_max_tried[coord][balnum] is not None:
            raise ActionNotEnabled("coordinator already tried a value at this balnum")
        self.msgs.add(M1a(balnum))

    def phase1b(self, acceptor: Hashable, balnum: int) -> None:
        if self.ballot_array.mbal[acceptor] >= balnum:
            raise ActionNotEnabled("acceptor already past this balnum")
        if M1a(balnum) not in self.msgs:
            raise ActionNotEnabled("no 1a message for this balnum")
        self.ballot_array.mbal[acceptor] = balnum
        votes = tuple(sorted(self.ballot_array.votes[acceptor].items()))
        self.msgs.add(M1b(balnum, acceptor, votes))

    def phase2start(
        self,
        coord: Hashable,
        balnum: int,
        quorum: frozenset,
        suffix: Sequence[Command] = (),
    ) -> CStruct:
        """Pick ``v = w • σ`` with ``w ∈ ProvedSafe(Q, m, β)`` and send it."""
        if self.d_max_tried[coord][balnum] is not None:
            raise ActionNotEnabled("already started")
        replies = {
            msg.acceptor: msg
            for msg in self.msgs
            if isinstance(msg, M1b) and msg.balnum == balnum and msg.acceptor in quorum
        }
        if set(replies) != set(quorum):
            raise ActionNotEnabled("1b messages missing for part of the quorum")
        if not set(suffix) <= self.prop_cmd:
            raise ActionNotEnabled("suffix contains unproposed commands")
        safe = self._proved_safe(quorum, balnum, replies)
        value = safe[0]
        for cmd in suffix:
            value = value.append(cmd)
        self.d_max_tried[coord][balnum] = value
        self.msgs.add(M2a(balnum, coord, value))
        return value

    def _proved_safe(
        self, quorum: frozenset, balnum: int, replies: dict[Hashable, M1b]
    ) -> list[CStruct]:
        """``ProvedSafe(Q, m, β)`` over the 1b snapshot ballot array."""
        snapshots = {acc: dict(msg.votes) for acc, msg in replies.items()}
        lower = [
            k
            for k in range(balnum)
            if any(k in snapshot for snapshot in snapshots.values())
        ]
        k = max(lower)
        reporters = {acc for acc, snapshot in snapshots.items() if k in snapshot}
        quorums_k = [
            r
            for r in self.quorums.quorums(k)
            if (r & quorum) and (r & quorum) <= reporters
        ]
        if not quorums_k:
            return [snapshots[acc][k] for acc in sorted(reporters)]
        gamma = [
            glb_set([snapshots[acc][k] for acc in sorted(r & quorum)])
            for r in quorums_k
        ]
        return [lub_set(gamma)]

    def phase2a_classic(self, coord: Hashable, balnum: int, cmd: Command) -> None:
        if cmd not in self.prop_cmd:
            raise ActionNotEnabled("command not proposed")
        current = self.d_max_tried[coord][balnum]
        if current is None:
            raise ActionNotEnabled("phase 2 not started at this balnum")
        grown = current.append(cmd)
        self.d_max_tried[coord][balnum] = grown
        self.msgs.add(M2a(balnum, coord, grown))

    def phase2b_classic(self, acceptor: Hashable, balnum: int, quorum: frozenset) -> None:
        """Accept the glb of a coordinator quorum's latest 2a values."""
        ba = self.ballot_array
        if balnum < ba.mbal[acceptor]:
            raise ActionNotEnabled("acceptor already past this balnum")
        if quorum not in self.coord_quorums.get(balnum, ()):
            raise ActionNotEnabled("not a coordinator quorum of this balnum")
        per_coord: dict[Hashable, CStruct] = {}
        for msg in self.msgs:
            if isinstance(msg, M2a) and msg.balnum == balnum and msg.coord in quorum:
                best = per_coord.get(msg.coord)
                if best is None or best.leq(msg.val):
                    per_coord[msg.coord] = msg.val
        if set(per_coord) != set(quorum):
            raise ActionNotEnabled("2a messages missing for part of the quorum")
        lower_bound = glb_set([per_coord[c] for c in sorted(per_coord, key=str)])
        current = ba.vote(acceptor, balnum)
        if current is None:
            value = lower_bound
        else:
            if not current.is_compatible(lower_bound):
                raise ActionNotEnabled("incompatible with the current vote")
            value = current.lub(lower_bound)
        ba.set_vote(acceptor, balnum, value)
        ba.mbal[acceptor] = balnum
        self.msgs.add(M2b(balnum, acceptor, value))

    def phase2b_fast(self, acceptor: Hashable, cmd: Command) -> None:
        ba = self.ballot_array
        balnum = ba.mbal[acceptor]
        if not self.quorums.is_fast(balnum):
            raise ActionNotEnabled("current balnum is not fast")
        current = ba.vote(acceptor, balnum)
        if current is None:
            raise ActionNotEnabled("nothing accepted yet at the fast balnum")
        if cmd not in self.prop_cmd:
            raise ActionNotEnabled("command not proposed")
        value = current.append(cmd)
        ba.set_vote(acceptor, balnum, value)
        self.msgs.add(M2b(balnum, acceptor, value))

    def learn(self, learner: Hashable, balnum: int, quorum: frozenset) -> None:
        """Learn the glb of a quorum's latest 2b values."""
        per_acc: dict[Hashable, CStruct] = {}
        for msg in self.msgs:
            if isinstance(msg, M2b) and msg.balnum == balnum and msg.acceptor in quorum:
                best = per_acc.get(msg.acceptor)
                if best is None or best.leq(msg.val):
                    per_acc[msg.acceptor] = msg.val
        if set(per_acc) != set(quorum):
            raise ActionNotEnabled("2b messages missing for part of the quorum")
        if quorum not in set(self.quorums.quorums(balnum)):
            raise ActionNotEnabled("not an acceptor quorum of this balnum")
        value = glb_set([per_acc[a] for a in sorted(per_acc, key=str)])
        self.learned[learner] = self.learned[learner].lub(value)
        self._learned_witnesses[learner].append(value)

    # -- refinement mapping (Proposition 6) ----------------------------------------

    def mapped_max_tried(self, balnum: int) -> CStruct | None:
        """The abstract ``maxTried[m]`` induced by ``dMaxTried``."""
        all_tried: list[CStruct] = []
        for quorum in self.coord_quorums.get(balnum, ()):
            tried_values = [self.d_max_tried[c][balnum] for c in quorum]
            if any(v is None for v in tried_values):
                continue
            all_tried.append(glb_set(tried_values))
        if balnum == 0:
            return self.bottom
        if not all_tried:
            return None
        return lub_set(all_tried)

    def check_refinement(self) -> None:
        """Assert the Appendix A.2 invariants on the mapped abstract state."""
        ba = self.ballot_array
        for m in range(self.max_balnum + 1):
            tried = self.mapped_max_tried(m)
            if tried is None:
                continue
            assert tried.command_set() <= self.prop_cmd, "maxTried: proposed"
            assert ba.is_safe_at(tried, m, self.quorums), "maxTried: safe at m"
        for acceptor in ba.acceptors:
            for m, vote in ba.votes[acceptor].items():
                if vote is None:
                    continue
                assert ba.is_safe_at(vote, m, self.quorums), "bA: safe at m"
                if self.quorums.is_fast(m):
                    assert vote.command_set() <= self.prop_cmd, "bA: fast proposed"
                elif m > 0:
                    tried = self.mapped_max_tried(m)
                    assert tried is not None and vote.leq(tried), "bA: ⊑ maxTried"
        values = []
        for learner in self.learners:
            value = self.learned[learner]
            assert value.command_set() <= self.prop_cmd, "learned: proposed"
            assert value == lub_set(self._learned_witnesses[learner])
            values.append(value)
        for i, left in enumerate(values):
            for right in values[i + 1 :]:
                assert left.is_compatible(right), "consistency"
