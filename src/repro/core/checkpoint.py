"""Shared production-engine plumbing: reliability and checkpointing.

The paper's protocols are stated over reliable channels and unbounded
memory; the production engines (the multi-instance engine of
:mod:`repro.smr.instances` and the generalized engine of
:mod:`repro.core.generalized`) add two opt-in layers on top:

* **Retransmission** (:class:`RetransmitConfig`) -- the knobs of the
  self-healing re-drivers that make every end-to-end path live on
  fair-lossy links: proposer-side retransmission with exponential backoff,
  coordinator gossip / re-announcement, and learner gap polling.
* **Checkpointing** (:class:`CheckpointConfig`, :class:`FrontierTracker`,
  and the snapshot-transfer messages) -- learners periodically checkpoint
  their replica, advertise the frontier (:class:`ICheckpoint`), and every
  process folds the advertisements into one collective safe bound below
  which per-instance (or per-command) state is garbage-collected; laggards
  below the truncation floor recover through chunked, resumable snapshot
  install (:class:`ISnapshotOffer` / :class:`ISnapshotRequest` /
  :class:`ISnapshotChunk`) instead of log replay.

Both engines share these classes; what *frontier* means differs.  In the
multi-instance engine it is an instance number (every instance below it is
applied in the checkpoint).  In the generalized engine it is the *size* of
a stable prefix of the command-history lattice, and :class:`ICheckpoint`
additionally carries the prefix's command set (``members``) so receivers
can truncate their histories by membership -- command histories interleave
commuting commands, so a stable prefix is a sub-*lattice*, not a sequence
position.  See ``docs/messages.md`` for the full message taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass
class RetransmitConfig:
    """Reliability-layer knobs (see the engine module docstrings).

    Attributes:
        retry_interval: Delay before a proposer's first retransmission of
            an unacked value.
        backoff: Multiplier applied to the retry delay after each attempt.
        max_interval: Cap on the (backed-off) retry delay.
        gossip_interval: Period of the coordinators' gossip / 2a
            re-announce tick.
        catchup_interval: Period of the learners' gap-detection poll.
        max_resend: Upper bound on instances/commands carried by one
            gossip, catch-up or re-announce burst (payload bound).
    """

    retry_interval: float = 6.0
    backoff: float = 2.0
    max_interval: float = 48.0
    gossip_interval: float = 8.0
    catchup_interval: float = 6.0
    max_resend: int = 64

    def __post_init__(self) -> None:
        if self.retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be at least 1")
        if self.max_interval < self.retry_interval:
            raise ValueError("max_interval must be at least retry_interval")
        if self.gossip_interval <= 0:
            raise ValueError("gossip_interval must be positive")
        if self.catchup_interval <= 0:
            raise ValueError("catchup_interval must be positive")
        if self.max_resend < 1:
            raise ValueError("max_resend must be at least 1")


@dataclass
class CheckpointConfig:
    """Checkpointing / log-truncation knobs (see the engine docstrings).

    Attributes:
        interval: Delivered instances (multi-instance engine) or learned
            commands (generalized engine) between learner checkpoints.
        interval_bytes: Optional alternative trigger -- checkpoint when
            the decided payload since the last checkpoint exceeds this
            many (approximate, ``repr``-sized) bytes, even if fewer than
            ``interval`` instances were delivered.
        gc_quorum: Collective-safe-frontier policy.  ``None``: truncate
            below the *minimum* advertised frontier over all learners
            (per-replica policy -- nothing a live learner still lacks is
            dropped, but one dead learner halts GC).  ``k``: truncate
            below the k-th highest frontier (quorum-of-replicas policy --
            at least ``k`` learners hold a durable checkpoint covering
            the dropped range, and laggards below it are recovered by
            snapshot install).
        chunk_size: Commands per ``ISnapshotChunk`` during state transfer.
        advertise_interval: Period of the learners' frontier re-announce
            tick (heals lost ``ICheckpoint`` messages; also lets a
            restarted laggard discover how far behind it is without any
            new client traffic).
    """

    interval: int = 32
    interval_bytes: int | None = None
    gc_quorum: int | None = None
    chunk_size: int = 64
    advertise_interval: float = 8.0

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("interval must be at least 1")
        if self.interval_bytes is not None and self.interval_bytes < 1:
            raise ValueError("interval_bytes must be at least 1")
        if self.gc_quorum is not None and self.gc_quorum < 1:
            raise ValueError("gc_quorum must be at least 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if self.advertise_interval <= 0:
            raise ValueError("advertise_interval must be positive")


class FrontierTracker:
    """Folds advertised snapshot frontiers into the collective GC bound.

    ``safe_bound()`` is the largest frontier such that the checkpoint
    policy guarantees every truncated record is covered by a durable
    checkpoint: the minimum advertised frontier (``quorum=None``) or the
    k-th highest (``quorum=k``).  Unheard-from learners count as frontier
    0, so the bound can only advance on positive evidence; it is monotone
    because advertised frontiers are.
    """

    def __init__(self, learners, quorum: int | None) -> None:
        self._frontiers: dict[Hashable, int] = {pid: 0 for pid in learners}
        self._quorum = quorum

    @classmethod
    def from_config(cls, config) -> "FrontierTracker | None":
        """The tracker a process needs under *config* (None: no checkpointing).

        *config* is any engine config exposing ``checkpoint`` and
        ``topology.learners`` (both engines' configs do).
        """
        if config.checkpoint is None:
            return None
        return cls(config.topology.learners, config.checkpoint.gc_quorum)

    def update(self, src: Hashable, frontier: int) -> None:
        if src in self._frontiers and frontier > self._frontiers[src]:
            self._frontiers[src] = frontier

    def frontier_of(self, src: Hashable) -> int:
        return self._frontiers.get(src, 0)

    def safe_bound(self) -> int:
        fronts = sorted(self._frontiers.values(), reverse=True)
        if not fronts:
            return 0
        k = len(fronts) if self._quorum is None else min(self._quorum, len(fronts))
        return fronts[k - 1]

    def contributors(self, bound: int) -> list[Hashable]:
        """Learners whose advertised frontier is at least *bound*.

        Under the quorum policy these are the (at least ``gc_quorum``)
        learners whose durable checkpoints justify truncating below
        *bound*; under the min policy, every learner.
        """
        return [pid for pid, f in self._frontiers.items() if f >= bound]


# -- checkpoint / state-transfer messages (shared by both engines) -------------


@dataclass(frozen=True)
class ICheckpoint:
    """Learner -> everyone: I hold a durable checkpoint at *frontier*.

    Every instance (or stable-prefix command) below *frontier* is applied
    in the sender's snapshot; receivers fold the advertisement into their
    collective safe frontier and garbage-collect below it (per the
    :class:`CheckpointConfig` policy).

    ``members`` is used by the generalized engine only: the command *set*
    of the checkpointed stable prefix.  Command histories interleave
    commuting commands in canonical order, so truncation is by membership,
    not by position -- receivers split their history at the largest
    downward-closed prefix inside ``members``.  ``None`` for the
    multi-instance engine, whose frontier is a plain instance number.
    """

    frontier: int
    members: frozenset | None = None


@dataclass(frozen=True)
class ITruncated:
    """The sender's log was truncated below *floor*.

    Answers requests (catch-up, stale 2as) for instances the sender has
    garbage-collected.  Safe to trust like ``IDecided``: the sender's
    floor was derived from checkpoint advertisements, i.e. every instance
    below it is decided and covered by a durable checkpoint somewhere.
    Learners react by requesting snapshot install; coordinators adopt the
    floor and retire their own sub-floor state.
    """

    floor: int


@dataclass(frozen=True)
class ISnapshotOffer:
    """Peer learner -> laggard: install my checkpoint at *frontier*."""

    frontier: int


@dataclass(frozen=True)
class ISnapshotRequest:
    """Laggard -> checkpoint owner: send snapshot chunks.

    ``chunks=None`` requests the full transfer; a tuple re-requests only
    the listed chunk sequence numbers (the resumable path after loss).
    """

    frontier: int
    chunks: tuple[int, ...] | None = None


@dataclass(frozen=True)
class ISnapshotChunk:
    """One chunk of a checkpoint transfer.

    Chunk 0 carries the machine state (the header); every chunk carries a
    slice of the checkpoint's delivered command sequence plus the total
    chunk count, so assembly is order-independent and resumable.
    """

    frontier: int
    seq: int
    total: int
    payload: tuple
    machine: Hashable | None = None
