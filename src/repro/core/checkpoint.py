"""Shared production-engine plumbing: reliability and checkpointing.

The paper's protocols are stated over reliable channels and unbounded
memory; the production engines (the multi-instance engine of
:mod:`repro.smr.instances` and the generalized engine of
:mod:`repro.core.generalized`) add two opt-in layers on top:

* **Retransmission** (:class:`RetransmitConfig`) -- the knobs of the
  self-healing re-drivers that make every end-to-end path live on
  fair-lossy links: proposer-side retransmission with exponential backoff,
  coordinator gossip / re-announcement, and learner gap polling.
* **Checkpointing** (:class:`CheckpointConfig`, :class:`FrontierTracker`,
  and the snapshot-transfer messages) -- learners periodically checkpoint
  their replica, advertise the frontier (:class:`ICheckpoint`), and every
  process folds the advertisements into one collective safe bound below
  which per-instance (or per-command) state is garbage-collected; laggards
  below the truncation floor recover through chunked, resumable snapshot
  install (:class:`ISnapshotOffer` / :class:`ISnapshotRequest` /
  :class:`ISnapshotChunk`) instead of log replay.

Both engines share these classes; what *frontier* means differs.  In the
multi-instance engine it is an instance number (every instance below it is
applied in the checkpoint).  In the generalized engine it is the *size* of
a stable prefix of the command-history lattice, and :class:`ICheckpoint`
additionally carries the prefix's command set (``members``) so receivers
can truncate their histories by membership -- command histories interleave
commuting commands, so a stable prefix is a sub-*lattice*, not a sequence
position.  See ``docs/messages.md`` for the full message taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable


@dataclass
class RetransmitConfig:
    """Reliability-layer knobs (see the engine module docstrings).

    Attributes:
        retry_interval: Delay before a proposer's first retransmission of
            an unacked value.
        backoff: Multiplier applied to the retry delay after each attempt.
        max_interval: Cap on the (backed-off) retry delay.
        gossip_interval: Period of the coordinators' gossip / 2a
            re-announce tick.
        catchup_interval: Period of the learners' gap-detection poll.
        max_resend: Upper bound on instances/commands carried by one
            gossip, catch-up or re-announce burst (payload bound).
    """

    retry_interval: float = 6.0
    backoff: float = 2.0
    max_interval: float = 48.0
    gossip_interval: float = 8.0
    catchup_interval: float = 6.0
    max_resend: int = 64

    def __post_init__(self) -> None:
        if self.retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be at least 1")
        if self.max_interval < self.retry_interval:
            raise ValueError("max_interval must be at least retry_interval")
        if self.gossip_interval <= 0:
            raise ValueError("gossip_interval must be positive")
        if self.catchup_interval <= 0:
            raise ValueError("catchup_interval must be positive")
        if self.max_resend < 1:
            raise ValueError("max_resend must be at least 1")


@dataclass
class CheckpointConfig:
    """Checkpointing / log-truncation knobs (see the engine docstrings).

    Attributes:
        interval: Delivered instances (multi-instance engine) or learned
            commands (generalized engine) between learner checkpoints.
        interval_bytes: Optional alternative trigger -- checkpoint when
            the decided payload since the last checkpoint exceeds this
            many (approximate, ``repr``-sized) bytes, even if fewer than
            ``interval`` instances were delivered.
        gc_quorum: Collective-safe-frontier policy.  ``None``: truncate
            below the *minimum* advertised frontier over all learners
            (per-replica policy -- nothing a live learner still lacks is
            dropped, but one dead learner halts GC).  ``k``: truncate
            below the k-th highest frontier (quorum-of-replicas policy --
            at least ``k`` learners hold a durable checkpoint covering
            the dropped range, and laggards below it are recovered by
            snapshot install).
        chunk_size: Commands per ``ISnapshotChunk`` during state transfer.
        advertise_interval: Period of the learners' frontier re-announce
            tick (heals lost ``ICheckpoint`` messages; also lets a
            restarted laggard discover how far behind it is without any
            new client traffic).
    """

    interval: int = 32
    interval_bytes: int | None = None
    gc_quorum: int | None = None
    chunk_size: int = 64
    advertise_interval: float = 8.0

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("interval must be at least 1")
        if self.interval_bytes is not None and self.interval_bytes < 1:
            raise ValueError("interval_bytes must be at least 1")
        if self.gc_quorum is not None and self.gc_quorum < 1:
            raise ValueError("gc_quorum must be at least 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if self.advertise_interval <= 0:
            raise ValueError("advertise_interval must be positive")


class FrontierTracker:
    """Folds advertised snapshot frontiers into the collective GC bound.

    ``safe_bound()`` is the largest frontier such that the checkpoint
    policy guarantees every truncated record is covered by a durable
    checkpoint: the minimum advertised frontier (``quorum=None``) or the
    k-th highest (``quorum=k``).  Unheard-from learners count as frontier
    0, so the bound can only advance on positive evidence; it is monotone
    because advertised frontiers are.
    """

    def __init__(self, learners, quorum: int | None) -> None:
        self._frontiers: dict[Hashable, int] = {pid: 0 for pid in learners}
        self._quorum = quorum

    @classmethod
    def from_config(cls, config) -> "FrontierTracker | None":
        """The tracker a process needs under *config* (None: no checkpointing).

        *config* is any engine config exposing ``checkpoint`` and
        ``topology.learners`` (both engines' configs do).
        """
        if config.checkpoint is None:
            return None
        return cls(config.topology.learners, config.checkpoint.gc_quorum)

    def update(self, src: Hashable, frontier: int) -> None:
        if src in self._frontiers and frontier > self._frontiers[src]:
            self._frontiers[src] = frontier

    def frontier_of(self, src: Hashable) -> int:
        return self._frontiers.get(src, 0)

    def safe_bound(self) -> int:
        fronts = sorted(self._frontiers.values(), reverse=True)
        if not fronts:
            return 0
        k = len(fronts) if self._quorum is None else min(self._quorum, len(fronts))
        return fronts[k - 1]

    def contributors(self, bound: int) -> list[Hashable]:
        """Learners whose advertised frontier is at least *bound*.

        Under the quorum policy these are the (at least ``gc_quorum``)
        learners whose durable checkpoints justify truncating below
        *bound*; under the min policy, every learner.
        """
        return [pid for pid, f in self._frontiers.items() if f >= bound]


# -- checkpoint / state-transfer messages (shared by both engines) -------------


@dataclass(frozen=True)
class ICheckpoint:
    """Learner -> everyone: I hold a durable checkpoint at *frontier*.

    Every instance (or stable-prefix command) below *frontier* is applied
    in the sender's snapshot; receivers fold the advertisement into their
    collective safe frontier and garbage-collect below it (per the
    :class:`CheckpointConfig` policy).

    ``members`` is used by the generalized engine only: the command *set*
    of the checkpointed stable prefix.  Command histories interleave
    commuting commands in canonical order, so truncation is by membership,
    not by position -- receivers split their history at the largest
    downward-closed prefix inside ``members``.  ``None`` for the
    multi-instance engine, whose frontier is a plain instance number.
    Under :class:`repro.core.sessions.SessionConfig` the set travels as a
    compact :class:`repro.core.sessions.SessionMembers` claim (per-client
    interval runs) instead of a frozenset; both duck-type the membership
    operations the truncation path uses.
    """

    frontier: int
    members: object | None = None  # frozenset | SessionMembers


@dataclass(frozen=True)
class ITruncated:
    """The sender's log was truncated below *floor*.

    Answers requests (catch-up, stale 2as) for instances the sender has
    garbage-collected.  Safe to trust like ``IDecided``: the sender's
    floor was derived from checkpoint advertisements, i.e. every instance
    below it is decided and covered by a durable checkpoint somewhere.
    Learners react by requesting snapshot install; coordinators adopt the
    floor and retire their own sub-floor state.
    """

    floor: int


@dataclass(frozen=True)
class ISnapshotOffer:
    """Peer learner -> laggard: install my checkpoint at *frontier*."""

    frontier: int


@dataclass(frozen=True)
class ISnapshotRequest:
    """Laggard -> checkpoint owner: send snapshot chunks.

    ``chunks=None`` requests the full transfer; a tuple re-requests only
    the listed chunk sequence numbers (the resumable path after loss).
    """

    frontier: int
    chunks: tuple[int, ...] | None = None


@dataclass(frozen=True)
class ISnapshotChunk:
    """One chunk of a checkpoint transfer.

    Chunk 0 carries the machine state (the header); every chunk carries a
    slice of the checkpoint's delivered command sequence plus the total
    chunk count, so assembly is order-independent and resumable.
    """

    frontier: int
    seq: int
    total: int
    payload: tuple
    machine: Hashable | None = None


# -- the snapshot-transfer state machines (shared by both engines) -------------


def serve_snapshot(
    process: Any,
    msg: ISnapshotRequest,
    src: Hashable,
    snapshot: dict,
    chunk_size: int,
) -> int:
    """Answer a pull request from the journalled checkpoint; chunks sent.

    The answer carries the sender's *current* checkpoint even if newer
    than asked: the chunks carry their own frontier, and newer strictly
    helps.  Chunk 0 is the header (machine state, empty payload); chunks
    1..n slice the delivered sequence.  ``msg.chunks`` selects a subset
    for the resumable path; out-of-range sequence numbers (a re-request
    against a checkpoint that has since advanced) are ignored.
    """
    delivered = snapshot["delivered"]
    total = 1 + (len(delivered) + chunk_size - 1) // chunk_size
    seqs = range(total) if msg.chunks is None else msg.chunks
    sent = 0
    for seq in seqs:
        if not 0 <= seq < total:
            continue
        payload = () if seq == 0 else delivered[(seq - 1) * chunk_size : seq * chunk_size]
        machine = snapshot["machine"] if seq == 0 else None
        process.send(
            src,
            ISnapshotChunk(snapshot["frontier"], seq, total, payload, machine),
        )
        sent += 1
    return sent


class SnapshotInstaller:
    """Client side of the chunked, resumable snapshot transfer.

    Both engines' learners run the same install machine; only the
    *position* metric differs (the delivery frontier in the multi-instance
    engine, the seen-command count in the generalized engine) and whether
    a transfer is pinned to one source.  ``sticky_source=True`` is the
    generalized engine's rule: two learners can checkpoint at the same
    frontier with *different* delivered sequences (commuting divergence),
    so mixing chunks from different senders would assemble a snapshot
    matching neither.  The multi-instance engine's agreed total order
    makes same-frontier checkpoints identical, so it adopts the latest
    sender instead (late chunks of an abandoned transfer still help).

    All state here is deliberately volatile: a crash drops the transfer
    and the periodic catch-up tick re-sources it from scratch.
    """

    #: ticks without a new chunk before a transfer is abandoned/re-sourced
    STALL_LIMIT = 4

    def __init__(
        self,
        process: Any,
        position: Callable[[], int],
        sticky_source: bool = False,
    ) -> None:
        self._process = process
        self._position = position
        self._sticky_source = sticky_source
        self.pending: dict | None = None
        self.avoid: Hashable | None = None  # last stalled-out source

    def reset(self) -> None:
        """Drop all transfer state (crash, or adoption elsewhere)."""
        self.pending = None
        self.avoid = None

    def tick(self, request_install: Callable[[], None]) -> int | None:
        """Drive the in-flight transfer from the periodic catch-up tick.

        Re-requests the missing chunks -- or the whole transfer, if the
        initial request (or every chunk) was lost and we never learned the
        chunk count.  A transfer that makes no progress for several ticks
        is abandoned so *request_install* can re-source it (its sender may
        have crashed); one that ordinary replay already overtook is
        dropped outright (its chunks would all be discarded on arrival
        anyway).

        Returns the frontier of the transfer still in flight after
        servicing, or None -- crucially None right after a stall-abandon
        even if *request_install* started a replacement, so the caller's
        log-tier poll covers the same range the old code did.
        """
        pend = self.pending
        if pend is not None and pend["frontier"] <= self._position():
            pend = self.pending = None
        if pend is None:
            return None
        received = len(pend["chunks"])
        if received == pend.get("last_received", -1):
            pend["stalls"] = pend.get("stalls", 0) + 1
        else:
            pend["stalls"] = 0
        pend["last_received"] = received
        if pend["stalls"] >= self.STALL_LIMIT:
            # The source stopped answering (likely crashed): abandon and
            # re-source, preferring a different peer.
            self.avoid = pend["src"]
            self.pending = None
            request_install()
            return None
        if pend["total"] is None:
            self._process.send(pend["src"], ISnapshotRequest(pend["frontier"]))
        else:
            missing = tuple(
                seq for seq in range(pend["total"]) if seq not in pend["chunks"]
            )
            if missing:
                self._process.send(
                    pend["src"], ISnapshotRequest(pend["frontier"], missing)
                )
        return pend["frontier"]

    def request_from_best(self, frontiers: dict[Hashable, int]) -> None:
        """Ask the most advanced known peer for its checkpoint.

        A peer whose transfer just stalled out (``avoid``) is skipped when
        any other candidate exists -- its advertisement may be stale
        evidence of a crashed process.
        """
        best_pid, best_frontier = None, self._position()
        for pid, frontier in frontiers.items():
            if frontier > best_frontier and pid != self.avoid:
                best_pid, best_frontier = pid, frontier
        if best_pid is None and self.avoid is not None:
            avoided = frontiers.get(self.avoid, 0)
            if avoided > self._position():
                best_pid, best_frontier = self.avoid, avoided
        if best_pid is None:
            return  # no advertisement seen yet; the periodic ticks will come
        self.begin(best_pid, best_frontier)

    def begin(self, src: Hashable, frontier: int) -> None:
        """Begin (or upgrade) a snapshot transfer from *src*.

        A transfer in flight is replaced only by a strictly higher
        frontier: its chunks carry their own frontier, and a sender
        always answers with its *current* checkpoint anyway.  While the
        current transfer has produced no chunk yet, further equal-or-
        lower offers are debounced to the catch-up tick -- a laggard's
        gap poll draws an ``ITruncated``/``ISnapshotOffer`` from every
        acceptor and peer at once, and each full re-request would be
        answered with the complete chunk set.  A dead source cannot pin
        the install: the tick's stall counter abandons and re-sources it.
        """
        pend = self.pending
        if pend is not None and pend["frontier"] >= frontier:
            return
        self.pending = {
            "frontier": frontier,
            "src": src,
            "total": None,
            "chunks": {},
        }
        self._process.send(src, ISnapshotRequest(frontier))

    def fold_chunk(
        self, msg: ISnapshotChunk, src: Hashable
    ) -> tuple[int, tuple, Any] | None:
        """Fold one received chunk into the transfer.

        Returns the assembled ``(frontier, delivered, machine_state)``
        when the last chunk arrives (clearing all transfer state), else
        None.  The caller still re-checks the frontier against its own
        position before adopting: assembly can complete after ordinary
        replay overtook the transfer.
        """
        if msg.frontier <= self._position():
            return None  # stale transfer: we advanced past it meanwhile
        pend = self.pending
        if pend is None or pend["frontier"] < msg.frontier:
            pend = self.pending = {
                "frontier": msg.frontier,
                "src": src,
                "total": msg.total,
                "chunks": {},
            }
        elif pend["frontier"] > msg.frontier:
            return None  # chunks of an older transfer we already abandoned
        elif self._sticky_source and pend["src"] != src:
            return None  # late chunks of an abandoned same-frontier transfer
        if not self._sticky_source:
            pend["src"] = src
        pend["total"] = msg.total
        pend["chunks"][msg.seq] = msg
        if len(pend["chunks"]) != msg.total:
            return None
        chunks = [pend["chunks"][seq] for seq in range(pend["total"])]
        frontier = pend["frontier"]
        delivered = tuple(cmd for part in chunks for cmd in part.payload)
        machine_state = chunks[0].machine
        self.reset()
        return frontier, delivered, machine_state
