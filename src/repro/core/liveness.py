"""Liveness machinery: heartbeats, an Ω-style failure detector, leadership.

Section 4.3: safety never depends on leadership, but to guarantee progress
a single coordinator must eventually be entitled to start higher-numbered
rounds.  We implement the standard construction -- an unreliable failure
detector over periodic heartbeats; the leader is the smallest coordinator
index not currently suspected.  The detector is deliberately aggressive
and unreliable (it may suspect live processes under message loss); the
protocols only use it for liveness, so this is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.sim.process import Process


@dataclass(frozen=True)
class Heartbeat:
    """Periodic aliveness beacon exchanged among coordinators."""

    sender: int


@dataclass
class LivenessConfig:
    """Tuning knobs for failure detection and stuck-round recovery.

    Attributes:
        heartbeat_period: Interval between heartbeats.
        suspect_timeout: Silence span after which a peer is suspected.
        check_period: Interval between leader progress checks.
        stuck_timeout: Age after which an unserved command triggers a new
            round (covers leader crashes and persistent collisions alike).
        recovery_rtype: RType of the rounds started by the leader to
            restore progress (Section 4.3 recommends single-coordinated).
    """

    heartbeat_period: float = 4.0
    suspect_timeout: float = 12.0
    check_period: float = 4.0
    stuck_timeout: float = 12.0
    recovery_rtype: int = 1

    def __post_init__(self) -> None:
        # Mirror NetworkConfig's range checks: a zero or negative period
        # schedules a busy loop, and a suspect timeout at or below the
        # heartbeat period suspects every live peer permanently.
        if self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if self.check_period <= 0:
            raise ValueError("check_period must be positive")
        if self.stuck_timeout <= 0:
            raise ValueError("stuck_timeout must be positive")
        if self.suspect_timeout <= self.heartbeat_period:
            raise ValueError("suspect_timeout must exceed heartbeat_period")
        if self.recovery_rtype not in (0, 1, 2):
            raise ValueError("recovery_rtype must be 0 (fast), 1 or 2")


class FailureDetector:
    """Tracks peer heartbeats for one coordinator process."""

    def __init__(
        self,
        process: Process,
        index: int,
        peers: Sequence[tuple[int, Hashable]],
        config: LivenessConfig,
        on_check: Callable[[], None] | None = None,
    ) -> None:
        self._process = process
        self.index = index
        self._peers = [(i, pid) for i, pid in peers if i != index]
        self.config = config
        self._last_heard: dict[int, float] = {}
        self._on_check = on_check

    def start(self) -> None:
        """Begin heartbeating and progress checks."""
        now = self._process.now
        for peer_index, _ in self._peers:
            self._last_heard[peer_index] = now
        self._beat()
        self._process.set_periodic_timer(self.config.heartbeat_period, self._beat)
        if self._on_check is not None:
            self._process.set_periodic_timer(self.config.check_period, self._on_check)

    def _beat(self) -> None:
        for _, pid in self._peers:
            self._process.send(pid, Heartbeat(self.index))

    def on_heartbeat(self, msg: Heartbeat) -> None:
        self._last_heard[msg.sender] = self._process.now

    def suspects(self, peer_index: int) -> bool:
        """Whether *peer_index* is currently suspected of having crashed."""
        if peer_index == self.index:
            return False
        last = self._last_heard.get(peer_index)
        if last is None:
            return True
        return self._process.now - last > self.config.suspect_timeout

    def trusted(self) -> list[int]:
        """Coordinator indices currently believed alive (self included)."""
        alive = [self.index]
        alive.extend(i for i, _ in self._peers if not self.suspects(i))
        return sorted(alive)

    def leader(self) -> int:
        """Ω output: the smallest trusted coordinator index."""
        return self.trusted()[0]

    def is_leader(self) -> bool:
        return self.leader() == self.index
