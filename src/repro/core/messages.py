"""Protocol messages.

The message vocabulary of Sections 2 and 3: ``⟨propose⟩``, ``⟨1a⟩``,
``⟨1b⟩``, ``⟨2a⟩``, ``⟨2b⟩``, plus the ``Nack`` extension of Section 4.3
(acceptors notify senders of stale rounds so a leader learns its round is
too low).  Message classes are frozen dataclasses; handler dispatch uses
the lower-cased class name (see :class:`repro.sim.process.Process`).

``val`` fields carry either a single command (the consensus protocols of
Sections 2.1, 2.2 and 3.1), a c-struct (the generalized protocols of
Sections 2.3 and 3.2), or the distinguished :data:`ANY` value of fast
rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.core.rounds import RoundId


class _AnyValue:
    """The special ``Any`` value of fast-round phase "2a" messages."""

    _instance: "_AnyValue | None" = None

    def __new__(cls) -> "_AnyValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


ANY = _AnyValue()


@dataclass(frozen=True)
class Propose:
    """⟨propose, C⟩ from a proposer to coordinators (and acceptors).

    ``coord_quorum``/``acceptor_quorum`` are the optional load-balancing
    hints of Section 4.1: the proposer picks one quorum of coordinators and
    one of acceptors and piggybacks the latter so the chosen coordinators
    forward the command to exactly those acceptors.
    """

    cmd: Hashable
    coord_quorum: frozenset[int] | None = None
    acceptor_quorum: frozenset[str] | None = None


@dataclass(frozen=True)
class ProposeBatch:
    """⟨propose, ⟨C1..Cm⟩⟩: a batched proposal (generalized engine).

    With a :class:`repro.core.generalized.GenBatchingConfig` the proposer
    accumulates commands and ships them as one message; coordinators append
    the whole group to their c-struct with a single ``extend`` and forward
    one phase "2a" per batch, and acceptors in fast rounds append the group
    with one lattice operation.  Semantically equivalent to *m* single
    ``Propose`` messages -- batching changes message and lattice-operation
    counts, never outcomes (property-tested in ``tests/test_gen_parity.py``).
    """

    cmds: tuple[Hashable, ...]
    coord_quorum: frozenset[int] | None = None
    acceptor_quorum: frozenset[str] | None = None


@dataclass(frozen=True)
class CatchUp:
    """Learner → acceptors: re-send your current vote (generalized engine).

    The learners' periodic gap poll under
    :class:`repro.core.checkpoint.RetransmitConfig`: c-structs are
    cumulative, so an acceptor's *current* ``Phase2b`` re-delivers
    everything a lost earlier "2b" carried.  ``seen`` is the number of
    commands the polling learner has learned; an acceptor whose truncation
    floor is above it answers with ``ITruncated`` too, steering the
    laggard to snapshot install.

    Under :class:`repro.core.generalized.DeltaConfig` the poll carries a
    *stamp* of the poller's mirror of this acceptor's vote stream
    (``rnd`` + ``size``/``digest``, see :mod:`repro.cstruct.digest`).
    A stamped poll turns the answer two-phase: a matching acceptor
    replies with an O(1) :class:`VoteStamp` ack, one holding the stamp
    in its delta trail replies with exactly the missing suffix
    (:class:`Phase2bDelta`), and only a diverged or trail-expired
    responder falls back to the full cumulative ``Phase2b``.
    """

    seen: int = 0
    rnd: RoundId | None = None
    size: int = -1
    digest: int = 0


@dataclass(frozen=True)
class Phase1a:
    """⟨1a, i⟩ from a coordinator to the acceptors."""

    rnd: RoundId


@dataclass(frozen=True)
class Phase1b:
    """⟨1b, i, vval, vrnd⟩ from an acceptor to the coordinators of *i*."""

    rnd: RoundId
    vrnd: RoundId
    vval: Any
    acceptor: Hashable


@dataclass(frozen=True)
class Phase2a:
    """⟨2a, i, val⟩ from coordinator *coord* to the acceptors."""

    rnd: RoundId
    val: Any
    coord: int
    acceptor_quorum: frozenset[str] | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Phase2b:
    """⟨2b, i, val⟩ from an acceptor to the learners (and coordinators).

    ``fresh`` is an optional delta hint for generalized c-struct votes: the
    commands this acceptance added on top of the acceptor's previous vote.
    Learners use it to update their per-vote frontiers in O(|fresh|) when
    the sizes line up (no gap since the last received "2b"); it is advisory
    only -- ``val`` always carries the whole c-struct, so a dropped or
    reordered message merely costs the receiver a full O(n) rescan.
    """

    rnd: RoundId
    val: Any
    acceptor: Hashable
    fresh: tuple[Hashable, ...] | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Nack:
    """Stale-round notification (Section 4.3 liveness extension)."""

    rnd: RoundId
    higher: RoundId
    acceptor: Hashable


@dataclass(frozen=True)
class Learned:
    """Learner → coordinator notification of newly learned commands.

    Supports the Section 4.3 stuck-command detection: the leader starts a
    higher round only for commands that were proposed but never *learned*
    (mere acceptance is not enough -- a collided fast round has every
    command accepted by every acceptor, in incompatible orders).
    """

    cmds: tuple[Hashable, ...]
    learner: Hashable


# -- delta wire protocol (DeltaConfig, generalized engine) ---------------------
#
# Cumulative 2a/2b messages re-carry the sender's whole c-struct on every
# send.  Under DeltaConfig each sender instead maintains one monotone
# *stream* per round -- stamped by the (size, digest) of the command set
# already shipped -- and transmits only the unsent suffix.  A receiver
# whose mirror of the stream matches the base stamp extends in O(delta);
# any mismatch (lost delta, GC on the sender, crash on either side)
# triggers fetch-on-mismatch repair via ResyncRequest, answered with the
# plain cumulative message, which resets the stream.  Correctness never
# rests on the digests: they only decide *when* to fall back to the
# cumulative protocol, whose semantics are unchanged.


@dataclass(frozen=True)
class Phase2aDelta:
    """Coordinator → acceptors: the unsent suffix of the round's c-struct.

    Extends the coordinator's 2a stream for ``rnd``: an acceptor whose
    mirror matches ``(base_size, base_digest)`` appends ``cmds`` to its
    buffered 2a value and proceeds exactly as for a full ``Phase2a``; on
    mismatch it answers with :class:`ResyncRequest`.  An empty ``cmds``
    is the reliability tick's O(1) re-announcement of the stream head.
    """

    rnd: RoundId
    base_size: int
    base_digest: int
    cmds: tuple[Hashable, ...]
    coord: int


@dataclass(frozen=True)
class Phase2bDelta:
    """Acceptor → learners (and coordinators): the vote's unsent suffix.

    Extends the acceptor's 2b stream: ``fresh`` are the commands gained
    since the state stamped ``(base_size, base_digest)``.  A learner
    whose mirror matches extends the recorded vote and updates its
    frontier in O(|fresh|); on mismatch it answers ``ResyncRequest`` and
    the acceptor falls back to the full cumulative ``Phase2b``.  Also
    the targeted answer to a stamped ``CatchUp`` poll whose stamp is
    still in the acceptor's delta trail.
    """

    rnd: RoundId
    base_size: int
    base_digest: int
    fresh: tuple[Hashable, ...]
    acceptor: Hashable


@dataclass(frozen=True)
class VoteStamp:
    """Acceptor → learner: "you're current" -- the O(1) catch-up ack.

    Echoes the stamp of a ``CatchUp`` poll that matched the acceptor's
    vote exactly.  The learner marks the acceptor current and slows its
    polls to the idle cadence; a stamp that no longer matches the
    learner's mirror (the mirror advanced meanwhile) is stale and
    ignored.
    """

    rnd: RoundId
    size: int
    digest: int
    acceptor: Hashable


@dataclass(frozen=True)
class ResyncRequest:
    """Receiver → stream sender: delta base mismatch, send it all.

    The fetch-on-mismatch repair path: a coordinator answers with its
    full ``Phase2a``, an acceptor with its full ``Phase2b``, either of
    which resets the requester's mirror.  ``size`` reports the
    requester's mirror size (diagnostic only).
    """

    rnd: RoundId
    size: int = 0
