"""Protocol messages.

The message vocabulary of Sections 2 and 3: ``⟨propose⟩``, ``⟨1a⟩``,
``⟨1b⟩``, ``⟨2a⟩``, ``⟨2b⟩``, plus the ``Nack`` extension of Section 4.3
(acceptors notify senders of stale rounds so a leader learns its round is
too low).  Message classes are frozen dataclasses; handler dispatch uses
the lower-cased class name (see :class:`repro.sim.process.Process`).

``val`` fields carry either a single command (the consensus protocols of
Sections 2.1, 2.2 and 3.1), a c-struct (the generalized protocols of
Sections 2.3 and 3.2), or the distinguished :data:`ANY` value of fast
rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.core.rounds import RoundId


class _AnyValue:
    """The special ``Any`` value of fast-round phase "2a" messages."""

    _instance: "_AnyValue | None" = None

    def __new__(cls) -> "_AnyValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


ANY = _AnyValue()


@dataclass(frozen=True)
class Propose:
    """⟨propose, C⟩ from a proposer to coordinators (and acceptors).

    ``coord_quorum``/``acceptor_quorum`` are the optional load-balancing
    hints of Section 4.1: the proposer picks one quorum of coordinators and
    one of acceptors and piggybacks the latter so the chosen coordinators
    forward the command to exactly those acceptors.
    """

    cmd: Hashable
    coord_quorum: frozenset[int] | None = None
    acceptor_quorum: frozenset[str] | None = None


@dataclass(frozen=True)
class ProposeBatch:
    """⟨propose, ⟨C1..Cm⟩⟩: a batched proposal (generalized engine).

    With a :class:`repro.core.generalized.GenBatchingConfig` the proposer
    accumulates commands and ships them as one message; coordinators append
    the whole group to their c-struct with a single ``extend`` and forward
    one phase "2a" per batch, and acceptors in fast rounds append the group
    with one lattice operation.  Semantically equivalent to *m* single
    ``Propose`` messages -- batching changes message and lattice-operation
    counts, never outcomes (property-tested in ``tests/test_gen_parity.py``).
    """

    cmds: tuple[Hashable, ...]
    coord_quorum: frozenset[int] | None = None
    acceptor_quorum: frozenset[str] | None = None


@dataclass(frozen=True)
class CatchUp:
    """Learner → acceptors: re-send your current vote (generalized engine).

    The learners' periodic gap poll under
    :class:`repro.core.checkpoint.RetransmitConfig`: c-structs are
    cumulative, so an acceptor's *current* ``Phase2b`` re-delivers
    everything a lost earlier "2b" carried.  ``seen`` is the number of
    commands the polling learner has learned; an acceptor whose truncation
    floor is above it answers with ``ITruncated`` too, steering the
    laggard to snapshot install.
    """

    seen: int = 0


@dataclass(frozen=True)
class Phase1a:
    """⟨1a, i⟩ from a coordinator to the acceptors."""

    rnd: RoundId


@dataclass(frozen=True)
class Phase1b:
    """⟨1b, i, vval, vrnd⟩ from an acceptor to the coordinators of *i*."""

    rnd: RoundId
    vrnd: RoundId
    vval: Any
    acceptor: Hashable


@dataclass(frozen=True)
class Phase2a:
    """⟨2a, i, val⟩ from coordinator *coord* to the acceptors."""

    rnd: RoundId
    val: Any
    coord: int
    acceptor_quorum: frozenset[str] | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Phase2b:
    """⟨2b, i, val⟩ from an acceptor to the learners (and coordinators).

    ``fresh`` is an optional delta hint for generalized c-struct votes: the
    commands this acceptance added on top of the acceptor's previous vote.
    Learners use it to update their per-vote frontiers in O(|fresh|) when
    the sizes line up (no gap since the last received "2b"); it is advisory
    only -- ``val`` always carries the whole c-struct, so a dropped or
    reordered message merely costs the receiver a full O(n) rescan.
    """

    rnd: RoundId
    val: Any
    acceptor: Hashable
    fresh: tuple[Hashable, ...] | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Nack:
    """Stale-round notification (Section 4.3 liveness extension)."""

    rnd: RoundId
    higher: RoundId
    acceptor: Hashable


@dataclass(frozen=True)
class Learned:
    """Learner → coordinator notification of newly learned commands.

    Supports the Section 4.3 stuck-command detection: the leader starts a
    higher round only for commands that were proposed but never *learned*
    (mere acceptance is not enough -- a collided fast round has every
    command accepted by every acceptor, in incompatible orders).
    """

    cmds: tuple[Hashable, ...]
    learner: Hashable
